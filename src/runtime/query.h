// Per-query control block for multi-tenant scheduling (DESIGN.md §12).
//
// A QueryControl travels with one fractoid execution: the executor stores a
// pointer to it in every StepOptions it submits, the Cluster's admission
// gate uses it for weighted fair sharing, and worker threads poll its
// cancel flag once per work unit (one relaxed load — the same hot-path
// budget as the fault-injection poll, see DESIGN.md §7).
//
// Thread-safety: the atomic members are written/read from scheduler driver
// threads, the step driver and worker threads concurrently. `vtime` is NOT
// atomic — it is only touched by the Cluster admission gate while holding
// Cluster::run_mu (documented invariant, enforced by code placement).
#ifndef FRACTAL_RUNTIME_QUERY_H_
#define FRACTAL_RUNTIME_QUERY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace fractal {

/// Shared control block of one scheduled query (one fractoid execution).
/// Owned by whoever drives the execution — a ScheduledQuery handle when the
/// QueryScheduler is in play, or a caller's stack frame for a synchronous
/// execution that just wants a deadline/cancel knob (ExecutionConfig::query).
struct QueryControl {
  /// Stable id for metrics/statusz/trace attribution. 0 is reserved for
  /// "anonymous" (no query attached).
  uint64_t id = 0;
  std::string name;

  /// Weighted fair sharing: a query with weight w accrues virtual time at
  /// rate work_units / w, so relative throughput between backlogged queries
  /// is proportional to their weights. Must be >= 1.
  uint32_t weight = 1;

  /// Absolute steady-clock deadline; only meaningful when has_deadline.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// Cooperative cancellation flag, polled by worker threads once per work
  /// unit. Set by RequestCancel / MarkDeadlineHit; never cleared.
  std::atomic<bool> cancel_requested{false};
  /// Distinguishes deadline expiry from an explicit cancel so the executor
  /// can map the unwind to kDeadlineExceeded vs kCancelled.
  std::atomic<bool> deadline_hit{false};

  /// Work units attained by this query, credited at each step barrier.
  std::atomic<uint64_t> work_units{0};
  std::atomic<uint64_t> steps_run{0};

  /// Start-time-fair virtual time (attained service / weight). Guarded by
  /// Cluster::run_mu — only the admission gate reads or writes it.
  double vtime = 0.0;

  void RequestCancel() {
    cancel_requested.store(true, std::memory_order_release);
  }

  /// Marks the deadline as hit and requests cancellation. deadline_hit is
  /// published before cancel_requested so any observer of the cancel flag
  /// sees the reason.
  void MarkDeadlineHit() {
    deadline_hit.store(true, std::memory_order_release);
    cancel_requested.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancel_requested.load(std::memory_order_acquire);
  }

  bool DeadlineHit() const {
    return deadline_hit.load(std::memory_order_acquire);
  }

  /// Returns true (and latches deadline_hit + cancel) if `now` is at or
  /// past the deadline. No-op for queries without a deadline.
  bool CheckDeadline(std::chrono::steady_clock::time_point now) {
    if (!has_deadline || now < deadline) return false;
    MarkDeadlineHit();
    return true;
  }

  /// Convenience: arms the deadline `deadline_ms` from now (<= 0 disarms).
  void SetDeadlineAfterMillis(int64_t deadline_ms) {
    if (deadline_ms <= 0) {
      has_deadline = false;
      return;
    }
    has_deadline = true;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(deadline_ms);
  }
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_QUERY_H_
