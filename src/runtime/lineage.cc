#include "runtime/lineage.h"

#include <algorithm>
#include <utility>

#include "runtime/codec.h"
#include "util/alloc_guard.h"
#include "util/check.h"

namespace fractal {

void LineageLedger::BeginAttempt(const std::vector<uint32_t>& roots,
                                 uint64_t live_mask,
                                 uint32_t threads_per_worker) {
  MutexLock lock(mu_);
  FRACTAL_CHECK(records_.empty())
      << "BeginAttempt must run once per LineageLedger";
  const uint32_t live_threads =
      static_cast<uint32_t>(std::popcount(live_mask)) * threads_per_worker;
  FRACTAL_CHECK(live_threads > 0) << "no live threads to own the roots";

  // Owner per root: walk each live thread's contiguous slice — the exact
  // partition its Worker::RunStepOnThread computes (shared helpers above).
  std::vector<uint32_t> owners(roots.size(), 0);
  for (uint32_t worker = 0; worker < 64; ++worker) {
    if (((live_mask >> worker) & 1) == 0) continue;
    for (uint32_t core = 0; core < threads_per_worker; ++core) {
      const uint32_t rank =
          LiveThreadRank(live_mask, worker, core, threads_per_worker);
      const RootSlice slice = PartitionRoots(roots.size(), rank, live_threads);
      for (size_t i = slice.begin; i < slice.end; ++i) owners[i] = worker;
    }
  }

  SubgraphEnumerator::StolenWork work;
  for (size_t i = 0; i < roots.size(); ++i) {
    work.prefix.Clear();
    work.extension = roots[i];
    work.primitive_index = 1;
    work.lineage_id = records_.size();
    std::vector<uint8_t> bytes = SubgraphCodec::EncodeStolenWork(work);
    ledger_bytes_.fetch_add(bytes.size() + sizeof(TaskRecord),
                            std::memory_order_relaxed);
    root_by_value_.emplace(roots[i], records_.size());
    records_.emplace_back(owners[i], kNoVictim, std::move(bytes));
  }
}

void LineageLedger::StampClaim(uint32_t victim_worker, uint32_t thief_worker,
                               SubgraphEnumerator::StolenWork* work) {
  AllocGuard::Allow allow("lineage stamping: descriptor bytes + ledger record");
  const bool root_claim =
      work->prefix.Empty() && (work->primitive_index == 1 ||
                               work->primitive_index == kReplayRootPrimitive);
  if (root_claim) {
    // frames[0] entries already have records; the claim transfers
    // ownership so the crash accounting follows the work.
    const uint64_t id = RootTaskId(work->extension);
    work->lineage_id = id;
    MutexLock lock(mu_);
    records_[id].owner.store(thief_worker, std::memory_order_relaxed);
    return;
  }
  // Interior claim: mint a record carrying the full descriptor. If the
  // claimed subtree is already covered (a thief won the cursor race against
  // the owner's exclusion skip during a salvage pass), the record is born
  // completed and FractoidStepTask::ProcessStolen drops the work on
  // arrival — it must be enumerated exactly once.
  const bool already_covered =
      Excluded(work->prefix, work->extension, work->primitive_index);
  std::vector<uint8_t> bytes = SubgraphCodec::EncodeStolenWork(*work);
  MutexLock lock(mu_);
  const uint64_t id = records_.size();
  ledger_bytes_.fetch_add(bytes.size() + sizeof(TaskRecord),
                          std::memory_order_relaxed);
  records_.emplace_back(thief_worker, victim_worker, std::move(bytes));
  if (already_covered) {
    records_[id].completed.store(true, std::memory_order_relaxed);
  }
  work->lineage_id = id;
}

void LineageLedger::StampComplete(uint64_t task_id, uint64_t units) {
  // The deque never moves elements, but indexing concurrently with an
  // appending push_back is not safe lock-free; completion is once per task
  // (not per work unit), so the leaf lock is cheap enough.
  MutexLock lock(mu_);
  records_[task_id].completed.store(true, std::memory_order_relaxed);
  completed_units_.fetch_add(units, std::memory_order_relaxed);
}

uint64_t LineageLedger::RootTaskId(uint32_t key) const {
  if (salvage_pass_) return replay_ids_[key];
  const auto it = root_by_value_.find(key);
  FRACTAL_CHECK(it != root_by_value_.end())
      << "root extension " << key << " has no lineage record";
  return it->second;
}

uint64_t LineageLedger::num_records() const {
  MutexLock lock(mu_);
  return records_.size();
}

uint32_t LineageLedger::PrepareSalvage(uint32_t crashed_worker,
                                       uint64_t new_live_mask,
                                       uint32_t threads_per_worker) {
  MutexLock lock(mu_);
  crashed_workers_mask_ |= uint64_t{1} << crashed_worker;

  // (a) Exclusion set: every subtree claimed *out of* any crashed-so-far
  // worker, rebuilt from scratch per crash so nested salvage passes see the
  // union. Completion does not matter: a completed claim is committed by
  // its thief, an uncompleted one is (or was) its own replay root — either
  // way a replaying parent must not re-enumerate it.
  struct PendingExclusion {
    uint64_t hash;
    SubgraphEnumerator::StolenWork work;
  };
  std::vector<PendingExclusion> pending;
  for (const TaskRecord& record : records_) {
    if (record.victim == kNoVictim) continue;
    if (((crashed_workers_mask_ >> record.victim) & 1) == 0) continue;
    PendingExclusion entry;
    FRACTAL_CHECK(SubgraphCodec::DecodeStolenWork(record.descriptor,
                                                  &entry.work))
        << "corrupted lineage descriptor";
    entry.hash = DescriptorHash(entry.work.prefix, entry.work.extension,
                                entry.work.primitive_index);
    pending.push_back(std::move(entry));
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingExclusion& a, const PendingExclusion& b) {
              return a.hash < b.hash;
            });
  ledger_bytes_.fetch_sub(exclusions_.vwords.size() * sizeof(uint32_t) +
                              exclusions_.ewords.size() * sizeof(uint32_t) +
                              exclusions_.hashes.size() *
                                  (sizeof(uint64_t) +
                                   sizeof(ExclusionSet::Entry)),
                          std::memory_order_relaxed);
  exclusions_ = ExclusionSet{};
  for (PendingExclusion& entry : pending) {
    ExclusionSet::Entry packed;
    packed.extension = entry.work.extension;
    packed.primitive_index = entry.work.primitive_index;
    packed.v_begin = static_cast<uint32_t>(exclusions_.vwords.size());
    packed.e_begin = static_cast<uint32_t>(exclusions_.ewords.size());
    for (const VertexId v : entry.work.prefix.Vertices()) {
      exclusions_.vwords.push_back(v);
    }
    for (const EdgeId e : entry.work.prefix.Edges()) {
      exclusions_.ewords.push_back(e);
    }
    packed.v_end = static_cast<uint32_t>(exclusions_.vwords.size());
    packed.e_end = static_cast<uint32_t>(exclusions_.ewords.size());
    exclusions_.hashes.push_back(entry.hash);
    exclusions_.entries.push_back(packed);
  }
  ledger_bytes_.fetch_add(exclusions_.vwords.size() * sizeof(uint32_t) +
                              exclusions_.ewords.size() * sizeof(uint32_t) +
                              exclusions_.hashes.size() *
                                  (sizeof(uint64_t) +
                                   sizeof(ExclusionSet::Entry)),
                          std::memory_order_relaxed);

  // (b) Replay set: descriptors the crashed worker owned and never
  // completed. Survivors drain their own roots and finish every task they
  // claim before a failed step winds down, so this is exactly the lost
  // frontier. Records are reused in place; replay roots are re-owned by
  // the survivor partition below.
  replay_ids_.clear();
  replay_work_.clear();
  for (uint64_t id = 0; id < records_.size(); ++id) {
    const TaskRecord& record = records_[id];
    if (record.completed.load(std::memory_order_relaxed)) continue;
    if (record.owner.load(std::memory_order_relaxed) != crashed_worker) {
      continue;
    }
    SubgraphEnumerator::StolenWork work;
    FRACTAL_CHECK(SubgraphCodec::DecodeStolenWork(record.descriptor, &work))
        << "corrupted lineage descriptor";
    work.lineage_id = id;
    replay_ids_.push_back(id);
    replay_work_.push_back(std::move(work));
  }

  // (c) Re-own the replay indices across the survivors with the same
  // partition formula the next pass's threads will use on roots 0..R-1.
  const uint32_t live_threads =
      static_cast<uint32_t>(std::popcount(new_live_mask)) * threads_per_worker;
  FRACTAL_CHECK(live_threads > 0) << "no survivors to salvage onto";
  for (uint32_t worker = 0; worker < 64; ++worker) {
    if (((new_live_mask >> worker) & 1) == 0) continue;
    for (uint32_t core = 0; core < threads_per_worker; ++core) {
      const uint32_t rank =
          LiveThreadRank(new_live_mask, worker, core, threads_per_worker);
      const RootSlice slice =
          PartitionRoots(replay_ids_.size(), rank, live_threads);
      for (size_t i = slice.begin; i < slice.end; ++i) {
        records_[replay_ids_[i]].owner.store(worker,
                                             std::memory_order_relaxed);
      }
    }
  }
  salvage_pass_ = true;
  return static_cast<uint32_t>(replay_work_.size());
}

}  // namespace fractal
