#include "runtime/codec.h"

namespace fractal {

void SubgraphCodec::EncodeSubgraph(const Subgraph& subgraph,
                                   ByteWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(subgraph.vertices_.size()));
  for (const VertexId v : subgraph.vertices_) writer->PutU32(v);
  writer->PutU32(static_cast<uint32_t>(subgraph.edges_.size()));
  for (const EdgeId e : subgraph.edges_) writer->PutU32(e);
  writer->PutU32(static_cast<uint32_t>(subgraph.records_.size()));
  for (const Subgraph::PushRecord& record : subgraph.records_) {
    writer->PutU8(record.vertices_added);
    writer->PutU8(record.edges_added);
  }
}

bool SubgraphCodec::DecodeSubgraph(ByteReader* reader, Subgraph* subgraph) {
  subgraph->Clear();
  const uint32_t num_vertices = reader->GetU32();
  if (!reader->ok() || num_vertices > 1u << 20) return false;
  subgraph->vertices_.resize(num_vertices);
  for (uint32_t i = 0; i < num_vertices; ++i) {
    subgraph->vertices_[i] = reader->GetU32();
  }
  const uint32_t num_edges = reader->GetU32();
  if (!reader->ok() || num_edges > 1u << 20) return false;
  subgraph->edges_.resize(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    subgraph->edges_[i] = reader->GetU32();
  }
  const uint32_t num_records = reader->GetU32();
  if (!reader->ok() || num_records > 1u << 20) return false;
  subgraph->records_.resize(num_records);
  uint32_t vertex_total = 0;
  uint32_t edge_total = 0;
  for (uint32_t i = 0; i < num_records; ++i) {
    subgraph->records_[i].vertices_added = reader->GetU8();
    subgraph->records_[i].edges_added = reader->GetU8();
    vertex_total += subgraph->records_[i].vertices_added;
    edge_total += subgraph->records_[i].edges_added;
  }
  if (!reader->ok()) return false;
  // The words were written behind the bitsets' back; restore the invariant.
  subgraph->RebuildBits();
  // Structural consistency: records must account for every word element.
  return vertex_total == num_vertices && edge_total == num_edges;
}

std::vector<uint8_t> SubgraphCodec::EncodeStolenWork(
    const SubgraphEnumerator::StolenWork& work) {
  ByteWriter writer;
  EncodeSubgraph(work.prefix, &writer);
  writer.PutU32(work.extension);
  writer.PutU32(work.primitive_index);
  writer.PutU32(static_cast<uint32_t>(work.lineage_id));
  writer.PutU32(static_cast<uint32_t>(work.lineage_id >> 32));
  return std::move(writer).Take();
}

bool SubgraphCodec::DecodeStolenWork(const std::vector<uint8_t>& bytes,
                                     SubgraphEnumerator::StolenWork* work) {
  ByteReader reader(bytes);
  if (!DecodeSubgraph(&reader, &work->prefix)) return false;
  work->extension = reader.GetU32();
  work->primitive_index = reader.GetU32();
  const uint64_t lineage_lo = reader.GetU32();
  const uint64_t lineage_hi = reader.GetU32();
  work->lineage_id = (lineage_hi << 32) | lineage_lo;
  return reader.ok() && reader.AtEnd();
}

}  // namespace fractal
