// Execution telemetry. Every execution thread keeps a ThreadStats; a step
// execution produces a StepTelemetry. Besides wall-clock timing, the
// runtime counts *work units* (extensions consumed and processed): on this
// container (a single CPU core) wall-clock parallel speedup is not
// observable, so the load-balancing and scalability figures (Figs 8/16/19)
// are reproduced with the deterministic work-unit makespan model described
// in DESIGN.md §1.
#ifndef FRACTAL_RUNTIME_TELEMETRY_H_
#define FRACTAL_RUNTIME_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fractal {

struct ThreadStats {
  uint32_t worker_id = 0;
  uint32_t core_id = 0;  // global core (thread) id

  uint64_t work_units = 0;        // extensions consumed & processed
  uint64_t extension_tests = 0;   // EC metric (paper §4.3)
  uint64_t subgraphs_visited = 0; // subgraphs reaching a terminal primitive
  uint64_t internal_steals = 0;   // successful WS_int claims
  uint64_t external_steals = 0;   // successful WS_ext claims
  uint64_t steal_failures = 0;    // unsuccessful scan rounds
  uint64_t steal_timeouts = 0;    // WS_ext requests that hit the deadline
  uint64_t bytes_shipped = 0;     // serialized bytes received via WS_ext
  int64_t own_work_micros = -1;   // when the initial partition drained
  int64_t finish_micros = 0;      // when the thread went permanently idle
  /// Time spent draining frames or processing stolen work. Idle time (the
  /// steal loop's backoff sleeps) is excluded, so utilization derived from
  /// busy_seconds / wall_seconds is not overstated on starved threads.
  double busy_seconds = 0;
};

/// Telemetry of one fractal-step execution across all threads. Aggregated
/// by the cluster at the step barrier — after every execution thread has
/// finished — so no locking is involved anywhere in this header: all
/// telemetry is either thread-private (ThreadStats during a step) or
/// barrier-synchronized snapshots.
struct StepTelemetry {
  std::vector<ThreadStats> threads;
  double wall_seconds = 0;

  [[nodiscard]] uint64_t TotalWorkUnits() const;
  [[nodiscard]] uint64_t TotalExtensionTests() const;
  [[nodiscard]] uint64_t TotalInternalSteals() const;
  [[nodiscard]] uint64_t TotalExternalSteals() const;
  [[nodiscard]] uint64_t TotalBytesShipped() const;

  /// Deterministic makespan model: every work unit costs one time unit and
  /// every external steal a thread performed costs `steal_cost_units`.
  /// Returns max over threads — the simulated parallel completion time.
  uint64_t SimulatedMakespanUnits(uint64_t steal_cost_units) const;

  /// Perfectly balanced makespan (total work / threads): the lower bound.
  double IdealMakespanUnits() const;

  /// Load-balance quality in (0,1]: ideal / simulated.
  double BalanceEfficiency(uint64_t steal_cost_units) const;

  /// Multi-line per-thread summary table for benches.
  std::string ToTable() const;
};

/// Structured record of one abandoned step execution: which worker crashed,
/// why, and what the abandoned attempt cost. Replaces the bare `failed`
/// bool of StepResult; carried through ExecutionResult::failures so callers
/// can audit every recovery the executor performed.
struct StepFailure {
  int32_t worker = -1;           // first crashed worker of the attempt
  std::string cause;             // human-readable fault description
  uint64_t work_units_lost = 0;  // units the crashed worker had consumed
  double wall_seconds_lost = 0;  // wall time of the abandoned attempt

  std::string ToString() const;
};

/// Accumulates telemetry across the steps of a whole fractoid execution.
struct ExecutionTelemetry {
  std::vector<StepTelemetry> steps;
  double wall_seconds = 0;

  [[nodiscard]] uint64_t TotalWorkUnits() const;
  [[nodiscard]] uint64_t TotalExtensionTests() const;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_TELEMETRY_H_
