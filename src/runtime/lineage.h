// Per-step fractoid lineage ledger (DESIGN.md §11): the bookkeeping that
// turns "retry the whole step" into partial recovery. Every unit of
// top-level work — a root extension of the step's initial partition, or a
// (prefix, extension, primitive_index) descriptor claimed by the steal
// path — is one *task* in the ledger. Tasks are stamped twice:
//
//   * claim: TrySteal/ClaimLocalWork moves exactly the descriptor this
//     ledger needs, so stamping rides the existing claim-after-commit
//     rendezvous (worker.cc). Root claims transfer ownership of an
//     existing record; interior claims mint a new record carrying the
//     encoded descriptor and the victim it was taken from.
//   * complete: when a thread finishes a task's subtree and merges its
//     task-scratch accumulators into the committed per-thread state
//     (FractoidStepTask::CommitTask), the record becomes a durable
//     watermark — the committed state contains exactly the stamped tasks.
//
// On a crash, PrepareSalvage() derives from those stamps (a) the replay
// set — descriptors owned by the crashed worker and never completed — and
// (b) the exclusion set — every subtree claimed *out of* a crashed worker,
// which is either already committed by a survivor or queued as its own
// replay root, and must be skipped when a replay re-enumerates its parent.
// Survivors keep their aggregation state; only the replay set re-executes.
#ifndef FRACTAL_RUNTIME_LINEAGE_H_
#define FRACTAL_RUNTIME_LINEAGE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "enumerate/enumerator.h"
#include "enumerate/subgraph.h"
#include "util/hot_annotations.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fractal {

/// Primitive-index sentinel for the frames[0] entries of a salvage pass:
/// the "extension" value is an index into the ledger's replay set, not a
/// graph word. Real primitive indices are bounded by the workflow length,
/// so the sentinel can never collide.
inline constexpr uint32_t kReplayRootPrimitive = 0xffffffffu;

/// Rank of (worker_id, local_core) among the threads of *live* workers.
/// Dead workers' cores are excised from the ranking so a degraded step
/// still covers every root with no holes.
inline uint32_t LiveThreadRank(uint64_t live_mask, uint32_t worker_id,
                               uint32_t local_core,
                               uint32_t threads_per_worker) {
  return static_cast<uint32_t>(std::popcount(
             live_mask & ((uint64_t{1} << worker_id) - 1))) *
             threads_per_worker +
         local_core;
}

/// Contiguous root partition [begin, end) of `total` items owned by live
/// thread `rank` out of `live_threads`. Single source of truth shared by
/// Worker::RunStepOnThread and LineageLedger ownership assignment: the
/// ledger's notion of which worker owns root i must agree bit for bit with
/// the slice that worker's thread actually drains.
struct RootSlice {
  size_t begin;
  size_t end;
};
inline RootSlice PartitionRoots(size_t total, uint32_t rank,
                                uint32_t live_threads) {
  return RootSlice{total * rank / live_threads,
                   total * (rank + 1) / live_threads};
}

/// Lineage ledger for one step of one execution attempt chain. Created by
/// the executor when RetryPolicy::Mode::kSalvage is active, published to
/// worker threads through Cluster::StepState (same happens-before argument
/// as the StepTask pointer: written before the step-generation bump, read
/// after observing the new generation), and retained across salvage passes
/// of the same step together with the FractoidStepTask.
///
/// Thread-safety: record appends and completion stamps take `mu` (a leaf
/// lock, DESIGN.md §5). The attempt-frozen structures — the root map, the
/// replay set, and the exclusion set — are (re)built only between passes on
/// the quiescent driver thread and read lock-free during a pass.
class LineageLedger {
 public:
  /// `victim` value for root records: the initial partition assigns them,
  /// nobody was robbed.
  static constexpr uint32_t kNoVictim = 0xffffffffu;

  LineageLedger() = default;
  LineageLedger(const LineageLedger&) = delete;
  LineageLedger& operator=(const LineageLedger&) = delete;

  /// Driver, once per ledger before the first RunStep: one record per root
  /// extension, owner assigned by the same live-thread partition the
  /// workers compute. `live_mask` must be the mask the step will run with.
  void BeginAttempt(const std::vector<uint32_t>& roots, uint64_t live_mask,
                    uint32_t threads_per_worker);

  /// Steal path, after a successful TrySteal/ClaimLocalWork and before the
  /// descriptor crosses a worker boundary. Root claims (empty prefix at a
  /// root primitive index) transfer ownership of the existing record;
  /// interior claims mint a new record. Sets `work->lineage_id` so the
  /// thief can stamp completion. Allocates (under AllocGuard::Allow) and
  /// locks `mu`: call sites inside FRACTAL_HOT graphs wrap this in a
  /// FRACTAL_HOT_ESCAPE — once per steal, not per work unit.
  void StampClaim(uint32_t victim_worker, uint32_t thief_worker,
                  SubgraphEnumerator::StolenWork* work);

  /// Worker thread, at task commit: the task's subtree is fully enumerated
  /// and its scratch merged into the committed per-thread state. `units` is
  /// the work consumed by the committing thread for this task (telemetry
  /// for runtime.units_salvaged).
  void StampComplete(uint64_t task_id, uint64_t units);

  /// Driver, between passes (workers quiescent): rebuilds the exclusion
  /// set over all crashed-so-far workers, collects the crashed worker's
  /// uncompleted descriptors as the replay set, and re-partitions their
  /// ownership across the survivors in `new_live_mask`. Returns the replay
  /// count R; the next pass runs with synthetic roots 0..R-1.
  uint32_t PrepareSalvage(uint32_t crashed_worker, uint64_t new_live_mask,
                          uint32_t threads_per_worker);

  /// True when (prefix, extension, primitive_index) identifies a subtree
  /// that is already covered — committed by a survivor or queued as its own
  /// replay root — and must be skipped by a replaying enumeration. The
  /// triple is injective across one step's enumeration tree (extensions are
  /// a pure function of the prefix words and the strategy), so no further
  /// state is compared. Hot, lock- and allocation-free.
  FRACTAL_HOT bool Excluded(const Subgraph& prefix, uint32_t extension,
                            uint32_t primitive_index) const {
    const uint64_t hash = DescriptorHash(prefix, extension, primitive_index);
    const std::vector<uint64_t>& hashes = exclusions_.hashes;
    size_t lo = 0;
    size_t hi = hashes.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (hashes[mid] < hash) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (; lo < hashes.size() && hashes[lo] == hash; ++lo) {
      if (ExclusionMatches(lo, prefix, extension, primitive_index)) {
        return true;
      }
    }
    return false;
  }

  /// Cheap pre-test for the per-extension check in DrainFrame: false until
  /// the first PrepareSalvage, so fault-free and from-scratch runs pay one
  /// predictable branch.
  FRACTAL_HOT bool has_exclusions() const { return !exclusions_.hashes.empty(); }

  /// True once PrepareSalvage ran: frames[0] entries are replay indices at
  /// kReplayRootPrimitive, not root extensions.
  bool salvage_pass() const { return salvage_pass_; }

  /// Task id of the frames[0] entry `key`: a root extension value during
  /// the initial attempt, a replay index during salvage passes. Reads only
  /// attempt-frozen structures (lock-free).
  uint64_t RootTaskId(uint32_t key) const;

  /// Descriptor behind replay index `index` (attempt-frozen, lock-free).
  const SubgraphEnumerator::StolenWork& replay_root(uint32_t index) const {
    return replay_work_[index];
  }

  /// Work units stamped complete so far (the salvageable watermark).
  uint64_t completed_units() const {
    return completed_units_.load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes: descriptors + record headers + the
  /// exclusion pools (runtime.ledger_bytes).
  uint64_t ApproxBytes() const {
    return ledger_bytes_.load(std::memory_order_relaxed);
  }

  /// Records stamped so far (roots + interior claims); test hook.
  uint64_t num_records() const;

 private:
  struct TaskRecord {
    TaskRecord(uint32_t owner_worker, uint32_t victim_worker,
               std::vector<uint8_t> bytes)
        : owner(owner_worker),
          victim(victim_worker),
          descriptor(std::move(bytes)) {}
    std::atomic<uint32_t> owner;
    uint32_t victim;
    std::atomic<bool> completed{false};
    std::vector<uint8_t> descriptor;
  };

  /// Exclusion descriptors in structure-of-arrays form: hashes sorted for
  /// binary search, word storage pooled so lookups touch two flat arrays.
  struct ExclusionSet {
    struct Entry {
      uint32_t extension;
      uint32_t primitive_index;
      uint32_t v_begin, v_end;
      uint32_t e_begin, e_end;
    };
    std::vector<uint64_t> hashes;
    std::vector<Entry> entries;  // parallel to hashes
    std::vector<uint32_t> vwords;
    std::vector<uint32_t> ewords;
  };

  static uint64_t MixHash(uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    return h ^ (h >> 33);
  }

  static uint64_t DescriptorHash(const Subgraph& prefix, uint32_t extension,
                                 uint32_t primitive_index) {
    uint64_t h = 0x5ca1ab1eull;
    for (const VertexId v : prefix.Vertices()) h = MixHash(h, v);
    h = MixHash(h, 0xfeedu);  // separator: vertex/edge words must not alias
    for (const EdgeId e : prefix.Edges()) h = MixHash(h, e);
    return MixHash(h, (uint64_t{extension} << 32) | primitive_index);
  }

  FRACTAL_HOT bool ExclusionMatches(size_t index, const Subgraph& prefix,
                                    uint32_t extension,
                                    uint32_t primitive_index) const {
    const ExclusionSet::Entry& entry = exclusions_.entries[index];
    if (entry.extension != extension ||
        entry.primitive_index != primitive_index) {
      return false;
    }
    const std::span<const VertexId> vertices = prefix.Vertices();
    const std::span<const EdgeId> edges = prefix.Edges();
    if (entry.v_end - entry.v_begin != vertices.size() ||
        entry.e_end - entry.e_begin != edges.size()) {
      return false;
    }
    for (uint32_t i = 0; i < vertices.size(); ++i) {
      if (exclusions_.vwords[entry.v_begin + i] != vertices[i]) return false;
    }
    for (uint32_t i = 0; i < edges.size(); ++i) {
      if (exclusions_.ewords[entry.e_begin + i] != edges[i]) return false;
    }
    return true;
  }

  /// Leaf lock (DESIGN.md §5): guards record appends and completion
  /// stamps. Safe under SubgraphEnumerator steal paths because TrySteal
  /// acquires and releases its own mutex *before* the stamp happens.
  mutable Mutex mu_{"LineageLedger::mu"};
  std::deque<TaskRecord> records_ GUARDED_BY(mu_);

  // Attempt-frozen (rebuilt only between passes, driver thread): the
  // frames[0] key -> record id map, the replay set, and the exclusion set.
  std::unordered_map<uint32_t, uint64_t> root_by_value_;
  std::vector<uint64_t> replay_ids_;
  std::vector<SubgraphEnumerator::StolenWork> replay_work_;
  ExclusionSet exclusions_;
  bool salvage_pass_ = false;
  uint64_t crashed_workers_mask_ = 0;

  std::atomic<uint64_t> completed_units_{0};
  std::atomic<uint64_t> ledger_bytes_{0};
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_LINEAGE_H_
