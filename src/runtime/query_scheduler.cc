#include "runtime/query_scheduler.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/cluster.h"
#include "util/check.h"
#include "util/strings.h"

namespace fractal {

namespace {

const char* StateName(ScheduledQuery::State state) {
  switch (state) {
    case ScheduledQuery::State::kQueued:
      return "queued";
    case ScheduledQuery::State::kRunning:
      return "running";
    case ScheduledQuery::State::kDone:
      return "done";
  }
  return "?";
}

}  // namespace

Status ScheduledQuery::Join() {
  MutexLock lock(mu_);
  while (state_ != State::kDone) cv_.Wait(mu_);
  return status_;
}

void ScheduledQuery::Cancel() {
  control_.RequestCancel();
  // A step of this query may be queued at the cluster's admission gate in
  // an untimed wait; wake it so the flag is observed. Resolved queries
  // have no step in flight — skip the (cluster-touching) wake.
  if (!done()) cluster_->WakeQueryGate();
}

bool ScheduledQuery::done() const {
  MutexLock lock(mu_);
  return state_ == State::kDone;
}

ScheduledQuery::State ScheduledQuery::state() const {
  MutexLock lock(mu_);
  return state_;
}

Status ScheduledQuery::status() const {
  MutexLock lock(mu_);
  return status_;
}

void ScheduledQuery::Resolve(Status status) {
  MutexLock lock(mu_);
  FRACTAL_CHECK(state_ != State::kDone) << "query resolved twice";
  state_ = State::kDone;
  status_ = std::move(status);
  cv_.NotifyAll();
}

QueryScheduler::QueryScheduler(Cluster* cluster,
                               const QuerySchedulerOptions& options)
    : cluster_(cluster), options_(options) {
  FRACTAL_CHECK(cluster_ != nullptr) << "scheduler needs a cluster";
  FRACTAL_CHECK(options_.max_active >= 1)
      << "scheduler needs at least one driver thread";
  drivers_.reserve(options_.max_active);
  for (uint32_t i = 0; i < options_.max_active; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
  statusz_token_ =
      cluster_->AddStatuszSection([this] { return RenderStatuszRows(); });
}

QueryScheduler::~QueryScheduler() {
  // Stop feeding /statusz first: RemoveStatuszSection blocks until any
  // in-flight render is done, so no section callback can outlive `this`.
  cluster_->RemoveStatuszSection(statusz_token_);
  CancelAll();
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    queue_cv_.NotifyAll();
  }
  // Drivers drain the remaining queue (every popped query resolves as
  // cancelled via the pre-run check — CancelAll latched the flags) and
  // exit; running bodies unwind cooperatively first.
  for (std::thread& driver : drivers_) driver.join();
}

StatusOr<std::shared_ptr<ScheduledQuery>> QueryScheduler::Submit(
    Submission submission, QueryBody body) {
  FRACTAL_CHECK(body != nullptr) << "query body must be callable";
  std::shared_ptr<ScheduledQuery> query(new ScheduledQuery(cluster_));
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return FailedPreconditionError("query scheduler is shutting down");
    }
    if (queue_.size() >= options_.max_queued) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::QueriesRejectedCounter().Add(1);
      FRACTAL_TRACE_INSTANT("scheduler/reject", queue_.size());
      return ResourceExhaustedError(StrFormat(
          "admission queue full (%zu queued, max %u): back off and resubmit",
          queue_.size(), options_.max_queued));
    }
    QueryControl& control = query->control_;
    control.id = next_id_++;
    control.name = submission.name.empty()
                       ? StrFormat("query-%llu",
                                   (unsigned long long)control.id)
                       : std::move(submission.name);
    control.weight = std::max<uint32_t>(1, submission.weight);
    control.SetDeadlineAfterMillis(submission.deadline_ms);
    queue_.push_back(Job{query, std::move(body)});
    obs::QueriesQueuedGauge().Set(static_cast<int64_t>(queue_.size()));
    admitted_.fetch_add(1, std::memory_order_relaxed);
    obs::QueriesAdmittedCounter().Add(1);
    FRACTAL_TRACE_INSTANT("scheduler/admit", control.id);
    queue_cv_.NotifyOne();
  }
  return query;
}

void QueryScheduler::CancelAll() {
  std::vector<std::shared_ptr<ScheduledQuery>> outstanding;
  {
    MutexLock lock(mu_);
    outstanding.reserve(queue_.size() + active_.size());
    for (const Job& job : queue_) outstanding.push_back(job.query);
    for (const auto& query : active_) outstanding.push_back(query);
  }
  for (const auto& query : outstanding) {
    query->control_.RequestCancel();
  }
  if (!outstanding.empty()) cluster_->WakeQueryGate();
}

void QueryScheduler::DriverLoop() {
  obs::Profiler::Get().RegisterCurrentThread("query_driver");
  while (true) {
    Job job;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) queue_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      obs::QueriesQueuedGauge().Set(static_cast<int64_t>(queue_.size()));
      active_.push_back(job.query);
      obs::QueriesActiveGauge().Set(static_cast<int64_t>(active_.size()));
    }
    ScheduledQuery& query = *job.query;
    {
      MutexLock lock(query.mu_);
      query.state_ = ScheduledQuery::State::kRunning;
    }
    QueryControl& control = query.control_;
    Status status;
    control.CheckDeadline(std::chrono::steady_clock::now());
    if (control.cancelled()) {
      // Cancelled (or expired) while queued: resolve without running.
      status = control.DeadlineHit()
                   ? DeadlineExceededError(StrFormat(
                         "query %llu '%s' exceeded its deadline while queued",
                         (unsigned long long)control.id,
                         control.name.c_str()))
                   : CancelledError(StrFormat(
                         "query %llu '%s' cancelled while queued",
                         (unsigned long long)control.id,
                         control.name.c_str()));
    } else {
      status = job.body(control);
    }
    FinishQuery(std::move(job.query), std::move(status));
  }
}

void QueryScheduler::FinishQuery(std::shared_ptr<ScheduledQuery> query,
                                 Status status) {
  switch (status.code()) {
    case StatusCode::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      obs::QueriesCompletedCounter().Add(1);
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs::QueriesCancelledCounter().Add(1);
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      obs::QueriesDeadlineExceededCounter().Add(1);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  FRACTAL_TRACE_INSTANT("scheduler/done", query->control_.id);
  // Resolve before unlisting so a Join()er that wakes and immediately
  // queries stats/statusz sees the final counters.
  query->Resolve(std::move(status));
  {
    MutexLock lock(mu_);
    active_.erase(std::remove(active_.begin(), active_.end(), query),
                  active_.end());
    obs::QueriesActiveGauge().Set(static_cast<int64_t>(active_.size()));
    finished_.push_back(std::move(query));
    constexpr size_t kFinishedRing = 8;
    while (finished_.size() > kFinishedRing) finished_.pop_front();
  }
}

QueryScheduler::Stats QueryScheduler::stats() const {
  Stats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  return stats;
}

std::string QueryScheduler::RenderStatuszRows() const {
  std::ostringstream out;
  const Stats stats = this->stats();
  MutexLock lock(mu_);
  out << StrFormat(
      "queries            active=%zu queued=%zu admitted=%llu rejected=%llu "
      "completed=%llu cancelled=%llu deadline_exceeded=%llu\n",
      active_.size(), queue_.size(), (unsigned long long)stats.admitted,
      (unsigned long long)stats.rejected,
      (unsigned long long)stats.completed,
      (unsigned long long)stats.cancelled,
      (unsigned long long)stats.deadline_exceeded);
  const auto row = [&out](const ScheduledQuery& query) {
    const QueryControl& control = query.control();
    out << StrFormat(
        "query %-12llu state=%-7s name=%s weight=%u units=%llu steps=%llu",
        (unsigned long long)control.id, StateName(query.state()),
        control.name.c_str(), control.weight,
        (unsigned long long)control.work_units.load(
            std::memory_order_relaxed),
        (unsigned long long)control.steps_run.load(
            std::memory_order_relaxed));
    if (query.state() == ScheduledQuery::State::kDone) {
      out << " status=" << query.status().ToString();
    }
    out << "\n";
  };
  for (const Job& job : queue_) row(*job.query);
  for (const auto& query : active_) row(*query);
  for (const auto& query : finished_) row(*query);
  return out.str();
}

}  // namespace fractal
