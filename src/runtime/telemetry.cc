#include "runtime/telemetry.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace fractal {

uint64_t StepTelemetry::TotalWorkUnits() const {
  uint64_t total = 0;
  for (const ThreadStats& t : threads) total += t.work_units;
  return total;
}

uint64_t StepTelemetry::TotalExtensionTests() const {
  uint64_t total = 0;
  for (const ThreadStats& t : threads) total += t.extension_tests;
  return total;
}

uint64_t StepTelemetry::TotalInternalSteals() const {
  uint64_t total = 0;
  for (const ThreadStats& t : threads) total += t.internal_steals;
  return total;
}

uint64_t StepTelemetry::TotalExternalSteals() const {
  uint64_t total = 0;
  for (const ThreadStats& t : threads) total += t.external_steals;
  return total;
}

uint64_t StepTelemetry::TotalBytesShipped() const {
  uint64_t total = 0;
  for (const ThreadStats& t : threads) total += t.bytes_shipped;
  return total;
}

uint64_t StepTelemetry::SimulatedMakespanUnits(
    uint64_t steal_cost_units) const {
  uint64_t makespan = 0;
  for (const ThreadStats& t : threads) {
    makespan = std::max(
        makespan, t.work_units + steal_cost_units * t.external_steals);
  }
  return makespan;
}

double StepTelemetry::IdealMakespanUnits() const {
  if (threads.empty()) return 0.0;  // no threads: no meaningful lower bound
  return static_cast<double>(TotalWorkUnits()) / threads.size();
}

double StepTelemetry::BalanceEfficiency(uint64_t steal_cost_units) const {
  // An empty step (no threads, or threads that did no work) is vacuously
  // balanced: report 1.0 instead of dividing 0/0 — or, when steal costs
  // make the simulated makespan nonzero with zero work, 0/makespan.
  if (threads.empty() || TotalWorkUnits() == 0) return 1.0;
  const uint64_t makespan = SimulatedMakespanUnits(steal_cost_units);
  if (makespan == 0) return 1.0;
  return IdealMakespanUnits() / static_cast<double>(makespan);
}

std::string StepTelemetry::ToTable() const {
  std::ostringstream out;
  out << StrFormat("%-6s %-6s %12s %12s %8s %8s %10s\n", "worker", "core",
                   "work", "EC", "int.st", "ext.st", "bytes");
  for (const ThreadStats& t : threads) {
    out << StrFormat("%-6u %-6u %12llu %12llu %8llu %8llu %10llu\n",
                     t.worker_id, t.core_id,
                     (unsigned long long)t.work_units,
                     (unsigned long long)t.extension_tests,
                     (unsigned long long)t.internal_steals,
                     (unsigned long long)t.external_steals,
                     (unsigned long long)t.bytes_shipped);
  }
  return out.str();
}

std::string StepFailure::ToString() const {
  return StrFormat("worker %d crashed (%s) after %llu work units, %.3fs lost",
                   worker, cause.empty() ? "unknown cause" : cause.c_str(),
                   (unsigned long long)work_units_lost, wall_seconds_lost);
}

uint64_t ExecutionTelemetry::TotalWorkUnits() const {
  uint64_t total = 0;
  for (const StepTelemetry& s : steps) total += s.TotalWorkUnits();
  return total;
}

uint64_t ExecutionTelemetry::TotalExtensionTests() const {
  uint64_t total = 0;
  for (const StepTelemetry& s : steps) total += s.TotalExtensionTests();
  return total;
}

}  // namespace fractal
