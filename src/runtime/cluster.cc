#include "runtime/cluster.h"

#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace fractal {

Status Cluster::Validate(const ClusterOptions& options) {
  if (options.num_workers == 0) {
    return InvalidArgumentError("cluster needs at least one worker");
  }
  if (options.threads_per_worker == 0) {
    return InvalidArgumentError(
        "cluster needs at least one execution thread per worker");
  }
  if (options.external_work_stealing && options.num_workers < 2) {
    return InvalidArgumentError(
        "external work stealing (WS_ext) requires at least two workers");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Cluster>> Cluster::Create(
    const ClusterOptions& options) {
  FRACTAL_RETURN_IF_ERROR(Validate(options));
  return std::make_unique<Cluster>(options);
}

Cluster::Cluster(const ClusterOptions& options) : options_(options) {
  const Status status = Validate(options_);
  FRACTAL_CHECK(status.ok()) << status;
  if (options_.external_work_stealing) {
    bus_ = std::make_unique<MessageBus>(options_.num_workers,
                                        options_.network);
  }
  for (uint32_t worker = 0; worker < options_.num_workers; ++worker) {
    workers_.push_back(std::make_unique<Worker>(this, worker));
  }
  for (auto& worker : workers_) worker->Start();
}

Cluster::~Cluster() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  if (bus_) bus_->Shutdown();  // releases the steal-service threads
  for (auto& worker : workers_) worker->Join();
}

Cluster::StepResult Cluster::RunStep(StepTask& task,
                                     std::vector<uint32_t> root_extensions,
                                     const StepOptions& options) {
  // Declared before run_lock so the begin event records before the lock is
  // taken and the end event after it is released (no trace-buffer work while
  // holding runtime locks).
  FRACTAL_TRACE_SPAN_V("cluster/run_step", root_extensions.size());
  // One step at a time: concurrent submissions (e.g. two executions sharing
  // this cluster) serialize here. While no step is running, every execution
  // thread is parked on work_cv_ and every service thread is blocked on the
  // bus with an empty queue, so the preparation below is race-free.
  MutexLock run_lock(run_mu_);
  const uint32_t total_threads = TotalThreads();

  step_.task = &task;
  step_.roots = std::move(root_extensions);
  step_.num_levels = options.num_levels;
  for (auto& worker : workers_) {
    for (uint32_t core = 0; core < worker->num_threads(); ++core) {
      ThreadContext& t = worker->thread(core);
      while (t.frames.size() < options.num_levels) {
        t.frames.push_back(std::make_unique<SubgraphEnumerator>());
      }
    }
  }

  control_.failed.store(false, std::memory_order_relaxed);
  control_.working.store(total_threads, std::memory_order_relaxed);
  control_.crash_units.store(0, std::memory_order_relaxed);
  control_.arm_fault_injection =
      options.arm_fault_injection && options.crash_worker >= 0;
  control_.crash_worker = options.crash_worker;
  control_.crash_after_work_units = options.crash_after_work_units;
  control_.timer.Restart();

  {
    // Mid-step progress logging: samples the global obs counters, so it
    // needs no access to the (thread-owned) per-thread stats. Stopped (and
    // joined) before the telemetry harvest below.
    std::optional<obs::StepProgressReporter> progress;
    if (options_.progress_interval_ms > 0) {
      progress.emplace(options_.progress_interval_ms);
    }
    FRACTAL_TRACE_SPAN_V("cluster/step_barrier", total_threads);
    MutexLock lock(mu_);
    threads_remaining_ = total_threads;
    ++step_generation_;
    work_cv_.NotifyAll();
    while (threads_remaining_ != 0) done_cv_.Wait(mu_);
  }

  StepResult result;
  result.failed = control_.failed.load(std::memory_order_acquire);
  result.telemetry.wall_seconds = control_.timer.ElapsedSeconds();
  for (auto& worker : workers_) {
    for (uint32_t core = 0; core < worker->num_threads(); ++core) {
      result.telemetry.threads.push_back(worker->thread(core).stats);
    }
  }
  step_.task = nullptr;
  step_.roots.clear();
  steps_run_.fetch_add(1, std::memory_order_relaxed);
  // Extension tests are flushed into per-thread stats by FinishThread, so
  // the cumulative counter is credited here at the barrier rather than in
  // the hot loop.
  obs::StepsCounter().Add(1);
  obs::ExtensionTestsCounter().Add(result.telemetry.TotalExtensionTests());
  return result;
}

}  // namespace fractal
