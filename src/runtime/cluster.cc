#include "runtime/cluster.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fractal {

namespace {
// All-live mask for a worker count (num_workers <= 64, enforced by
// Validate).
uint64_t FullMask(uint32_t num_workers) {
  return num_workers >= 64 ? ~uint64_t{0}
                           : ((uint64_t{1} << num_workers) - 1);
}

// Microseconds until the query's deadline, clamped to >= 1 so timed waits
// always make progress (a non-positive remainder means the deadline check
// will fire on the next loop iteration anyway).
int64_t MicrosUntilDeadline(const QueryControl& query) {
  const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
                        query.deadline - std::chrono::steady_clock::now())
                        .count();
  return std::max<int64_t>(left, 1);
}
}  // namespace

Status Cluster::Validate(const ClusterOptions& options) {
  if (options.num_workers == 0) {
    return InvalidArgumentError("cluster needs at least one worker");
  }
  if (options.num_workers > 64) {
    return InvalidArgumentError(
        "cluster supports at most 64 workers (the live-worker mask is one "
        "machine word)");
  }
  if (options.threads_per_worker == 0) {
    return InvalidArgumentError(
        "cluster needs at least one execution thread per worker");
  }
  if (options.external_work_stealing && options.num_workers < 2) {
    return InvalidArgumentError(
        "external work stealing (WS_ext) requires at least two workers");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Cluster>> Cluster::Create(
    const ClusterOptions& options) {
  FRACTAL_RETURN_IF_ERROR(Validate(options));
  return std::make_unique<Cluster>(options);
}

Cluster::Cluster(const ClusterOptions& options) : options_(options) {
  const Status status = Validate(options_);
  FRACTAL_CHECK(status.ok()) << status;
  live_mask_.store(FullMask(options_.num_workers), std::memory_order_relaxed);
  if (options_.external_work_stealing) {
    bus_ = std::make_unique<MessageBus>(options_.num_workers,
                                        options_.network);
  }
  for (uint32_t worker = 0; worker < options_.num_workers; ++worker) {
    workers_.push_back(std::make_unique<Worker>(this, worker));
  }
  for (auto& worker : workers_) worker->Start();
  if (options_.statusz_port >= 0) {
    obs::ExpositionServer::Options server_options;
    server_options.port = options_.statusz_port;
    auto server = obs::ExpositionServer::Start(server_options);
    if (server.ok()) {
      exposition_ = std::move(server).value();
      {
        MutexLock lock(statusz_mu_);
        statusz_sampler_ = std::make_unique<obs::ProgressSampler>(
            [this](std::vector<uint64_t>* out) { SampleWorkerUnits(out); });
      }
      exposition_->AddEndpoint(
          "/statusz", [this](const obs::ExpositionServer::Request&) {
            return obs::ExpositionServer::Response{
                200, "text/plain; charset=utf-8", RenderStatusz()};
          });
    } else {
      // Introspection is never load-bearing: a cluster with a taken port
      // still computes.
      FRACTAL_LOG(Warning) << "statusz server not started: "
                           << server.status();
    }
  }
}

Cluster::~Cluster() {
  // Stop serving before tearing down what the handlers report on. The
  // /statusz closure captures `this`, so the server must be fully joined
  // before any member is destroyed.
  exposition_.reset();
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  if (bus_) bus_->Shutdown();  // releases the steal-service threads
  for (auto& worker : workers_) worker->Join();
}

int Cluster::statusz_port() const {
  return exposition_ != nullptr ? exposition_->port() : -1;
}

void Cluster::SampleWorkerUnits(std::vector<uint64_t>* out) const {
  out->resize(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    (*out)[w] = workers_[w]->work_units();
  }
}

std::string Cluster::RenderStatusz() {
  std::ostringstream out;
  const uint64_t mask = live_mask() & FullMask(options_.num_workers);
  out << "fractal statusz\n";
  out << StrFormat("workers            %u x %u threads\n",
                   options_.num_workers, options_.threads_per_worker);
  out << StrFormat("steps_run          %llu\n",
                   (unsigned long long)steps_run());
  out << StrFormat("step_active        %lld\n",
                   (long long)obs::StepActiveGauge().Value());
  out << StrFormat("current_step       %lld\n",
                   (long long)obs::CurrentStepGauge().Value());
  out << StrFormat("live_workers       %u/%u\n", num_live_workers(),
                   options_.num_workers);
  out << StrFormat("live_mask          0x%llx\n", (unsigned long long)mask);
  out << StrFormat("suspect_victims    %llu\n",
                   (unsigned long long)suspect_victims());
  out << StrFormat("units_salvaged     %llu\n",
                   (unsigned long long)obs::UnitsSalvagedCounter().Value());
  out << StrFormat("units_replayed     %llu\n",
                   (unsigned long long)obs::UnitsReplayedCounter().Value());
  out << StrFormat("ledger_bytes       %lld\n",
                   (long long)obs::LedgerBytesGauge().Value());
  obs::ProgressSnapshot snapshot;
  {
    MutexLock lock(statusz_mu_);
    if (statusz_sampler_ == nullptr) {
      statusz_sampler_ = std::make_unique<obs::ProgressSampler>(
          [this](std::vector<uint64_t>* out_units) {
            SampleWorkerUnits(out_units);
          });
    }
    snapshot = statusz_sampler_->Sample();
  }
  out << StrFormat(
      "interval           %.3fs: +%llu work units (%llu/s), +%llu int "
      "steals, +%llu ext steals, +%llu bytes shipped\n",
      snapshot.interval_seconds,
      (unsigned long long)snapshot.work_units_delta,
      (unsigned long long)snapshot.units_per_sec,
      (unsigned long long)snapshot.internal_steals_delta,
      (unsigned long long)snapshot.external_steals_delta,
      (unsigned long long)snapshot.bytes_shipped_delta);
  for (size_t w = 0; w < snapshot.worker_units_delta.size(); ++w) {
    out << StrFormat("worker %-3zu         live=%d units=%llu (+%llu)\n", w,
                     (int)((mask >> w) & 1),
                     (unsigned long long)workers_[w]->work_units(),
                     (unsigned long long)snapshot.worker_units_delta[w]);
  }
  {
    // Registered sections (e.g. the QueryScheduler's per-query rows) run
    // under statusz_mu_ so RemoveStatuszSection can guarantee no in-flight
    // call into a destroyed owner.
    MutexLock lock(statusz_mu_);
    for (const auto& [token, section] : statusz_sections_) {
      out << section();
    }
  }
  return out.str();
}

uint64_t Cluster::AddStatuszSection(std::function<std::string()> section) {
  MutexLock lock(statusz_mu_);
  const uint64_t token = ++statusz_section_seq_;
  statusz_sections_[token] = std::move(section);
  return token;
}

void Cluster::RemoveStatuszSection(uint64_t token) {
  MutexLock lock(statusz_mu_);
  statusz_sections_.erase(token);
}

uint32_t Cluster::num_live_workers() const {
  return static_cast<uint32_t>(
      std::popcount(live_mask() & FullMask(options_.num_workers)));
}

void Cluster::MarkWorkerDead(uint32_t worker) {
  FRACTAL_CHECK(worker < options_.num_workers);
  live_mask_.fetch_and(~(uint64_t{1} << worker), std::memory_order_acq_rel);
}

void Cluster::RestoreAllWorkers() {
  live_mask_.store(FullMask(options_.num_workers), std::memory_order_release);
}

void Cluster::NoteSuspectVictim() {
  const uint64_t count =
      suspects_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::SuspectVictimsGauge().Set(static_cast<int64_t>(count));
}

const Cluster::GateTicket* Cluster::NextGateWaiter() const {
  const GateTicket* best = nullptr;
  for (const GateTicket* ticket : gate_waiters_) {
    if (best == nullptr || ticket->vtime < best->vtime ||
        (ticket->vtime == best->vtime && ticket->seq < best->seq)) {
      best = ticket;
    }
  }
  return best;
}

void Cluster::RemoveGateWaiter(const GateTicket* ticket) {
  for (auto it = gate_waiters_.begin(); it != gate_waiters_.end(); ++it) {
    if (*it == ticket) {
      gate_waiters_.erase(it);
      return;
    }
  }
}

bool Cluster::AdmitStep(GateTicket& ticket) {
  MutexLock lock(run_mu_);
  ticket.seq = gate_seq_++;
  if (ticket.query != nullptr) {
    // Start-time fairness: an idle query re-enters at the virtual-time
    // floor, so banked idleness cannot be spent to starve the others.
    ticket.query->vtime = std::max(ticket.query->vtime, vtime_floor_);
    ticket.vtime = ticket.query->vtime;
  } else {
    ticket.vtime = vtime_floor_;
  }
  gate_waiters_.push_back(&ticket);
  while (true) {
    QueryControl* const query = ticket.query;
    if (query != nullptr) {
      query->CheckDeadline(std::chrono::steady_clock::now());
      if (query->cancelled()) {
        RemoveGateWaiter(&ticket);
        // The departed waiter may have been the would-be winner; wake the
        // rest so admission order is re-evaluated.
        gate_cv_.NotifyAll();
        return false;
      }
    }
    if (!step_in_flight_ && NextGateWaiter() == &ticket) break;
    if (query != nullptr && query->has_deadline) {
      gate_cv_.WaitForMicros(run_mu_, MicrosUntilDeadline(*query));
    } else {
      gate_cv_.Wait(run_mu_);
    }
  }
  RemoveGateWaiter(&ticket);
  step_in_flight_ = true;
  vtime_floor_ = std::max(vtime_floor_, ticket.vtime);
  return true;
}

void Cluster::ReleaseStep(GateTicket& ticket, uint64_t work_units) {
  MutexLock lock(run_mu_);
  step_in_flight_ = false;
  if (ticket.query != nullptr) {
    QueryControl& query = *ticket.query;
    query.vtime +=
        static_cast<double>(work_units) /
        static_cast<double>(std::max<uint32_t>(query.weight, 1));
    query.work_units.fetch_add(work_units, std::memory_order_relaxed);
    query.steps_run.fetch_add(1, std::memory_order_relaxed);
  }
  gate_cv_.NotifyAll();
}

void Cluster::WakeQueryGate() {
  MutexLock lock(run_mu_);
  gate_cv_.NotifyAll();
}

Cluster::StepResult Cluster::RunStep(StepTask& task,
                                     std::vector<uint32_t> root_extensions,
                                     const StepOptions& options) {
  // Declared before the gate so the span covers admission wait (queueing
  // delay is part of the step's latency under multi-tenancy).
  FRACTAL_TRACE_SPAN_V("cluster/run_step", root_extensions.size());
  // One step at a time: concurrent submissions (e.g. two executions sharing
  // this cluster) are admitted in weighted-fair order by the gate. Once
  // admitted, every execution thread is parked on work_cv_ and every
  // service thread is blocked on the bus with an empty queue, so the
  // preparation below is race-free (the step_in_flight_ hand-off under
  // run_mu_ orders it after the previous step's teardown).
  QueryControl* const query = options.query;
  GateTicket ticket;
  ticket.query = query;
  if (!AdmitStep(ticket)) {
    // Cancelled (or deadline-expired) while queued: nothing ran, nothing to
    // discard. Telemetry is intentionally empty.
    FRACTAL_TRACE_INSTANT("cluster/step_cancelled", query->id);
    StepResult aborted;
    aborted.cancelled = true;
    return aborted;
  }

  // One-time ring acquisition for the driver (submitting) thread so its
  // barrier wait shows up in profiles; idempotent per thread.
  obs::Profiler::Get().RegisterCurrentThread("driver");

  // Snapshot the live mask: the step runs on the surviving subset only.
  const uint64_t live_mask =
      live_mask_.load(std::memory_order_acquire) &
      FullMask(options_.num_workers);
  const uint32_t live_workers =
      static_cast<uint32_t>(std::popcount(live_mask));
  FRACTAL_CHECK(live_workers > 0)
      << "no live workers left to run the step on";
  const uint32_t live_threads = live_workers * options_.threads_per_worker;
  if (live_workers < options_.num_workers) {
    FRACTAL_TRACE_INSTANT("runtime/step_degraded", live_workers);
    obs::StepsDegradedCounter().Add(1);
  }

  step_.task = &task;
  step_.roots = std::move(root_extensions);
  step_.num_levels = options.num_levels;
  step_.live_mask = live_mask;
  step_.lineage = options.lineage;
  for (auto& worker : workers_) {
    for (uint32_t core = 0; core < worker->num_threads(); ++core) {
      ThreadContext& t = worker->thread(core);
      while (t.frames.size() < options.num_levels) {
        t.frames.push_back(std::make_unique<SubgraphEnumerator>());
      }
    }
    worker->ResetStepHealth();
  }
  suspects_.store(0, std::memory_order_relaxed);
  obs::SuspectVictimsGauge().Set(0);

  FaultInjector* injector = options.fault_injector.get();
  if (injector != nullptr) injector->BeginStep();
  // The bus holds its own shared_ptr so straggling service threads can
  // consult the injector beyond this step's barrier without dangling.
  if (bus_ != nullptr) bus_->SetFaultInjector(options.fault_injector);
  control_.injector = injector;
  control_.cancel =
      query != nullptr ? &query->cancel_requested : nullptr;
  control_.working.store(live_threads, std::memory_order_relaxed);
  control_.timer.Restart();

  // Step gauges for /statusz and /metricsz: which step is in flight, and
  // that one is. Set before the wake-up so a scrape never sees an active
  // barrier with step_active still 0.
  obs::CurrentStepGauge().Set(
      static_cast<int64_t>(steps_run_.load(std::memory_order_relaxed)) + 1);
  obs::StepActiveGauge().Set(1);

  {
    // Mid-step progress logging: samples the global obs counters plus the
    // per-worker unit counters (publishing both as gauges), so it needs no
    // access to the (thread-owned) per-thread stats. Stopped (and joined)
    // before the telemetry harvest below.
    std::optional<obs::StepProgressReporter> progress;
    if (options_.progress_interval_ms > 0) {
      progress.emplace(options_.progress_interval_ms,
                       [this](std::vector<uint64_t>* out) {
                         SampleWorkerUnits(out);
                       });
    }
    FRACTAL_TRACE_SPAN_V("cluster/step_barrier", live_threads);
    MutexLock lock(mu_);
    threads_remaining_ = live_threads;
    ++step_generation_;
    work_cv_.NotifyAll();
    // Deadline-aware barrier wait: no watchdog thread — the driver itself
    // wakes at the deadline, latches the cancel flag, and the workers
    // unwind cooperatively within one work unit each.
    while (threads_remaining_ != 0) {
      if (query != nullptr && query->has_deadline && !query->cancelled()) {
        if (query->CheckDeadline(std::chrono::steady_clock::now())) {
          continue;  // flag latched; now wait for the unwind
        }
        done_cv_.WaitForMicros(mu_, MicrosUntilDeadline(*query));
      } else {
        done_cv_.Wait(mu_);
      }
    }
  }
  obs::StepActiveGauge().Set(0);

  StepResult result;
  result.live_workers = live_workers;
  result.telemetry.wall_seconds = control_.timer.ElapsedSeconds();
  // Harvest live workers only: dead workers skipped the step and their
  // ThreadContexts hold stale stats from their last participating step.
  for (uint32_t worker = 0; worker < options_.num_workers; ++worker) {
    if (((live_mask >> worker) & 1) == 0) continue;
    Worker& w = *workers_[worker];
    for (uint32_t core = 0; core < w.num_threads(); ++core) {
      result.telemetry.threads.push_back(w.thread(core).stats);
    }
  }
  const uint64_t crashed_mask =
      injector != nullptr ? injector->crashed_mask() : 0;
  if (crashed_mask != 0) {
    StepFailure failure;
    failure.worker = std::countr_zero(crashed_mask);
    failure.cause = injector->CrashCause(
        static_cast<uint32_t>(failure.worker));
    Worker& crashed = *workers_[static_cast<uint32_t>(failure.worker)];
    for (uint32_t core = 0; core < crashed.num_threads(); ++core) {
      failure.work_units_lost += crashed.thread(core).stats.work_units;
    }
    failure.wall_seconds_lost = result.telemetry.wall_seconds;
    obs::WorkersCrashedCounter().Add(
        static_cast<uint64_t>(std::popcount(crashed_mask)));
    result.failure = std::move(failure);
  }
  control_.injector = nullptr;
  control_.cancel = nullptr;
  step_.task = nullptr;
  step_.roots.clear();
  step_.lineage = nullptr;
  steps_run_.fetch_add(1, std::memory_order_relaxed);
  // Extension tests are flushed into per-thread stats by FinishThread, so
  // the cumulative counter is credited here at the barrier rather than in
  // the hot loop.
  obs::StepsCounter().Add(1);
  obs::ExtensionTestsCounter().Add(result.telemetry.TotalExtensionTests());
  // Credit attained service to the query and free the step slot for the
  // next waiter. A cancelled step is still charged: its partial units were
  // real cluster time.
  ReleaseStep(ticket, result.telemetry.TotalWorkUnits());
  if (query != nullptr) {
    obs::QueryUnitsGauge(query->id)
        .Set(static_cast<int64_t>(
            query->work_units.load(std::memory_order_relaxed)));
    if (query->cancelled()) {
      result.cancelled = true;
      FRACTAL_TRACE_INSTANT("cluster/step_cancelled", query->id);
    }
  }
  return result;
}

}  // namespace fractal
