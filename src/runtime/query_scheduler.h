// QueryScheduler: multi-tenant admission and dispatch of fractoid
// executions onto one shared Cluster (DESIGN.md §12).
//
// The scheduler owns a small pool of driver threads (max_active). Each
// driver pops one submitted query at a time and runs its body — an opaque
// `Status(QueryControl&)` callable, typically a core-executor invocation
// with ExecutionConfig::query wired to the control block. Interleaving
// between concurrent queries happens *below* the scheduler, at the
// Cluster's weighted-fair step-admission gate: a driver thread per query
// keeps the executor's sequential step loop unchanged while steps of
// different queries alternate on the shared worker threads.
//
// Admission control: at most max_queued submissions may be waiting for a
// driver; Submit returns kResourceExhausted beyond that (backpressure —
// callers back off and resubmit). Cancellation and deadlines are
// cooperative: the flag is polled by worker threads once per work unit, so
// a cancelled query unwinds within one work unit per thread plus one step
// barrier.
//
// Locking (DESIGN.md §5): QueryScheduler::mu is taken below
// Cluster::statusz_mu (the /statusz section callback runs under the
// latter) and above ScheduledQuery::mu; none of them is ever held while
// calling into Cluster::RunStep.
#ifndef FRACTAL_RUNTIME_QUERY_SCHEDULER_H_
#define FRACTAL_RUNTIME_QUERY_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/query.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fractal {

class Cluster;
class QueryScheduler;

/// Joinable/cancellable handle of one submitted query. Shared between the
/// caller and the scheduler; resolves exactly once (including on scheduler
/// shutdown, which cancels outstanding queries). Handles must be joined —
/// or dropped — before the Cluster is destroyed.
class ScheduledQuery {
 public:
  enum class State { kQueued, kRunning, kDone };

  /// Blocks until the query resolves; returns its final Status
  /// (OK, kCancelled, kDeadlineExceeded, or the body's own error).
  Status Join();

  /// Requests cooperative cancellation and wakes the cluster's admission
  /// gate so a queued step re-checks the flag. Idempotent; a query that
  /// already resolved is unaffected.
  void Cancel();

  bool done() const;
  State state() const;
  /// Final status; OK while the query has not resolved yet (check done()).
  Status status() const;

  const QueryControl& control() const { return control_; }
  QueryControl& control() { return control_; }

 private:
  friend class QueryScheduler;

  explicit ScheduledQuery(Cluster* cluster) : cluster_(cluster) {}
  void Resolve(Status status);

  Cluster* const cluster_;
  QueryControl control_;
  /// Leaf lock (taken below QueryScheduler::mu in the §5 hierarchy).
  mutable Mutex mu_{"ScheduledQuery::mu"};
  CondVar cv_;
  State state_ GUARDED_BY(mu_) = State::kQueued;
  Status status_ GUARDED_BY(mu_);
};

struct QuerySchedulerOptions {
  /// Driver threads: upper bound on queries executing concurrently.
  uint32_t max_active = 2;
  /// Admission bound on queries waiting for a driver; Submit returns
  /// kResourceExhausted beyond it.
  uint32_t max_queued = 8;
};

class QueryScheduler {
 public:
  struct Submission {
    std::string name;          // defaults to "query-<id>"
    uint32_t weight = 1;       // fair-share weight (clamped to >= 1)
    int64_t deadline_ms = 0;   // relative deadline from submit; <= 0: none
  };

  /// A query body runs on a scheduler driver thread. It must poll
  /// `control` cooperatively (the core executor does when
  /// ExecutionConfig::query points at it) and return the query's final
  /// status — kCancelled / kDeadlineExceeded when it observed the flags.
  using QueryBody = std::function<Status(QueryControl&)>;

  /// `cluster` must outlive the scheduler. Registers a per-query /statusz
  /// section on it for the scheduler's lifetime.
  explicit QueryScheduler(Cluster* cluster,
                          const QuerySchedulerOptions& options = {});

  /// Cancels outstanding queries, drains the queue (resolving every handle)
  /// and joins the driver threads.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits a query, or rejects it with kResourceExhausted when max_queued
  /// submissions are already waiting (backpressure) / kFailedPrecondition
  /// after shutdown began.
  StatusOr<std::shared_ptr<ScheduledQuery>> Submit(Submission submission,
                                                   QueryBody body)
      EXCLUDES(mu_);

  /// Requests cancellation of every queued and running query.
  void CancelAll() EXCLUDES(mu_);

  Cluster* cluster() const { return cluster_; }

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t failed = 0;  // resolved with any other non-OK status
  };
  Stats stats() const;

  /// The per-query /statusz section: one row per queued/running query plus
  /// a ring of recently finished ones. Exposed for tests; served through
  /// the cluster's /statusz endpoint.
  std::string RenderStatuszRows() const EXCLUDES(mu_);

 private:
  struct Job {
    std::shared_ptr<ScheduledQuery> query;
    QueryBody body;
  };

  void DriverLoop();
  void FinishQuery(std::shared_ptr<ScheduledQuery> query, Status status)
      EXCLUDES(mu_);

  Cluster* const cluster_;
  const QuerySchedulerOptions options_;
  uint64_t statusz_token_ = 0;

  mutable Mutex mu_{"QueryScheduler::mu"};
  CondVar queue_cv_;  // work queued, or shutdown
  std::deque<Job> queue_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<ScheduledQuery>> active_ GUARDED_BY(mu_);
  /// Recently resolved queries, newest last, for /statusz (bounded ring).
  std::deque<std::shared_ptr<ScheduledQuery>> finished_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> failed_{0};

  std::vector<std::thread> drivers_;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_QUERY_SCHEDULER_H_
