// Deterministic fault injection for the cluster runtime (resilience model
// of the paper, §4: the from-scratch DFS execution makes recovery trivial —
// a failed step is simply re-executed, no cross-step enumeration state needs
// reconstruction). A FaultPlan is a seeded schedule of faults; a
// FaultInjector evaluates one plan against a running execution through
// named hook points in worker.cc and message_bus.cc:
//
//   OnWorkUnit            worker crashes (deterministic or probabilistic)
//                         and straggler slowdowns, per consumed extension
//   OnStealRequestArrived steal-service death (requests silently dropped)
//   DropStealRequest      steal request lost in flight (requester times out)
//   StealRequestDelayMicros  latency spike on the request path
//
// Every probabilistic decision is a pure function of (seed, plan entry,
// event index), so a plan replays identically across runs; results under
// any plan must be bit-identical to a fault-free run (tests/resilience_test).
// All hooks are lock-free; with no injector armed the work-unit hot path
// costs a single pointer load (see ThreadContext::ConsumeWorkUnit).
#ifndef FRACTAL_RUNTIME_FAULT_H_
#define FRACTAL_RUNTIME_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fractal {

/// The live/crashed worker sets are 64-bit masks (Cluster::Validate caps
/// num_workers accordingly).
inline constexpr uint32_t kMaxFaultWorkers = 64;

enum class FaultKind : uint8_t {
  /// Worker `worker` crashes at its `after_units`-th consumed extension.
  kCrashWorker,
  /// Worker crashes with probability `probability` per consumed extension.
  /// Re-arms every step (so a p=1 plan defeats retries deterministically).
  kCrashWorkerRandom,
  /// Worker `worker`'s steal service stops answering after serving
  /// `after_units` requests (requests are swallowed; requesters time out).
  kCrashStealService,
  /// A steal request is lost in flight with probability `probability`.
  kDropRequest,
  /// A steal request is delayed by `micros` with probability `probability`.
  kDelayRequest,
  /// Straggler: every extension worker `worker` consumes costs an extra
  /// `micros` of wall time.
  kSlowWorker,
  /// Worker `worker` crashes at its `after_units`-th consumed extension,
  /// counting only units consumed while a salvage replay pass is running
  /// (FaultInjector::SetSalvagePass) — exercises crash-during-recovery.
  kCrashWorkerInSalvage,
};

/// One scheduled fault. Which fields are meaningful depends on `kind`.
struct FaultSpec {
  FaultKind kind = FaultKind::kCrashWorker;
  int32_t worker = -1;      // target worker; -1 = any (probabilistic kinds)
  uint64_t after_units = 0; // deterministic trigger point
  double probability = 0;   // probabilistic trigger rate
  int64_t micros = 0;       // delay / slowdown magnitude

  std::string ToString() const;
};

/// A seeded, deterministic schedule of faults. Replaces the ad-hoc
/// crash_worker/crash_after_work_units triple: plans compose (several
/// entries), cover more failure modes, and replay bit-identically.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  // Builders (chainable).
  FaultPlan& CrashWorker(int32_t worker, uint64_t after_units);
  FaultPlan& CrashWorkerRandomly(int32_t worker, double probability);
  FaultPlan& CrashStealService(int32_t worker, uint64_t after_requests);
  FaultPlan& DropStealRequests(double probability);
  FaultPlan& DelayStealRequests(double probability, int64_t micros);
  FaultPlan& SlowWorker(int32_t worker, int64_t micros_per_unit);
  FaultPlan& CrashWorkerInSalvage(int32_t worker, uint64_t after_units);

  /// Parses the CLI grammar: entries separated by ';', each
  /// `kind:key=value,...`. Kinds and keys:
  ///   crash:w=1,after=50        crash:w=1,p=0.001
  ///   crash-service:w=0,after=3
  ///   drop:p=0.05               delay:p=0.1,us=5000
  ///   slow:w=1,us=20            crash-in-salvage:w=1,after=10
  static StatusOr<FaultPlan> Parse(std::string_view text, uint64_t seed);

  /// A seeded pseudo-random single-failure plan for chaos sweeps: one
  /// primary fault (crash / service death / drops / delays) plus an
  /// occasional straggler. Uses only recoverable faults (deterministic
  /// crashes fire once), so any chaos run must converge to exact results.
  static FaultPlan Random(uint64_t seed, uint32_t num_workers);

  /// Round-trips through Parse (used by --fault-spec echoing and tests).
  std::string ToString() const;

  /// Checks targets against the cluster shape and rates/thresholds for
  /// plausibility; called from ExecutionConfig::Validate.
  [[nodiscard]] Status Validate(uint32_t num_workers) const;

  bool empty() const { return specs_.empty(); }
  uint64_t seed() const { return seed_; }
  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

/// Evaluates one FaultPlan against a running execution. One injector lives
/// for one fractoid execution (all step attempts), so deterministic crash
/// entries fire exactly once even across retries, and a dead steal service
/// stays dead. Thread-safe; all state is atomic.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Resets per-step state (the crashed mask; probabilistic crash entries
  /// re-arm). Called by Cluster::RunStep before the step barrier opens.
  void BeginStep();

  /// Hook: worker `worker` consumed one extension. Applies straggler
  /// slowdowns and crash triggers. Returns false once the worker has
  /// crashed — the calling thread must unwind and abandon its state.
  bool OnWorkUnit(uint32_t worker);

  /// Whether `worker` has crashed during the current step.
  bool WorkerCrashed(uint32_t worker) const {
    return (crashed_mask_.load(std::memory_order_acquire) >> worker) & 1;
  }
  uint64_t crashed_mask() const {
    return crashed_mask_.load(std::memory_order_acquire);
  }

  /// Hook: a steal request reached `victim`'s service thread. Returns false
  /// when the victim's steal service is dead — the request must be
  /// swallowed without a reply (the requester times out).
  bool OnStealRequestArrived(uint32_t victim);

  /// Hook: should this steal request be lost in flight?
  bool DropStealRequest();

  /// Hook: extra latency to charge on the request path (0 = none).
  int64_t StealRequestDelayMicros();

  /// Arms/disarms the crash-in-salvage entries: their unit counters only
  /// advance while a salvage replay pass is in flight. Set by the executor
  /// around RunStep; deliberately not reset by BeginStep.
  void SetSalvagePass(bool active) {
    salvage_pass_.store(active, std::memory_order_relaxed);
  }

  /// Human-readable description of what crashed `worker` this step
  /// (empty when it did not crash).
  std::string CrashCause(uint32_t worker) const;

  /// Total crash firings since construction (across steps); the
  /// exactly-once contract makes this == fired entries, never more, even
  /// when many threads race past a trigger (tests assert this).
  uint64_t crash_events() const {
    return crash_events_.load(std::memory_order_relaxed);
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  /// Per-plan-entry trigger state.
  struct EntryState {
    std::atomic<uint64_t> counter{0};
    std::atomic<bool> fired{false};
  };

  /// Deterministic coin flip: pure function of (seed, entry, event index).
  bool Chance(size_t entry, uint64_t event, double probability) const;
  void Crash(uint32_t worker, size_t entry);

  FaultPlan plan_;
  std::unique_ptr<EntryState[]> states_;
  /// True while the executor runs a salvage replay pass (SetSalvagePass).
  std::atomic<bool> salvage_pass_{false};
  std::atomic<uint64_t> crashed_mask_{0};
  std::atomic<uint64_t> crash_events_{0};
  /// First plan entry that crashed each worker this step (-1 = none);
  /// written before the crashed-mask release store, read after an acquire
  /// load of the mask (the mask publication orders the cause record).
  std::array<std::atomic<int32_t>, kMaxFaultWorkers> crash_entry_;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_FAULT_H_
