// In-process message bus simulating the inter-worker (actor-style)
// communication layer of the paper's architecture (§4, Fig. 6c). Workers are
// simulated processes: the only data that crosses a worker boundary is a
// byte payload delivered through this bus, with a configurable simulated
// network latency and per-byte cost so that external work stealing keeps its
// real-world cost asymmetry versus internal stealing.
//
// Steal RPCs are bounded: a request carries a deadline
// (NetworkConfig::request_timeout_micros) and no code path blocks
// indefinitely on a dead peer. Exactness under timeouts rests on a
// claim-after-commit rendezvous: the victim's service must BeginReply()
// (commit to answering) *before* it claims any work from its frames, and a
// requester may abandon a request only while it is still uncommitted — so
// claimed work is never orphaned by a timed-out requester, and re-executed
// steps stay bit-identical to fault-free runs (DESIGN.md §7).
#ifndef FRACTAL_RUNTIME_MESSAGE_BUS_H_
#define FRACTAL_RUNTIME_MESSAGE_BUS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fractal {

class FaultInjector;

/// Simulated network parameters for inter-worker messaging.
struct NetworkConfig {
  /// One-way message delivery latency in microseconds.
  int64_t latency_micros = 50;
  /// Additional shipping cost per kilobyte of payload, in microseconds.
  int64_t per_kb_micros = 10;

  /// Deadline for one steal request round trip, in microseconds. 0 waits
  /// forever (the pre-resilience behavior; disables drop injection too).
  int64_t request_timeout_micros = 100000;
  /// Attempts per victim after consecutive timeouts (>= 1 effective).
  uint32_t max_steal_retries = 3;
  /// Base backoff between retries; attempt n sleeps base << n plus full
  /// jitter. 0 disables backoff sleeps.
  int64_t retry_backoff_micros = 100;
  /// Consecutive timeouts against one victim before it is marked suspect
  /// and skipped for the rest of the step. 0 disables suspicion.
  uint32_t suspect_after_timeouts = 3;
};

/// How a steal request ended (requester side).
enum class StealOutcome : uint8_t {
  kWork,      // payload carries serialized stolen work
  kNoWork,    // victim was responsive but had nothing (or has crashed)
  kTimeout,   // no reply within the deadline (dead service / dropped msg)
  kShutdown,  // the bus is shutting down
};

struct StealReply {
  StealOutcome outcome = StealOutcome::kNoWork;
  std::vector<uint8_t> payload;  // non-empty only for kWork
};

/// Point-to-point request/reply bus between workers. One instance serves
/// one cluster; Shutdown() releases all waiters.
class MessageBus {
 public:
  MessageBus(uint32_t num_workers, const NetworkConfig& config);

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Requester side: sends a steal request to `victim` and blocks for the
  /// reply, at most `request_timeout_micros` while the request is
  /// uncommitted. Simulated latency (and injected drops/delays) is charged
  /// here.
  StealReply RequestSteal(uint32_t requester, uint32_t victim);

  /// Victim service side: blocks until a request arrives for `worker` or
  /// the bus shuts down (nullopt). Tokens are shared handles: a token the
  /// requester has abandoned is still safe to touch (BeginReply fails).
  using RequestToken = std::shared_ptr<void>;
  std::optional<RequestToken> WaitForRequest(uint32_t worker);

  /// Victim service side: commits to answering `token`. Must be called
  /// before claiming any work for it; returns false when the requester
  /// already abandoned the request (then no work may be claimed and Reply
  /// must not be called).
  [[nodiscard]] bool BeginReply(const RequestToken& token);

  /// Victim service side: answers a request (empty payload == no work).
  /// Requires a successful BeginReply, or an uncommitted request (the
  /// Shutdown drain and direct test use).
  void Reply(const RequestToken& token,
             std::optional<std::vector<uint8_t>> payload);

  /// Worker id that issued the request behind `token`. Immutable after
  /// construction, so safe from any thread holding the token (used by the
  /// victim's service to stamp lineage claims with the thief's identity).
  static uint32_t Requester(const RequestToken& token);

  /// Releases all waiters; subsequent requests fail fast.
  void Shutdown();

  /// Fault hooks consulted on the request path (drops, delays, dead
  /// services). Shared ownership: a straggling service thread can hold the
  /// injector of a finished execution without dangling. Null disables.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector)
      EXCLUDES(injector_mu_);
  std::shared_ptr<FaultInjector> fault_injector() const
      EXCLUDES(injector_mu_);

  uint32_t num_workers() const {
    return static_cast<uint32_t>(inboxes_.size());
  }

 private:
  /// One in-flight steal request. State machine (all transitions under mu):
  ///   kPending --BeginReply--> kReplying --Reply--> kDone
  ///   kPending --deadline----> kAbandoned           (requester gave up)
  /// A requester that times out while the victim is already kReplying keeps
  /// waiting (bounded by the local claim+encode time): the committed claim
  /// must reach exactly one consumer.
  struct Request {
    enum class State : uint8_t { kPending, kReplying, kDone, kAbandoned };
    Mutex mu{"MessageBus::Request::mu"};
    CondVar cv;
    State state GUARDED_BY(mu) = State::kPending;
    std::optional<std::vector<uint8_t>> payload GUARDED_BY(mu);
    /// Issuing worker; written once before the request is enqueued and
    /// never mutated after, hence unguarded.
    uint32_t requester = 0;
  };

  /// Per-worker queue of pending steal requests.
  struct Inbox {
    Mutex mu{"MessageBus::Inbox::mu"};
    CondVar cv;
    std::deque<std::shared_ptr<Request>> queue GUARDED_BY(mu);
  };

  void SimulateDelay(size_t payload_bytes) const;

  /// Whether Shutdown has been called. Acquired *inside* Inbox::mu (the
  /// WaitForRequest wake-up predicate re-checks it under the inbox lock),
  /// so nothing may acquire an inbox lock while holding stop_mu_.
  bool stopped() const EXCLUDES(stop_mu_) {
    MutexLock lock(stop_mu_);
    return stopped_;
  }

  NetworkConfig config_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  mutable Mutex stop_mu_{"MessageBus::stop_mu"};
  bool stopped_ GUARDED_BY(stop_mu_) = false;
  /// Leaf lock guarding the injector handle (DESIGN.md §5).
  mutable Mutex injector_mu_{"MessageBus::injector_mu"};
  std::shared_ptr<FaultInjector> injector_ GUARDED_BY(injector_mu_);
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_MESSAGE_BUS_H_
