// In-process message bus simulating the inter-worker (actor-style)
// communication layer of the paper's architecture (§4, Fig. 6c). Workers are
// simulated processes: the only data that crosses a worker boundary is a
// byte payload delivered through this bus, with a configurable simulated
// network latency and per-byte cost so that external work stealing keeps its
// real-world cost asymmetry versus internal stealing.
#ifndef FRACTAL_RUNTIME_MESSAGE_BUS_H_
#define FRACTAL_RUNTIME_MESSAGE_BUS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fractal {

/// Simulated network parameters for inter-worker messaging.
struct NetworkConfig {
  /// One-way message delivery latency in microseconds.
  int64_t latency_micros = 50;
  /// Additional shipping cost per kilobyte of payload, in microseconds.
  int64_t per_kb_micros = 10;
};

/// Point-to-point request/reply bus between workers. One instance serves
/// one step execution; Shutdown() releases all waiters.
class MessageBus {
 public:
  MessageBus(uint32_t num_workers, const NetworkConfig& config);

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Requester side: sends a steal request to `victim` and blocks for the
  /// reply. Returns the serialized stolen work, or nullopt when the victim
  /// had nothing (or the bus shut down). Simulated latency is charged here.
  std::optional<std::vector<uint8_t>> RequestSteal(uint32_t requester,
                                                   uint32_t victim);

  /// Victim service side: blocks until a request arrives for `worker` or
  /// the bus shuts down (nullopt). The returned token must be passed to
  /// Reply exactly once.
  using RequestToken = void*;
  std::optional<RequestToken> WaitForRequest(uint32_t worker);

  /// Victim service side: answers a request (empty payload == no work).
  void Reply(RequestToken token, std::optional<std::vector<uint8_t>> payload);

  /// Releases all waiters; subsequent requests fail fast.
  void Shutdown();

  uint32_t num_workers() const {
    return static_cast<uint32_t>(inboxes_.size());
  }

 private:
  /// One in-flight steal request, stack-allocated by the requester; the
  /// victim's service thread completes it through Reply.
  struct Request {
    Mutex mu{"MessageBus::Request::mu"};
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    std::optional<std::vector<uint8_t>> payload GUARDED_BY(mu);
  };

  /// Per-worker queue of pending steal requests.
  struct Inbox {
    Mutex mu{"MessageBus::Inbox::mu"};
    CondVar cv;
    std::deque<Request*> queue GUARDED_BY(mu);
  };

  void SimulateDelay(size_t payload_bytes) const;

  /// Whether Shutdown has been called. Acquired *inside* Inbox::mu (the
  /// WaitForRequest wake-up predicate re-checks it under the inbox lock),
  /// so nothing may acquire an inbox lock while holding stop_mu_.
  bool stopped() const EXCLUDES(stop_mu_) {
    MutexLock lock(stop_mu_);
    return stopped_;
  }

  NetworkConfig config_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  mutable Mutex stop_mu_{"MessageBus::stop_mu"};
  bool stopped_ GUARDED_BY(stop_mu_) = false;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_MESSAGE_BUS_H_
