// In-process message bus simulating the inter-worker (actor-style)
// communication layer of the paper's architecture (§4, Fig. 6c). Workers are
// simulated processes: the only data that crosses a worker boundary is a
// byte payload delivered through this bus, with a configurable simulated
// network latency and per-byte cost so that external work stealing keeps its
// real-world cost asymmetry versus internal stealing.
#ifndef FRACTAL_RUNTIME_MESSAGE_BUS_H_
#define FRACTAL_RUNTIME_MESSAGE_BUS_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "util/check.h"

namespace fractal {

/// Simulated network parameters for inter-worker messaging.
struct NetworkConfig {
  /// One-way message delivery latency in microseconds.
  int64_t latency_micros = 50;
  /// Additional shipping cost per kilobyte of payload, in microseconds.
  int64_t per_kb_micros = 10;
};

/// Point-to-point request/reply bus between workers. One instance serves
/// one step execution; Shutdown() releases all waiters.
class MessageBus {
 public:
  MessageBus(uint32_t num_workers, const NetworkConfig& config);

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Requester side: sends a steal request to `victim` and blocks for the
  /// reply. Returns the serialized stolen work, or nullopt when the victim
  /// had nothing (or the bus shut down). Simulated latency is charged here.
  std::optional<std::vector<uint8_t>> RequestSteal(uint32_t requester,
                                                   uint32_t victim);

  /// Victim service side: blocks until a request arrives for `worker` or
  /// the bus shuts down (nullopt). The returned token must be passed to
  /// Reply exactly once.
  using RequestToken = void*;
  std::optional<RequestToken> WaitForRequest(uint32_t worker);

  /// Victim service side: answers a request (empty payload == no work).
  void Reply(RequestToken token, std::optional<std::vector<uint8_t>> payload);

  /// Releases all waiters; subsequent requests fail fast.
  void Shutdown();

  uint32_t num_workers() const {
    return static_cast<uint32_t>(inboxes_.size());
  }

 private:
  struct Request {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::optional<std::vector<uint8_t>> payload;
  };

  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request*> queue;
  };

  void SimulateDelay(size_t payload_bytes) const;

  NetworkConfig config_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::mutex stop_mu_;
  bool stopped_ = false;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_MESSAGE_BUS_H_
