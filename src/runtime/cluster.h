// Cluster: the persistent simulated cluster of the paper's architecture
// (§4, Fig. 6). A Cluster owns `W` Workers, each with `C` execution threads
// and a steal-service thread, created once and reused across fractal steps
// and across fractoid executions. Steps are submitted through RunStep
// (submit + barrier): between steps every thread parks on a condition
// variable instead of being joined and respawned, which removes the
// per-step thread churn of multi-step workflows (FSM runs one step per
// pattern size, Algorithm 2).
//
// Resilience (DESIGN.md §7): the cluster maintains a live-worker mask.
// Workers marked dead by the executor's retry policy are excluded from root
// partitioning, steal victim selection, and barrier accounting, so a step
// re-executes on the surviving W−1 subset ("degraded re-execution"). The
// from-scratch model of the paper (§4) makes this exact: a failed step is
// discarded wholesale and re-run, so results stay bit-identical.
//
// One Cluster can be shared by many fractoid executions (see
// ExecutionConfig::cluster). Step submissions are admitted one at a time
// through a weighted-fair gate (DESIGN.md §12): concurrent executions
// interleave at step granularity, ordered by start-time-fair virtual time
// of their QueryControl (runtime/query.h). Queries without a control block
// are admitted FIFO at the gate's virtual-time floor.
#ifndef FRACTAL_RUNTIME_CLUSTER_H_
#define FRACTAL_RUNTIME_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <functional>
#include <map>

#include "obs/exposition.h"
#include "obs/progress.h"
#include "runtime/fault.h"
#include "runtime/message_bus.h"
#include "runtime/query.h"
#include "runtime/worker.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fractal {

/// Shape and stealing policy of a cluster (paper §4/5.2.2: the WS_int /
/// WS_ext configurations map to the two stealing flags).
struct ClusterOptions {
  /// Simulated worker processes (paper: machines/executors). At most 64
  /// (the live-worker mask is one machine word).
  uint32_t num_workers = 1;
  /// Execution threads ("cores") per worker.
  uint32_t threads_per_worker = 2;

  /// WS_int: stealing between cores of the same worker.
  bool internal_work_stealing = true;
  /// WS_ext: stealing between workers through the message bus. Requires at
  /// least two workers (Cluster::Validate rejects it otherwise; the core
  /// executor normalizes the flag off for single-worker configs).
  bool external_work_stealing = false;

  /// Simulated network parameters for WS_ext, including steal-RPC deadlines
  /// and retry/backoff policy.
  NetworkConfig network;

  /// When > 0, RunStep runs a StepProgressReporter that logs work-unit
  /// throughput and steal rates every `progress_interval_ms` while the step
  /// is in flight (obs/progress.h).
  int64_t progress_interval_ms = 0;

  /// When >= 0, the cluster starts an embedded exposition server
  /// (obs/exposition.h) on 127.0.0.1:<statusz_port> for its lifetime,
  /// serving /statusz, /metricsz, /tracez, and /profilez. 0 binds an
  /// ephemeral port (read back via Cluster::statusz_port()). Default -1:
  /// no server.
  int statusz_port = -1;
};

class Cluster {
 public:
  /// Checks that `options` describe a constructible cluster: at least one
  /// worker (and at most 64) and one thread per worker, and no external
  /// stealing without a second worker to steal from.
  static Status Validate(const ClusterOptions& options);

  /// Validated construction path: returns an error Status instead of
  /// crashing on bad options.
  static StatusOr<std::unique_ptr<Cluster>> Create(
      const ClusterOptions& options);

  /// Direct construction; `options` must pass Validate (checked).
  explicit Cluster(const ClusterOptions& options);

  /// Stops and joins all worker threads. Any frames still holding state
  /// have been deactivated by the last step's barrier.
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Per-step execution parameters that are not part of the task itself.
  struct StepOptions {
    /// Number of E-levels of the step (frame stack depth per thread).
    uint32_t num_levels = 0;
    /// Fault hooks of the step (runtime/fault.h); null disables injection.
    /// Shared ownership: the message bus keeps a reference for straggling
    /// service threads beyond the step barrier.
    std::shared_ptr<FaultInjector> fault_injector;
    /// Lineage ledger recording steal claims and task completions for
    /// partial recovery (runtime/lineage.h); null disables lineage
    /// tracking (the from-scratch retry model). Owned by the executor and
    /// valid across the whole step, including its barrier.
    LineageLedger* lineage = nullptr;
    /// Query this step belongs to (multi-tenant scheduling, DESIGN.md §12):
    /// drives fair admission ordering, cooperative cancellation (workers
    /// poll its cancel flag once per work unit) and the deadline-aware
    /// barrier wait. Null runs the step as an anonymous query (FIFO
    /// admission, no cancellation). Must outlive the RunStep call.
    QueryControl* query = nullptr;
  };

  struct StepResult {
    /// Set when a worker "crashed" during the step: all step output must be
    /// discarded and the step re-executed (the from-scratch model makes
    /// that recovery trivial). Carries which worker failed, why, and what
    /// the abandoned attempt cost.
    std::optional<StepFailure> failure;
    /// Telemetry of the live workers' threads (dead workers contribute
    /// nothing).
    StepTelemetry telemetry;
    /// Workers that participated in the step (popcount of the live mask).
    uint32_t live_workers = 0;
    /// Set when the step's query was cancelled (or hit its deadline) before
    /// or during the step: the step output is partial and must be
    /// discarded. Callers must check this before `ok()`/telemetry — a
    /// cancelled step may carry empty telemetry (cancelled while queued at
    /// the admission gate) or a torn work count. QueryControl::deadline_hit
    /// distinguishes deadline expiry from an explicit cancel.
    bool cancelled = false;

    bool ok() const { return !failure.has_value(); }
  };

  /// Submits one fractal step and blocks until every live thread of every
  /// live worker has finished it (submit/barrier). `root_extensions` — the
  /// extensions of the empty subgraph — are partitioned contiguously across
  /// the live cores (paper §4: "an initial partition of extensions ...
  /// determined on-the-fly using its unique core identifier"). Thread-safe:
  /// concurrent submissions from different executions are admitted one at a
  /// time in weighted-fair order (options.query). The result carries the
  /// failure/cancellation record of the step (see StepResult) and must not
  /// be dropped.
  [[nodiscard]] StepResult RunStep(StepTask& task,
                                   std::vector<uint32_t> root_extensions,
                                   const StepOptions& options)
      EXCLUDES(run_mu_, mu_);

  const ClusterOptions& options() const { return options_; }
  uint32_t TotalThreads() const {
    return options_.num_workers * options_.threads_per_worker;
  }
  /// Steps executed since construction (reuse visible to tests/benches).
  uint64_t steps_run() const { return steps_run_.load(); }

  /// Live-worker mask: bit w set means worker w participates in steps.
  /// Mutated between steps by the executor's retry policy (MarkWorkerDead
  /// after a crash, RestoreAllWorkers on reuse); RunStep snapshots it.
  uint64_t live_mask() const {
    return live_mask_.load(std::memory_order_acquire);
  }
  uint32_t num_live_workers() const;
  /// Excludes `worker` from subsequent steps (degraded re-execution). Safe
  /// to call while another query's step is in flight: RunStep snapshots the
  /// mask at admission, so the death takes effect from the next submitted
  /// step.
  void MarkWorkerDead(uint32_t worker);
  /// Re-admits every worker (e.g. when a cluster is reused by a later
  /// execution after a simulated crash).
  void RestoreAllWorkers();

  /// Number of (requester, victim) pairs currently marked suspect by the
  /// steal-RPC health tracker; reset at every step start. Feeds the
  /// runtime.suspect_victims gauge.
  uint64_t suspect_victims() const {
    return suspects_.load(std::memory_order_relaxed);
  }

  /// Bound port of the embedded exposition server, or -1 when
  /// ClusterOptions::statusz_port was < 0 (or the bind failed — the
  /// cluster still constructs; introspection is never load-bearing).
  int statusz_port() const;

  /// The /statusz page body (exposed for tests; served by the embedded
  /// server). Reads only atomics and the statusz progress sampler, plus any
  /// registered sections (which run under statusz_mu_).
  std::string RenderStatusz();

  /// Registers an extra /statusz section (e.g. the QueryScheduler's
  /// per-query rows). The callback runs under statusz_mu_, so
  /// RemoveStatuszSection blocks until any in-flight render is done —
  /// callbacks must only take locks *below* statusz_mu_ in the DESIGN.md §5
  /// hierarchy. Returns a token for RemoveStatuszSection.
  uint64_t AddStatuszSection(std::function<std::string()> section)
      EXCLUDES(statusz_mu_);
  void RemoveStatuszSection(uint64_t token) EXCLUDES(statusz_mu_);

  /// Wakes admission-gate waiters so a query cancelled while queued
  /// re-checks its cancel flag. Called by the QueryScheduler (or any
  /// QueryHandle) after setting QueryControl::cancel_requested.
  void WakeQueryGate() EXCLUDES(run_mu_);

 private:
  friend class Worker;

  /// Called by workers when a victim crosses the consecutive-timeout
  /// threshold (NetworkConfig::suspect_after_timeouts).
  void NoteSuspectVictim();

  /// Step submission shared with the workers' threads. Written by RunStep
  /// before the wake-up notification; read by execution threads after they
  /// observe the new generation (and by the steal service, causally after
  /// an execution thread's bus request).
  struct StepState {
    StepTask* task = nullptr;
    std::vector<uint32_t> roots;
    uint32_t num_levels = 0;
    /// Snapshot of live_mask_ for this step: threads of non-live workers
    /// skip the step (and its barrier), and victim selection is restricted
    /// to live workers.
    uint64_t live_mask = ~uint64_t{0};
    /// Lineage ledger of the step (StepOptions::lineage); null when the
    /// step runs without lineage tracking.
    LineageLedger* lineage = nullptr;
  };

  /// Cumulative work units per worker, for the progress sampler and
  /// /statusz (delegates to Worker::work_units).
  void SampleWorkerUnits(std::vector<uint64_t>* out) const;

  /// One waiter at the admission gate. Lives on the RunStep caller's stack;
  /// registered in gate_waiters_ while waiting.
  struct GateTicket {
    QueryControl* query = nullptr;  // null: anonymous (FIFO at the floor)
    uint64_t seq = 0;               // arrival order, tie-break
    double vtime = 0.0;             // admission key (snapshot under run_mu_)
  };

  /// Blocks until this ticket wins the gate (weighted fair order) and no
  /// step is in flight, then claims the step slot. Returns false if the
  /// ticket's query was cancelled or hit its deadline while waiting — the
  /// step slot is NOT claimed in that case.
  bool AdmitStep(GateTicket& ticket) EXCLUDES(run_mu_);
  /// Releases the step slot, credits `work_units` to the ticket's query
  /// (virtual time, attained-service counters) and wakes gate waiters.
  void ReleaseStep(GateTicket& ticket, uint64_t work_units)
      EXCLUDES(run_mu_);
  /// Next waiter in admission order: smallest virtual time, FIFO on ties.
  const GateTicket* NextGateWaiter() const REQUIRES(run_mu_);
  void RemoveGateWaiter(const GateTicket* ticket) REQUIRES(run_mu_);

  ClusterOptions options_;
  std::unique_ptr<MessageBus> bus_;  // null unless external stealing
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Embedded introspection server (obs/exposition.h); null unless
  /// options_.statusz_port >= 0 and the bind succeeded. Declared after
  /// workers_ so it is destroyed (and its thread joined) before the workers
  /// it reports on — the destructor also resets it explicitly first.
  std::unique_ptr<obs::ExpositionServer> exposition_;
  /// Delta state behind RenderStatusz; guarded by statusz_mu_ since tests
  /// may hit /statusz concurrently with a direct RenderStatusz call.
  /// statusz_mu_ sits above the scheduler/query-handle locks in the §5
  /// hierarchy (registered sections run under it) but below nothing else.
  std::unique_ptr<obs::ProgressSampler> statusz_sampler_
      GUARDED_BY(statusz_mu_);
  /// Extra /statusz sections keyed by registration token (AddStatuszSection).
  std::map<uint64_t, std::function<std::string()>> statusz_sections_
      GUARDED_BY(statusz_mu_);
  uint64_t statusz_section_seq_ GUARDED_BY(statusz_mu_) = 0;
  Mutex statusz_mu_{"Cluster::statusz_mu"};
  std::atomic<uint64_t> steps_run_{0};
  std::atomic<uint64_t> live_mask_{~uint64_t{0}};
  std::atomic<uint64_t> suspects_{0};

  /// The query admission gate (DESIGN.md §12). Outermost lock of the
  /// runtime: acquired before Cluster::mu (lock hierarchy in DESIGN.md §5).
  /// Unlike the pre-scheduler design it is NOT held across the step body —
  /// only around the gate state below, so waiters can be reordered (fair
  /// sharing) and cancelled while queued.
  Mutex run_mu_{"Cluster::run_mu"};
  CondVar gate_cv_;  // step slot freed, or a queued query was cancelled
  /// True from a ticket winning the gate until its ReleaseStep. Replaces
  /// holding run_mu_ across the step: the flag's acquire/release through
  /// run_mu_ is the happens-before edge ordering one step's teardown before
  /// the next step's setup (see step_ below).
  bool step_in_flight_ GUARDED_BY(run_mu_) = false;
  std::vector<const GateTicket*> gate_waiters_ GUARDED_BY(run_mu_);
  uint64_t gate_seq_ GUARDED_BY(run_mu_) = 0;
  /// Monotone floor for arriving queries' virtual times: a newly admitted
  /// query starts at max(own vtime, floor), so an idle query cannot bank
  /// service and then monopolize the gate (start-time fairness).
  double vtime_floor_ GUARDED_BY(run_mu_) = 0.0;

  // Park/wake handshake between RunStep and the execution threads.
  Mutex mu_{"Cluster::mu"};
  CondVar work_cv_;  // new step or shutdown
  CondVar done_cv_;  // all threads finished the step
  uint64_t step_generation_ GUARDED_BY(mu_) = 0;
  uint32_t threads_remaining_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;

  /// Not mutex-protected: published by RunStep *before* the step-generation
  /// bump under mu_, and only read by worker threads after they observe the
  /// new generation (or, for the steal service, causally after an execution
  /// thread's bus request) — the generation handshake is the happens-before
  /// edge, so these are data-race-free without a guard. Between two RunStep
  /// callers the step_in_flight_ hand-off under run_mu_ orders the previous
  /// step's teardown before the next one's setup.
  StepState step_;
  StepControl control_;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_CLUSTER_H_
