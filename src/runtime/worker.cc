#include "runtime/worker.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/cluster.h"
#include "runtime/codec.h"
#include "runtime/lineage.h"
#include "util/check.h"
#include "util/strings.h"

namespace fractal {

Worker::Worker(Cluster* cluster, uint32_t worker_id)
    : cluster_(cluster),
      worker_id_(worker_id),
      victim_health_(cluster->options().num_workers) {
  const uint32_t per_worker = cluster_->options().threads_per_worker;
  for (uint32_t core = 0; core < per_worker; ++core) {
    auto t = std::make_unique<ThreadContext>();
    t->worker_id = worker_id_;
    t->local_core = core;
    t->core_id = worker_id_ * per_worker + core;
    t->worker_units = &work_units_;
    t->jitter = SplitMix64(0x9e3779b9u ^ (uint64_t{t->core_id} << 17));
    threads_.push_back(std::move(t));
  }
}

void Worker::Start() {
  for (auto& t : threads_) {
    exec_threads_.emplace_back([this, state = t.get()] { ThreadLoop(*state); });
  }
  if (cluster_->bus_ != nullptr) {
    service_thread_ = std::thread([this] { StealServiceLoop(); });
  }
}

void Worker::Join() {
  for (std::thread& thread : exec_threads_) thread.join();
  exec_threads_.clear();
  if (service_thread_.joinable()) service_thread_.join();
}

void Worker::ResetStepHealth() {
  for (VictimHealth& health : victim_health_) {
    health.consecutive_timeouts.store(0, std::memory_order_relaxed);
    health.suspect.store(false, std::memory_order_relaxed);
  }
}

void Worker::ThreadLoop(ThreadContext& t) {
  // Profiler registration is unconditional (one-time ring acquisition, no
  // steady-state cost while no session runs) so /profilez sees worker
  // threads even when no session was planned at cluster construction.
  {
    char name[32];
    std::snprintf(name, sizeof(name), "worker%u/core%u", worker_id_,
                  t.local_core);
    obs::Profiler::Get().RegisterCurrentThread(name);
  }
  // Trace identity: Perfetto groups threads by pid, so each worker becomes
  // one "process" (pid 0 is the driver thread). Gated so clusters spawned
  // with tracing off (the common case — ephemeral per-execution clusters)
  // pay one relaxed load here instead of a registration.
  if (obs::Tracer::TracingEnabled()) {
    obs::Tracer::Get().SetCurrentThreadIdentity(
        worker_id_ + 1, t.local_core, StrFormat("core%u", t.local_core),
        StrFormat("worker%u", worker_id_));
  }
  uint64_t seen_generation = 0;
  while (true) {
    {
      MutexLock lock(cluster_->mu_);
      while (!cluster_->shutdown_ &&
             cluster_->step_generation_ == seen_generation) {
        cluster_->work_cv_.Wait(cluster_->mu_);
      }
      if (cluster_->shutdown_) return;
      seen_generation = cluster_->step_generation_;
    }
    // Degraded steps run on the live-worker subset only: threads of dead
    // workers skip the step entirely and must not touch the barrier count
    // (it was initialized to the live thread total).
    if (((cluster_->step_.live_mask >> worker_id_) & 1) == 0) continue;
    RunStepOnThread(t);
    {
      MutexLock lock(cluster_->mu_);
      if (--cluster_->threads_remaining_ == 0) {
        cluster_->done_cv_.NotifyAll();
      }
    }
  }
}

FRACTAL_HOT void Worker::RunStepOnThread(ThreadContext& t) {
  const Cluster::StepState& step = cluster_->step_;
  StepControl& control = cluster_->control_;
  StepTask& task = *step.task;
  const ClusterOptions& options = cluster_->options();

  t.stats = ThreadStats{};
  t.stats.worker_id = t.worker_id;
  t.stats.core_id = t.core_id;
  t.busy_seconds = 0;
  t.control = &control;
  t.lineage = step.lineage;

  // Initial partition: a contiguous block of the root extensions selected
  // by the thread's rank among *live* cores (paper §4: "an initial
  // partition of extensions ... determined on-the-fly using its unique core
  // identifier"; the Spark substrate hands each core one contiguous input
  // partition). Dead workers' cores are excised from the ranking so a
  // degraded step still covers every root with no holes. Contiguous blocks
  // concentrate hub-adjacent roots, producing the raw skew the
  // work-stealing hierarchy then fixes (§4.2).
  const uint64_t live_mask = step.live_mask;
  const uint32_t per_worker = options.threads_per_worker;
  const uint32_t live_threads =
      static_cast<uint32_t>(std::popcount(live_mask)) * per_worker;
  const uint32_t live_rank =
      LiveThreadRank(live_mask, worker_id_, t.local_core, per_worker);
  const RootSlice partition =
      PartitionRoots(step.roots.size(), live_rank, live_threads);
  std::vector<uint32_t> slice;
  {
    FRACTAL_HOT_ESCAPE("per-step setup: one root-partition copy per thread "
                       "per step, not per work unit");
    slice.assign(step.roots.begin() + partition.begin,
                 step.roots.begin() + partition.end);
  }
  if (step.num_levels > 0 && !slice.empty()) {
    FRACTAL_TRACE_SPAN_V("worker/drain_roots", slice.size());
    WallTimer busy_timer;
    task.DrainRoots(t, std::move(slice));
    t.busy_seconds += busy_timer.ElapsedSeconds();
  }
  t.stats.own_work_micros = control.timer.ElapsedMicros();
  control.working.fetch_sub(1, std::memory_order_acq_rel);

  // Steal loop: WS_int preferred over WS_ext (paper §4.2). Backoff scales
  // with the thread count: on an oversubscribed host, aggressive idle
  // rescans starve the threads that still hold work.
  const bool external_enabled = cluster_->bus_ != nullptr;
  FaultInjector* injector = control.injector;
  const std::atomic<bool>* cancel = control.cancel;
  const int64_t max_backoff_micros =
      std::max<int64_t>(400, 100 * live_threads);
  int64_t backoff_micros = 50;
  // Reused across all steal attempts of the loop: the prefix snapshot in
  // TrySteal then copy-assigns into grown storage instead of allocating.
  SubgraphEnumerator::StolenWork work;
  while (true) {
    // Crash containment: a crashed worker's threads stop contributing
    // immediately; survivors have drained their own frames above and —
    // since any crash dooms the step to re-execution — stop stealing more
    // of it instead of burning time on discarded work.
    if (injector != nullptr && injector->crashed_mask() != 0) break;
    // Cancellation containment mirrors crash containment: the step's
    // output is doomed, so idle threads stop stealing more of it.
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
    if (control.working.load(std::memory_order_acquire) == 0) break;
    control.working.fetch_add(1, std::memory_order_acq_rel);
    bool got = false;
    if (options.internal_work_stealing) got = ClaimInternalWork(t, &work);
    if (!got && external_enabled) got = ClaimExternalWork(t, &work);
    if (got) {
      FRACTAL_TRACE_SPAN("worker/process_stolen");
      WallTimer busy_timer;
      task.ProcessStolen(t, work);
      t.busy_seconds += busy_timer.ElapsedSeconds();
    }
    control.working.fetch_sub(1, std::memory_order_acq_rel);
    if (got) {
      backoff_micros = 50;
    } else {
      ++t.stats.steal_failures;
      FRACTAL_TRACE_INSTANT("worker/steal_miss", backoff_micros);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
      backoff_micros = std::min(backoff_micros * 2, max_backoff_micros);
    }
  }
  task.FinishThread(t);
  t.stats.finish_micros = control.timer.ElapsedMicros();
  t.stats.busy_seconds = t.busy_seconds;
  t.lineage = nullptr;
  t.control = nullptr;
}

FRACTAL_HOT bool Worker::ClaimInternalWork(ThreadContext& t,
                                           SubgraphEnumerator::StolenWork* out) {
  // Shallowest frames first: they hold the largest pieces of work.
  const uint32_t num_levels = cluster_->step_.num_levels;
  for (uint32_t depth = 0; depth < num_levels; ++depth) {
    for (uint32_t other = 0; other < num_threads(); ++other) {
      if (other == t.local_core) continue;
      SubgraphEnumerator& frame = *threads_[other]->frames[depth];
      if (!frame.LooksNonEmpty()) continue;
      if (frame.TrySteal(out)) {
        ++t.stats.internal_steals;
        obs::InternalStealsCounter().Add(1);
        if (t.lineage != nullptr) {
          FRACTAL_HOT_ESCAPE("lineage stamping: once per steal, not per "
                             "work unit");
          // WS_int moves work between cores of the same worker: the claim
          // is stamped with this worker as both victim and thief, so crash
          // accounting keeps following the (unchanged) owning worker.
          t.lineage->StampClaim(worker_id_, worker_id_, out);
        }
        return true;
      }
    }
  }
  return false;
}

bool Worker::ClaimExternalWork(ThreadContext& t,
                               SubgraphEnumerator::StolenWork* out) {
  FRACTAL_HOT_ESCAPE("simulated network path: RPC buffers, codec scratch "
                     "and backoff sleeps are off the enumeration hot path");
  const ClusterOptions& options = cluster_->options();
  const NetworkConfig& net = options.network;
  const uint32_t num_workers = options.num_workers;
  const uint64_t live_mask = cluster_->step_.live_mask;
  FaultInjector* injector = cluster_->control_.injector;
  const uint32_t max_attempts = std::max<uint32_t>(1, net.max_steal_retries);
  for (uint32_t offset = 1; offset < num_workers; ++offset) {
    const uint32_t victim = (worker_id_ + offset) % num_workers;
    if (((live_mask >> victim) & 1) == 0) continue;  // dead before the step
    if (injector != nullptr && injector->WorkerCrashed(victim)) continue;
    VictimHealth& health = victim_health_[victim];
    if (health.suspect.load(std::memory_order_relaxed)) continue;
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      WallTimer rtt_timer;
      const StealReply reply = cluster_->bus_->RequestSteal(worker_id_, victim);
      if (reply.outcome == StealOutcome::kShutdown) return false;
      if (reply.outcome == StealOutcome::kNoWork) {
        // Responsive but empty: try the next victim.
        health.consecutive_timeouts.store(0, std::memory_order_relaxed);
        break;
      }
      if (reply.outcome == StealOutcome::kWork) {
        health.consecutive_timeouts.store(0, std::memory_order_relaxed);
        obs::StealRttHistogram().Record(
            static_cast<uint64_t>(rtt_timer.ElapsedMicros()));
        WallTimer decode_timer;
        if (!SubgraphCodec::DecodeStolenWork(reply.payload, out)) {
          FRACTAL_CHECK(false) << "corrupted stolen-work payload";
        }
        obs::DecodeTimeHistogram().Record(
            static_cast<uint64_t>(decode_timer.ElapsedNanos()));
        ++t.stats.external_steals;
        t.stats.bytes_shipped += reply.payload.size();
        obs::ExternalStealsCounter().Add(1);
        obs::BytesShippedCounter().Add(reply.payload.size());
        return true;
      }
      // kTimeout: accrue health, back off, retry — or give the victim up
      // as suspect for the rest of the step.
      ++t.stats.steal_timeouts;
      obs::StealTimeoutsCounter().Add(1);
      const uint32_t consecutive =
          health.consecutive_timeouts.fetch_add(1, std::memory_order_relaxed) +
          1;
      if (net.suspect_after_timeouts > 0 &&
          consecutive >= net.suspect_after_timeouts) {
        if (!health.suspect.exchange(true, std::memory_order_relaxed)) {
          cluster_->NoteSuspectVictim();
          FRACTAL_TRACE_INSTANT("worker/victim_suspect", victim);
        }
        break;
      }
      if (attempt + 1 < max_attempts && net.retry_backoff_micros > 0) {
        // Exponential backoff with full jitter: decorrelates the retries
        // of many starving threads hammering one slow victim.
        const int64_t base = net.retry_backoff_micros << attempt;
        const int64_t backoff =
            base +
            static_cast<int64_t>(t.jitter.NextBounded(
                static_cast<uint64_t>(base) + 1));
        obs::RetryBackoffHistogram().Record(static_cast<uint64_t>(backoff));
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
    }
  }
  return false;
}

FRACTAL_HOT bool Worker::ClaimLocalWork(SubgraphEnumerator::StolenWork* out) {
  const uint32_t num_levels = cluster_->step_.num_levels;
  for (uint32_t depth = 0; depth < num_levels; ++depth) {
    for (uint32_t core = 0; core < num_threads(); ++core) {
      SubgraphEnumerator& frame = *threads_[core]->frames[depth];
      if (!frame.LooksNonEmpty()) continue;
      if (frame.TrySteal(out)) return true;
    }
  }
  return false;
}

void Worker::StealServiceLoop() {
  {
    char name[32];
    std::snprintf(name, sizeof(name), "worker%u/steal-service", worker_id_);
    obs::Profiler::Get().RegisterCurrentThread(name);
  }
  if (obs::Tracer::TracingEnabled()) {
    obs::Tracer::Get().SetCurrentThreadIdentity(
        worker_id_ + 1, cluster_->options().threads_per_worker,
        "steal-service", StrFormat("worker%u", worker_id_));
  }
  // Requests only arrive while a step is running (requesters hold the
  // step's `working` count while blocked on the bus), so the frames this
  // scans are always live: BeginReply succeeds only for a requester that is
  // still waiting, and abandoned tokens are dropped without touching any
  // frame. Shutdown of the bus ends the loop.
  // Reused across requests (same rationale as the steal loop's buffer).
  SubgraphEnumerator::StolenWork work;
  while (auto token = cluster_->bus_->WaitForRequest(worker_id_)) {
    FRACTAL_TRACE_SPAN("worker/steal_service");
    if (const std::shared_ptr<FaultInjector> injector =
            cluster_->bus_->fault_injector()) {
      if (!injector->OnStealRequestArrived(worker_id_)) {
        // Dead steal service: the request is swallowed without a reply and
        // the requester times out at its deadline.
        continue;
      }
      if (injector->WorkerCrashed(worker_id_)) {
        // Crashed worker: refuse fast instead of serving its frames.
        cluster_->bus_->Reply(*token, std::nullopt);
        continue;
      }
    }
    // Claim-after-commit: commit to this requester *before* claiming work,
    // so a request abandoned at its deadline can never orphan a claim.
    if (!cluster_->bus_->BeginReply(*token)) continue;
    if (ClaimLocalWork(&work)) {
      // Claim-after-commit is exactly the lineage stamping point: the
      // descriptor is committed to the requester, so ownership moves to the
      // thief *before* the bytes cross the worker boundary (the payload
      // then carries the record id). The step's ledger pointer is readable
      // here by the same argument as step_.task: requests only arrive
      // while the step runs (class comment above).
      if (LineageLedger* lineage = cluster_->step_.lineage) {
        lineage->StampClaim(worker_id_, MessageBus::Requester(*token), &work);
      }
      WallTimer encode_timer;
      std::vector<uint8_t> payload = SubgraphCodec::EncodeStolenWork(work);
      obs::EncodeTimeHistogram().Record(
          static_cast<uint64_t>(encode_timer.ElapsedNanos()));
      cluster_->bus_->Reply(*token, std::move(payload));
    } else {
      cluster_->bus_->Reply(*token, std::nullopt);
    }
  }
}

}  // namespace fractal
