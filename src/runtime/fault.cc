#include "runtime/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/check.h"
#include "util/random.h"
#include "util/strings.h"

namespace fractal {
namespace {

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashWorker:
    case FaultKind::kCrashWorkerRandom:
      return "crash";
    case FaultKind::kCrashStealService:
      return "crash-service";
    case FaultKind::kDropRequest:
      return "drop";
    case FaultKind::kDelayRequest:
      return "delay";
    case FaultKind::kSlowWorker:
      return "slow";
    case FaultKind::kCrashWorkerInSalvage:
      return "crash-in-salvage";
  }
  return "?";
}

std::string FormatProbability(double p) {
  std::string text = StrFormat("%g", p);
  return text;
}

}  // namespace

std::string FaultSpec::ToString() const {
  std::string text = KindName(kind);
  text += ':';
  bool first = true;
  auto add = [&](const std::string& part) {
    if (!first) text += ',';
    text += part;
    first = false;
  };
  if (worker >= 0) add(StrFormat("w=%d", worker));
  switch (kind) {
    case FaultKind::kCrashWorker:
    case FaultKind::kCrashStealService:
    case FaultKind::kCrashWorkerInSalvage:
      add(StrFormat("after=%llu", (unsigned long long)after_units));
      break;
    case FaultKind::kCrashWorkerRandom:
    case FaultKind::kDropRequest:
      add("p=" + FormatProbability(probability));
      break;
    case FaultKind::kDelayRequest:
      add("p=" + FormatProbability(probability));
      add(StrFormat("us=%lld", (long long)micros));
      break;
    case FaultKind::kSlowWorker:
      add(StrFormat("us=%lld", (long long)micros));
      break;
  }
  return text;
}

FaultPlan& FaultPlan::CrashWorker(int32_t worker, uint64_t after_units) {
  FaultSpec spec;
  spec.kind = FaultKind::kCrashWorker;
  spec.worker = worker;
  spec.after_units = after_units;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::CrashWorkerRandomly(int32_t worker, double probability) {
  FaultSpec spec;
  spec.kind = FaultKind::kCrashWorkerRandom;
  spec.worker = worker;
  spec.probability = probability;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::CrashStealService(int32_t worker,
                                        uint64_t after_requests) {
  FaultSpec spec;
  spec.kind = FaultKind::kCrashStealService;
  spec.worker = worker;
  spec.after_units = after_requests;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::DropStealRequests(double probability) {
  FaultSpec spec;
  spec.kind = FaultKind::kDropRequest;
  spec.probability = probability;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::DelayStealRequests(double probability, int64_t micros) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelayRequest;
  spec.probability = probability;
  spec.micros = micros;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::SlowWorker(int32_t worker, int64_t micros_per_unit) {
  FaultSpec spec;
  spec.kind = FaultKind::kSlowWorker;
  spec.worker = worker;
  spec.micros = micros_per_unit;
  specs_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::CrashWorkerInSalvage(int32_t worker,
                                           uint64_t after_units) {
  FaultSpec spec;
  spec.kind = FaultKind::kCrashWorkerInSalvage;
  spec.worker = worker;
  spec.after_units = after_units;
  specs_.push_back(spec);
  return *this;
}

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view text, uint64_t seed) {
  FaultPlan plan(seed);
  for (std::string_view entry : SplitString(text, ";")) {
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError(
          StrFormat("fault spec entry '%.*s' has no kind (expected "
                    "kind:key=value,...)",
                    (int)entry.size(), entry.data()));
    }
    const std::string_view kind_name = entry.substr(0, colon);
    FaultSpec spec;
    bool has_probability = false;
    bool has_field = false;
    for (std::string_view field :
         SplitString(entry.substr(colon + 1), ",")) {
      has_field = true;
      const size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return InvalidArgumentError(StrFormat(
            "fault spec field '%.*s' is not key=value", (int)field.size(),
            field.data()));
      }
      const std::string_view key = field.substr(0, eq);
      const std::string value(field.substr(eq + 1));
      char* end = nullptr;
      if (key == "w") {
        spec.worker = (int32_t)std::strtol(value.c_str(), &end, 10);
      } else if (key == "after") {
        spec.after_units = std::strtoull(value.c_str(), &end, 10);
      } else if (key == "p") {
        spec.probability = std::strtod(value.c_str(), &end);
        has_probability = true;
      } else if (key == "us") {
        spec.micros = std::strtoll(value.c_str(), &end, 10);
      } else {
        return InvalidArgumentError(StrFormat(
            "unknown fault spec key '%.*s'", (int)key.size(), key.data()));
      }
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError(
            StrFormat("cannot parse fault spec value '%s'", value.c_str()));
      }
    }
    if (!has_field) {
      return InvalidArgumentError(
          StrFormat("fault spec entry '%.*s' has no key=value fields",
                    (int)entry.size(), entry.data()));
    }
    if (kind_name == "crash") {
      spec.kind = has_probability ? FaultKind::kCrashWorkerRandom
                                  : FaultKind::kCrashWorker;
    } else if (kind_name == "crash-service") {
      spec.kind = FaultKind::kCrashStealService;
    } else if (kind_name == "crash-in-salvage") {
      spec.kind = FaultKind::kCrashWorkerInSalvage;
    } else if (kind_name == "drop") {
      spec.kind = FaultKind::kDropRequest;
    } else if (kind_name == "delay") {
      spec.kind = FaultKind::kDelayRequest;
    } else if (kind_name == "slow") {
      spec.kind = FaultKind::kSlowWorker;
    } else {
      return InvalidArgumentError(
          StrFormat("unknown fault kind '%.*s'", (int)kind_name.size(),
                    kind_name.data()));
    }
    plan.specs_.push_back(spec);
  }
  return plan;
}

FaultPlan FaultPlan::Random(uint64_t seed, uint32_t num_workers) {
  FRACTAL_CHECK(num_workers > 0);
  FaultPlan plan(seed);
  SplitMix64 rng(seed ^ 0x5eedfau);
  switch (rng.NextBounded(5)) {
    case 0:
      plan.CrashWorker((int32_t)rng.NextBounded(num_workers),
                       1 + rng.NextBounded(300));
      break;
    case 1:
      plan.CrashStealService((int32_t)rng.NextBounded(num_workers),
                             rng.NextBounded(4));
      break;
    case 2:
      plan.DropStealRequests(0.05 + 0.25 * rng.NextDouble());
      break;
    case 3:
      plan.DelayStealRequests(0.1 + 0.3 * rng.NextDouble(),
                              (int64_t)(200 + rng.NextBounded(2000)));
      break;
    case 4: {
      // Crash-during-recovery: a first crash triggers a salvage pass, then
      // a second (different) worker dies mid-replay. Inert under the
      // from-scratch retry mode (no salvage pass ever arms the entry).
      const uint32_t first = rng.NextBounded(num_workers);
      plan.CrashWorker((int32_t)first, 1 + rng.NextBounded(300));
      plan.CrashWorkerInSalvage((int32_t)((first + 1) % num_workers),
                                1 + rng.NextBounded(100));
      break;
    }
  }
  if (rng.NextBounded(100) < 40) {
    plan.SlowWorker((int32_t)rng.NextBounded(num_workers),
                    (int64_t)(1 + rng.NextBounded(20)));
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string text;
  for (const FaultSpec& spec : specs_) {
    if (!text.empty()) text += ';';
    text += spec.ToString();
  }
  return text;
}

Status FaultPlan::Validate(uint32_t num_workers) const {
  for (const FaultSpec& spec : specs_) {
    if (spec.worker >= 0 && (uint32_t)spec.worker >= num_workers) {
      return InvalidArgumentError(StrFormat(
          "fault '%s' targets a worker outside the cluster (%u workers)",
          spec.ToString().c_str(), num_workers));
    }
    switch (spec.kind) {
      case FaultKind::kCrashWorker:
      case FaultKind::kCrashWorkerInSalvage:
        if (spec.worker < 0) {
          return InvalidArgumentError(
              "deterministic crash needs an explicit worker (w=...)");
        }
        if (spec.after_units == 0) {
          return InvalidArgumentError(
              "crash trigger needs after >= 1 (the Nth consumed unit)");
        }
        break;
      case FaultKind::kCrashStealService:
        if (spec.worker < 0) {
          return InvalidArgumentError(
              "steal-service crash needs an explicit worker (w=...)");
        }
        break;
      case FaultKind::kCrashWorkerRandom:
      case FaultKind::kDropRequest:
      case FaultKind::kDelayRequest:
        if (spec.probability < 0 || spec.probability > 1) {
          return InvalidArgumentError(StrFormat(
              "fault '%s' needs a probability in [0,1]",
              spec.ToString().c_str()));
        }
        break;
      case FaultKind::kSlowWorker:
        break;
    }
    if (spec.micros < 0) {
      return InvalidArgumentError(StrFormat(
          "fault '%s' has a negative duration", spec.ToString().c_str()));
    }
  }
  return Status::Ok();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      states_(std::make_unique<EntryState[]>(plan_.specs().size())) {
  for (auto& entry : crash_entry_) {
    entry.store(-1, std::memory_order_relaxed);
  }
}

void FaultInjector::BeginStep() {
  crashed_mask_.store(0, std::memory_order_release);
  for (auto& entry : crash_entry_) {
    entry.store(-1, std::memory_order_relaxed);
  }
  const auto& specs = plan_.specs();
  for (size_t i = 0; i < specs.size(); ++i) {
    // Probabilistic crashes re-arm every step (a p=1 plan defeats every
    // retry — the exhausted-retry Status path is testable). Deterministic
    // crashes stay one-shot: the retried step must be able to succeed.
    // Their unit counters keep running so the per-unit random stream never
    // repeats across attempts.
    if (specs[i].kind == FaultKind::kCrashWorkerRandom) {
      states_[i].fired.store(false, std::memory_order_relaxed);
    }
  }
}

bool FaultInjector::Chance(size_t entry, uint64_t event,
                           double probability) const {
  if (probability <= 0) return false;
  if (probability >= 1) return true;
  SplitMix64 rng(plan_.seed() ^ ((entry + 1) * 0x9e3779b97f4a7c15ull) ^
                 (event * 0xd1b54a32d192ed03ull));
  return rng.NextDouble() < probability;
}

void FaultInjector::Crash(uint32_t worker, size_t entry) {
  FRACTAL_DCHECK(worker < kMaxFaultWorkers);
  int32_t expected = -1;
  crash_entry_[worker].compare_exchange_strong(expected, (int32_t)entry,
                                               std::memory_order_relaxed);
  crash_events_.fetch_add(1, std::memory_order_relaxed);
  // The release pairs with the acquire loads in WorkerCrashed(): observers
  // of the crash bit also see the cause record above. (The ad-hoc flag this
  // replaces paired its release store with a relaxed load.)
  crashed_mask_.fetch_or(uint64_t{1} << worker, std::memory_order_release);
}

bool FaultInjector::OnWorkUnit(uint32_t worker) {
  const uint64_t bit = uint64_t{1} << worker;
  int64_t slowdown_micros = 0;
  const auto& specs = plan_.specs();
  for (size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& spec = specs[i];
    EntryState& state = states_[i];
    switch (spec.kind) {
      case FaultKind::kCrashWorker: {
        if (spec.worker != (int32_t)worker) break;
        // fetch_add hands every racing thread a unique unit number, so
        // exactly one observes the threshold; `fired` keeps the entry
        // one-shot across step retries as well.
        const uint64_t units =
            state.counter.fetch_add(1, std::memory_order_relaxed) + 1;
        if (units == spec.after_units &&
            !state.fired.exchange(true, std::memory_order_relaxed)) {
          Crash(worker, i);
        }
        break;
      }
      case FaultKind::kCrashWorkerRandom: {
        if (spec.worker >= 0 && spec.worker != (int32_t)worker) break;
        const uint64_t event =
            state.counter.fetch_add(1, std::memory_order_relaxed);
        if (Chance(i, event, spec.probability) &&
            !state.fired.exchange(true, std::memory_order_relaxed)) {
          Crash(worker, i);
        }
        break;
      }
      case FaultKind::kCrashWorkerInSalvage: {
        if (spec.worker != (int32_t)worker) break;
        // Units consumed outside a salvage pass do not advance the
        // trigger, so the entry fires at the Nth *replayed* unit.
        if (!salvage_pass_.load(std::memory_order_relaxed)) break;
        const uint64_t units =
            state.counter.fetch_add(1, std::memory_order_relaxed) + 1;
        if (units == spec.after_units &&
            !state.fired.exchange(true, std::memory_order_relaxed)) {
          Crash(worker, i);
        }
        break;
      }
      case FaultKind::kSlowWorker:
        if (spec.worker < 0 || spec.worker == (int32_t)worker) {
          slowdown_micros += spec.micros;
        }
        break;
      default:
        break;
    }
  }
  if (slowdown_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(slowdown_micros));
  }
  return (crashed_mask_.load(std::memory_order_acquire) & bit) == 0;
}

bool FaultInjector::OnStealRequestArrived(uint32_t victim) {
  bool serve = true;
  const auto& specs = plan_.specs();
  for (size_t i = 0; i < specs.size(); ++i) {
    const FaultSpec& spec = specs[i];
    if (spec.kind != FaultKind::kCrashStealService) continue;
    if (spec.worker != (int32_t)victim) continue;
    EntryState& state = states_[i];
    // Sticky for the injector's lifetime: a dead service stays dead even
    // across step retries (the suspect tracker and the live mask route
    // around it).
    if (state.fired.load(std::memory_order_relaxed)) {
      serve = false;
      continue;
    }
    if (state.counter.fetch_add(1, std::memory_order_relaxed) + 1 >
        spec.after_units) {
      state.fired.store(true, std::memory_order_relaxed);
      serve = false;
    }
  }
  return serve;
}

bool FaultInjector::DropStealRequest() {
  const auto& specs = plan_.specs();
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != FaultKind::kDropRequest) continue;
    const uint64_t event =
        states_[i].counter.fetch_add(1, std::memory_order_relaxed);
    if (Chance(i, event, specs[i].probability)) return true;
  }
  return false;
}

int64_t FaultInjector::StealRequestDelayMicros() {
  int64_t total = 0;
  const auto& specs = plan_.specs();
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind != FaultKind::kDelayRequest) continue;
    const uint64_t event =
        states_[i].counter.fetch_add(1, std::memory_order_relaxed);
    if (Chance(i, event, specs[i].probability)) total += specs[i].micros;
  }
  return total;
}

std::string FaultInjector::CrashCause(uint32_t worker) const {
  if (worker >= kMaxFaultWorkers) return "";
  const int32_t entry = crash_entry_[worker].load(std::memory_order_acquire);
  if (entry < 0) return "";
  return StrFormat("injected fault '%s'",
                   plan_.specs()[(size_t)entry].ToString().c_str());
}

}  // namespace fractal
