// Worker: one simulated worker process of the cluster runtime (paper §4,
// Fig. 6). A Worker owns `C` long-lived execution threads ("cores") plus —
// when external stealing is enabled — one steal-service thread answering
// WS_ext requests from other workers. Threads are created once, park on the
// cluster's condition variable between fractal steps, and are reused across
// steps and across fractoid executions.
//
// The runtime layer is application-agnostic: what a step actually *does*
// with an extension is supplied by a StepTask (implemented by the core
// executor), while this layer owns thread lifecycle, the contiguous
// root-extension partitioning, the WS_int/WS_ext stealing hierarchy,
// crash injection, and per-thread telemetry.
//
// Locking: Worker itself holds no locks. Its threads acquire the cluster's
// park/wake mutex (Cluster::mu), the enumerators' steal mutexes
// (SubgraphEnumerator::mu), and — via the message bus — the inbox/request
// mutexes, always as leaves or in the documented hierarchy (DESIGN.md
// "Lock hierarchy"). ThreadContext is single-owner state: only its
// execution thread mutates it while a step runs, and the cluster reads it
// at the step barrier (the barrier is the happens-before edge).
#ifndef FRACTAL_RUNTIME_WORKER_H_
#define FRACTAL_RUNTIME_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "enumerate/enumerator.h"
#include "obs/metrics.h"
#include "runtime/fault.h"
#include "runtime/telemetry.h"
#include "util/hot_annotations.h"
#include "util/random.h"
#include "util/timer.h"

namespace fractal {

class Cluster;
class LineageLedger;

/// Shared state of one running step. Owned by the Cluster and reset before
/// each step. Fault hooks route through `injector` (runtime/fault.h); the
/// null check is the entire disabled-path cost on the work-unit hot path.
struct StepControl {
  std::atomic<uint64_t> working{0};  // threads still producing work
  /// Fault hooks of the step; null => faults disabled. Raw pointer is safe
  /// here: execution threads only touch it between the step-generation
  /// bump and the barrier, strictly inside RunStep (the bus keeps a
  /// shared_ptr for its unbounded service-thread tail).
  FaultInjector* injector = nullptr;
  /// Cancel flag of the step's query (QueryControl::cancel_requested), or
  /// null when the step runs without a query. Polled once per work unit —
  /// one relaxed load, the same hot-path budget as the injector check.
  /// Same lifetime argument as `injector`: only touched strictly inside
  /// RunStep, whose caller owns the QueryControl.
  const std::atomic<bool>* cancel = nullptr;
  WallTimer timer;  // restarted at step start; telemetry timestamps
};

/// Per-victim responsiveness tracking for WS_ext (one slot per victim,
/// per requesting worker): consecutive steal-RPC timeouts accrue until the
/// victim is marked suspect and skipped for the rest of the step
/// (NetworkConfig::suspect_after_timeouts). Reset at every step start.
struct VictimHealth {
  std::atomic<uint32_t> consecutive_timeouts{0};
  std::atomic<bool> suspect{false};
};

/// Per-execution-thread runtime state, owned by a Worker and persistent
/// across steps. The enumeration frames (one SubgraphEnumerator per
/// extension level) live here because the stealing hierarchy scans them;
/// everything application-specific stays inside the StepTask, keyed by
/// `core_id`.
struct ThreadContext {
  uint32_t worker_id = 0;
  uint32_t core_id = 0;     // global thread id
  uint32_t local_core = 0;  // index within the worker

  /// Enumeration frames by E-depth; sized (grow-only) per step.
  std::vector<std::unique_ptr<SubgraphEnumerator>> frames;

  /// Telemetry of the current step; reset at step start, harvested by the
  /// cluster at the step barrier.
  ThreadStats stats;

  /// Busy-time accumulator: only time spent draining frames or processing
  /// stolen work counts (idle backoff sleeps do not).
  double busy_seconds = 0;

  /// Valid for the duration of a step.
  StepControl* control = nullptr;

  /// Owning worker's cumulative work-unit counter (Worker::work_units_),
  /// bumped alongside the process-wide counter so the progress sampler and
  /// /statusz can attribute throughput per worker. Set once at construction.
  std::atomic<uint64_t>* worker_units = nullptr;

  /// Deterministic per-thread stream for steal-retry backoff jitter.
  SplitMix64 jitter{0};

  /// Lineage ledger of the current step, null unless the executor runs the
  /// step in salvage retry mode (runtime/lineage.h). Set/cleared alongside
  /// `control`; the null check is the entire disabled-path cost.
  LineageLedger* lineage = nullptr;

  /// Counts one consumed extension and runs the fault hook. Returns false
  /// once this thread's worker has (simulated-)crashed: the thread unwinds,
  /// dropping its in-flight state (including thread-local aggregation
  /// accumulators), while the surviving workers drain their own frames to
  /// the barrier — the step is then re-executed from scratch. With no
  /// injector armed the hook costs a single predictable-branch load.
  FRACTAL_HOT bool ConsumeWorkUnit() {
    ++stats.work_units;
    obs::WorkUnitsCounter().Add(1);
    worker_units->fetch_add(1, std::memory_order_relaxed);
    // Cooperative cancellation (DESIGN.md §12): a false return unwinds the
    // enumeration exactly like a crash — frames deactivate on the way out
    // and the thread reaches the step barrier within one work unit.
    const std::atomic<bool>* cancel = control->cancel;
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    FaultInjector* injector = control->injector;
    if (injector == nullptr) return true;
    return injector->OnWorkUnit(worker_id);
  }
};

/// What one fractal step does with the work the runtime hands it. The core
/// executor implements this per step; the runtime only sees extensions,
/// frames, and stolen (prefix, extension) pairs.
class StepTask {
 public:
  virtual ~StepTask() = default;

  /// Drains `roots` — the thread's initial contiguous partition of the root
  /// extensions — through the step pipeline, refilling `t.frames` level by
  /// level (Algorithm 1).
  virtual void DrainRoots(ThreadContext& t, std::vector<uint32_t> roots) = 0;

  /// Processes one stolen unit of work on thread `t`.
  virtual void ProcessStolen(ThreadContext& t,
                             const SubgraphEnumerator::StolenWork& work) = 0;

  /// Called once per thread after its steal loop ends: flush per-thread
  /// counters (e.g. extension tests) into `t.stats`.
  virtual void FinishThread(ThreadContext& t) = 0;
};

/// One simulated worker process: `C` persistent execution threads and the
/// per-worker steal service. Constructed and owned by Cluster.
class Worker {
 public:
  Worker(Cluster* cluster, uint32_t worker_id);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Spawns the execution threads (and the steal-service thread when the
  /// cluster has a message bus). Called once by the Cluster constructor.
  void Start();

  /// Joins all threads. The cluster must have signalled shutdown (and shut
  /// the bus down) first.
  void Join();

  ThreadContext& thread(uint32_t local_core) { return *threads_[local_core]; }
  uint32_t num_threads() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Work units consumed by this worker across all steps (live, sampleable
  /// mid-step; the per-worker analogue of obs::WorkUnitsCounter).
  uint64_t work_units() const {
    return work_units_.load(std::memory_order_relaxed);
  }

 private:
  friend class Cluster;

  /// Park/execute loop of one execution thread: waits for a step
  /// submission, runs it, signals the barrier, parks again.
  void ThreadLoop(ThreadContext& t);

  /// Executes the current step on thread `t`: drain the initial partition,
  /// then steal until the step has no work left anywhere (paper §4.2).
  /// Hot-path root: everything under it except the audited per-step setup
  /// and the network path runs per work unit.
  FRACTAL_HOT void RunStepOnThread(ThreadContext& t);

  /// WS_int: claims one extension from a sibling thread of this worker,
  /// shallowest frames first (they hold the largest pieces of work). The
  /// Claim* calls fill a caller-owned StolenWork (false == no work found) so
  /// the steal loop reuses one prefix buffer across all its attempts.
  FRACTAL_HOT bool ClaimInternalWork(ThreadContext& t,
                                     SubgraphEnumerator::StolenWork* out);

  /// WS_ext: requests work from the other workers through the message bus,
  /// skipping dead/crashed/suspect victims, retrying timed-out victims with
  /// exponential backoff + jitter, and accruing per-victim timeout health.
  /// Charges the simulated network cost and records shipped bytes.
  bool ClaimExternalWork(ThreadContext& t,
                         SubgraphEnumerator::StolenWork* out);

  /// Resets per-step victim-health state; called by RunStep while all
  /// threads are parked.
  void ResetStepHealth();

  /// Steal-service side of WS_ext: answers requests from other workers by
  /// claiming work from this worker's own frames.
  void StealServiceLoop();
  FRACTAL_HOT bool ClaimLocalWork(SubgraphEnumerator::StolenWork* out);

  Cluster* cluster_;
  uint32_t worker_id_;
  /// Cumulative work units over this worker's threads (see work_units()).
  std::atomic<uint64_t> work_units_{0};
  /// One slot per potential victim (indexed by worker id).
  std::vector<VictimHealth> victim_health_;
  std::vector<std::unique_ptr<ThreadContext>> threads_;
  std::vector<std::thread> exec_threads_;
  std::thread service_thread_;
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_WORKER_H_
