// Byte serialization for work shipped between workers (external work
// stealing, §4.2). The paper's point that inter-process stealing "involves
// serializing, sending, receiving and deserializing data structures" is
// preserved faithfully: stolen work crosses the simulated worker boundary
// only as bytes produced/consumed by this codec.
#ifndef FRACTAL_RUNTIME_CODEC_H_
#define FRACTAL_RUNTIME_CODEC_H_

#include <cstdint>
#include <vector>

#include "enumerate/enumerator.h"
#include "enumerate/subgraph.h"

namespace fractal {

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void PutU32(uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<uint8_t>(value >> shift));
    }
  }
  void PutU8(uint8_t value) { bytes_.push_back(value); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() && { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential reader over a byte buffer; out-of-bounds reads set !ok().
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint32_t GetU32() {
    if (position_ + 4 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<uint32_t>(bytes_[position_++]) << shift;
    }
    return value;
  }
  uint8_t GetU8() {
    if (position_ >= bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return bytes_[position_++];
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

/// Encodes/decodes Subgraph and StolenWork values.
class SubgraphCodec {
 public:
  static void EncodeSubgraph(const Subgraph& subgraph, ByteWriter* writer);
  static bool DecodeSubgraph(ByteReader* reader, Subgraph* subgraph);

  static std::vector<uint8_t> EncodeStolenWork(
      const SubgraphEnumerator::StolenWork& work);
  static bool DecodeStolenWork(const std::vector<uint8_t>& bytes,
                               SubgraphEnumerator::StolenWork* work);
};

}  // namespace fractal

#endif  // FRACTAL_RUNTIME_CODEC_H_
