#include "runtime/message_bus.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/fault.h"
#include "util/timer.h"

namespace fractal {

MessageBus::MessageBus(uint32_t num_workers, const NetworkConfig& config)
    : config_(config) {
  inboxes_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void MessageBus::SimulateDelay(size_t payload_bytes) const {
  const int64_t micros =
      config_.latency_micros +
      (static_cast<int64_t>(payload_bytes) * config_.per_kb_micros) / 1024;
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

void MessageBus::SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
  MutexLock lock(injector_mu_);
  injector_ = std::move(injector);
}

std::shared_ptr<FaultInjector> MessageBus::fault_injector() const {
  MutexLock lock(injector_mu_);
  return injector_;
}

StealReply MessageBus::RequestSteal(uint32_t requester, uint32_t victim) {
  FRACTAL_CHECK(victim < inboxes_.size());
  FRACTAL_CHECK(victim != requester) << "steal from self must be internal";
  if (stopped()) return {StealOutcome::kShutdown, {}};

  const int64_t timeout_micros = config_.request_timeout_micros;
  if (const std::shared_ptr<FaultInjector> injector = fault_injector()) {
    // A crashed worker's endpoint refuses instantly (connection reset) —
    // unlike a dead steal *service*, which silently never replies and
    // costs the requester its full deadline.
    if (injector->WorkerCrashed(victim)) return {StealOutcome::kNoWork, {}};
    const int64_t spike = injector->StealRequestDelayMicros();
    if (spike > 0) {
      FRACTAL_TRACE_INSTANT("bus/delay_spike", spike);
      std::this_thread::sleep_for(std::chrono::microseconds(spike));
    }
    if (timeout_micros > 0 && injector->DropStealRequest()) {
      // The request is lost in flight: nothing was enqueued, so the
      // requester burns its deadline waiting for a reply that never comes.
      obs::DroppedRequestsCounter().Add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(timeout_micros));
      return {StealOutcome::kTimeout, {}};
    }
  }

  // Span covers the full round trip (request delay, victim service time,
  // reply delay); declared before any lock so both ends record lock-free.
  FRACTAL_TRACE_SPAN_V("bus/request_steal", victim);
  auto request = std::make_shared<Request>();
  request->requester = requester;
  SimulateDelay(/*payload_bytes=*/16);  // request message
  {
    Inbox& inbox = *inboxes_[victim];
    MutexLock lock(inbox.mu);
    inbox.queue.push_back(request);
    inbox.cv.NotifyOne();
  }
  WallTimer deadline;
  bool timed_out = false;
  std::optional<std::vector<uint8_t>> payload;
  {
    MutexLock lock(request->mu);
    while (request->state != Request::State::kDone) {
      if (request->state == Request::State::kPending && timeout_micros > 0) {
        const int64_t remaining = timeout_micros - deadline.ElapsedMicros();
        if (remaining <= 0) {
          // Abandon only from kPending: once the victim committed
          // (kReplying) the claimed work must reach us, so we keep
          // waiting — bounded by the victim's local claim+encode time.
          request->state = Request::State::kAbandoned;
          timed_out = true;
          break;
        }
        request->cv.WaitForMicros(request->mu, remaining);
      } else {
        request->cv.Wait(request->mu);
      }
    }
    if (!timed_out) payload = std::move(request->payload);
  }
  if (timed_out) return {StealOutcome::kTimeout, {}};
  if (!payload.has_value()) {
    return {stopped() ? StealOutcome::kShutdown : StealOutcome::kNoWork, {}};
  }
  FRACTAL_TRACE_INSTANT("bus/reply_bytes", payload->size());
  SimulateDelay(payload->size());  // reply message
  return {StealOutcome::kWork, std::move(*payload)};
}

std::optional<MessageBus::RequestToken> MessageBus::WaitForRequest(
    uint32_t worker) {
  FRACTAL_CHECK(worker < inboxes_.size());
  Inbox& inbox = *inboxes_[worker];
  MutexLock lock(inbox.mu);
  // Wake-ups: a new request (NotifyOne in RequestSteal) or Shutdown's
  // NotifyAll. `stopped()` nests stop_mu_ inside Inbox::mu — that order is
  // part of the lock hierarchy (DESIGN.md).
  while (inbox.queue.empty() && !stopped()) inbox.cv.Wait(inbox.mu);
  if (inbox.queue.empty()) return std::nullopt;
  std::shared_ptr<Request> request = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return RequestToken(std::move(request));
}

uint32_t MessageBus::Requester(const RequestToken& token) {
  return std::static_pointer_cast<Request>(token)->requester;
}

bool MessageBus::BeginReply(const RequestToken& token) {
  auto request = std::static_pointer_cast<Request>(token);
  MutexLock lock(request->mu);
  if (request->state != Request::State::kPending) {
    return false;  // the requester abandoned it at its deadline
  }
  request->state = Request::State::kReplying;
  return true;
}

void MessageBus::Reply(const RequestToken& token,
                       std::optional<std::vector<uint8_t>> payload) {
  auto request = std::static_pointer_cast<Request>(token);
  FRACTAL_TRACE_SPAN_V("bus/reply", payload.has_value() ? payload->size() : 0);
  MutexLock lock(request->mu);
  if (request->state == Request::State::kAbandoned) {
    // Reachable only without BeginReply (Shutdown drain / direct replies):
    // the requester is gone and — by the claim-after-commit contract — no
    // work was claimed for it, so dropping the reply loses nothing.
    FRACTAL_CHECK(!payload.has_value())
        << "work claimed for an abandoned steal request";
    return;
  }
  request->payload = std::move(payload);
  request->state = Request::State::kDone;
  request->cv.NotifyOne();
}

void MessageBus::Shutdown() {
  {
    MutexLock stop_lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  for (auto& inbox : inboxes_) {
    // Drain the queue under the inbox lock, but fail the drained requests
    // after releasing it: Reply takes Request::mu, which must not nest
    // inside Inbox::mu.
    std::deque<std::shared_ptr<Request>> pending;
    {
      MutexLock lock(inbox->mu);
      pending.swap(inbox->queue);
      inbox->cv.NotifyAll();
    }
    for (std::shared_ptr<Request>& request : pending) {
      Reply(request, std::nullopt);
    }
  }
}

}  // namespace fractal
