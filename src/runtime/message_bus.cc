#include "runtime/message_bus.h"

#include <chrono>
#include <thread>

#include "obs/trace.h"

namespace fractal {

MessageBus::MessageBus(uint32_t num_workers, const NetworkConfig& config)
    : config_(config) {
  inboxes_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void MessageBus::SimulateDelay(size_t payload_bytes) const {
  const int64_t micros =
      config_.latency_micros +
      (static_cast<int64_t>(payload_bytes) * config_.per_kb_micros) / 1024;
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

std::optional<std::vector<uint8_t>> MessageBus::RequestSteal(
    uint32_t requester, uint32_t victim) {
  FRACTAL_CHECK(victim < inboxes_.size());
  FRACTAL_CHECK(victim != requester) << "steal from self must be internal";
  if (stopped()) return std::nullopt;

  // Span covers the full round trip (request delay, victim service time,
  // reply delay); declared before any lock so both ends record lock-free.
  FRACTAL_TRACE_SPAN_V("bus/request_steal", victim);
  Request request;
  SimulateDelay(/*payload_bytes=*/16);  // request message
  {
    Inbox& inbox = *inboxes_[victim];
    MutexLock lock(inbox.mu);
    inbox.queue.push_back(&request);
    inbox.cv.NotifyOne();
  }
  std::optional<std::vector<uint8_t>> payload;
  {
    MutexLock lock(request.mu);
    while (!request.done) request.cv.Wait(request.mu);
    payload = std::move(request.payload);
  }
  if (!payload.has_value()) return std::nullopt;
  FRACTAL_TRACE_INSTANT("bus/reply_bytes", payload->size());
  SimulateDelay(payload->size());  // reply message
  return payload;
}

std::optional<MessageBus::RequestToken> MessageBus::WaitForRequest(
    uint32_t worker) {
  FRACTAL_CHECK(worker < inboxes_.size());
  Inbox& inbox = *inboxes_[worker];
  MutexLock lock(inbox.mu);
  // Wake-ups: a new request (NotifyOne in RequestSteal) or Shutdown's
  // NotifyAll. `stopped()` nests stop_mu_ inside Inbox::mu — that order is
  // part of the lock hierarchy (DESIGN.md).
  while (inbox.queue.empty() && !stopped()) inbox.cv.Wait(inbox.mu);
  if (inbox.queue.empty()) return std::nullopt;
  Request* request = inbox.queue.front();
  inbox.queue.pop_front();
  return static_cast<RequestToken>(request);
}

void MessageBus::Reply(RequestToken token,
                       std::optional<std::vector<uint8_t>> payload) {
  Request* request = static_cast<Request*>(token);
  FRACTAL_TRACE_SPAN_V("bus/reply", payload.has_value() ? payload->size() : 0);
  MutexLock lock(request->mu);
  request->payload = std::move(payload);
  request->done = true;
  request->cv.NotifyOne();
}

void MessageBus::Shutdown() {
  {
    MutexLock stop_lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  for (auto& inbox : inboxes_) {
    // Drain the queue under the inbox lock, but fail the drained requests
    // after releasing it: Reply takes Request::mu, which must not nest
    // inside Inbox::mu.
    std::deque<Request*> pending;
    {
      MutexLock lock(inbox->mu);
      pending.swap(inbox->queue);
      inbox->cv.NotifyAll();
    }
    for (Request* request : pending) Reply(request, std::nullopt);
  }
}

}  // namespace fractal
