#include "enumerate/scratch_arena.h"

#include "obs/metrics.h"

namespace fractal {
namespace {

obs::Counter& ScratchHits() {
  static obs::Counter& counter = obs::ScratchHitsCounter();
  return counter;
}
obs::Counter& ScratchMisses() {
  static obs::Counter& counter = obs::ScratchMissesCounter();
  return counter;
}

}  // namespace

std::vector<uint32_t>* ScratchArena::Acquire() {
  ++live_;
  if (!free_.empty()) {
    std::vector<uint32_t>* buffer = free_.back();
    free_.pop_back();
    buffer->clear();
    ScratchHits().Add(1);
    return buffer;
  }
  ScratchMisses().Add(1);
  owned_.push_back(std::make_unique<std::vector<uint32_t>>());
  return owned_.back().get();
}

void ScratchArena::Release(std::vector<uint32_t>* buffer) {
  FRACTAL_DCHECK(buffer != nullptr);
  FRACTAL_DCHECK(live_ > 0);
  --live_;
  free_.push_back(buffer);
}

}  // namespace fractal
