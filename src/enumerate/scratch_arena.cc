#include "enumerate/scratch_arena.h"

#include "obs/metrics.h"
#include "util/alloc_guard.h"

namespace fractal {
namespace {

obs::Counter& ScratchHits() {
  static obs::Counter& counter = obs::ScratchHitsCounter();
  return counter;
}
obs::Counter& ScratchMisses() {
  static obs::Counter& counter = obs::ScratchMissesCounter();
  return counter;
}

}  // namespace

FRACTAL_HOT std::vector<uint32_t>* ScratchArena::Acquire() {
  ++live_;
  if (!free_.empty()) {
    std::vector<uint32_t>* buffer = free_.back();
    free_.pop_back();
    buffer->clear();
    ScratchHits().Add(1);
    return buffer;
  }
  FRACTAL_HOT_ESCAPE("pool miss: the arena warms up to the DFS's peak "
                     "concurrent lease count, then every Acquire hits");
  AllocGuard::Allow allow("scratch arena pool growth");
  ScratchMisses().Add(1);
  owned_.push_back(std::make_unique<std::vector<uint32_t>>());
  // Keep free_ large enough for every buffer to come back at once, so the
  // matching Release (outside this Allow scope) never reallocates.
  free_.reserve(owned_.size());
  return owned_.back().get();
}

FRACTAL_HOT void ScratchArena::Release(std::vector<uint32_t>* buffer) {
  FRACTAL_DCHECK(buffer != nullptr);
  FRACTAL_DCHECK(live_ > 0);
  --live_;
  free_.push_back(buffer);
}

}  // namespace fractal
