// Subgraph: the unit of GPM computation (paper Definition 2) — a connected
// subgraph of the input graph represented by its vertex word and edge word
// in *addition order*. Designed for DFS enumeration: Push/Pop operations are
// O(k) and every push is recorded so it can be undone exactly.
//
// Membership bitset invariant (DESIGN.md §8): vertex_bits_ / edge_bits_
// mirror the vertex and edge words at all times — bit v is set iff v appears
// in the word. The bitsets grow lazily to the highest id ever inserted (not
// |V|), and copy construction/assignment touch only the O(k) set bits, so
// prefix snapshots taken by the enumerator and the steal path stay O(k).
#ifndef FRACTAL_ENUMERATE_SUBGRAPH_H_
#define FRACTAL_ENUMERATE_SUBGRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"
#include "util/alloc_guard.h"
#include "util/hot_annotations.h"

namespace fractal {

/// Mutable subgraph with push/pop growth. Not thread-safe (one per
/// execution thread); enumerator prefixes snapshot it by copy.
class Subgraph {
 public:
  Subgraph() = default;

  // Copies transfer the words and rebuild/clear bits in O(k); the bitset
  // storage itself is reused on assignment (no O(|V|) work, no shrink).
  Subgraph(const Subgraph& other);
  Subgraph& operator=(const Subgraph& other);
  Subgraph(Subgraph&&) = default;
  Subgraph& operator=(Subgraph&&) = default;

  void Clear();

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertices_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }
  bool Empty() const { return vertices_.empty() && edges_.empty(); }

  std::span<const VertexId> Vertices() const { return vertices_; }
  std::span<const EdgeId> Edges() const { return edges_; }

  VertexId VertexAt(uint32_t position) const { return vertices_[position]; }
  EdgeId EdgeAt(uint32_t position) const { return edges_[position]; }
  VertexId LastVertex() const { return vertices_.back(); }
  EdgeId LastEdge() const { return edges_.back(); }

  /// O(1) membership via the incremental bitsets.
  bool ContainsVertex(VertexId v) const { return TestBit(vertex_bits_, v); }
  bool ContainsEdge(EdgeId e) const { return TestBit(edge_bits_, e); }

  /// Vertex-induced push: appends v plus every edge connecting v to the
  /// current vertices (Fig. 1, vertex-induced extension). Hot-path root.
  FRACTAL_HOT void PushVertexInduced(const Graph& graph, VertexId v);

  /// Edge-induced push: appends edge e plus its endpoints that are not yet
  /// in the subgraph (Fig. 1, edge-induced extension). Hot-path root.
  FRACTAL_HOT void PushEdgeInduced(const Graph& graph, EdgeId e);

  /// Pattern-induced push: appends v plus exactly the given incident edges
  /// (the ones the reference pattern requires). Hot-path root.
  FRACTAL_HOT void PushVertexWithEdges(VertexId v,
                                       std::span<const EdgeId> edges);

  /// Undoes the most recent push (any kind). Hot-path root.
  FRACTAL_HOT void Pop();

  /// Number of pushes currently applied.
  uint32_t Depth() const { return static_cast<uint32_t>(records_.size()); }

  /// The labeled pattern of this subgraph over positions in addition order
  /// — the "quick pattern" memoization key for canonicalization.
  Pattern QuickPattern(const Graph& graph) const;

  std::string ToString() const;

  friend bool operator==(const Subgraph& a, const Subgraph& b) {
    return a.vertices_ == b.vertices_ && a.edges_ == b.edges_;
  }

 private:
  friend class SubgraphCodec;

  struct PushRecord {
    uint8_t vertices_added = 0;
    uint8_t edges_added = 0;
  };

  static bool TestBit(const std::vector<uint64_t>& bits, uint32_t id) {
    const size_t word = id >> 6;
    return word < bits.size() && ((bits[word] >> (id & 63)) & 1) != 0;
  }
  FRACTAL_HOT static void SetBit(FRACTAL_ARENA_OUT std::vector<uint64_t>& bits,
                                 uint32_t id) {
    const size_t word = id >> 6;
    if (word >= bits.size()) {
      FRACTAL_HOT_ESCAPE("bitset grows to the highest id ever seen, then "
                         "stays at capacity for the rest of the step");
      AllocGuard::Allow allow("bitset high-water-mark growth");
      bits.resize(word + 1, 0);
    }
    bits[word] |= uint64_t{1} << (id & 63);
  }
  static void ClearBit(std::vector<uint64_t>& bits, uint32_t id) {
    const size_t word = id >> 6;
    if (word < bits.size()) bits[word] &= ~(uint64_t{1} << (id & 63));
  }

  /// Recomputes both bitsets from the words (used after codec decode and by
  /// the copy operations).
  void RebuildBits();

  /// Secures headroom for one push (<= 2 vertices, 1 record, max_new_edges
  /// edges) so the appends in the Push* bodies never reallocate; amortized
  /// high-water-mark growth of the recycled words happens here, under an
  /// AllocGuard::Allow.
  FRACTAL_HOT void ReserveForPush(size_t max_new_edges);

  // Recycled storage: the words and bitsets keep their grown capacity across
  // Clear/assignment (class comment), so amortized growth on them is part of
  // the zero-steady-state-allocation design — hence FRACTAL_ARENA_OUT.
  FRACTAL_ARENA_OUT std::vector<VertexId> vertices_;
  FRACTAL_ARENA_OUT std::vector<EdgeId> edges_;
  FRACTAL_ARENA_OUT std::vector<PushRecord> records_;
  // One bit per id present in the corresponding word; see class comment.
  FRACTAL_ARENA_OUT std::vector<uint64_t> vertex_bits_;
  FRACTAL_ARENA_OUT std::vector<uint64_t> edge_bits_;
};

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_SUBGRAPH_H_
