// Subgraph: the unit of GPM computation (paper Definition 2) — a connected
// subgraph of the input graph represented by its vertex word and edge word
// in *addition order*. Designed for DFS enumeration: Push/Pop operations are
// O(k) and every push is recorded so it can be undone exactly.
#ifndef FRACTAL_ENUMERATE_SUBGRAPH_H_
#define FRACTAL_ENUMERATE_SUBGRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace fractal {

/// Mutable subgraph with push/pop growth. Not thread-safe (one per
/// execution thread); enumerator prefixes snapshot it by copy.
class Subgraph {
 public:
  Subgraph() = default;

  void Clear();

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertices_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }
  bool Empty() const { return vertices_.empty() && edges_.empty(); }

  std::span<const VertexId> Vertices() const { return vertices_; }
  std::span<const EdgeId> Edges() const { return edges_; }

  VertexId VertexAt(uint32_t position) const { return vertices_[position]; }
  EdgeId EdgeAt(uint32_t position) const { return edges_[position]; }
  VertexId LastVertex() const { return vertices_.back(); }
  EdgeId LastEdge() const { return edges_.back(); }

  bool ContainsVertex(VertexId v) const;
  bool ContainsEdge(EdgeId e) const;

  /// Vertex-induced push: appends v plus every edge connecting v to the
  /// current vertices (Fig. 1, vertex-induced extension).
  void PushVertexInduced(const Graph& graph, VertexId v);

  /// Edge-induced push: appends edge e plus its endpoints that are not yet
  /// in the subgraph (Fig. 1, edge-induced extension).
  void PushEdgeInduced(const Graph& graph, EdgeId e);

  /// Pattern-induced push: appends v plus exactly the given incident edges
  /// (the ones the reference pattern requires).
  void PushVertexWithEdges(VertexId v, std::span<const EdgeId> edges);

  /// Undoes the most recent push (any kind).
  void Pop();

  /// Number of pushes currently applied.
  uint32_t Depth() const { return static_cast<uint32_t>(records_.size()); }

  /// The labeled pattern of this subgraph over positions in addition order
  /// — the "quick pattern" memoization key for canonicalization.
  Pattern QuickPattern(const Graph& graph) const;

  std::string ToString() const;

  friend bool operator==(const Subgraph& a, const Subgraph& b) {
    return a.vertices_ == b.vertices_ && a.edges_ == b.edges_;
  }

 private:
  friend class SubgraphCodec;

  struct PushRecord {
    uint8_t vertices_added = 0;
    uint8_t edges_added = 0;
  };

  std::vector<VertexId> vertices_;
  std::vector<EdgeId> edges_;
  std::vector<PushRecord> records_;
};

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_SUBGRAPH_H_
