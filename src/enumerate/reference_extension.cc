#include "enumerate/reference_extension.h"

#include <algorithm>

namespace fractal {
namespace {

// Seed-style adjacency test: binary search from the lower-degree endpoint.
// Deliberately not Graph::IsAdjacent — the reference path must not benefit
// from the hub bitmaps (see file comment in reference_extension.h).
bool Adjacent(const Graph& graph, VertexId u, VertexId v) {
  return graph.EdgeBetween(u, v).has_value();
}

/// Arabesque canonical check for vertex words: candidate u extends the word
/// canonically iff u > word[0] and u > word[i] for every position i after
/// u's first attachment point. Returns false when u is not connected at all.
bool CanonicalVertexExtension(const Graph& graph,
                              std::span<const VertexId> word, VertexId u) {
  if (u < word[0]) return false;
  bool found_neighbor = false;
  for (const VertexId w : word) {
    if (!found_neighbor) {
      if (Adjacent(graph, w, u)) found_neighbor = true;
    } else if (u < w) {
      return false;
    }
  }
  return found_neighbor;
}

/// First position in the vertex word adjacent to u, or word size if none.
uint32_t FirstAttachment(const Graph& graph, std::span<const VertexId> word,
                         VertexId u) {
  for (uint32_t i = 0; i < word.size(); ++i) {
    if (Adjacent(graph, word[i], u)) return i;
  }
  return static_cast<uint32_t>(word.size());
}

/// Whether edges a and b share an endpoint.
bool EdgesTouch(const Graph& graph, EdgeId a, EdgeId b) {
  const EdgeEndpoints& ea = graph.Endpoints(a);
  const EdgeEndpoints& eb = graph.Endpoints(b);
  return ea.src == eb.src || ea.src == eb.dst || ea.dst == eb.src ||
         ea.dst == eb.dst;
}

/// Linear membership scan (the pre-bitset Subgraph::ContainsVertex).
bool WordContainsVertex(std::span<const VertexId> word, VertexId v) {
  return std::find(word.begin(), word.end(), v) != word.end();
}
bool WordContainsEdge(std::span<const EdgeId> word, EdgeId e) {
  return std::find(word.begin(), word.end(), e) != word.end();
}

}  // namespace

void ReferenceVertexInducedStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (graph.IsVertexActive(v)) out->push_back(v);
    }
    return;
  }
  const auto word = subgraph.Vertices();
  // Emit each candidate exactly once: from its first attachment position.
  for (uint32_t position = 0; position < word.size(); ++position) {
    for (const VertexId u : graph.Neighbors(word[position])) {
      ++ctx.extension_tests;
      if (WordContainsVertex(word, u)) continue;
      if (FirstAttachment(graph, word, u) != position) continue;
      if (!CanonicalVertexExtension(graph, word, u)) continue;
      out->push_back(u);
    }
  }
}

void ReferenceVertexInducedStrategy::Apply(const Graph& graph,
                                           uint32_t extension,
                                           Subgraph* subgraph) const {
  subgraph->PushVertexInduced(graph, extension);
}

void ReferenceEdgeInducedStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
      ++ctx.extension_tests;
      out->push_back(e);
    }
    return;
  }
  const auto word = subgraph.Edges();
  // Candidates: edges incident to any subgraph vertex. Emit a candidate
  // only while scanning its first touching word position; then apply the
  // canonical word check (the edge analog of the vertex rule).
  for (uint32_t position = 0; position < word.size(); ++position) {
    const EdgeEndpoints& base = graph.Endpoints(word[position]);
    for (const VertexId endpoint : {base.src, base.dst}) {
      for (const EdgeId candidate : graph.IncidentEdges(endpoint)) {
        ++ctx.extension_tests;
        if (candidate < word[0]) continue;
        if (WordContainsEdge(word, candidate)) continue;
        // First touching position must be `position` (dedup across the two
        // endpoint scans is handled below: a candidate touching base.src is
        // also seen from base.dst only if it touches both, in which case we
        // keep the src scan occurrence).
        uint32_t first_touch = UINT32_MAX;
        for (uint32_t i = 0; i <= position; ++i) {
          if (EdgesTouch(graph, word[i], candidate)) {
            first_touch = i;
            break;
          }
        }
        if (first_touch != position) continue;
        if (endpoint == base.dst &&
            EdgesTouch(graph, word[position], candidate) && [&] {
              const EdgeEndpoints& ec = graph.Endpoints(candidate);
              return ec.src == base.src || ec.dst == base.src;
            }()) {
          continue;  // already emitted from the src endpoint scan
        }
        // Canonical word check: candidate must exceed every word element
        // after its first touching position.
        bool canonical = true;
        for (uint32_t i = position + 1; i < word.size(); ++i) {
          if (candidate < word[i]) {
            canonical = false;
            break;
          }
        }
        if (canonical) out->push_back(candidate);
      }
    }
  }
}

void ReferenceEdgeInducedStrategy::Apply(const Graph& graph,
                                         uint32_t extension,
                                         Subgraph* subgraph) const {
  subgraph->PushEdgeInduced(graph, extension);
}

void ReferenceKClistStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (graph.IsVertexActive(v)) out->push_back(v);
    }
    return;
  }
  const auto word = subgraph.Vertices();
  const VertexId last = word.back();
  // Pivot on the smallest-degree clique vertex; candidates must be > last
  // (increasing order gives each clique once) and adjacent to all.
  uint32_t pivot = 0;
  for (uint32_t i = 1; i < word.size(); ++i) {
    if (graph.Degree(word[i]) < graph.Degree(word[pivot])) pivot = i;
  }
  const auto neighbors = graph.Neighbors(word[pivot]);
  const auto begin = std::upper_bound(neighbors.begin(), neighbors.end(), last);
  for (auto it = begin; it != neighbors.end(); ++it) {
    const VertexId u = *it;
    bool ok = true;
    for (uint32_t i = 0; i < word.size(); ++i) {
      if (i == pivot) continue;
      ++ctx.extension_tests;
      if (!Adjacent(graph, word[i], u)) {
        ok = false;
        break;
      }
    }
    if (word.size() == 1) ++ctx.extension_tests;
    if (ok) out->push_back(u);
  }
}

void ReferenceKClistStrategy::Apply(const Graph& graph, uint32_t extension,
                                    Subgraph* subgraph) const {
  subgraph->PushVertexInduced(graph, extension);
}

}  // namespace fractal
