#include "enumerate/enumerator.h"

namespace fractal {

void SubgraphEnumerator::Refill(const Subgraph& prefix,
                                uint32_t primitive_index,
                                std::vector<uint32_t>&& extensions) {
  MutexLock lock(mu_);
  prefix_ = prefix;
  primitive_index_ = primitive_index;
  extensions_.swap(extensions);
  size_hint_.store(static_cast<uint32_t>(extensions_.size()),
                   std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void SubgraphEnumerator::Deactivate() {
  MutexLock lock(mu_);
  active_.store(false, std::memory_order_release);
}

std::optional<SubgraphEnumerator::StolenWork> SubgraphEnumerator::TrySteal() {
  MutexLock lock(mu_);
  if (!active_.load(std::memory_order_acquire)) return std::nullopt;
  const uint32_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (index >= extensions_.size()) return std::nullopt;
  StolenWork work;
  work.prefix = prefix_;
  work.extension = extensions_[index];
  work.primitive_index = primitive_index_;
  return work;
}

}  // namespace fractal
