#include "enumerate/enumerator.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/alloc_guard.h"

namespace fractal {
namespace {

// Cached handle: the registry lookup (which locks MetricsRegistry::mu) runs
// once; callers grab the reference before taking SubgraphEnumerator::mu.
// The init can land mid-run on a guarded thread, so the key temporary is
// built under an Allow (GetCounter covers its own allocations).
obs::Counter& EnumerateStealsCounter() {
  static obs::Counter& counter = []() -> obs::Counter& {
    AllocGuard::Allow allow("one-time metric-handle registration");
    return obs::MetricsRegistry::Get().GetCounter("enumerate.steals");
  }();
  return counter;
}

}  // namespace

FRACTAL_HOT void SubgraphEnumerator::Refill(
    const Subgraph& prefix, uint32_t primitive_index,
    std::vector<uint32_t>&& extensions) {
  // Span and histogram record before mu_ is taken (and the span's end after
  // it is released): no trace-buffer work under the enumerator steal lock.
  FRACTAL_TRACE_SPAN_V("enumerate/refill", extensions.size());
  obs::ExtensionBatchHistogram().Record(extensions.size());
  MutexLock lock(mu_);
  prefix_ = prefix;
  primitive_index_ = primitive_index;
  extensions_.swap(extensions);
  size_hint_.store(static_cast<uint32_t>(extensions_.size()),
                   std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void SubgraphEnumerator::Deactivate() {
  MutexLock lock(mu_);
  active_.store(false, std::memory_order_release);
}

FRACTAL_HOT bool SubgraphEnumerator::TrySteal(StolenWork* out) {
  obs::Counter& steals = EnumerateStealsCounter();
  MutexLock lock(mu_);
  if (!active_.load(std::memory_order_acquire)) return false;
  const uint32_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (index >= extensions_.size()) return false;
  out->prefix = prefix_;
  out->extension = extensions_[index];
  out->primitive_index = primitive_index_;
  steals.Add(1);  // lock-free atomic; safe under mu_
  return true;
}

}  // namespace fractal
