// SubgraphEnumerator (paper §4.1, Fig. 7): holds an enumeration prefix (the
// subgraph under extension) plus its precomputed extension candidates and a
// consumption cursor. One enumerator lives at each DFS level of each
// execution thread and is *reused* across siblings at that level.
//
// Work stealing (paper §4.2) is implemented directly on this structure: the
// extension cursor is atomic and consumption is thread-safe, so an idle
// thread can claim one pending extension together with a snapshot of the
// prefix — a self-contained piece of work that can also be serialized and
// shipped to another worker (external stealing).
//
// Concurrency contract:
//   * the owner thread Refill()s and Deactivate()s the enumerator and
//     consumes extensions lock-free (only the owner mutates storage);
//   * thieves TrySteal() under the mutex, which guarantees the prefix and
//     extension storage stay valid while they copy.
#ifndef FRACTAL_ENUMERATE_ENUMERATOR_H_
#define FRACTAL_ENUMERATE_ENUMERATOR_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "enumerate/subgraph.h"
#include "util/hot_annotations.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fractal {

class SubgraphEnumerator {
 public:
  SubgraphEnumerator() = default;

  SubgraphEnumerator(const SubgraphEnumerator&) = delete;
  SubgraphEnumerator& operator=(const SubgraphEnumerator&) = delete;

  /// Owner: installs a new prefix and extension set; resets the cursor and
  /// activates the enumerator. `extensions` is consumed (swap), so its grown
  /// storage keeps circulating between the enumerator and the DFS's arena
  /// buffers. Hot-path root: once per DFS node.
  FRACTAL_HOT void Refill(const Subgraph& prefix, uint32_t primitive_index,
                          std::vector<uint32_t>&& extensions) EXCLUDES(mu_);

  /// Owner: marks the enumerator empty. Blocks until in-flight steals
  /// finish copying, after which the prefix may be invalidated.
  void Deactivate() EXCLUDES(mu_);

  /// Owner: claims the next extension, or nullopt when exhausted.
  /// Lock-free: reads `extensions_` without mu_, which is sound because
  /// only the owner mutates storage (Refill/Deactivate) and the owner is
  /// the sole caller of ConsumeNext — a contract the static analysis cannot
  /// express, hence the opt-out annotation.
  FRACTAL_HOT std::optional<uint32_t> ConsumeNext() NO_THREAD_SAFETY_ANALYSIS {
    if (!active_.load(std::memory_order_acquire)) return std::nullopt;
    const uint32_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (index >= extensions_.size()) return std::nullopt;
    return extensions_[index];
  }

  /// One unit of stolen work: prefix + a single claimed extension, plus the
  /// primitive index at which processing of the extended subgraph resumes.
  /// When a step runs with a LineageLedger (salvage retry mode), the steal
  /// path stamps the claim and carries the ledger record id here so the
  /// thief can stamp completion; 0 otherwise (runtime/lineage.h).
  struct StolenWork {
    Subgraph prefix;
    uint32_t extension = 0;
    uint32_t primitive_index = 0;
    uint64_t lineage_id = 0;
  };

  /// Thief: claims one extension and snapshots the prefix into `*out`.
  /// Returns false (leaving `*out` unspecified) when inactive or exhausted.
  /// Out-parameter form so callers can reuse one StolenWork across attempts:
  /// the prefix snapshot is then an amortized O(k) copy-assign into grown
  /// storage instead of a fresh allocation per steal. Hot-path root (the
  /// internal steal path runs it in the worker's idle loop).
  FRACTAL_HOT bool TrySteal(StolenWork* out) EXCLUDES(mu_);

  /// Racy hint for victim selection: whether unclaimed extensions remain.
  /// May be stale by the time the caller acts on it; TrySteal() revalidates
  /// under the mutex.
  FRACTAL_HOT bool LooksNonEmpty() const {
    return active_.load(std::memory_order_relaxed) &&
           cursor_.load(std::memory_order_relaxed) <
               size_hint_.load(std::memory_order_relaxed);
  }

  /// Owner-only (same contract as ConsumeNext: the owner is the only
  /// mutator, so its own unlocked read cannot race).
  uint32_t primitive_index() const NO_THREAD_SAFETY_ANALYSIS {
    return primitive_index_;
  }

 private:
  mutable Mutex mu_{"SubgraphEnumerator::mu"};
  std::atomic<uint32_t> cursor_{0};
  std::atomic<bool> active_{false};
  // extensions_.size(), readable without the lock (hint only).
  std::atomic<uint32_t> size_hint_{0};
  uint32_t primitive_index_ GUARDED_BY(mu_) = 0;
  // Recycled through Refill's swap with the DFS expansion buffer.
  FRACTAL_ARENA_OUT std::vector<uint32_t> extensions_ GUARDED_BY(mu_);
  Subgraph prefix_ GUARDED_BY(mu_);
};

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_ENUMERATOR_H_
