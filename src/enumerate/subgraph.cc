#include "enumerate/subgraph.h"

#include <algorithm>
#include <sstream>

namespace fractal {

void Subgraph::Clear() {
  vertices_.clear();
  edges_.clear();
  records_.clear();
}

bool Subgraph::ContainsVertex(VertexId v) const {
  return std::find(vertices_.begin(), vertices_.end(), v) != vertices_.end();
}

bool Subgraph::ContainsEdge(EdgeId e) const {
  return std::find(edges_.begin(), edges_.end(), e) != edges_.end();
}

void Subgraph::PushVertexInduced(const Graph& graph, VertexId v) {
  FRACTAL_DCHECK(!ContainsVertex(v));
  PushRecord record;
  record.vertices_added = 1;
  // Add edges in the order of the existing vertex word so that the edge word
  // is a deterministic function of the vertex word.
  for (const VertexId existing : vertices_) {
    if (const auto edge = graph.EdgeBetween(existing, v)) {
      edges_.push_back(*edge);
      ++record.edges_added;
    }
  }
  vertices_.push_back(v);
  records_.push_back(record);
}

void Subgraph::PushEdgeInduced(const Graph& graph, EdgeId e) {
  FRACTAL_DCHECK(!ContainsEdge(e));
  const EdgeEndpoints& endpoints = graph.Endpoints(e);
  PushRecord record;
  record.edges_added = 1;
  edges_.push_back(e);
  if (!ContainsVertex(endpoints.src)) {
    vertices_.push_back(endpoints.src);
    ++record.vertices_added;
  }
  if (!ContainsVertex(endpoints.dst)) {
    vertices_.push_back(endpoints.dst);
    ++record.vertices_added;
  }
  records_.push_back(record);
}

void Subgraph::PushVertexWithEdges(VertexId v, std::span<const EdgeId> edges) {
  FRACTAL_DCHECK(!ContainsVertex(v));
  PushRecord record;
  record.vertices_added = 1;
  for (const EdgeId e : edges) {
    FRACTAL_DCHECK(!ContainsEdge(e));
    edges_.push_back(e);
    ++record.edges_added;
  }
  vertices_.push_back(v);
  records_.push_back(record);
}

void Subgraph::Pop() {
  FRACTAL_CHECK(!records_.empty()) << "Pop on empty subgraph";
  const PushRecord record = records_.back();
  records_.pop_back();
  vertices_.resize(vertices_.size() - record.vertices_added);
  edges_.resize(edges_.size() - record.edges_added);
}

Pattern Subgraph::QuickPattern(const Graph& graph) const {
  Pattern pattern;
  for (const VertexId v : vertices_) {
    pattern.AddVertex(graph.VertexLabel(v));
  }
  for (const EdgeId e : edges_) {
    const EdgeEndpoints& endpoints = graph.Endpoints(e);
    uint32_t src_position = 0;
    uint32_t dst_position = 0;
    for (uint32_t i = 0; i < vertices_.size(); ++i) {
      if (vertices_[i] == endpoints.src) src_position = i;
      if (vertices_[i] == endpoints.dst) dst_position = i;
    }
    pattern.AddEdge(src_position, dst_position, graph.GetEdgeLabel(e));
  }
  return pattern;
}

std::string Subgraph::ToString() const {
  std::ostringstream out;
  out << "V[";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i) out << ' ';
    out << vertices_[i];
  }
  out << "] E[";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i) out << ' ';
    out << edges_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace fractal
