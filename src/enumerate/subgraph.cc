#include "enumerate/subgraph.h"

#include <algorithm>
#include <sstream>

namespace fractal {

Subgraph::Subgraph(const Subgraph& other)
    : vertices_(other.vertices_),
      edges_(other.edges_),
      records_(other.records_) {
  RebuildBits();
}

Subgraph& Subgraph::operator=(const Subgraph& other) {
  if (this == &other) return *this;
  // Clear only the bits we set (O(k)), then adopt the new words. The bitset
  // storage is kept so steady-state prefix assignment allocates nothing.
  for (const VertexId v : vertices_) ClearBit(vertex_bits_, v);
  for (const EdgeId e : edges_) ClearBit(edge_bits_, e);
  if (vertices_.capacity() < other.vertices_.size() ||
      edges_.capacity() < other.edges_.size() ||
      records_.capacity() < other.records_.size()) {
    // A denser subgraph than any this frame has held: grow the recycled
    // word storage once to the new high-water mark. With ample capacity the
    // copy-assignments below never reallocate.
    AllocGuard::Allow allow("prefix storage high-water-mark growth");
    vertices_.reserve(other.vertices_.size());
    edges_.reserve(other.edges_.size());
    records_.reserve(other.records_.size());
  }
  vertices_ = other.vertices_;
  edges_ = other.edges_;
  records_ = other.records_;
  for (const VertexId v : vertices_) SetBit(vertex_bits_, v);
  for (const EdgeId e : edges_) SetBit(edge_bits_, e);
  return *this;
}

void Subgraph::Clear() {
  for (const VertexId v : vertices_) ClearBit(vertex_bits_, v);
  for (const EdgeId e : edges_) ClearBit(edge_bits_, e);
  vertices_.clear();
  edges_.clear();
  records_.clear();
}

void Subgraph::RebuildBits() {
  std::fill(vertex_bits_.begin(), vertex_bits_.end(), 0);
  std::fill(edge_bits_.begin(), edge_bits_.end(), 0);
  for (const VertexId v : vertices_) SetBit(vertex_bits_, v);
  for (const EdgeId e : edges_) SetBit(edge_bits_, e);
}

FRACTAL_HOT void Subgraph::ReserveForPush(size_t max_new_edges) {
  if (vertices_.size() + 2 <= vertices_.capacity() &&
      records_.size() + 1 <= records_.capacity() &&
      edges_.size() + max_new_edges <= edges_.capacity()) {
    return;
  }
  FRACTAL_HOT_ESCAPE("word storage grows to the frame's densest subgraph, "
                     "then stays at capacity");
  AllocGuard::Allow allow("subgraph word high-water-mark growth");
  const auto grow = [](auto& v, size_t needed) {
    if (v.capacity() < needed) {
      const size_t doubled = v.capacity() * 2;
      v.reserve(needed > doubled ? needed : doubled);
    }
  };
  grow(vertices_, vertices_.size() + 2);
  grow(records_, records_.size() + 1);
  grow(edges_, edges_.size() + max_new_edges);
}

FRACTAL_HOT void Subgraph::PushVertexInduced(const Graph& graph, VertexId v) {
  FRACTAL_DCHECK(!ContainsVertex(v));
  // Every existing vertex contributes at most one edge to v.
  ReserveForPush(vertices_.size());
  PushRecord record;
  record.vertices_added = 1;
  // Add edges in the order of the existing vertex word so that the edge word
  // is a deterministic function of the vertex word.
  for (const VertexId existing : vertices_) {
    if (const auto edge = graph.EdgeBetween(existing, v)) {
      edges_.push_back(*edge);
      SetBit(edge_bits_, *edge);
      ++record.edges_added;
    }
  }
  vertices_.push_back(v);
  SetBit(vertex_bits_, v);
  records_.push_back(record);
}

FRACTAL_HOT void Subgraph::PushEdgeInduced(const Graph& graph, EdgeId e) {
  FRACTAL_DCHECK(!ContainsEdge(e));
  ReserveForPush(1);
  const EdgeEndpoints& endpoints = graph.Endpoints(e);
  PushRecord record;
  record.edges_added = 1;
  edges_.push_back(e);
  SetBit(edge_bits_, e);
  if (!ContainsVertex(endpoints.src)) {
    vertices_.push_back(endpoints.src);
    SetBit(vertex_bits_, endpoints.src);
    ++record.vertices_added;
  }
  if (!ContainsVertex(endpoints.dst)) {
    vertices_.push_back(endpoints.dst);
    SetBit(vertex_bits_, endpoints.dst);
    ++record.vertices_added;
  }
  records_.push_back(record);
}

FRACTAL_HOT void Subgraph::PushVertexWithEdges(VertexId v,
                                               std::span<const EdgeId> edges) {
  FRACTAL_DCHECK(!ContainsVertex(v));
  ReserveForPush(edges.size());
  PushRecord record;
  record.vertices_added = 1;
  for (const EdgeId e : edges) {
    FRACTAL_DCHECK(!ContainsEdge(e));
    edges_.push_back(e);
    SetBit(edge_bits_, e);
    ++record.edges_added;
  }
  vertices_.push_back(v);
  SetBit(vertex_bits_, v);
  records_.push_back(record);
}

FRACTAL_HOT void Subgraph::Pop() {
  FRACTAL_CHECK(!records_.empty()) << "Pop on empty subgraph";
  const PushRecord record = records_.back();
  records_.pop_back();
  for (uint8_t i = 0; i < record.vertices_added; ++i) {
    ClearBit(vertex_bits_, vertices_.back());
    vertices_.pop_back();
  }
  for (uint8_t i = 0; i < record.edges_added; ++i) {
    ClearBit(edge_bits_, edges_.back());
    edges_.pop_back();
  }
}

Pattern Subgraph::QuickPattern(const Graph& graph) const {
  Pattern pattern;
  for (const VertexId v : vertices_) {
    pattern.AddVertex(graph.VertexLabel(v));
  }
  for (const EdgeId e : edges_) {
    const EdgeEndpoints& endpoints = graph.Endpoints(e);
    uint32_t src_position = 0;
    uint32_t dst_position = 0;
    for (uint32_t i = 0; i < vertices_.size(); ++i) {
      if (vertices_[i] == endpoints.src) src_position = i;
      if (vertices_[i] == endpoints.dst) dst_position = i;
    }
    pattern.AddEdge(src_position, dst_position, graph.GetEdgeLabel(e));
  }
  return pattern;
}

std::string Subgraph::ToString() const {
  std::ostringstream out;
  out << "V[";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i) out << ' ';
    out << vertices_[i];
  }
  out << "] E[";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i) out << ' ';
    out << edges_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace fractal
