// ScratchArena: per-thread reusable buffers for the enumeration data plane
// (DESIGN.md §8). The DFS in core/fractoid_task.cc and the set-algebra
// kernels in enumerate/extension.cc need short-lived uint32 arrays at every
// expansion; drawing them from a pool keyed to the thread means steady-state
// enumeration performs no heap allocation — every Acquire() is a pop off the
// free list that keeps the vector's grown capacity.
//
// Ownership rules:
//   * One arena per execution thread (it lives inside ExtensionContext,
//     which lives inside Computation). Never shared across threads; no
//     locking anywhere.
//   * Acquire()/Release() must pair LIFO-or-not — the pool doesn't care —
//     but a released buffer must not be touched again. Use BufferLease for
//     scope-bound pairing.
//   * Buffers are cleared on Acquire but keep capacity; callers must not
//     assume a fresh allocation.
//
// Instrumentation: "enumerate.scratch_hits" counts pool reuses,
// "enumerate.scratch_misses" counts acquisitions that allocated.
#ifndef FRACTAL_ENUMERATE_SCRATCH_ARENA_H_
#define FRACTAL_ENUMERATE_SCRATCH_ARENA_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/hot_annotations.h"

namespace fractal {

class ScratchArena {
 public:
  ScratchArena() = default;

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns an empty buffer (capacity preserved from prior use). The
  /// pointer stays valid until Release — buffers are node-allocated, so
  /// later Acquires never move earlier ones. Hot-path root: steady state is
  /// a free-list pop; only the cold miss branch allocates.
  FRACTAL_HOT std::vector<uint32_t>* Acquire();

  /// Returns a buffer to the pool. `buffer` must come from Acquire() on
  /// this arena and must not be used afterwards. Hot-path root.
  FRACTAL_HOT void Release(std::vector<uint32_t>* buffer);

  /// Buffers currently out on loan (diagnostics / tests).
  size_t live_buffers() const { return live_; }
  /// Buffers ever allocated by this arena (loaned + pooled).
  size_t total_buffers() const { return owned_.size(); }

  /// Scope-bound Acquire/Release pair.
  class BufferLease {
   public:
    explicit BufferLease(ScratchArena& arena)
        : arena_(arena), buffer_(arena.Acquire()) {}
    ~BufferLease() { arena_.Release(buffer_); }

    BufferLease(const BufferLease&) = delete;
    BufferLease& operator=(const BufferLease&) = delete;

    std::vector<uint32_t>& operator*() { return *buffer_; }
    std::vector<uint32_t>* operator->() { return buffer_; }
    std::vector<uint32_t>* get() { return buffer_; }

   private:
    ScratchArena& arena_;
    std::vector<uint32_t>* buffer_;
  };

  /// Epoch-stamped VertexId -> uint32 map with O(1) lookup and O(1) reset:
  /// Reset() bumps the epoch instead of clearing storage, so reusing the
  /// map across ComputeExtensions calls costs nothing. Storage grows to the
  /// largest capacity ever requested and is then reused.
  class StampedMap {
   public:
    static constexpr uint32_t kAbsent = UINT32_MAX;

    /// Empties the map and ensures keys [0, capacity) are addressable.
    FRACTAL_HOT void Reset(uint32_t capacity) {
      if (capacity > values_.size()) {
        FRACTAL_HOT_ESCAPE("map storage grows once to the largest capacity "
                           "requested, then is reused every call");
        values_.resize(capacity, 0);
        stamps_.resize(capacity, 0);
      }
      if (++epoch_ == 0) {  // stamp wraparound: invalidate all entries
        std::fill(stamps_.begin(), stamps_.end(), 0);
        epoch_ = 1;
      }
    }

    uint32_t Get(uint32_t key) const {
      FRACTAL_DCHECK(key < values_.size());
      return stamps_[key] == epoch_ ? values_[key] : kAbsent;
    }

    void Set(uint32_t key, uint32_t value) {
      FRACTAL_DCHECK(key < values_.size());
      FRACTAL_DCHECK(value != kAbsent);
      stamps_[key] = epoch_;
      values_[key] = value;
    }

   private:
    std::vector<uint32_t> values_;
    std::vector<uint32_t> stamps_;
    uint32_t epoch_ = 0;
  };

  StampedMap& vertex_map() { return vertex_map_; }

 private:
  // All buffers ever created (stable node allocation); free_ holds the
  // subset currently available. free_ is arena storage itself: Acquire's
  // miss branch reserves it to owned_.size(), so Release's push_back never
  // reallocates.
  std::vector<std::unique_ptr<std::vector<uint32_t>>> owned_;
  FRACTAL_ARENA_OUT std::vector<std::vector<uint32_t>*> free_;
  size_t live_ = 0;
  StampedMap vertex_map_;
};

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_SCRATCH_ARENA_H_
