// Extension strategies: the E primitive of the Fractal computation model
// (paper §3, Fig. 1). A strategy computes, for a given subgraph, the set of
// extension candidates (encoded as uint32 ids — vertex ids or edge ids
// depending on the strategy) and knows how to apply/undo a candidate on a
// subgraph. Strategies are immutable and shared across threads; all mutable
// state lives in the subgraph and the per-thread ExtensionContext.
//
// Duplicate-freedom:
//   * vertex- and edge-induced modes use Arabesque-style canonical subgraph
//     checking: each connected (vertex|edge) set is produced by exactly one
//     addition order (the word must start at its minimum element, and each
//     appended element must exceed every element that follows its first
//     attachment point in the word);
//   * pattern-induced mode uses Grochow–Kellis symmetry breaking on the
//     reference pattern's automorphisms.
#ifndef FRACTAL_ENUMERATE_EXTENSION_H_
#define FRACTAL_ENUMERATE_EXTENSION_H_

#include <memory>
#include <vector>

#include "enumerate/scratch_arena.h"
#include "enumerate/subgraph.h"
#include "graph/graph.h"
#include "pattern/automorphism.h"
#include "pattern/pattern.h"
#include "util/hot_annotations.h"

namespace fractal {

/// Per-thread counters and scratch space charged/used by extension
/// computation. `extension_tests` is the paper's EC (extension cost) metric
/// (§4.3): one unit per candidate test performed while computing extension
/// sets. `arena` feeds the set-algebra kernels' intermediate buffers and the
/// DFS expansion buffers (one context per execution thread, so the arena is
/// single-owner; see scratch_arena.h for the ownership rules).
struct ExtensionContext {
  uint64_t extension_tests = 0;
  ScratchArena arena;
};

/// Strategy interface (one implementation per fractoid type).
class ExtensionStrategy {
 public:
  virtual ~ExtensionStrategy() = default;

  /// Appends the extension candidates of `subgraph` to `out` (cleared
  /// first). With an empty subgraph this yields the root extensions: all
  /// active vertices (vertex/pattern modes) or all edges (edge mode).
  /// Hot-path root: called once per DFS node (DESIGN.md §9).
  FRACTAL_HOT virtual void ComputeExtensions(
      const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
      FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const = 0;

  /// Pushes candidate `extension` onto the subgraph. Hot-path root.
  FRACTAL_HOT virtual void Apply(const Graph& graph, uint32_t extension,
                                 Subgraph* subgraph) const = 0;

  /// Undoes the most recent Apply. Hot-path root.
  FRACTAL_HOT virtual void Undo(const Graph& /*graph*/,
                                Subgraph* subgraph) const {
    subgraph->Pop();
  }

  /// Maximum subgraph depth this strategy can extend to, or 0 for unbounded
  /// (pattern-induced stops at the pattern size).
  virtual uint32_t MaxDepth() const { return 0; }
};

/// Vertex-induced extension with canonical subgraph checking. Used by
/// motifs, cliques, triangles (Listings 1-2).
class VertexInducedStrategy : public ExtensionStrategy {
 public:
  FRACTAL_HOT void ComputeExtensions(
      const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
      FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const override;
  FRACTAL_HOT void Apply(const Graph& graph, uint32_t extension,
                         Subgraph* subgraph) const override;
};

/// Edge-induced extension with canonical subgraph checking. Used by FSM and
/// keyword search (Listings 3-4).
class EdgeInducedStrategy : public ExtensionStrategy {
 public:
  FRACTAL_HOT void ComputeExtensions(
      const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
      FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const override;
  FRACTAL_HOT void Apply(const Graph& graph, uint32_t extension,
                         Subgraph* subgraph) const override;
};

/// Whether a pattern match requires the absence of non-pattern edges.
enum class MatchSemantics {
  /// Standard subgraph querying (Listing 5): the found subgraph consists of
  /// the matched vertices plus the images of the pattern's edges; extra
  /// graph edges between matched vertices are allowed.
  kSubgraph,
  /// Induced matching: matched vertices must have edges exactly where the
  /// pattern does (motif-instance retrieval).
  kInduced,
};

/// Pattern-induced extension guided by a reference pattern with symmetry
/// breaking. Used by subgraph querying (Listing 5).
class PatternInducedStrategy : public ExtensionStrategy {
 public:
  explicit PatternInducedStrategy(
      Pattern pattern, MatchSemantics semantics = MatchSemantics::kSubgraph);

  FRACTAL_HOT void ComputeExtensions(
      const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
      FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const override;
  FRACTAL_HOT void Apply(const Graph& graph, uint32_t extension,
                         Subgraph* subgraph) const override;
  uint32_t MaxDepth() const override { return pattern_.NumVertices(); }

  const Pattern& pattern() const { return pattern_; }

  /// Matching order: plan_order_[k] = original pattern position matched at
  /// step k. Exposed for tests.
  const std::vector<uint32_t>& plan_order() const { return plan_order_; }
  const std::vector<SymmetryCondition>& plan_conditions() const {
    return plan_conditions_;
  }

 private:
  Pattern pattern_;                    // original position numbering
  MatchSemantics semantics_;
  std::vector<uint32_t> plan_order_;   // step -> original position
  std::vector<uint32_t> plan_index_;   // original position -> step
  // Conditions remapped to plan steps: match[smaller] < match[larger].
  std::vector<SymmetryCondition> plan_conditions_;
  // For each step k >= 1: plan steps j < k that must be graph-adjacent to
  // the vertex matched at k, with the required edge label.
  struct RequiredNeighbor {
    uint32_t step;
    Label edge_label;
  };
  std::vector<std::vector<RequiredNeighbor>> required_neighbors_;
  Label FirstLabel() const { return pattern_.VertexLabel(plan_order_[0]); }
};

/// Optimized clique extension in the spirit of KClist (paper Appendix B,
/// Listing 6-7): candidates are computed by ordered sorted-adjacency
/// intersection (u must exceed the last clique vertex and be adjacent to all
/// clique vertices), avoiding the generic canonical-check machinery.
class KClistStrategy : public ExtensionStrategy {
 public:
  FRACTAL_HOT void ComputeExtensions(
      const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
      FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const override;
  FRACTAL_HOT void Apply(const Graph& graph, uint32_t extension,
                         Subgraph* subgraph) const override;
};

/// True when the FRACTAL_REFERENCE_EXTENSIONS environment variable is set
/// (non-empty, not "0"): the factories below then return the pre-kernel
/// reference strategies from reference_extension.h instead of the fused
/// ones. The A/B path for benchmarking and differential testing.
bool UseReferenceExtensions();

/// Strategy factories honoring FRACTAL_REFERENCE_EXTENSIONS. Application
/// code (core/context.cc) goes through these; tests that need a specific
/// implementation construct it directly.
std::shared_ptr<ExtensionStrategy> MakeVertexInducedStrategy();
std::shared_ptr<ExtensionStrategy> MakeEdgeInducedStrategy();
std::shared_ptr<ExtensionStrategy> MakeKClistStrategy();

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_EXTENSION_H_
