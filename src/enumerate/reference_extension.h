// Reference (pre-kernel) extension strategies: the straightforward
// per-candidate-rescan implementations the set-algebra kernels in
// extension.cc replaced. Kept as an executable specification:
//   * the differential sweep in tests/property_test.cc asserts the kernel
//     strategies produce bit-identical extension sequences and identical
//     extension-test (EC) charges against these;
//   * bench/bench_micro.cc A/Bs kernel vs reference throughput;
//   * setting FRACTAL_REFERENCE_EXTENSIONS routes the strategy factories
//     (extension.h) here for whole-application comparison runs.
//
// These deliberately avoid the hub adjacency bitmaps (they test adjacency
// with Graph::EdgeBetween's binary search, as the seed implementation did),
// so an A/B run measures the full data-plane delta, not just loop fusion.
#ifndef FRACTAL_ENUMERATE_REFERENCE_EXTENSION_H_
#define FRACTAL_ENUMERATE_REFERENCE_EXTENSION_H_

#include "enumerate/extension.h"

namespace fractal {

/// Pre-kernel vertex-induced extension: per-position neighbor scan with a
/// FirstAttachment rescan and a canonicality rescan per candidate.
class ReferenceVertexInducedStrategy : public ExtensionStrategy {
 public:
  void ComputeExtensions(const Graph& graph, const Subgraph& subgraph,
                         ExtensionContext& ctx,
                         std::vector<uint32_t>* out) const override;
  void Apply(const Graph& graph, uint32_t extension,
             Subgraph* subgraph) const override;
};

/// Pre-kernel edge-induced extension: nested endpoint/incident scans with a
/// first-touch rescan per candidate.
class ReferenceEdgeInducedStrategy : public ExtensionStrategy {
 public:
  void ComputeExtensions(const Graph& graph, const Subgraph& subgraph,
                         ExtensionContext& ctx,
                         std::vector<uint32_t>* out) const override;
  void Apply(const Graph& graph, uint32_t extension,
             Subgraph* subgraph) const override;
};

/// Pre-kernel clique extension: per-candidate adjacency probes against every
/// non-pivot clique vertex.
class ReferenceKClistStrategy : public ExtensionStrategy {
 public:
  void ComputeExtensions(const Graph& graph, const Subgraph& subgraph,
                         ExtensionContext& ctx,
                         std::vector<uint32_t>* out) const override;
  void Apply(const Graph& graph, uint32_t extension,
             Subgraph* subgraph) const override;
};

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_REFERENCE_EXTENSION_H_
