#include "enumerate/extension.h"

#include <algorithm>

namespace fractal {
namespace {

/// Arabesque canonical check for vertex words: candidate u extends the word
/// canonically iff u > word[0] and u > word[i] for every position i after
/// u's first attachment point. Returns false when u is not connected at all.
bool CanonicalVertexExtension(const Graph& graph,
                              std::span<const VertexId> word, VertexId u) {
  if (u < word[0]) return false;
  bool found_neighbor = false;
  for (const VertexId w : word) {
    if (!found_neighbor) {
      if (graph.IsAdjacent(w, u)) found_neighbor = true;
    } else if (u < w) {
      return false;
    }
  }
  return found_neighbor;
}

/// First position in the vertex word adjacent to u, or word size if none.
uint32_t FirstAttachment(const Graph& graph, std::span<const VertexId> word,
                         VertexId u) {
  for (uint32_t i = 0; i < word.size(); ++i) {
    if (graph.IsAdjacent(word[i], u)) return i;
  }
  return static_cast<uint32_t>(word.size());
}

/// Whether edges a and b share an endpoint.
bool EdgesTouch(const Graph& graph, EdgeId a, EdgeId b) {
  const EdgeEndpoints& ea = graph.Endpoints(a);
  const EdgeEndpoints& eb = graph.Endpoints(b);
  return ea.src == eb.src || ea.src == eb.dst || ea.dst == eb.src ||
         ea.dst == eb.dst;
}

}  // namespace

void VertexInducedStrategy::ComputeExtensions(const Graph& graph,
                                              const Subgraph& subgraph,
                                              ExtensionContext& ctx,
                                              std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (graph.IsVertexActive(v)) out->push_back(v);
    }
    return;
  }
  const auto word = subgraph.Vertices();
  // Emit each candidate exactly once: from its first attachment position.
  for (uint32_t position = 0; position < word.size(); ++position) {
    for (const VertexId u : graph.Neighbors(word[position])) {
      ++ctx.extension_tests;
      if (subgraph.ContainsVertex(u)) continue;
      if (FirstAttachment(graph, word, u) != position) continue;
      if (!CanonicalVertexExtension(graph, word, u)) continue;
      out->push_back(u);
    }
  }
}

void VertexInducedStrategy::Apply(const Graph& graph, uint32_t extension,
                                  Subgraph* subgraph) const {
  subgraph->PushVertexInduced(graph, extension);
}

void EdgeInducedStrategy::ComputeExtensions(const Graph& graph,
                                            const Subgraph& subgraph,
                                            ExtensionContext& ctx,
                                            std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
      ++ctx.extension_tests;
      out->push_back(e);
    }
    return;
  }
  const auto word = subgraph.Edges();
  // Candidates: edges incident to any subgraph vertex. Emit a candidate
  // only while scanning its first touching word position; then apply the
  // canonical word check (the edge analog of the vertex rule).
  for (uint32_t position = 0; position < word.size(); ++position) {
    const EdgeEndpoints& base = graph.Endpoints(word[position]);
    for (const VertexId endpoint : {base.src, base.dst}) {
      for (const EdgeId candidate : graph.IncidentEdges(endpoint)) {
        ++ctx.extension_tests;
        if (candidate < word[0]) continue;
        if (subgraph.ContainsEdge(candidate)) continue;
        // First touching position must be `position` (dedup across the two
        // endpoint scans is handled below: a candidate touching base.src is
        // also seen from base.dst only if it touches both, in which case we
        // keep the src scan occurrence).
        uint32_t first_touch = UINT32_MAX;
        for (uint32_t i = 0; i <= position; ++i) {
          if (EdgesTouch(graph, word[i], candidate)) {
            first_touch = i;
            break;
          }
        }
        if (first_touch != position) continue;
        if (endpoint == base.dst && EdgesTouch(graph, word[position], candidate) &&
            [&] {
              const EdgeEndpoints& ec = graph.Endpoints(candidate);
              return ec.src == base.src || ec.dst == base.src;
            }()) {
          continue;  // already emitted from the src endpoint scan
        }
        // Canonical word check: candidate must exceed every word element
        // after its first touching position.
        bool canonical = true;
        for (uint32_t i = position + 1; i < word.size(); ++i) {
          if (candidate < word[i]) {
            canonical = false;
            break;
          }
        }
        if (canonical) out->push_back(candidate);
      }
    }
  }
}

void EdgeInducedStrategy::Apply(const Graph& graph, uint32_t extension,
                                Subgraph* subgraph) const {
  subgraph->PushEdgeInduced(graph, extension);
}

PatternInducedStrategy::PatternInducedStrategy(Pattern pattern,
                                               MatchSemantics semantics)
    : pattern_(std::move(pattern)), semantics_(semantics) {
  const uint32_t n = pattern_.NumVertices();
  FRACTAL_CHECK(n >= 1);
  FRACTAL_CHECK(pattern_.IsConnected())
      << "pattern-induced extension needs a connected pattern";

  // Matching order: highest-degree position first, then greedily the
  // position with most edges into the ordered prefix (ties: lower index).
  std::vector<uint8_t> placed(n, 0);
  uint32_t start = 0;
  for (uint32_t v = 1; v < n; ++v) {
    if (pattern_.Degree(v) > pattern_.Degree(start)) start = v;
  }
  plan_order_.push_back(start);
  placed[start] = 1;
  while (plan_order_.size() < n) {
    uint32_t best = UINT32_MAX;
    uint32_t best_links = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      uint32_t links = 0;
      for (const uint32_t u : plan_order_) {
        if (pattern_.IsAdjacent(u, v)) ++links;
      }
      if (links == 0) continue;
      if (best == UINT32_MAX || links > best_links ||
          (links == best_links && pattern_.Degree(v) > pattern_.Degree(best))) {
        best = v;
        best_links = links;
      }
    }
    FRACTAL_CHECK(best != UINT32_MAX);  // connected pattern
    plan_order_.push_back(best);
    placed[best] = 1;
  }
  plan_index_.assign(n, 0);
  for (uint32_t step = 0; step < n; ++step) {
    plan_index_[plan_order_[step]] = step;
  }

  for (const SymmetryCondition& condition :
       SymmetryBreakingConditions(pattern_)) {
    plan_conditions_.push_back(
        {plan_index_[condition.smaller], plan_index_[condition.larger]});
  }

  required_neighbors_.resize(n);
  for (uint32_t step = 1; step < n; ++step) {
    const uint32_t position = plan_order_[step];
    for (uint32_t earlier = 0; earlier < step; ++earlier) {
      const uint32_t earlier_position = plan_order_[earlier];
      if (pattern_.IsAdjacent(position, earlier_position)) {
        required_neighbors_[step].push_back(
            {earlier,
             pattern_.EdgeLabelBetween(position, earlier_position)});
      }
    }
    FRACTAL_CHECK(!required_neighbors_[step].empty());
  }
}

void PatternInducedStrategy::ComputeExtensions(const Graph& graph,
                                               const Subgraph& subgraph,
                                               ExtensionContext& ctx,
                                               std::vector<uint32_t>* out) const {
  out->clear();
  const uint32_t step = subgraph.NumVertices();
  if (step >= pattern_.NumVertices()) return;  // complete match

  if (step == 0) {
    const Label wanted = FirstLabel();
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (!graph.IsVertexActive(v)) continue;
      if (graph.VertexLabel(v) != wanted) continue;
      bool ok = true;
      // Conditions where step 0 must be larger can never involve an earlier
      // step; nothing to check yet.
      if (ok) out->push_back(v);
    }
    return;
  }

  const auto matched = subgraph.Vertices();
  const Label wanted = pattern_.VertexLabel(plan_order_[step]);
  const auto& required = required_neighbors_[step];

  // Scan the neighbor list of the required neighbor with smallest degree.
  uint32_t pivot = 0;
  for (uint32_t i = 1; i < required.size(); ++i) {
    if (graph.Degree(matched[required[i].step]) <
        graph.Degree(matched[required[pivot].step])) {
      pivot = i;
    }
  }

  for (const VertexId u : graph.Neighbors(matched[required[pivot].step])) {
    ++ctx.extension_tests;
    if (graph.VertexLabel(u) != wanted) continue;
    if (subgraph.ContainsVertex(u)) continue;
    bool ok = true;
    for (const RequiredNeighbor& req : required) {
      const auto edge = graph.EdgeBetween(matched[req.step], u);
      if (!edge || graph.GetEdgeLabel(*edge) != req.edge_label) {
        ok = false;
        break;
      }
    }
    if (ok && semantics_ == MatchSemantics::kInduced) {
      // Induced: no graph edge may exist where the pattern has none.
      for (uint32_t earlier = 0; earlier < step && ok; ++earlier) {
        if (!pattern_.IsAdjacent(plan_order_[earlier], plan_order_[step]) &&
            graph.IsAdjacent(matched[earlier], u)) {
          ok = false;
        }
      }
    }
    if (!ok) continue;
    for (const SymmetryCondition& condition : plan_conditions_) {
      if (condition.larger == step && condition.smaller < step &&
          u <= matched[condition.smaller]) {
        ok = false;
        break;
      }
      if (condition.smaller == step && condition.larger < step &&
          u >= matched[condition.larger]) {
        ok = false;
        break;
      }
    }
    if (ok) out->push_back(u);
  }
}

void PatternInducedStrategy::Apply(const Graph& graph, uint32_t extension,
                                   Subgraph* subgraph) const {
  const uint32_t step = subgraph->NumVertices();
  std::vector<EdgeId> edges;
  if (step > 0) {
    const auto matched = subgraph->Vertices();
    for (const RequiredNeighbor& req : required_neighbors_[step]) {
      const auto edge = graph.EdgeBetween(matched[req.step], extension);
      FRACTAL_DCHECK(edge.has_value());
      edges.push_back(*edge);
    }
  }
  subgraph->PushVertexWithEdges(extension, edges);
}

void KClistStrategy::ComputeExtensions(const Graph& graph,
                                       const Subgraph& subgraph,
                                       ExtensionContext& ctx,
                                       std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (graph.IsVertexActive(v)) out->push_back(v);
    }
    return;
  }
  const auto word = subgraph.Vertices();
  const VertexId last = word.back();
  // Pivot on the smallest-degree clique vertex; candidates must be > last
  // (increasing order gives each clique once) and adjacent to all.
  uint32_t pivot = 0;
  for (uint32_t i = 1; i < word.size(); ++i) {
    if (graph.Degree(word[i]) < graph.Degree(word[pivot])) pivot = i;
  }
  const auto neighbors = graph.Neighbors(word[pivot]);
  const auto begin =
      std::upper_bound(neighbors.begin(), neighbors.end(), last);
  for (auto it = begin; it != neighbors.end(); ++it) {
    const VertexId u = *it;
    bool ok = true;
    for (uint32_t i = 0; i < word.size(); ++i) {
      if (i == pivot) continue;
      ++ctx.extension_tests;
      if (!graph.IsAdjacent(word[i], u)) {
        ok = false;
        break;
      }
    }
    if (word.size() == 1) ++ctx.extension_tests;
    if (ok) out->push_back(u);
  }
}

void KClistStrategy::Apply(const Graph& graph, uint32_t extension,
                           Subgraph* subgraph) const {
  subgraph->PushVertexInduced(graph, extension);
}

}  // namespace fractal
