#include "enumerate/extension.h"

#include <algorithm>
#include <cstdlib>

#include "enumerate/reference_extension.h"
#include "graph/adjacency.h"

namespace fractal {
namespace {

/// Stack capacity for the pattern-required edges gathered by
/// PatternInducedStrategy::Apply — bounds the per-step pattern degree, far
/// above any pattern this system queries (checked at run time).
constexpr uint32_t kMaxPatternApplyEdges = 64;

/// Drops every element of `v` whose bit is set in the hub bitmap `row`
/// (in-place stable compaction): set difference against a high-degree
/// vertex's neighborhood at one load per element instead of a merge over
/// its (by definition long) adjacency list.
FRACTAL_HOT void FilterNotInBitmap(FRACTAL_ARENA_OUT std::vector<uint32_t>& v,
                                   const uint64_t* row) {
  size_t w = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    const uint32_t x = v[i];
    if (((row[x >> 6] >> (x & 63)) & 1) == 0) v[w++] = x;
  }
  v.resize(w);
}

/// Keeps every element of `v` whose bit is set in `row` (in-place stable
/// compaction): intersection against a hub's neighborhood.
FRACTAL_HOT void FilterInBitmap(FRACTAL_ARENA_OUT std::vector<uint32_t>& v,
                                const uint64_t* row) {
  size_t w = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    const uint32_t x = v[i];
    if (((row[x >> 6] >> (x & 63)) & 1) != 0) v[w++] = x;
  }
  v.resize(w);
}

}  // namespace

// Single-pass reformulation of the Arabesque extension rule (proof sketch in
// DESIGN.md §8). The reference rule emits, at each word position p, every
// u in N(word[p]) with (a) u not in the word, (b) first attachment exactly
// p, and (c) u > word[0] and u > word[i] for all i > p. That set equals
//
//   (N(word[p]) restricted to > L_p) \ N(word[0]) \ ... \ N(word[p-1]),
//     where L_p = max(word[0], max(word[p+1..])):
//
//   * the difference passes are exactly "first attachment == p";
//   * the bound is exactly the canonicality constraint (c);
//   * containment (a) is subsumed: word[j] with j > p or j == 0 falls under
//     the bound; word[j] with 1 <= j < p is adjacent to some earlier word
//     vertex (words grow connected), so a difference pass removes it; and
//     word[p] itself is never in N(word[p]) (no self-loops).
//
// Ascending kernel outputs concatenated in position order reproduce the
// reference emission order bit-for-bit.
FRACTAL_HOT void VertexInducedStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    FRACTAL_HOT_ESCAPE("root enumeration runs once per step, not per node");
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (graph.IsVertexActive(v)) out->push_back(v);
    }
    return;
  }
  const auto word = subgraph.Vertices();
  const uint32_t k = static_cast<uint32_t>(word.size());

  ScratchArena::BufferLease suffix_lease(ctx.arena);
  ScratchArena::BufferLease cur_lease(ctx.arena);
  ScratchArena::BufferLease next_lease(ctx.arena);
  // suffix[i] = max(word[i..k-1]); suffix[k] = 0 so L_p below is one max.
  std::vector<uint32_t>& suffix = *suffix_lease;
  suffix.clear();
  adjacency::EnsureHeadroom(&suffix, k + 1);
  suffix.assign(k + 1, 0);
  for (uint32_t i = k; i-- > 0;) {
    suffix[i] = std::max(word[i], suffix[i + 1]);
  }

  for (uint32_t p = 0; p < k; ++p) {
    const auto neighbors = graph.Neighbors(word[p]);
    // EC parity with the reference: one test per scanned neighbor of
    // word[p], charged in bulk.
    ctx.extension_tests += neighbors.size();
    const uint32_t bound = std::max(word[0], suffix[p + 1]);
    if (p == 0) {
      adjacency::CopyAbove(neighbors, bound, out);
      continue;
    }
    // Seed the working set by fusing the bound with the first difference
    // against a non-hub earlier vertex; hub vertices are subtracted by
    // bitmap filtering afterwards (order is immaterial for differences).
    std::vector<uint32_t>* cur = cur_lease.get();
    std::vector<uint32_t>* next = next_lease.get();
    cur->clear();
    bool seeded = false;
    for (uint32_t q = 0; q < p; ++q) {
      if (graph.HubRow(word[q]) != nullptr) continue;
      if (!seeded) {
        adjacency::DifferenceAbove(neighbors, graph.Neighbors(word[q]), bound,
                                   cur);
        seeded = true;
        continue;
      }
      next->clear();
      adjacency::Difference(*cur, graph.Neighbors(word[q]), next);
      std::swap(cur, next);
    }
    if (!seeded) adjacency::CopyAbove(neighbors, bound, cur);
    for (uint32_t q = 0; q < p && !cur->empty(); ++q) {
      if (const uint64_t* row = graph.HubRow(word[q])) {
        FilterNotInBitmap(*cur, row);
      }
    }
    adjacency::EnsureHeadroom(out, cur->size());
    out->insert(out->end(), cur->begin(), cur->end());
  }
}

FRACTAL_HOT void VertexInducedStrategy::Apply(const Graph& graph,
                                              uint32_t extension,
                                              Subgraph* subgraph) const {
  subgraph->PushVertexInduced(graph, extension);
}

// Same scan structure as the reference (incident-edge lists are sorted by
// *neighbor* id, not edge id, so set algebra over edge ids would permute the
// output), but every per-candidate rescan is replaced by an O(1) check:
//   * edge membership is the subgraph's bitset;
//   * "first touching word position" is two lookups in an epoch-stamped
//     vertex -> first-covering-position map built once per call;
//   * the canonical word check is one compare against a precomputed suffix
//     maximum of the edge word.
FRACTAL_HOT void EdgeInducedStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    FRACTAL_HOT_ESCAPE("root enumeration runs once per step, not per node");
    ctx.extension_tests += graph.NumEdges();
    out->reserve(graph.NumEdges());
    for (EdgeId e = 0; e < graph.NumEdges(); ++e) out->push_back(e);
    return;
  }
  const auto word = subgraph.Edges();
  const uint32_t k = static_cast<uint32_t>(word.size());

  // first_cover[v] = smallest word position whose edge touches v
  // (StampedMap::kAbsent == UINT32_MAX when v is outside the subgraph, which
  // min()s away below exactly like the reference's "no touch" sentinel).
  ScratchArena::StampedMap& first_cover = ctx.arena.vertex_map();
  first_cover.Reset(graph.NumVertices());
  for (uint32_t i = 0; i < k; ++i) {
    const EdgeEndpoints& endpoints = graph.Endpoints(word[i]);
    if (first_cover.Get(endpoints.src) == ScratchArena::StampedMap::kAbsent) {
      first_cover.Set(endpoints.src, i);
    }
    if (first_cover.Get(endpoints.dst) == ScratchArena::StampedMap::kAbsent) {
      first_cover.Set(endpoints.dst, i);
    }
  }

  // suffix[i] = max(word[i..k-1]); suffix[k] = 0, so "candidate >= every
  // later word element" collapses to one compare.
  ScratchArena::BufferLease suffix_lease(ctx.arena);
  std::vector<uint32_t>& suffix = *suffix_lease;
  suffix.clear();
  adjacency::EnsureHeadroom(&suffix, k + 1);
  suffix.assign(k + 1, 0);
  for (uint32_t i = k; i-- > 0;) {
    suffix[i] = std::max(word[i], suffix[i + 1]);
  }

  for (uint32_t position = 0; position < k; ++position) {
    const EdgeEndpoints& base = graph.Endpoints(word[position]);
    const uint32_t canonical_bound = suffix[position + 1];
    for (const VertexId endpoint : {base.src, base.dst}) {
      const auto incident = graph.IncidentEdges(endpoint);
      // EC parity with the reference: one test per scanned incident edge.
      ctx.extension_tests += incident.size();
      // Survivors of this scan are a subset of the incident list.
      adjacency::EnsureHeadroom(out, incident.size());
      for (const EdgeId candidate : incident) {
        if (candidate < word[0]) continue;
        if (subgraph.ContainsEdge(candidate)) continue;
        const EdgeEndpoints& ec = graph.Endpoints(candidate);
        // First touching position must be `position` (dedup across the two
        // endpoint scans is handled below: a candidate touching base.src is
        // also seen from base.dst only if it touches both, in which case we
        // keep the src scan occurrence).
        if (std::min(first_cover.Get(ec.src), first_cover.Get(ec.dst)) !=
            position) {
          continue;
        }
        if (endpoint == base.dst &&
            (ec.src == base.src || ec.dst == base.src)) {
          continue;  // already emitted from the src endpoint scan
        }
        // Canonical word check: candidate must exceed every word element
        // after its first touching position.
        if (candidate < canonical_bound) continue;
        out->push_back(candidate);
      }
    }
  }
}

FRACTAL_HOT void EdgeInducedStrategy::Apply(const Graph& graph,
                                            uint32_t extension,
                                            Subgraph* subgraph) const {
  subgraph->PushEdgeInduced(graph, extension);
}

PatternInducedStrategy::PatternInducedStrategy(Pattern pattern,
                                               MatchSemantics semantics)
    : pattern_(std::move(pattern)), semantics_(semantics) {
  const uint32_t n = pattern_.NumVertices();
  FRACTAL_CHECK(n >= 1);
  FRACTAL_CHECK(pattern_.IsConnected())
      << "pattern-induced extension needs a connected pattern";

  // Matching order: highest-degree position first, then greedily the
  // position with most edges into the ordered prefix (ties: lower index).
  std::vector<uint8_t> placed(n, 0);
  uint32_t start = 0;
  for (uint32_t v = 1; v < n; ++v) {
    if (pattern_.Degree(v) > pattern_.Degree(start)) start = v;
  }
  plan_order_.push_back(start);
  placed[start] = 1;
  while (plan_order_.size() < n) {
    uint32_t best = UINT32_MAX;
    uint32_t best_links = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      uint32_t links = 0;
      for (const uint32_t u : plan_order_) {
        if (pattern_.IsAdjacent(u, v)) ++links;
      }
      if (links == 0) continue;
      if (best == UINT32_MAX || links > best_links ||
          (links == best_links && pattern_.Degree(v) > pattern_.Degree(best))) {
        best = v;
        best_links = links;
      }
    }
    FRACTAL_CHECK(best != UINT32_MAX);  // connected pattern
    plan_order_.push_back(best);
    placed[best] = 1;
  }
  plan_index_.assign(n, 0);
  for (uint32_t step = 0; step < n; ++step) {
    plan_index_[plan_order_[step]] = step;
  }

  for (const SymmetryCondition& condition :
       SymmetryBreakingConditions(pattern_)) {
    plan_conditions_.push_back(
        {plan_index_[condition.smaller], plan_index_[condition.larger]});
  }

  required_neighbors_.resize(n);
  for (uint32_t step = 1; step < n; ++step) {
    const uint32_t position = plan_order_[step];
    for (uint32_t earlier = 0; earlier < step; ++earlier) {
      const uint32_t earlier_position = plan_order_[earlier];
      if (pattern_.IsAdjacent(position, earlier_position)) {
        required_neighbors_[step].push_back(
            {earlier,
             pattern_.EdgeLabelBetween(position, earlier_position)});
      }
    }
    FRACTAL_CHECK(!required_neighbors_[step].empty());
  }
}

FRACTAL_HOT void PatternInducedStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const {
  out->clear();
  const uint32_t step = subgraph.NumVertices();
  if (step >= pattern_.NumVertices()) return;  // complete match

  if (step == 0) {
    FRACTAL_HOT_ESCAPE("root enumeration runs once per step, not per node");
    const Label wanted = FirstLabel();
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (!graph.IsVertexActive(v)) continue;
      if (graph.VertexLabel(v) != wanted) continue;
      bool ok = true;
      // Conditions where step 0 must be larger can never involve an earlier
      // step; nothing to check yet.
      if (ok) out->push_back(v);
    }
    return;
  }

  const auto matched = subgraph.Vertices();
  const Label wanted = pattern_.VertexLabel(plan_order_[step]);
  const auto& required = required_neighbors_[step];

  // Scan the neighbor list of the required neighbor with smallest degree.
  uint32_t pivot = 0;
  for (uint32_t i = 1; i < required.size(); ++i) {
    if (graph.Degree(matched[required[i].step]) <
        graph.Degree(matched[required[pivot].step])) {
      pivot = i;
    }
  }

  const auto pivot_neighbors = graph.Neighbors(matched[required[pivot].step]);
  // Survivors of this scan are a subset of the pivot's neighbor list.
  adjacency::EnsureHeadroom(out, pivot_neighbors.size());
  for (const VertexId u : pivot_neighbors) {
    ++ctx.extension_tests;
    if (graph.VertexLabel(u) != wanted) continue;
    if (subgraph.ContainsVertex(u)) continue;
    bool ok = true;
    for (const RequiredNeighbor& req : required) {
      const auto edge = graph.EdgeBetween(matched[req.step], u);
      if (!edge || graph.GetEdgeLabel(*edge) != req.edge_label) {
        ok = false;
        break;
      }
    }
    if (ok && semantics_ == MatchSemantics::kInduced) {
      // Induced: no graph edge may exist where the pattern has none.
      for (uint32_t earlier = 0; earlier < step && ok; ++earlier) {
        if (!pattern_.IsAdjacent(plan_order_[earlier], plan_order_[step]) &&
            graph.IsAdjacent(matched[earlier], u)) {
          ok = false;
        }
      }
    }
    if (!ok) continue;
    for (const SymmetryCondition& condition : plan_conditions_) {
      if (condition.larger == step && condition.smaller < step &&
          u <= matched[condition.smaller]) {
        ok = false;
        break;
      }
      if (condition.smaller == step && condition.larger < step &&
          u >= matched[condition.larger]) {
        ok = false;
        break;
      }
    }
    if (ok) out->push_back(u);
  }
}

FRACTAL_HOT void PatternInducedStrategy::Apply(const Graph& graph,
                                               uint32_t extension,
                                               Subgraph* subgraph) const {
  const uint32_t step = subgraph->NumVertices();
  if (step == 0) {
    subgraph->PushVertexWithEdges(extension, {});
    return;
  }
  // Collect the pattern-required incident edges on the stack: their count is
  // bounded by the pattern size, and a heap vector here used to be a per-push
  // allocation on the hottest pattern-matching path.
  EdgeId edges[kMaxPatternApplyEdges];
  const auto& required = required_neighbors_[step];
  FRACTAL_CHECK(required.size() <= kMaxPatternApplyEdges)
      << "pattern step requires more edges than the Apply stack buffer";
  const auto matched = subgraph->Vertices();
  uint32_t count = 0;
  for (const RequiredNeighbor& req : required) {
    const auto edge = graph.EdgeBetween(matched[req.step], extension);
    FRACTAL_DCHECK(edge.has_value());
    edges[count++] = *edge;
  }
  subgraph->PushVertexWithEdges(extension,
                                std::span<const EdgeId>(edges, count));
}

// Clique extension as a chain of sorted intersections: start from the
// pivot's neighbors above the last clique vertex, then intersect with each
// remaining clique vertex's neighborhood in word order (bitmap filter when
// that vertex is a hub). EC parity with the reference's early-exit probing:
// a candidate eliminated at pass i was charged one test per pass 0..i there,
// and here sits in the working set for exactly those passes — so charging
// |working set| per pass yields the same total.
FRACTAL_HOT void KClistStrategy::ComputeExtensions(
    const Graph& graph, const Subgraph& subgraph, ExtensionContext& ctx,
    FRACTAL_ARENA_OUT std::vector<uint32_t>* out) const {
  out->clear();
  if (subgraph.Empty()) {
    FRACTAL_HOT_ESCAPE("root enumeration runs once per step, not per node");
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      ++ctx.extension_tests;
      if (graph.IsVertexActive(v)) out->push_back(v);
    }
    return;
  }
  const auto word = subgraph.Vertices();
  const VertexId last = word.back();
  // Pivot on the smallest-degree clique vertex; candidates must be > last
  // (increasing order gives each clique once) and adjacent to all.
  uint32_t pivot = 0;
  for (uint32_t i = 1; i < word.size(); ++i) {
    if (graph.Degree(word[i]) < graph.Degree(word[pivot])) pivot = i;
  }
  const auto neighbors = graph.Neighbors(word[pivot]);
  if (word.size() == 1) {
    // Sole clique vertex is the pivot: every bounded neighbor survives and
    // the reference charges it a single test.
    const size_t before = out->size();
    adjacency::CopyAbove(neighbors, last, out);
    ctx.extension_tests += out->size() - before;
    return;
  }
  ScratchArena::BufferLease cur_lease(ctx.arena);
  ScratchArena::BufferLease next_lease(ctx.arena);
  std::vector<uint32_t>* cur = cur_lease.get();
  std::vector<uint32_t>* next = next_lease.get();
  adjacency::CopyAbove(neighbors, last, cur);
  for (uint32_t i = 0; i < word.size() && !cur->empty(); ++i) {
    if (i == pivot) continue;
    ctx.extension_tests += cur->size();
    if (const uint64_t* row = graph.HubRow(word[i])) {
      FilterInBitmap(*cur, row);
      continue;
    }
    next->clear();
    adjacency::Intersect(*cur, graph.Neighbors(word[i]), next);
    std::swap(cur, next);
  }
  adjacency::EnsureHeadroom(out, cur->size());
  out->insert(out->end(), cur->begin(), cur->end());
}

FRACTAL_HOT void KClistStrategy::Apply(const Graph& graph, uint32_t extension,
                                       Subgraph* subgraph) const {
  subgraph->PushVertexInduced(graph, extension);
}

bool UseReferenceExtensions() {
  const char* flag = std::getenv("FRACTAL_REFERENCE_EXTENSIONS");
  return flag != nullptr && flag[0] != '\0' &&
         !(flag[0] == '0' && flag[1] == '\0');
}

std::shared_ptr<ExtensionStrategy> MakeVertexInducedStrategy() {
  if (UseReferenceExtensions()) {
    return std::make_shared<ReferenceVertexInducedStrategy>();
  }
  return std::make_shared<VertexInducedStrategy>();
}

std::shared_ptr<ExtensionStrategy> MakeEdgeInducedStrategy() {
  if (UseReferenceExtensions()) {
    return std::make_shared<ReferenceEdgeInducedStrategy>();
  }
  return std::make_shared<EdgeInducedStrategy>();
}

std::shared_ptr<ExtensionStrategy> MakeKClistStrategy() {
  if (UseReferenceExtensions()) {
    return std::make_shared<ReferenceKClistStrategy>();
  }
  return std::make_shared<KClistStrategy>();
}

}  // namespace fractal
