// Sampling extension strategy — the custom-enumerator use case the paper's
// Appendix B names explicitly ("a specific policy for generating extension
// candidates, such as sampling"). Wraps any base strategy and keeps each
// extension candidate with probability p, decided by a deterministic hash
// of (seed, subgraph content, candidate): the same candidate of the same
// prefix gets the same decision on every thread and after every steal, so
// sampled results stay deterministic and unbiased.
//
// Because canonical enumeration gives every depth-k subgraph exactly one
// generation path, a subgraph survives with probability p^k — so dividing
// sampled counts by p^k yields unbiased estimates (see apps/estimation.h).
#ifndef FRACTAL_ENUMERATE_SAMPLING_H_
#define FRACTAL_ENUMERATE_SAMPLING_H_

#include <algorithm>
#include <memory>

#include "enumerate/extension.h"

namespace fractal {

class SamplingStrategy : public ExtensionStrategy {
 public:
  SamplingStrategy(std::shared_ptr<const ExtensionStrategy> base,
                   double keep_probability, uint64_t seed)
      : base_(std::move(base)),
        keep_probability_(keep_probability),
        seed_(seed) {
    FRACTAL_CHECK(base_ != nullptr);
    FRACTAL_CHECK(keep_probability_ > 0.0 && keep_probability_ <= 1.0);
  }

  void ComputeExtensions(const Graph& graph, const Subgraph& subgraph,
                         ExtensionContext& ctx,
                         std::vector<uint32_t>* out) const override {
    base_->ComputeExtensions(graph, subgraph, ctx, out);
    if (keep_probability_ >= 1.0) return;
    const uint64_t prefix_hash = HashSubgraph(subgraph);
    auto keep = [this, prefix_hash](uint32_t extension) {
      uint64_t h = prefix_hash ^ (0x9e3779b97f4a7c15ull * (extension + 1));
      h = Mix(h);
      return (h >> 11) * 0x1.0p-53 < keep_probability_;
    };
    out->erase(std::remove_if(out->begin(), out->end(),
                              [&keep](uint32_t e) { return !keep(e); }),
               out->end());
  }

  void Apply(const Graph& graph, uint32_t extension,
             Subgraph* subgraph) const override {
    base_->Apply(graph, extension, subgraph);
  }
  void Undo(const Graph& graph, Subgraph* subgraph) const override {
    base_->Undo(graph, subgraph);
  }
  uint32_t MaxDepth() const override { return base_->MaxDepth(); }

 private:
  static uint64_t Mix(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t HashSubgraph(const Subgraph& subgraph) const {
    uint64_t h = seed_ ^ 0xD6E8FEB86659FD93ull;
    for (const VertexId v : subgraph.Vertices()) h = Mix(h ^ v);
    for (const EdgeId e : subgraph.Edges()) h = Mix(h ^ (e + 0x51ull));
    return h;
  }

  std::shared_ptr<const ExtensionStrategy> base_;
  double keep_probability_;
  uint64_t seed_;
};

}  // namespace fractal

#endif  // FRACTAL_ENUMERATE_SAMPLING_H_
