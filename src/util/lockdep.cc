#include "util/lockdep.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fractal {
namespace lockdep {
namespace {

// The checker's own synchronization uses raw std::mutex: instrumenting the
// instrumenter would recurse.

/// One recorded acquired-before edge `from → to`, with the acquisition site
/// (the acquiring thread's held stack) that first created it.
struct Edge {
  uint32_t to = 0;
  std::string site;
};

struct Graph {
  std::mutex mu;
  /// Adjacency: class id → edges out of it. Edges are recorded once; the
  /// first acquisition site is kept for reporting.
  std::unordered_map<uint32_t, std::vector<Edge>> out;
  size_t num_edges = 0;
  /// Bumped by ResetGraphForTest so per-thread edge caches invalidate.
  std::atomic<uint64_t> epoch{1};
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<LockClass>> classes;
  uint32_t next_id = 0;
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: outlives all static destructors
  return *g;
}

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::mutex& handler_mu() {
  static std::mutex* m = new std::mutex();
  return *m;
}

FailureHandler& handler_slot() {
  static FailureHandler* h = new FailureHandler();
  return *h;
}

/// Per-thread state. Raw pointers into the leaked registry, so thread exit
/// after static destruction is safe.
struct ThreadState {
  std::vector<const LockClass*> held;
  /// Edges this thread already pushed to the graph ((from << 32) | to),
  /// valid for `cache_epoch`; lets the hot path skip the graph mutex.
  std::unordered_set<uint64_t> seen_edges;
  uint64_t cache_epoch = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

std::string RenderHeldStack(const std::vector<const LockClass*>& held) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < held.size(); ++i) {
    if (i > 0) os << " -> ";
    os << held[i]->name;
  }
  os << "]";
  return os.str();
}

std::string ClassName(uint32_t id) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [name, cls] : reg.classes) {
    if (cls->id == id) return name;
  }
  return "<unknown lock class>";
}

/// Finds a path `from → … → to` in the graph (caller holds graph().mu).
/// Returns the edge sequence, empty when unreachable.
std::vector<const Edge*> FindPath(const Graph& g, uint32_t from, uint32_t to) {
  std::unordered_map<uint32_t, const Edge*> parent_edge;
  std::unordered_map<uint32_t, uint32_t> parent_node;
  std::unordered_set<uint32_t> visited{from};
  std::deque<uint32_t> frontier{from};
  while (!frontier.empty()) {
    const uint32_t node = frontier.front();
    frontier.pop_front();
    const auto it = g.out.find(node);
    if (it == g.out.end()) continue;
    for (const Edge& edge : it->second) {
      if (!visited.insert(edge.to).second) continue;
      parent_edge[edge.to] = &edge;
      parent_node[edge.to] = node;
      if (edge.to == to) {
        std::vector<const Edge*> path;
        for (uint32_t at = to; at != from; at = parent_node[at]) {
          path.push_back(parent_edge[at]);
        }
        return {path.rbegin(), path.rend()};
      }
      frontier.push_back(edge.to);
    }
  }
  return {};
}

void Fail(const InversionReport& report) {
  FailureHandler copy;
  {
    std::lock_guard<std::mutex> lock(handler_mu());
    copy = handler_slot();
  }
  if (copy) {
    copy(report);
    return;
  }
  std::cerr << report.ToString() << std::endl;
  std::abort();
}

/// Records `from → to` (if new) and reports an inversion when the reverse
/// direction is already reachable. Returns the graph epoch used, so the
/// caller can refresh its thread-local cache.
void RecordEdge(const LockClass* from, const LockClass* to,
                const std::vector<const LockClass*>& held) {
  InversionReport report;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    std::vector<Edge>& edges = g.out[from->id];
    for (const Edge& edge : edges) {
      if (edge.to == to->id) return;  // already recorded (and checked)
    }
    const std::vector<const Edge*> reverse = FindPath(g, to->id, from->id);
    if (reverse.empty()) {
      edges.push_back(Edge{to->id, "held " + RenderHeldStack(held) +
                                       ", acquiring " + to->name});
      ++g.num_edges;
      return;
    }
    // Inversion: to → … → from already exists; render both paths while the
    // graph is stable, then fail outside the lock (the handler may rethrow
    // into test code that acquires instrumented locks).
    report.from = from->name;
    report.to = to->name;
    report.acquiring_path =
        "held " + RenderHeldStack(held) + ", acquiring " + to->name;
    std::ostringstream os;
    uint32_t at = to->id;
    for (const Edge* edge : reverse) {
      os << "\n    " << ClassName(at) << " -> " << ClassName(edge->to)
         << "  (first: " << edge->site << ")";
      at = edge->to;
    }
    report.existing_path = os.str();
  }
  Fail(report);
}

}  // namespace

std::string InversionReport::ToString() const {
  std::ostringstream os;
  os << "lockdep: lock-order inversion detected\n"
     << "  acquiring '" << to << "' while holding '" << from << "'\n"
     << "  path 1 (this thread): " << acquiring_path << "\n"
     << "  path 2 (recorded acquired-before chain '" << to << "' -> ... -> '"
     << from << "'):" << existing_path;
  return os.str();
}

const LockClass* RegisterClass(const char* name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.classes.find(name);
  if (it == reg.classes.end()) {
    auto cls = std::make_unique<LockClass>();
    cls->id = reg.next_id++;
    cls->name = name;
    it = reg.classes.emplace(name, std::move(cls)).first;
  }
  return it->second.get();
}

void OnAcquire(const LockClass* cls) {
  ThreadState& state = thread_state();
  const uint64_t epoch = graph().epoch.load(std::memory_order_acquire);
  if (state.cache_epoch != epoch) {
    state.seen_edges.clear();
    state.cache_epoch = epoch;
  }
  for (const LockClass* held : state.held) {
    if (held == cls) {
      // Same-class nesting: two instances of one class held at once is a
      // self-cycle (the sibling thread can hold them in the other order).
      InversionReport report;
      report.from = cls->name;
      report.to = cls->name;
      report.acquiring_path = "held " + RenderHeldStack(state.held) +
                              ", acquiring " + cls->name;
      report.existing_path =
          "\n    (recursive acquisition of one lock class)";
      Fail(report);
      break;
    }
    const uint64_t key = (static_cast<uint64_t>(held->id) << 32) | cls->id;
    if (state.seen_edges.insert(key).second) {
      RecordEdge(held, cls, state.held);
    }
  }
  state.held.push_back(cls);
}

void OnRelease(const LockClass* cls) {
  ThreadState& state = thread_state();
  // Locks may be released out of LIFO order; erase the innermost match.
  for (auto it = state.held.rbegin(); it != state.held.rend(); ++it) {
    if (*it == cls) {
      state.held.erase(std::next(it).base());
      return;
    }
  }
}

void AssertHeld(const LockClass* cls) {
  const ThreadState& state = thread_state();
  for (const LockClass* held : state.held) {
    if (held == cls) return;
  }
  std::cerr << "lockdep: AssertHeld failed: '" << cls->name
            << "' is not held by this thread (held "
            << RenderHeldStack(state.held) << ")" << std::endl;
  std::abort();
}

FailureHandler SetFailureHandlerForTest(FailureHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mu());
  FailureHandler previous = handler_slot();
  handler_slot() = std::move(handler);
  return previous;
}

void ResetGraphForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.out.clear();
  g.num_edges = 0;
  g.epoch.fetch_add(1, std::memory_order_acq_rel);
}

size_t NumEdgesForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.num_edges;
}

}  // namespace lockdep
}  // namespace fractal
