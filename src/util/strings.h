// Small string helpers: printf-style formatting into std::string, splitting,
// and human-readable byte counts. Kept deliberately minimal (no dependency on
// absl); only what the library and benches need.
#ifndef FRACTAL_UTIL_STRINGS_H_
#define FRACTAL_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fractal {

/// printf-style formatting. The format string must match the arguments; a
/// mismatch is a programming error (enforced by the compiler attribute).
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitString(std::string_view text,
                                          std::string_view delims);

/// "1.5 GB", "312 MB", "17 KB", "42 B".
std::string HumanBytes(uint64_t bytes);

/// "1234567" -> "1,234,567" for readable benchmark tables.
std::string WithThousands(uint64_t value);

}  // namespace fractal

#endif  // FRACTAL_UTIL_STRINGS_H_
