// Hot-path allocation-discipline annotations (DESIGN.md §9). The enumeration
// data plane (DESIGN.md §8) derives its speed from steady-state DFS expansion
// performing *zero* heap allocation; this header turns that property from
// prose into a machine-checked contract, the same way thread_annotations.h
// did for the lock hierarchy.
//
// Vocabulary:
//   FRACTAL_HOT
//     Marks a function as a hot-path root (or audited hot-path leaf). The
//     static checker (tools/fractal_lint.py) walks the call graph from every
//     FRACTAL_HOT function and fails on reachable allocation, throwing
//     constructs, container growth on non-arena storage, and calls into
//     un-annotated non-inline externals it cannot see through.
//   FRACTAL_HOT_ESCAPE("reason")
//     Statement marker: the remainder of the enclosing block is an audited
//     cold branch (arena refill, crash path, per-step setup). The checker
//     stops reporting inside the escaped region. The reason string is
//     mandatory and should say *why* the branch is cold, not what it does.
//     `AllocGuard::Allow` scopes (util/alloc_guard.h) count as escapes too,
//     so the runtime and static escape hatches never drift apart.
//   FRACTAL_ARENA_OUT
//     Parameter annotation: this container parameter is arena-backed (leased
//     from a ScratchArena or recycled through SubgraphEnumerator::Refill's
//     swap), so amortized growth via push_back/insert on it is part of the
//     zero-steady-state-allocation design, not a violation. The runtime
//     AllocGuard still observes cold-start growth of these buffers, which is
//     why the guard arms only after per-step warm-up.
//
// Under clang the macros lower to `annotate` attributes so the libclang
// frontend of fractal_lint.py sees them in the AST; everywhere else they
// compile to nothing (the textual lint frontend matches them lexically).
// Either way they have zero runtime cost.
#ifndef FRACTAL_UTIL_HOT_ANNOTATIONS_H_
#define FRACTAL_UTIL_HOT_ANNOTATIONS_H_

#if defined(__clang__)
#define FRACTAL_HOT_ATTRIBUTE(x) __attribute__((annotate(x)))
#else
#define FRACTAL_HOT_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Hot-path root/leaf: reachable code must not allocate, throw, or call
/// unaudited externals. Checked by tools/fractal_lint.py.
#define FRACTAL_HOT FRACTAL_HOT_ATTRIBUTE("fractal_hot")

/// Arena-backed container parameter: amortized growth allowed.
#define FRACTAL_ARENA_OUT FRACTAL_HOT_ATTRIBUTE("fractal_arena")

namespace fractal {
namespace hot_internal {

/// Expansion target of FRACTAL_HOT_ESCAPE: a no-op call the libclang
/// frontend can locate in the AST (the textual frontend matches the macro
/// name itself). Inlined away entirely under optimization.
inline void EscapeMarker(const char* /*reason*/) {}

}  // namespace hot_internal
}  // namespace fractal

/// Marks the remainder of the enclosing block as an audited cold branch.
#define FRACTAL_HOT_ESCAPE(reason) \
  ::fractal::hot_internal::EscapeMarker(reason)

#endif  // FRACTAL_UTIL_HOT_ANNOTATIONS_H_
