// Wall-clock timing helper used by benchmarks and runtime telemetry.
#ifndef FRACTAL_UTIL_TIMER_H_
#define FRACTAL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fractal {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fractal

#endif  // FRACTAL_UTIL_TIMER_H_
