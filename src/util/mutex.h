// Annotated synchronization primitives. `Mutex` / `MutexLock` / `CondVar`
// wrap std::mutex / std::condition_variable_any and add two layers of
// checking on top:
//
//   * Clang Thread Safety Analysis capabilities (util/thread_annotations.h):
//     under clang, fields declared GUARDED_BY a Mutex and functions declared
//     REQUIRES/ACQUIRE/RELEASE are verified at compile time
//     (-Wthread-safety, promoted to an error in this build).
//   * Lockdep (util/lockdep.h): in FRACTAL_LOCKDEP builds (CMake option
//     FRACTAL_ENABLE_LOCKDEP, default ON) every Mutex belongs to a named
//     lock class and acquisitions feed the global acquired-before graph, so
//     a lock-order inversion aborts deterministically the first time both
//     orders are ever *acquired* — no actual deadlock schedule needed.
//
// Every Mutex must be constructed with its lock-class name, spelled
// "Owner::member" (see DESIGN.md "Lock hierarchy"). All instances sharing a
// name form one lockdep class, so two instances of the same class may never
// be held simultaneously by one thread.
//
// The FRACTAL_LOCKDEP macro must be consistent across a build tree (it is a
// global CMake compile definition); mixing instrumented and uninstrumented
// translation units would be an ODR violation.
#ifndef FRACTAL_UTIL_MUTEX_H_
#define FRACTAL_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lockdep.h"
#include "util/thread_annotations.h"

namespace fractal {

/// Annotated exclusive mutex. Non-reentrant.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` is the lockdep class name ("Owner::member"); it must outlive
  /// the process (string literals only).
  explicit Mutex(const char* name)
#ifdef FRACTAL_LOCKDEP
      : lock_class_(lockdep::RegisterClass(name))
#endif
  {
    (void)name;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef FRACTAL_LOCKDEP
    // Before blocking, so an inversion reports instead of deadlocking.
    lockdep::OnAcquire(lock_class_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
#ifdef FRACTAL_LOCKDEP
    // Pop the held stack *before* the underlying unlock: once mu_.unlock()
    // returns, a rendezvous peer may legally destroy this Mutex (e.g. the
    // stack-allocated MessageBus::Request after its `done` flip), so
    // `this` must not be touched afterwards.
    lockdep::OnRelease(lock_class_);
#endif
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifdef FRACTAL_LOCKDEP
    // A successful try-lock cannot deadlock, but it still documents an
    // acquired-before edge for threads that later block on the same pair.
    lockdep::OnAcquire(lock_class_);
#endif
    return true;
  }

  /// Checks (in lockdep builds) that the calling thread holds a lock of
  /// this mutex's class; tells the static analysis the capability is held.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef FRACTAL_LOCKDEP
    lockdep::AssertHeld(lock_class_);
#endif
  }

  // BasicLockable interface for std::condition_variable_any; routed through
  // Lock/Unlock so the lockdep held stack stays accurate across CondVar
  // waits. Prefer the capitalized names (or MutexLock) in user code.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

 private:
  std::mutex mu_;
#ifdef FRACTAL_LOCKDEP
  const lockdep::LockClass* lock_class_;
#endif
};

/// RAII lock for a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Waits release and re-acquire the
/// mutex through the instrumented path. Callers write explicit predicate
/// loops —
///     MutexLock lock(mu_);
///     while (!predicate) cv_.Wait(mu_);
/// — rather than passing predicate lambdas, so the guarded reads stay in a
/// scope the static analysis can see holds the lock.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits for a notification (or a spurious
  /// wakeup — always re-check the predicate), and re-acquires `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Like Wait, but returns after at most `timeout_ms` milliseconds.
  /// Returns true when woken by a notification (or spuriously — always
  /// re-check the predicate), false on timeout.
  bool WaitFor(Mutex& mu, int64_t timeout_ms) REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }

  /// Microsecond-granularity WaitFor; used by the message bus for steal-RPC
  /// deadlines (NetworkConfig::request_timeout_micros is far below 1 ms in
  /// tests). Same contract as WaitFor.
  bool WaitForMicros(Mutex& mu, int64_t timeout_us) REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::microseconds(timeout_us)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fractal

#endif  // FRACTAL_UTIL_MUTEX_H_
