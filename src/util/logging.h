// Leveled logging to stderr: FRACTAL_LOG(Info) << "..."; Thread-safe at the
// line level (each statement is flushed as one write). Every line carries a
// monotonic timestamp (seconds since the process's first log statement) and
// a small sequential thread id: "[I 12.345678 t003 file.cc:42] ...".
// The initial level comes from the FRACTAL_LOG_LEVEL environment variable
// (debug|info|warning|error, or 0-3); SetLogLevel overrides at runtime.
#ifndef FRACTAL_UTIL_LOGGING_H_
#define FRACTAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fractal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that actually gets emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Allocation-free log emission: formats the standard prefix plus the
/// already-formatted `message` into a stack buffer and writes it with one
/// fwrite. For threads under the allocation discipline (DESIGN.md §9) that
/// still need a sign of life — the streaming FRACTAL_LOG path builds an
/// ostringstream per statement. Messages longer than ~480 bytes are
/// truncated.
void LogLine(LogLevel level, const char* file, int line, const char* message);

#define FRACTAL_LOG_LINE(severity, message)                        \
  ::fractal::LogLine(::fractal::LogLevel::k##severity, __FILE__,   \
                     __LINE__, (message))

namespace internal_log {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace fractal

#define FRACTAL_LOG(severity)                                    \
  ::fractal::internal_log::LogMessage(                           \
      ::fractal::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // FRACTAL_UTIL_LOGGING_H_
