// Lockdep-style runtime lock-order checker (modeled on the Linux kernel's
// lockdep). Every annotated `Mutex` (util/mutex.h) belongs to a *lock
// class*, keyed by the name given at construction — all instances created
// from the same name share one class, exactly like lockdep keying on the
// lock's initialization site. On every acquisition the checker records, in
// a global directed graph, an acquired-before edge from each lock class the
// acquiring thread already holds to the class being acquired. If adding an
// edge A→B closes a cycle (a path B→…→A already exists), the checker
// reports a lock-order inversion with *both* acquisition paths: the stack
// of the thread that is acquiring now, and the recorded site that created
// each edge of the pre-existing reverse path.
//
// Because the graph is global and persistent, an inversion is detected
// deterministically on the first schedule that merely *acquires* the locks
// in both orders at any point in the process lifetime — no actual deadlock
// (and no unlucky interleaving, unlike TSan's lock-order heuristics on a
// single run) is required.
//
// The checker is compiled in only when FRACTAL_LOCKDEP is defined (the
// CMake option FRACTAL_ENABLE_LOCKDEP, default ON; release builds can turn
// it off). All functions here are thread-safe.
#ifndef FRACTAL_UTIL_LOCKDEP_H_
#define FRACTAL_UTIL_LOCKDEP_H_

#include <cstdint>
#include <functional>
#include <string>

namespace fractal {
namespace lockdep {

/// One lock class: all Mutex instances sharing a name. Immutable after
/// registration; pointers remain valid for the process lifetime.
struct LockClass {
  uint32_t id = 0;
  std::string name;
};

/// Registers (or looks up) the lock class named `name`. Never fails;
/// returns a pointer valid forever.
const LockClass* RegisterClass(const char* name);

/// Records that the current thread is acquiring `cls`: adds
/// held-class → cls edges to the global acquired-before graph, checking
/// each new edge for a cycle, then pushes `cls` on the per-thread held
/// stack. Call immediately *before* blocking on the underlying mutex so an
/// inversion is reported instead of deadlocking.
void OnAcquire(const LockClass* cls);

/// Pops `cls` from the per-thread held stack (locks may be released in any
/// order, not only LIFO).
void OnRelease(const LockClass* cls);

/// Aborts unless the calling thread holds a lock of class `cls` (class, not
/// instance: the per-thread stack tracks classes).
void AssertHeld(const LockClass* cls);

/// A detected lock-order inversion, with both acquisition paths.
struct InversionReport {
  /// The edge whose insertion closed the cycle (acquiring `to` while
  /// holding `from`).
  std::string from;
  std::string to;
  /// Acquisition path 1: the current thread's held stack at detection.
  std::string acquiring_path;
  /// Acquisition path 2: the pre-existing to→…→from chain, with the held
  /// stack that first recorded each edge.
  std::string existing_path;
  /// Human-readable rendering of the whole report.
  std::string ToString() const;
};

/// Invoked on inversion. The default handler prints the report and aborts
/// (a lock-order inversion is a latent deadlock — a programming error).
using FailureHandler = std::function<void(const InversionReport&)>;

/// Installs `handler` (tests use this to capture reports non-fatally) and
/// returns the previous one. Pass nullptr to restore the default.
FailureHandler SetFailureHandlerForTest(FailureHandler handler);

/// Clears the global acquired-before graph (not the class registry). Tests
/// that inject inversions call this so the poisoned edges do not leak into
/// later tests. The per-thread held stacks of *other* threads are untouched
/// — only call while no other thread holds an instrumented lock.
void ResetGraphForTest();

/// Number of distinct acquired-before edges recorded so far (observability
/// for tests).
size_t NumEdgesForTest();

}  // namespace lockdep
}  // namespace fractal

#endif  // FRACTAL_UTIL_LOCKDEP_H_
