#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

#include "util/check.h"

namespace fractal {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  FRACTAL_CHECK(needed >= 0) << "bad format string";
  std::string result(static_cast<size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::vector<std::string_view> SplitString(std::string_view text,
                                          std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) pieces.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 5) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

std::string WithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++count;
  }
  return std::string(result.rbegin(), result.rend());
}

}  // namespace fractal
