// Clang Thread Safety Analysis annotation macros (-Wthread-safety).
//
// These expand to clang `capability` attributes when the compiler supports
// them and to nothing otherwise (GCC accepts the code unannotated), so the
// locking contracts below are zero-cost documentation everywhere and
// compile-time-checked contracts under clang. Conventions used in this
// codebase are documented in DESIGN.md ("Lock hierarchy and thread-safety
// annotations"); the canonical reference is
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// Summary of the vocabulary:
//   CAPABILITY("mutex")   — the annotated class is a lockable capability.
//   SCOPED_CAPABILITY     — RAII type that acquires on construction and
//                           releases on destruction (MutexLock).
//   GUARDED_BY(mu)        — field may only be touched while `mu` is held.
//   PT_GUARDED_BY(mu)     — pointee (not the pointer) is guarded by `mu`.
//   REQUIRES(mu)          — caller must already hold `mu`.
//   ACQUIRE(mu)/RELEASE(mu) — function acquires / releases `mu`.
//   TRY_ACQUIRE(b, mu)    — acquires `mu` iff the function returns `b`.
//   EXCLUDES(mu)          — caller must NOT hold `mu` (function locks it).
//   ASSERT_CAPABILITY(mu) — runtime assertion that `mu` is held.
//   NO_THREAD_SAFETY_ANALYSIS — opt a function out (used only where the
//                           protocol is not expressible, with a comment).
#ifndef FRACTAL_UTIL_THREAD_ANNOTATIONS_H_
#define FRACTAL_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define FRACTAL_TSA_HAS(x) __has_attribute(x)
#else
#define FRACTAL_TSA_HAS(x) 0
#endif

#if FRACTAL_TSA_HAS(capability)
#define FRACTAL_TSA(x) __attribute__((x))
#else
#define FRACTAL_TSA(x)  // no-op on compilers without TSA (GCC, MSVC)
#endif

#define CAPABILITY(x) FRACTAL_TSA(capability(x))
#define SCOPED_CAPABILITY FRACTAL_TSA(scoped_lockable)
#define GUARDED_BY(x) FRACTAL_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) FRACTAL_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) FRACTAL_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FRACTAL_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) FRACTAL_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FRACTAL_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) FRACTAL_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FRACTAL_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FRACTAL_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FRACTAL_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) FRACTAL_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FRACTAL_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  FRACTAL_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) FRACTAL_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FRACTAL_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FRACTAL_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) FRACTAL_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FRACTAL_TSA(no_thread_safety_analysis)

#endif  // FRACTAL_UTIL_THREAD_ANNOTATIONS_H_
