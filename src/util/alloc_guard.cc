#include "util/alloc_guard.h"

#ifdef FRACTAL_ALLOC_GUARD_BACKTRACE
#include <execinfo.h>
#endif

#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>

namespace fractal {
namespace {

// Thread-local observation state. Trivially-destructible POD with zero
// dynamic initialization so the interposed operator new can consult it at
// any point of thread/process lifetime, including before main().
struct GuardState {
  uint32_t guard_depth;   // open kCount/kAbort scopes
  uint32_t abort_depth;   // open kAbort scopes
  uint32_t allow_depth;   // open Allow regions
  uint64_t allocations;   // observed while guarded, this thread
  uint64_t bytes;
  uint64_t frees;
};
thread_local GuardState tls;

// Cumulative across threads; relaxed is fine (tests read it quiescent).
std::atomic<uint64_t> g_total_guarded{0};

// kModeUninitialized until the first GlobalMode() call parses the env.
constexpr int kModeUninitialized = -1;
std::atomic<int> g_mode{kModeUninitialized};
constexpr uint64_t kWarmupUninitialized = UINT64_MAX;
std::atomic<uint64_t> g_warmup{kWarmupUninitialized};

// Async-safe-ish failure report: hand-rolled formatting into a stack
// buffer + write(2); operator new must not re-enter the allocator here.
void AbortOnGuardedAllocation(size_t size) {
  char buf[160];
  char* p = buf;
  const char* prefix =
      "AllocGuard: heap allocation on a guarded hot path (size=";
  std::memcpy(p, prefix, std::strlen(prefix));
  p += std::strlen(prefix);
  char digits[20];
  int n = 0;
  uint64_t v = size;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *p++ = digits[--n];
  const char* suffix = "); FRACTAL_ALLOC_GUARD=abort\n";
  std::memcpy(p, suffix, std::strlen(suffix));
  p += std::strlen(suffix);
  [[maybe_unused]] ssize_t ignored = write(STDERR_FILENO, buf, p - buf);
#ifdef FRACTAL_ALLOC_GUARD_BACKTRACE
  void* frames[32];
  backtrace_symbols_fd(frames, backtrace(frames, 32), STDERR_FILENO);
#endif
  std::abort();
}

inline void ObserveAllocation(size_t size) {
  if (tls.guard_depth == 0 || tls.allow_depth > 0) return;
  ++tls.allocations;
  tls.bytes += size;
  g_total_guarded.fetch_add(1, std::memory_order_relaxed);
  if (tls.abort_depth > 0) AbortOnGuardedAllocation(size);
}

inline void ObserveDeallocation() {
  if (tls.guard_depth == 0 || tls.allow_depth > 0) return;
  ++tls.frees;
}

}  // namespace

AllocGuard::AllocGuard(Mode mode) : mode_(mode) {
  if (mode_ == Mode::kOff) return;
  start_allocations_ = tls.allocations;
  start_bytes_ = tls.bytes;
  start_frees_ = tls.frees;
  ++tls.guard_depth;
  if (mode_ == Mode::kAbort) ++tls.abort_depth;
}

AllocGuard::~AllocGuard() {
  if (mode_ == Mode::kOff) return;
  --tls.guard_depth;
  if (mode_ == Mode::kAbort) --tls.abort_depth;
}

uint64_t AllocGuard::allocations() const {
  return mode_ == Mode::kOff ? 0 : tls.allocations - start_allocations_;
}

uint64_t AllocGuard::bytes() const {
  return mode_ == Mode::kOff ? 0 : tls.bytes - start_bytes_;
}

uint64_t AllocGuard::frees() const {
  return mode_ == Mode::kOff ? 0 : tls.frees - start_frees_;
}

AllocGuard::Allow::Allow(const char* /*reason*/) { ++tls.allow_depth; }
AllocGuard::Allow::~Allow() { --tls.allow_depth; }

bool AllocGuard::Active() {
#ifdef FRACTAL_ALLOC_GUARD_RUNTIME
  return true;
#else
  return false;
#endif
}

bool AllocGuard::GuardedOnThisThread() {
  return tls.guard_depth > 0 && tls.allow_depth == 0;
}

uint64_t AllocGuard::TotalGuardedAllocations() {
  return g_total_guarded.load(std::memory_order_relaxed);
}

AllocGuard::Mode AllocGuard::GlobalMode() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode == kModeUninitialized) {
    const char* env = std::getenv("FRACTAL_ALLOC_GUARD");
    mode = static_cast<int>(Mode::kOff);
    if (env != nullptr) {
      if (std::strcmp(env, "count") == 0) {
        mode = static_cast<int>(Mode::kCount);
      } else if (std::strcmp(env, "abort") == 0) {
        mode = static_cast<int>(Mode::kAbort);
      }
    }
    int expected = kModeUninitialized;
    g_mode.compare_exchange_strong(expected, mode,
                                   std::memory_order_relaxed);
    mode = g_mode.load(std::memory_order_relaxed);
  }
  return static_cast<Mode>(mode);
}

void AllocGuard::SetGlobalMode(Mode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

uint64_t AllocGuard::warmup_units() {
  uint64_t warmup = g_warmup.load(std::memory_order_relaxed);
  if (warmup == kWarmupUninitialized) {
    const char* env = std::getenv("FRACTAL_ALLOC_GUARD_WARMUP");
    warmup = 512;
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != nullptr && *end == '\0' &&
          parsed != kWarmupUninitialized) {
        warmup = parsed;
      }
    }
    uint64_t expected = kWarmupUninitialized;
    g_warmup.compare_exchange_strong(expected, warmup,
                                     std::memory_order_relaxed);
    warmup = g_warmup.load(std::memory_order_relaxed);
  }
  return warmup;
}

}  // namespace fractal

#ifdef FRACTAL_ALLOC_GUARD_RUNTIME

// Interposing global operator new/delete: every path funnels through
// AllocateRaw/FreeRaw so observation happens exactly once per allocation.
// Semantics match the defaults (new-handler loop, bad_alloc on exhaustion,
// null-tolerant delete); ASan/TSan keep working because the underlying
// malloc/free remain intercepted by the sanitizer runtimes.

namespace {

void* AllocateRaw(size_t size, size_t align) {
  fractal::ObserveAllocation(size);
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (align <= alignof(std::max_align_t)) {
      p = std::malloc(size);
    } else if (posix_memalign(&p, align, size) != 0) {
      p = nullptr;
    }
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void FreeRaw(void* p) {
  if (p == nullptr) return;
  fractal::ObserveDeallocation();
  std::free(p);
}

}  // namespace

void* operator new(size_t size) {
  void* p = AllocateRaw(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size) {
  void* p = AllocateRaw(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return AllocateRaw(size, alignof(std::max_align_t));
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return AllocateRaw(size, alignof(std::max_align_t));
}
void* operator new(size_t size, std::align_val_t align) {
  void* p = AllocateRaw(size, static_cast<size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size, std::align_val_t align) {
  void* p = AllocateRaw(size, static_cast<size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return AllocateRaw(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return AllocateRaw(size, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept { FreeRaw(p); }
void operator delete[](void* p) noexcept { FreeRaw(p); }
void operator delete(void* p, size_t) noexcept { FreeRaw(p); }
void operator delete[](void* p, size_t) noexcept { FreeRaw(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { FreeRaw(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  FreeRaw(p);
}
void operator delete(void* p, std::align_val_t) noexcept { FreeRaw(p); }
void operator delete[](void* p, std::align_val_t) noexcept { FreeRaw(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  FreeRaw(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  FreeRaw(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  FreeRaw(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  FreeRaw(p);
}

#endif  // FRACTAL_ALLOC_GUARD_RUNTIME
