#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fractal {
namespace {

/// Parses FRACTAL_LOG_LEVEL (case-insensitive name or digit 0-3) once at
/// startup. Unset or unparsable values keep the kInfo default.
int InitialLogLevel() {
  const char* env = std::getenv("FRACTAL_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (env[1] == '\0' && env[0] >= '0' && env[0] <= '3') {
    return env[0] - '0';
  }
  auto matches = [env](const char* name) {
    const char* p = env;
    for (; *name != '\0'; ++name, ++p) {
      const char c = (*p >= 'A' && *p <= 'Z') ? *p - 'A' + 'a' : *p;
      if (c != *name) return false;
    }
    return *p == '\0';
  };
  if (matches("debug")) return static_cast<int>(LogLevel::kDebug);
  if (matches("info")) return static_cast<int>(LogLevel::kInfo);
  if (matches("warning")) return static_cast<int>(LogLevel::kWarning);
  if (matches("error")) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_log_level{InitialLogLevel()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

/// Monotonic seconds since the first log statement of the process: stable
/// under clock adjustments and directly comparable with trace timestamps
/// (both are steady_clock based).
double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

/// Small sequential ids instead of opaque std::thread::id hashes: the first
/// thread that logs becomes t000, the next t001, ...
uint32_t CachedThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, const char* file, int line,
             const char* message) {
  if (static_cast<int>(level) < g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  char buf[512];
  const int n =
      std::snprintf(buf, sizeof(buf), "[%s %12.6f t%03u %s:%d] %s\n",
                    LevelTag(level), MonotonicSeconds(), CachedThreadId(),
                    basename, line, message);
  if (n <= 0) return;
  std::fwrite(buf, 1, std::min(static_cast<size_t>(n), sizeof(buf) - 1),
              stderr);
  std::fflush(stderr);
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%s %12.6f t%03u ", LevelTag(level),
                MonotonicSeconds(), CachedThreadId());
  stream_ << prefix << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  // One fwrite per message keeps concurrent log lines from interleaving.
  const std::string text = stream_.str();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_log
}  // namespace fractal
