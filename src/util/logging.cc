#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace fractal {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  // One fwrite per message keeps concurrent log lines from interleaving.
  const std::string text = stream_.str();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_log
}  // namespace fractal
