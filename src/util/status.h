// Minimal Status / StatusOr error-handling primitives, in the style of
// absl::Status. Library code never throws; fallible operations return a
// Status (or StatusOr<T>) that callers must consume.
#ifndef FRACTAL_UTIL_STATUS_H_
#define FRACTAL_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace fractal {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kResourceExhausted = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kFailedPrecondition = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
};

/// Result of a fallible operation: an error code plus a human-readable
/// message. The default-constructed Status is OK.
///
/// [[nodiscard]] on the class makes every function returning a Status
/// (Validate, graph I/O, executor entry points, ...) warn when a caller
/// silently drops the result; with -Werror that is a build break.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Constructors for the common error codes.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status FailedPreconditionError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts the process (library code is exception-free).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  StatusOr(Status status) : status_(std::move(status)) {
    FRACTAL_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FRACTAL_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FRACTAL_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FRACTAL_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define FRACTAL_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::fractal::Status status_macro_s__ = (expr); \
    if (!status_macro_s__.ok()) return status_macro_s__; \
  } while (false)

}  // namespace fractal

#endif  // FRACTAL_UTIL_STATUS_H_
