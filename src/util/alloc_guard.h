// AllocGuard: the runtime backstop of the hot-path allocation discipline
// (DESIGN.md §9). tools/fractal_lint.py proves statically that no allocation
// is *visibly* reachable from a FRACTAL_HOT root; AllocGuard covers whatever
// the static walk cannot see through (type-erased callbacks, amortized
// container growth, code behind audited escapes that regressed) by
// interposing the global operator new/delete and counting — or aborting on —
// allocations performed while a guard scope is active on the current thread.
//
// Usage:
//   AllocGuard guard(AllocGuard::Mode::kCount);
//   HotWork();
//   EXPECT_EQ(guard.allocations(), 0u);
//
// Scopes are thread-local: a guard constructed on thread A never observes
// allocations from thread B. Guards nest (an outer guard's counts include
// everything inner guards saw); `AllocGuard::Allow` suspends observation for
// audited cold branches — the runtime twin of FRACTAL_HOT_ESCAPE, and
// recognized as an escape marker by the static lint so the two hatches stay
// in sync.
//
// Process-wide arming: FractoidStepTask wraps steady-state DFS regions in
// guard scopes whose mode comes from GlobalMode(), initialized from the
// FRACTAL_ALLOC_GUARD environment variable ("count", "abort", anything
// else/unset = off) and overridable per test via SetGlobalMode(). Because a
// step's scratch pools start cold, the task arms the guard only after the
// thread has consumed warmup_units() extensions in the step
// (FRACTAL_ALLOC_GUARD_WARMUP, default 512).
//
// The interposing operator new/delete definitions live in alloc_guard.cc and
// are compiled when FRACTAL_ALLOC_GUARD_RUNTIME is defined (CMake option
// FRACTAL_ENABLE_ALLOC_GUARD, default ON; the inactive-path cost is one
// thread-local depth check per allocation). Without the runtime, guards
// construct fine and observe nothing — Active() reports whether the
// interposer is compiled in so tests can skip.
#ifndef FRACTAL_UTIL_ALLOC_GUARD_H_
#define FRACTAL_UTIL_ALLOC_GUARD_H_

#include <cstdint>

namespace fractal {

class AllocGuard {
 public:
  enum class Mode : int {
    kOff = 0,    // scope is a no-op
    kCount = 1,  // count allocations/bytes observed in the scope
    kAbort = 2,  // abort the process on the first observed allocation
  };

  /// Opens a guard scope on the current thread. kOff constructs an inert
  /// guard (no thread-local traffic beyond one branch).
  explicit AllocGuard(Mode mode);
  ~AllocGuard();

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocations observed on this thread since the scope opened (includes
  /// nested guard scopes, excludes Allow regions). Same-thread use only.
  uint64_t allocations() const;
  /// Bytes requested by those allocations.
  uint64_t bytes() const;
  /// Deallocations observed on this thread since the scope opened.
  uint64_t frees() const;

  /// Audited cold branch: suspends observation (counting and aborting) on
  /// this thread for the lifetime of the object. The static lint treats the
  /// construction site as a FRACTAL_HOT_ESCAPE.
  class Allow {
   public:
    explicit Allow(const char* reason);
    ~Allow();

    Allow(const Allow&) = delete;
    Allow& operator=(const Allow&) = delete;
  };

  /// Whether the interposing operator new/delete runtime is compiled in.
  static bool Active();

  /// True while a counting/aborting guard scope is open on this thread and
  /// no Allow region suspends it.
  static bool GuardedOnThisThread();

  /// Process-wide allocations observed inside any guard scope on any thread
  /// (cumulative). Lets a driver assert that worker threads it cannot
  /// inspect directly stayed allocation-free.
  static uint64_t TotalGuardedAllocations();

  /// Process-wide mode consulted by the runtime's guard wrap points
  /// (FractoidStepTask). Initialized lazily from FRACTAL_ALLOC_GUARD.
  static Mode GlobalMode();
  static void SetGlobalMode(Mode mode);

  /// Work units a thread must consume in a step before the runtime arms its
  /// guard scopes (scratch pools start cold every step attempt). From
  /// FRACTAL_ALLOC_GUARD_WARMUP, default 512.
  static uint64_t warmup_units();

 private:
  Mode mode_;
  uint64_t start_allocations_ = 0;
  uint64_t start_bytes_ = 0;
  uint64_t start_frees_ = 0;
};

}  // namespace fractal

#endif  // FRACTAL_UTIL_ALLOC_GUARD_H_
