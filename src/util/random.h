// Deterministic, fast pseudo-random number generation. All synthetic data in
// this repository is derived from SplitMix64 streams with fixed seeds so that
// every experiment is bit-for-bit reproducible.
#ifndef FRACTAL_UTIL_RANDOM_H_
#define FRACTAL_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace fractal {

/// SplitMix64: tiny, fast, statistically solid 64-bit PRNG. Not
/// cryptographic; used only for synthetic workloads and sampling.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    FRACTAL_DCHECK(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all far below 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace fractal

#endif  // FRACTAL_UTIL_RANDOM_H_
