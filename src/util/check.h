// CHECK-style invariant assertions. FRACTAL_CHECK is always on (invariant
// violations are programming errors and abort), FRACTAL_DCHECK compiles out
// in NDEBUG builds.
#ifndef FRACTAL_UTIL_CHECK_H_
#define FRACTAL_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fractal {
namespace internal_check {

/// Accumulates a failure message via operator<< and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets the false branch of the CHECK ternary have type void while still
/// allowing `FRACTAL_CHECK(x) << "context"` (glog's voidify idiom; `&` binds
/// looser than `<<`).
class Voidify {
 public:
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace fractal

#define FRACTAL_CHECK(condition)                      \
  (condition) ? (void)0                               \
              : ::fractal::internal_check::Voidify() &  \
                    ::fractal::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

#define FRACTAL_CHECK_OK(expr)                                \
  do {                                                        \
    const auto& check_ok_s__ = (expr);                        \
    FRACTAL_CHECK(check_ok_s__.ok()) << check_ok_s__.ToString(); \
  } while (false)

#define FRACTAL_CHECK_EQ(a, b) FRACTAL_CHECK((a) == (b))
#define FRACTAL_CHECK_NE(a, b) FRACTAL_CHECK((a) != (b))
#define FRACTAL_CHECK_LT(a, b) FRACTAL_CHECK((a) < (b))
#define FRACTAL_CHECK_LE(a, b) FRACTAL_CHECK((a) <= (b))
#define FRACTAL_CHECK_GT(a, b) FRACTAL_CHECK((a) > (b))
#define FRACTAL_CHECK_GE(a, b) FRACTAL_CHECK((a) >= (b))

#ifdef NDEBUG
#define FRACTAL_DCHECK(condition) \
  FRACTAL_CHECK(true || (condition))
#else
#define FRACTAL_DCHECK(condition) FRACTAL_CHECK(condition)
#endif

#endif  // FRACTAL_UTIL_CHECK_H_
