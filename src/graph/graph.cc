#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace fractal {

double Graph::Density() const {
  const double v = NumVertices();
  if (v < 2) return 0.0;
  return 2.0 * NumEdges() / (v * (v - 1.0));
}

std::optional<EdgeId> Graph::EdgeBetween(VertexId u, VertexId v) const {
  FRACTAL_DCHECK(u < NumVertices());
  FRACTAL_DCHECK(v < NumVertices());
  if (u == v) return std::nullopt;
  // Search from the lower-degree endpoint.
  if (Degree(v) < Degree(u)) std::swap(u, v);
  const auto neighbors = Neighbors(u);
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), v);
  if (it == neighbors.end() || *it != v) return std::nullopt;
  const size_t index = static_cast<size_t>(it - neighbors.begin());
  return IncidentEdges(u)[index];
}

std::span<const uint32_t> Graph::VertexKeywords(VertexId v) const {
  FRACTAL_DCHECK(v < NumVertices());
  if (!has_keywords_) return {};
  return {vertex_keyword_data_.data() + vertex_keyword_offsets_[v],
          vertex_keyword_data_.data() + vertex_keyword_offsets_[v + 1]};
}

std::span<const uint32_t> Graph::EdgeKeywords(EdgeId e) const {
  FRACTAL_DCHECK(e < NumEdges());
  if (!has_keywords_) return {};
  return {edge_keyword_data_.data() + edge_keyword_offsets_[e],
          edge_keyword_data_.data() + edge_keyword_offsets_[e + 1]};
}

std::string Graph::DebugString() const {
  return StrFormat("Graph(|V|=%u, |E|=%u, |L|=%u, density=%.2e%s)",
                   NumVertices(), NumEdges(), NumLabels(), Density(),
                   has_keywords_ ? ", keywords" : "");
}

VertexId GraphBuilder::AddVertex(Label label) {
  vertex_labels_.push_back(label);
  pending_adj_.emplace_back();
  vertex_keywords_.emplace_back();
  inactive_.push_back(0);
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

void GraphBuilder::MarkVertexInactive(VertexId v) {
  FRACTAL_CHECK(v < NumVertices());
  inactive_[v] = 1;
  any_inactive_ = true;
}

bool GraphBuilder::HasEdge(VertexId u, VertexId v) const {
  FRACTAL_DCHECK(u < NumVertices());
  FRACTAL_DCHECK(v < NumVertices());
  const bool u_smaller = pending_adj_[u].size() <= pending_adj_[v].size();
  const auto& adj = pending_adj_[u_smaller ? u : v];
  const VertexId other = u_smaller ? v : u;
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), other,
      [](const std::pair<VertexId, EdgeId>& entry, VertexId needle) {
        return entry.first < needle;
      });
  return it != adj.end() && it->first == other;
}

EdgeId GraphBuilder::AddEdge(VertexId u, VertexId v, Label label) {
  FRACTAL_CHECK(u < NumVertices()) << "edge endpoint out of range";
  FRACTAL_CHECK(v < NumVertices()) << "edge endpoint out of range";
  FRACTAL_CHECK(u != v) << "self-loops are not allowed (Definition 1)";
  FRACTAL_CHECK(!HasEdge(u, v)) << "duplicate edge (" << u << "," << v << ")";
  EdgeEndpoints endpoints;
  endpoints.src = std::min(u, v);
  endpoints.dst = std::max(u, v);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(endpoints);
  edge_labels_.push_back(label);
  edge_keywords_.emplace_back();
  // Sorted insertion keeps HasEdge (and the duplicate CHECK above) at
  // O(log deg) for the whole build.
  const auto insert_sorted = [this](VertexId at, VertexId neighbor,
                                    EdgeId edge) {
    auto& adj = pending_adj_[at];
    const auto it = std::lower_bound(
        adj.begin(), adj.end(), std::make_pair(neighbor, EdgeId{0}),
        [](const std::pair<VertexId, EdgeId>& a,
           const std::pair<VertexId, EdgeId>& b) { return a.first < b.first; });
    adj.insert(it, {neighbor, edge});
  };
  insert_sorted(u, v, id);
  insert_sorted(v, u, id);
  return id;
}

void GraphBuilder::SetVertexKeywords(VertexId v,
                                     std::vector<uint32_t> keywords) {
  FRACTAL_CHECK(v < NumVertices());
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
  vertex_keywords_[v] = std::move(keywords);
  has_keywords_ = true;
}

void GraphBuilder::SetEdgeKeywords(EdgeId e, std::vector<uint32_t> keywords) {
  FRACTAL_CHECK(e < NumEdges());
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
  edge_keywords_[e] = std::move(keywords);
  has_keywords_ = true;
}

Graph GraphBuilder::Build() && {
  Graph graph;
  const uint32_t num_vertices = NumVertices();
  graph.vertex_labels_ = std::move(vertex_labels_);
  graph.edges_ = std::move(edges_);
  graph.edge_labels_ = std::move(edge_labels_);

  graph.adj_offsets_.assign(num_vertices + 1, 0);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    graph.adj_offsets_[v + 1] =
        graph.adj_offsets_[v] + static_cast<uint32_t>(pending_adj_[v].size());
  }
  graph.adj_neighbors_.resize(graph.adj_offsets_[num_vertices]);
  graph.adj_edge_ids_.resize(graph.adj_offsets_[num_vertices]);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    // Pending lists are maintained sorted by AddEdge; no per-vertex sort.
    uint32_t offset = graph.adj_offsets_[v];
    for (const auto& [neighbor, edge] : pending_adj_[v]) {
      graph.adj_neighbors_[offset] = neighbor;
      graph.adj_edge_ids_[offset] = edge;
      ++offset;
    }
  }

  // Degree-thresholded adjacency bitmaps for O(1) IsAdjacent against hubs.
  graph.hub_degree_threshold_ =
      std::max<uint32_t>(64, num_vertices / 64);
  graph.hub_words_ = (static_cast<size_t>(num_vertices) + 63) / 64;
  uint32_t num_hubs = 0;
  for (uint32_t v = 0; v < num_vertices; ++v) {
    if (graph.Degree(v) >= graph.hub_degree_threshold_) ++num_hubs;
  }
  graph.num_hubs_ = num_hubs;
  if (num_hubs > 0) {
    graph.hub_slot_.assign(num_vertices, UINT32_MAX);
    graph.hub_bits_.assign(static_cast<size_t>(num_hubs) * graph.hub_words_,
                           0);
    uint32_t slot = 0;
    for (uint32_t v = 0; v < num_vertices; ++v) {
      if (graph.Degree(v) < graph.hub_degree_threshold_) continue;
      graph.hub_slot_[v] = slot;
      uint64_t* row = graph.hub_bits_.data() +
                      static_cast<size_t>(slot) * graph.hub_words_;
      for (const VertexId neighbor : graph.Neighbors(v)) {
        row[neighbor >> 6] |= uint64_t{1} << (neighbor & 63);
      }
      ++slot;
    }
  }

  // Count distinct labels across vertices and edges.
  std::unordered_set<Label> labels(graph.vertex_labels_.begin(),
                                   graph.vertex_labels_.end());
  labels.insert(graph.edge_labels_.begin(), graph.edge_labels_.end());
  graph.num_labels_ = static_cast<uint32_t>(labels.size());

  graph.num_active_vertices_ = num_vertices;
  if (any_inactive_) {
    for (uint32_t v = 0; v < num_vertices; ++v) {
      FRACTAL_CHECK(!inactive_[v] || graph.Degree(v) == 0)
          << "inactive vertex " << v << " still has incident edges";
    }
    graph.vertex_active_.resize(num_vertices);
    uint32_t active = 0;
    for (uint32_t v = 0; v < num_vertices; ++v) {
      graph.vertex_active_[v] = inactive_[v] ? 0 : 1;
      active += graph.vertex_active_[v];
    }
    graph.num_active_vertices_ = active;
  }

  if (has_keywords_) {
    graph.has_keywords_ = true;
    uint32_t max_keyword = 0;
    graph.vertex_keyword_offsets_.assign(num_vertices + 1, 0);
    for (uint32_t v = 0; v < num_vertices; ++v) {
      graph.vertex_keyword_offsets_[v + 1] =
          graph.vertex_keyword_offsets_[v] +
          static_cast<uint32_t>(vertex_keywords_[v].size());
    }
    graph.vertex_keyword_data_.reserve(
        graph.vertex_keyword_offsets_[num_vertices]);
    for (uint32_t v = 0; v < num_vertices; ++v) {
      for (const uint32_t k : vertex_keywords_[v]) {
        graph.vertex_keyword_data_.push_back(k);
        max_keyword = std::max(max_keyword, k + 1);
      }
    }
    const uint32_t num_edges = graph.NumEdges();
    graph.edge_keyword_offsets_.assign(num_edges + 1, 0);
    for (uint32_t e = 0; e < num_edges; ++e) {
      graph.edge_keyword_offsets_[e + 1] =
          graph.edge_keyword_offsets_[e] +
          static_cast<uint32_t>(edge_keywords_[e].size());
    }
    graph.edge_keyword_data_.reserve(graph.edge_keyword_offsets_[num_edges]);
    for (uint32_t e = 0; e < num_edges; ++e) {
      for (const uint32_t k : edge_keywords_[e]) {
        graph.edge_keyword_data_.push_back(k);
        max_keyword = std::max(max_keyword, k + 1);
      }
    }
    graph.keyword_vocabulary_size_ = max_keyword;
  }
  return graph;
}

}  // namespace fractal
