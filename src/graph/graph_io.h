// Reading and writing graphs in the Arabesque/Fractal adjacency-list text
// format, the on-disk format the original system consumes (paper §4, "Input
// graphs may be stored on the local file system or on HDFS"):
//
//   <vertex id> <vertex label> [<neighbor id>[:<edge label>]]*
//
// One line per vertex; vertex ids must be 0..V-1 in order; every undirected
// edge appears on both endpoint lines (with matching edge labels). Edge
// labels default to 0 when omitted. Lines starting with '#' are comments.
#ifndef FRACTAL_GRAPH_GRAPH_IO_H_
#define FRACTAL_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace fractal {

/// Parses a graph from the adjacency-list text format.
StatusOr<Graph> ParseAdjacencyList(const std::string& text);

/// Loads a graph from a file in the adjacency-list text format.
StatusOr<Graph> LoadAdjacencyListFile(const std::string& path);

/// Serializes a graph to the adjacency-list text format (keywords are not
/// part of this format and are dropped).
std::string WriteAdjacencyList(const Graph& graph);

/// Saves a graph to a file in the adjacency-list text format.
Status SaveAdjacencyListFile(const Graph& graph, const std::string& path);

/// Parses a graph from the SNAP-style edge-list format: one "<u> <v>" pair
/// per line, '#' comments, ids need not be dense (they are compacted in
/// first-appearance order). Duplicate pairs and self-loops are skipped.
/// All labels are 0.
StatusOr<Graph> ParseEdgeList(const std::string& text);

/// Loads a SNAP-style edge-list file.
StatusOr<Graph> LoadEdgeListFile(const std::string& path);

}  // namespace fractal

#endif  // FRACTAL_GRAPH_GRAPH_IO_H_
