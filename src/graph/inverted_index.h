// Inverted keyword index: keyword id -> sorted lists of edge ids (and vertex
// ids) carrying that keyword. This is the `invIdxs` structure the paper's
// keyword-search application (Listing 4) broadcasts to all workers.
#ifndef FRACTAL_GRAPH_INVERTED_INDEX_H_
#define FRACTAL_GRAPH_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace fractal {

/// Immutable keyword -> posting-list index over an attributed graph. An edge
/// "contains" a keyword if the edge itself or either endpoint carries it
/// (document = edge plus endpoints, matching the RDF keyword-cover semantics
/// of §2.2).
class InvertedIndex {
 public:
  /// Builds the index. The graph must have keywords.
  explicit InvertedIndex(const Graph& graph);

  uint32_t VocabularySize() const {
    return static_cast<uint32_t>(edge_postings_.size());
  }

  /// Edge ids whose "document" contains `keyword`, sorted ascending.
  std::span<const EdgeId> EdgesWithKeyword(uint32_t keyword) const {
    if (keyword >= edge_postings_.size()) return {};
    return edge_postings_[keyword];
  }

  /// Vertex ids carrying `keyword` directly, sorted ascending.
  std::span<const VertexId> VerticesWithKeyword(uint32_t keyword) const {
    if (keyword >= vertex_postings_.size()) return {};
    return vertex_postings_[keyword];
  }

  /// True iff edge `e`'s document contains `keyword`. O(log |postings|).
  bool EdgeContains(uint32_t keyword, EdgeId e) const;

  /// Number of edges containing at least one of `keywords`.
  uint32_t CountEdgesWithAnyKeyword(std::span<const uint32_t> keywords) const;

 private:
  std::vector<std::vector<EdgeId>> edge_postings_;
  std::vector<std::vector<VertexId>> vertex_postings_;
};

}  // namespace fractal

#endif  // FRACTAL_GRAPH_INVERTED_INDEX_H_
