#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace fractal {
namespace {

/// Skewed label in [0, num_labels): density concentrated on low ids.
Label SkewedLabel(SplitMix64& rng, uint32_t num_labels, double skew) {
  if (num_labels <= 1) return 0;
  const double u = rng.NextDouble();
  const double x = std::pow(u, skew);  // skew > 1 pushes mass toward 0
  Label label = static_cast<Label>(x * num_labels);
  return std::min(label, num_labels - 1);
}

}  // namespace

Graph GeneratePowerLaw(const PowerLawParams& params) {
  FRACTAL_CHECK(params.num_vertices >= 2);
  FRACTAL_CHECK(params.edges_per_vertex >= 1);
  SplitMix64 rng(params.seed);
  GraphBuilder builder;
  for (uint32_t v = 0; v < params.num_vertices; ++v) {
    builder.AddVertex(
        SkewedLabel(rng, params.num_vertex_labels, params.label_skew));
  }

  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // implements preferential attachment. `adjacency` mirrors the growing
  // graph for triadic closure lookups.
  std::vector<VertexId> targets;
  targets.reserve(2ull * params.num_vertices * params.edges_per_vertex);
  std::vector<std::vector<VertexId>> adjacency(params.num_vertices);
  auto builder_neighbors = [&adjacency](VertexId v) -> const std::vector<VertexId>& {
    return adjacency[v];
  };
  auto add_edge = [&](VertexId u, VertexId v) {
    builder.AddEdge(u, v,
                    SkewedLabel(rng, params.num_edge_labels,
                                params.label_skew));
    targets.push_back(u);
    targets.push_back(v);
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  };

  const uint32_t m = params.edges_per_vertex;
  // Seed clique over the first m+1 vertices so attachment has targets.
  const uint32_t seed_size = std::min(m + 1, params.num_vertices);
  for (uint32_t u = 0; u < seed_size; ++u) {
    for (uint32_t v = u + 1; v < seed_size; ++v) {
      add_edge(u, v);
    }
  }

  std::vector<VertexId> chosen;
  for (uint32_t v = seed_size; v < params.num_vertices; ++v) {
    chosen.clear();
    // Pick m distinct attachment targets (retry on duplicates; m is small
    // relative to the prefix so retries are rare). With probability
    // `triangle_closure`, an attachment closes a triangle by picking a
    // neighbor of the previously chosen target (Holme-Kim model).
    uint32_t attempts = 0;
    while (chosen.size() < m && attempts < 64 * m) {
      ++attempts;
      VertexId candidate = kInvalidVertex;
      if (!chosen.empty() && params.triangle_closure > 0 &&
          rng.NextDouble() < params.triangle_closure) {
        const VertexId previous = chosen.back();
        const auto neighbors = builder_neighbors(previous);
        if (!neighbors.empty()) {
          candidate = neighbors[rng.NextBounded(neighbors.size())];
        }
      }
      if (candidate == kInvalidVertex) {
        candidate = targets[rng.NextBounded(targets.size())];
      }
      if (candidate != v &&
          std::find(chosen.begin(), chosen.end(), candidate) ==
              chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (const VertexId target : chosen) {
      add_edge(v, target);
    }
  }
  return std::move(builder).Build();
}

Graph GenerateCommunityGraph(const CommunityParams& params) {
  FRACTAL_CHECK(params.num_communities >= 1);
  FRACTAL_CHECK(params.community_size >= 2);
  SplitMix64 rng(params.seed);
  GraphBuilder builder;
  const uint32_t num_vertices =
      params.num_communities * params.community_size;
  for (uint32_t v = 0; v < num_vertices; ++v) {
    builder.AddVertex(
        SkewedLabel(rng, params.num_vertex_labels, params.label_skew));
  }
  // Dense intra-community edges.
  for (uint32_t c = 0; c < params.num_communities; ++c) {
    const uint32_t base = c * params.community_size;
    for (uint32_t i = 0; i < params.community_size; ++i) {
      for (uint32_t j = i + 1; j < params.community_size; ++j) {
        if (rng.NextDouble() < params.intra_probability) {
          builder.AddEdge(base + i, base + j);
        }
      }
    }
  }
  // Sparse random inter-community edges.
  for (uint32_t v = 0; v < num_vertices; ++v) {
    for (uint32_t i = 0; i < params.inter_edges_per_vertex; ++i) {
      const VertexId u =
          static_cast<VertexId>(rng.NextBounded(num_vertices));
      if (u != v && u / params.community_size != v / params.community_size &&
          !builder.HasEdge(u, v)) {
        builder.AddEdge(u, v);
      }
    }
  }
  return std::move(builder).Build();
}

Graph GenerateRandomGraph(uint32_t num_vertices, uint32_t num_edges,
                          uint32_t num_vertex_labels, uint32_t num_edge_labels,
                          uint64_t seed) {
  FRACTAL_CHECK(num_vertices >= 2);
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  FRACTAL_CHECK(num_edges <= max_edges)
      << "requested more edges than the complete graph has";
  SplitMix64 rng(seed);
  GraphBuilder builder;
  for (uint32_t v = 0; v < num_vertices; ++v) {
    builder.AddVertex(num_vertex_labels <= 1
                          ? 0
                          : static_cast<Label>(
                                rng.NextBounded(num_vertex_labels)));
  }
  uint32_t added = 0;
  while (added < num_edges) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v || builder.HasEdge(u, v)) continue;
    builder.AddEdge(u, v,
                    num_edge_labels <= 1
                        ? 0
                        : static_cast<Label>(rng.NextBounded(num_edge_labels)));
    ++added;
  }
  return std::move(builder).Build();
}

Graph AttachKeywords(Graph graph, uint32_t vocabulary_size,
                     uint32_t min_keywords, uint32_t max_keywords, double skew,
                     uint64_t seed) {
  FRACTAL_CHECK(vocabulary_size >= 1);
  FRACTAL_CHECK(min_keywords <= max_keywords);
  SplitMix64 rng(seed);
  // Rebuild through a builder to attach keyword sets.
  GraphBuilder builder;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    builder.AddVertex(graph.VertexLabel(v));
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const EdgeEndpoints& endpoints = graph.Endpoints(e);
    builder.AddEdge(endpoints.src, endpoints.dst, graph.GetEdgeLabel(e));
  }
  auto draw_keywords = [&]() {
    const uint32_t count =
        min_keywords +
        static_cast<uint32_t>(rng.NextBounded(max_keywords - min_keywords + 1));
    std::vector<uint32_t> keywords;
    keywords.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      keywords.push_back(SkewedLabel(rng, vocabulary_size, skew));
    }
    return keywords;
  };
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    builder.SetVertexKeywords(v, draw_keywords());
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    builder.SetEdgeKeywords(e, draw_keywords());
  }
  return std::move(builder).Build();
}

}  // namespace fractal
