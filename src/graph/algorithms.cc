#include "graph/algorithms.h"

#include <algorithm>

namespace fractal {

ComponentsResult ConnectedComponents(const Graph& graph) {
  ComponentsResult result;
  const uint32_t n = graph.NumVertices();
  result.component.assign(n, UINT32_MAX);
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (result.component[root] != UINT32_MAX) continue;
    const uint32_t id = result.num_components++;
    result.component[root] = id;
    uint32_t size = 1;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const VertexId u : graph.Neighbors(v)) {
        if (result.component[u] == UINT32_MAX) {
          result.component[u] = id;
          ++size;
          stack.push_back(u);
        }
      }
    }
    result.largest_size = std::max(result.largest_size, size);
  }
  return result;
}

CoreResult CoreDecomposition(const Graph& graph) {
  CoreResult result;
  const uint32_t n = graph.NumVertices();
  result.core.assign(n, 0);
  if (n == 0) return result;

  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree (classic Batagelj-Zaversnik layout).
  std::vector<uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  uint32_t start = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    const uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);
  std::vector<uint32_t> position(n);
  for (VertexId v = 0; v < n; ++v) {
    position[v] = bin[degree[v]];
    order[position[v]] = v;
    ++bin[degree[v]];
  }
  for (uint32_t d = max_degree + 1; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  for (uint32_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    result.core[v] = degree[v];
    result.degeneracy = std::max(result.degeneracy, degree[v]);
    for (const VertexId u : graph.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u one bucket down: swap it with the first vertex of its
        // current bucket.
        const uint32_t du = degree[u];
        const uint32_t pu = position[u];
        const uint32_t pw = bin[du];
        const VertexId w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return result;
}

GraphStats ComputeStats(const Graph& graph) {
  GraphStats stats;
  const uint32_t n = graph.NumVertices();
  if (n == 0) return stats;
  uint64_t degree_sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t d = graph.Degree(v);
    degree_sum += d;
    stats.max_degree = std::max<uint32_t>(stats.max_degree, d);
    stats.wedges += d * (d - 1) / 2;
  }
  stats.mean_degree = static_cast<double>(degree_sum) / n;
  // Triangles via forward neighbor intersection.
  for (VertexId u = 0; u < n; ++u) {
    const auto u_neighbors = graph.Neighbors(u);
    for (const VertexId v : u_neighbors) {
      if (v <= u) continue;
      const auto v_neighbors = graph.Neighbors(v);
      auto i = std::upper_bound(u_neighbors.begin(), u_neighbors.end(), v);
      auto j = std::upper_bound(v_neighbors.begin(), v_neighbors.end(), v);
      while (i != u_neighbors.end() && j != v_neighbors.end()) {
        if (*i == *j) {
          ++stats.triangles;
          ++i;
          ++j;
        } else if (*i < *j) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  if (stats.wedges > 0) {
    stats.clustering_coefficient =
        3.0 * stats.triangles / static_cast<double>(stats.wedges);
  }
  return stats;
}

}  // namespace fractal
