// Classic graph algorithms used as utilities by benches, reductions and
// analyses: connected components, degeneracy (k-core) decomposition, and
// basic statistics.
#ifndef FRACTAL_GRAPH_ALGORITHMS_H_
#define FRACTAL_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fractal {

/// component[v] = id of v's connected component (ids dense from 0, in
/// order of first discovery). Inactive vertices get their own singleton
/// components.
struct ComponentsResult {
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
  uint32_t largest_size = 0;
};
ComponentsResult ConnectedComponents(const Graph& graph);

/// core[v] = core number of v (largest k such that v belongs to a subgraph
/// of minimum degree k). Computed by the O(E) smallest-last peeling.
struct CoreResult {
  std::vector<uint32_t> core;
  uint32_t degeneracy = 0;  // max core number
};
CoreResult CoreDecomposition(const Graph& graph);

/// Degree distribution statistics (max/mean) plus the global clustering
/// coefficient estimated exactly from triangle and wedge counts.
struct GraphStats {
  uint32_t max_degree = 0;
  double mean_degree = 0;
  uint64_t triangles = 0;
  uint64_t wedges = 0;  // paths of length 2
  double clustering_coefficient = 0;  // 3*triangles / wedges
};
GraphStats ComputeStats(const Graph& graph);

}  // namespace fractal

#endif  // FRACTAL_GRAPH_ALGORITHMS_H_
