// Deterministic synthetic analogs of the paper's Table 1 evaluation graphs
// (plus Orkut from Appendix C). Scaled down to single-machine bench budgets;
// the degree skew, relative density, and label multiplicity track the
// originals so that the paper's qualitative results reproduce (DESIGN.md §1).
//
// Suffix semantics follow the paper: -SL (single-labeled) variants carry one
// uniform vertex label (labels ignored, as in motifs/cliques), -ML
// (multi-labeled) variants carry the full label distribution (used by FSM and
// the Table 2 memory drilldown).
#ifndef FRACTAL_GRAPH_DATASETS_H_
#define FRACTAL_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace fractal {

enum class DatasetId { kMico, kPatents, kYoutube, kWikidata, kOrkut };

enum class LabelMode { kSingleLabel, kMultiLabel };

struct DatasetInfo {
  DatasetId id;
  std::string name;       // e.g. "Mico-SL"
  std::string paper_name; // e.g. "Mico (100K/1.08M/29 labels)"
  Graph graph;
};

/// Builds one dataset analog. Deterministic: same id/mode -> same graph.
DatasetInfo MakeDataset(DatasetId id, LabelMode mode);

/// All Table 1 analogs (Mico, Patents, Youtube, Wikidata) in the given mode.
std::vector<DatasetInfo> MakeTable1Datasets(LabelMode mode);

/// The Wikidata analog with keyword sets attached (used by keyword search
/// and the §4.3 graph-reduction experiments). Vocabulary ~4000 keywords,
/// Zipf-distributed, mirroring the ~4M-unique-keyword original at scale.
Graph MakeWikidataWithKeywords();

/// Bench scale factor: reads FRACTAL_BENCH_SCALE (default 1.0) so the bench
/// suite can be grown/shrunk without recompiling. Clamped to [0.1, 10].
double BenchScale();

}  // namespace fractal

#endif  // FRACTAL_GRAPH_DATASETS_H_
