// Graph reduction (paper §4.3, Fig. 10): materialize a reduced view of the
// input graph by filtering vertices (R1, `vfilter`) and/or edges (R2,
// `efilter`). The reduced graph keeps the original vertex-id space — dropped
// vertices are masked inactive with empty adjacency — so that subgraphs found
// on the reduced graph refer to the same vertex ids as the original graph.
// Edge ids ARE renumbered (the edge set shrinks); callers that need to map
// reduced edge ids back can use Graph::Endpoints + Graph::EdgeBetween on the
// original graph.
#ifndef FRACTAL_GRAPH_GRAPH_REDUCE_H_
#define FRACTAL_GRAPH_GRAPH_REDUCE_H_

#include <functional>

#include "graph/graph.h"

namespace fractal {

/// Keeps vertex v iff the predicate returns true. nullptr == keep all.
using VertexPredicate = std::function<bool(const Graph&, VertexId)>;
/// Keeps edge e iff the predicate returns true. nullptr == keep all.
using EdgePredicate = std::function<bool(const Graph&, EdgeId)>;

/// Builds the reduced graph G' from G: drops every vertex failing
/// `vertex_filter`, every edge failing `edge_filter`, and every edge with a
/// dropped endpoint. Labels and keyword sets of surviving elements are
/// preserved.
Graph ReduceGraph(const Graph& graph, const VertexPredicate& vertex_filter,
                  const EdgePredicate& edge_filter);

/// Convenience: the keyword-search reduction the paper's §4.3 motivating
/// example uses — keep only vertices/edges carrying at least one of the
/// query keywords (a vertex also survives if one of its incident edges
/// does, so that surviving edges keep their endpoints).
Graph ReduceToKeywords(const Graph& graph,
                       std::span<const uint32_t> query_keywords);

}  // namespace fractal

#endif  // FRACTAL_GRAPH_GRAPH_REDUCE_H_
