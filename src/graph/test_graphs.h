// Small fixed graphs with known pattern-mining answers, used throughout the
// test suite and docs: paths, cycles, cliques, stars, grids, the Petersen
// graph, and the running-example graph from the paper's Figure 1.
#ifndef FRACTAL_GRAPH_TEST_GRAPHS_H_
#define FRACTAL_GRAPH_TEST_GRAPHS_H_

#include "graph/graph.h"

namespace fractal {
namespace testgraphs {

/// Path v0 - v1 - ... - v{n-1}.
Graph Path(uint32_t n);

/// Cycle on n >= 3 vertices.
Graph Cycle(uint32_t n);

/// Complete graph K_n. Known answers: C(n,k) k-cliques, C(n,3) triangles.
Graph Complete(uint32_t n);

/// Star: center v0 connected to n-1 leaves.
Graph Star(uint32_t n);

/// rows x cols grid graph.
Graph Grid(uint32_t rows, uint32_t cols);

/// The Petersen graph: 10 vertices, 15 edges, vertex-transitive, girth 5,
/// exactly 0 triangles and 12 five-cycles.
Graph Petersen();

/// The running example of the paper's Figure 1: a 4-cycle v0-v1-v2-v3 (the
/// "current subgraph", edges e1..e4), plus v4 adjacent to {v0,v1,v2}
/// (e5,e6,e7), v5 adjacent to {v2,v3} (e8,e9) and v6 adjacent to {v3} (e10).
/// From the 4-cycle there are exactly 6 edge-induced extensions and 3
/// vertex-induced extensions, as in the figure.
Graph PaperFigure1();

/// A small labeled graph for FSM tests: two triangle "communities" with
/// labels (0,0,1) each, connected by a label-2 bridge vertex. Single-edge
/// patterns and their MNI supports are easy to verify by hand.
Graph LabeledFsmExample();

}  // namespace testgraphs
}  // namespace fractal

#endif  // FRACTAL_GRAPH_TEST_GRAPHS_H_
