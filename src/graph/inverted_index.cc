#include "graph/inverted_index.h"

#include <algorithm>
#include <unordered_set>

namespace fractal {

InvertedIndex::InvertedIndex(const Graph& graph) {
  FRACTAL_CHECK(graph.HasKeywords())
      << "InvertedIndex requires an attributed graph";
  const uint32_t vocabulary = graph.KeywordVocabularySize();
  edge_postings_.resize(vocabulary);
  vertex_postings_.resize(vocabulary);

  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const uint32_t keyword : graph.VertexKeywords(v)) {
      vertex_postings_[keyword].push_back(v);
    }
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const EdgeEndpoints& endpoints = graph.Endpoints(e);
    // Document of an edge = its own keywords plus both endpoints'.
    std::unordered_set<uint32_t> document;
    for (const uint32_t keyword : graph.EdgeKeywords(e)) {
      document.insert(keyword);
    }
    for (const uint32_t keyword : graph.VertexKeywords(endpoints.src)) {
      document.insert(keyword);
    }
    for (const uint32_t keyword : graph.VertexKeywords(endpoints.dst)) {
      document.insert(keyword);
    }
    for (const uint32_t keyword : document) {
      edge_postings_[keyword].push_back(e);
    }
  }
  for (auto& postings : edge_postings_) {
    std::sort(postings.begin(), postings.end());
  }
  // Vertex postings are already sorted (vertices visited in order).
}

bool InvertedIndex::EdgeContains(uint32_t keyword, EdgeId e) const {
  if (keyword >= edge_postings_.size()) return false;
  const auto& postings = edge_postings_[keyword];
  return std::binary_search(postings.begin(), postings.end(), e);
}

uint32_t InvertedIndex::CountEdgesWithAnyKeyword(
    std::span<const uint32_t> keywords) const {
  std::unordered_set<EdgeId> edges;
  for (const uint32_t keyword : keywords) {
    for (const EdgeId e : EdgesWithKeyword(keyword)) edges.insert(e);
  }
  return static_cast<uint32_t>(edges.size());
}

}  // namespace fractal
