// Labeled undirected graph stored in CSR (compressed sparse row) form.
// This is the input-graph substrate of the Fractal reproduction (paper §2.1,
// Definition 1): vertices and edges carry a primary integer label, and may
// additionally carry *keyword sets* (the f_L power-set labeling used by the
// keyword-search kernel).
//
// Identifiers:
//   VertexId in [0, NumVertices)
//   EdgeId   in [0, NumEdges); each undirected edge is stored once with
//            canonical endpoints (src < dst) and appears in both endpoints'
//            adjacency lists.
// Adjacency lists are sorted by neighbor id, enabling O(log d) adjacency
// tests and linear-time sorted intersections (used by the KClist enumerator).
#ifndef FRACTAL_GRAPH_GRAPH_H_
#define FRACTAL_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/hot_annotations.h"

namespace fractal {

using VertexId = uint32_t;
using EdgeId = uint32_t;
using Label = uint32_t;

inline constexpr VertexId kInvalidVertex = UINT32_MAX;
inline constexpr EdgeId kInvalidEdge = UINT32_MAX;

/// One undirected edge; endpoints are canonicalized so that src < dst.
struct EdgeEndpoints {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;

  /// Given one endpoint, returns the other.
  VertexId Other(VertexId v) const {
    FRACTAL_DCHECK(v == src || v == dst);
    return v == src ? dst : src;
  }

  friend bool operator==(const EdgeEndpoints& a,
                         const EdgeEndpoints& b) = default;
};

/// Immutable labeled undirected graph. Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertex_labels_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  /// Number of distinct primary labels across vertices and edges.
  uint32_t NumLabels() const { return num_labels_; }

  /// 2|E| / (|V| (|V|-1)), the undirected density reported in Table 1.
  double Density() const;

  FRACTAL_HOT uint32_t Degree(VertexId v) const {
    FRACTAL_DCHECK(v < NumVertices());
    return adj_offsets_[v + 1] - adj_offsets_[v];
  }

  /// Neighbors of v, sorted ascending by vertex id.
  FRACTAL_HOT std::span<const VertexId> Neighbors(VertexId v) const {
    FRACTAL_DCHECK(v < NumVertices());
    return {adj_neighbors_.data() + adj_offsets_[v],
            adj_neighbors_.data() + adj_offsets_[v + 1]};
  }

  /// Edge ids parallel to Neighbors(v): IncidentEdges(v)[i] is the id of the
  /// edge (v, Neighbors(v)[i]).
  FRACTAL_HOT std::span<const EdgeId> IncidentEdges(VertexId v) const {
    FRACTAL_DCHECK(v < NumVertices());
    return {adj_edge_ids_.data() + adj_offsets_[v],
            adj_edge_ids_.data() + adj_offsets_[v + 1]};
  }

  /// Adjacency test: O(1) against a hub (a vertex whose degree crosses the
  /// bitmap threshold, see HubDegreeThreshold), O(log min(deg)) otherwise.
  FRACTAL_HOT bool IsAdjacent(VertexId u, VertexId v) const {
    if (const uint64_t* row = HubRow(u)) {
      return (row[v >> 6] >> (v & 63)) & 1;
    }
    if (const uint64_t* row = HubRow(v)) {
      return (row[u >> 6] >> (u & 63)) & 1;
    }
    return EdgeBetween(u, v).has_value();
  }

  /// Adjacency bitmap of v (one bit per vertex id, |V| bits rounded up to
  /// whole uint64 words), or nullptr when v is not a hub. Built at Build()
  /// time for every vertex with Degree(v) >= HubDegreeThreshold(); lets the
  /// extension kernels filter candidate runs against a high-degree word
  /// vertex with one load per candidate.
  FRACTAL_HOT const uint64_t* HubRow(VertexId v) const {
    FRACTAL_DCHECK(v < NumVertices());
    if (hub_slot_.empty()) return nullptr;
    const uint32_t slot = hub_slot_[v];
    if (slot == UINT32_MAX) return nullptr;
    return hub_bits_.data() + static_cast<size_t>(slot) * hub_words_;
  }

  /// Degree at or above which a vertex gets an adjacency bitmap:
  /// max(64, |V|/64), so a hub's bitmap (|V|/8 bytes) never exceeds ~2x its
  /// adjacency-list footprint (4 bytes per neighbor).
  uint32_t HubDegreeThreshold() const { return hub_degree_threshold_; }
  uint32_t NumHubs() const { return num_hubs_; }

  /// Edge id of (u, v) if it exists. O(log min(deg)).
  FRACTAL_HOT std::optional<EdgeId> EdgeBetween(VertexId u, VertexId v) const;

  FRACTAL_HOT const EdgeEndpoints& Endpoints(EdgeId e) const {
    FRACTAL_DCHECK(e < NumEdges());
    return edges_[e];
  }

  FRACTAL_HOT Label VertexLabel(VertexId v) const {
    FRACTAL_DCHECK(v < NumVertices());
    return vertex_labels_[v];
  }
  FRACTAL_HOT Label GetEdgeLabel(EdgeId e) const {
    FRACTAL_DCHECK(e < NumEdges());
    return edge_labels_[e];
  }

  /// Whether keyword sets were attached (Wikidata-style attributed graph).
  bool HasKeywords() const { return has_keywords_; }

  /// Keyword ids attached to a vertex / edge, sorted ascending. Empty when
  /// the graph carries no keywords.
  std::span<const uint32_t> VertexKeywords(VertexId v) const;
  std::span<const uint32_t> EdgeKeywords(EdgeId e) const;

  /// Number of distinct keyword ids in use (0 when HasKeywords() is false).
  uint32_t KeywordVocabularySize() const { return keyword_vocabulary_size_; }

  /// True unless the vertex was masked out by graph reduction
  /// (see graph_reduce.h). Masked vertices keep their id and label but have
  /// empty adjacency and are skipped as enumeration roots.
  FRACTAL_HOT bool IsVertexActive(VertexId v) const {
    FRACTAL_DCHECK(v < NumVertices());
    return vertex_active_.empty() || vertex_active_[v] != 0;
  }

  /// Cached at Build() time (it sits on the root-partitioning path of every
  /// step attempt).
  uint32_t NumActiveVertices() const { return num_active_vertices_; }

  /// Sum of degrees = 2 |E|.
  uint64_t AdjacencySize() const { return adj_neighbors_.size(); }

  std::string DebugString() const;

 private:
  friend class GraphBuilder;

  std::vector<uint32_t> adj_offsets_;      // size NumVertices()+1
  std::vector<VertexId> adj_neighbors_;    // size 2|E|, sorted per vertex
  std::vector<EdgeId> adj_edge_ids_;       // parallel to adj_neighbors_
  std::vector<EdgeEndpoints> edges_;       // size |E|
  std::vector<Label> vertex_labels_;       // size |V|
  std::vector<Label> edge_labels_;         // size |E|
  std::vector<uint8_t> vertex_active_;     // empty == all active
  uint32_t num_labels_ = 0;
  uint32_t num_active_vertices_ = 0;

  // Degree-thresholded adjacency bitmaps: hub_slot_[v] indexes the hub's
  // row in hub_bits_ (UINT32_MAX for non-hubs); each row is hub_words_
  // uint64 words covering all vertex ids.
  std::vector<uint32_t> hub_slot_;  // size |V| when any hub exists
  std::vector<uint64_t> hub_bits_;  // num_hubs_ * hub_words_
  size_t hub_words_ = 0;
  uint32_t hub_degree_threshold_ = 0;
  uint32_t num_hubs_ = 0;

  bool has_keywords_ = false;
  uint32_t keyword_vocabulary_size_ = 0;
  // CSR-packed keyword sets (most vertices/edges have few keywords).
  std::vector<uint32_t> vertex_keyword_offsets_;  // size |V|+1 when present
  std::vector<uint32_t> vertex_keyword_data_;
  std::vector<uint32_t> edge_keyword_offsets_;  // size |E|+1 when present
  std::vector<uint32_t> edge_keyword_data_;
};

/// Incremental builder for Graph. Usage:
///   GraphBuilder b;
///   VertexId v0 = b.AddVertex(/*label=*/0);
///   ...
///   b.AddEdge(v0, v1, /*label=*/0);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a vertex and returns its id (ids are assigned densely from 0).
  VertexId AddVertex(Label label);

  /// Adds an undirected edge. Self-loops and duplicate edges are rejected
  /// with a CHECK failure (Definition 1 forbids self-loops; this library
  /// works with simple graphs). Returns the new edge id.
  EdgeId AddEdge(VertexId u, VertexId v, Label label = 0);

  /// True if the edge (u, v) was already added. Binary-searches the smaller
  /// endpoint's pending list (kept sorted by neighbor), so generators can
  /// probe large graphs without a quadratic linear scan.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Attaches keyword sets (unsorted input is fine; stored sorted+deduped).
  void SetVertexKeywords(VertexId v, std::vector<uint32_t> keywords);
  void SetEdgeKeywords(EdgeId e, std::vector<uint32_t> keywords);

  /// Masks a vertex out (used by graph reduction, paper §4.3): it keeps its
  /// id and label but must have no incident edges by Build() time, and is
  /// skipped as an enumeration root.
  void MarkVertexInactive(VertexId v);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertex_labels_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  /// Finalizes the CSR representation. The builder is consumed.
  Graph Build() &&;

 private:
  std::vector<EdgeEndpoints> edges_;
  std::vector<Label> vertex_labels_;
  std::vector<Label> edge_labels_;
  // Pending adjacency as (neighbor, edge id) pairs per vertex, kept sorted
  // by neighbor id (AddEdge inserts in order) so HasEdge is O(log deg) and
  // Build() skips the per-vertex sort.
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> pending_adj_;
  std::vector<std::vector<uint32_t>> vertex_keywords_;
  std::vector<std::vector<uint32_t>> edge_keywords_;
  std::vector<uint8_t> inactive_;  // grows with vertices; 1 == masked out
  bool has_keywords_ = false;
  bool any_inactive_ = false;
};

}  // namespace fractal

#endif  // FRACTAL_GRAPH_GRAPH_H_
