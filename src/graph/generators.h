// Synthetic graph generators. Real GPM evaluation graphs (Mico, Patents,
// Youtube, Wikidata, Orkut) are not redistributable inside this container, so
// every experiment runs on deterministic synthetic analogs whose *shape*
// (power-law degree skew, density, label multiplicity, keyword vocabulary)
// matches the paper's Table 1 datasets; see DESIGN.md §1 for the mapping.
#ifndef FRACTAL_GRAPH_GENERATORS_H_
#define FRACTAL_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace fractal {

/// Barabási–Albert-style preferential-attachment generator: each new vertex
/// attaches to `edges_per_vertex` distinct existing vertices chosen with
/// probability proportional to degree. Produces the heavy-tailed degree
/// distributions that make GPM load balancing hard (paper §1, §4.2).
struct PowerLawParams {
  uint32_t num_vertices = 1000;
  uint32_t edges_per_vertex = 4;
  uint32_t num_vertex_labels = 1;
  uint32_t num_edge_labels = 1;
  /// Skew exponent for label assignment; larger -> more mass on label 0.
  double label_skew = 2.0;
  /// Holme-Kim triadic closure: probability that each attachment after the
  /// first connects to a neighbor of the previous target, creating the
  /// clustered communities (triangles/cliques) real GPM graphs have.
  double triangle_closure = 0.0;
  uint64_t seed = 1;
};
Graph GeneratePowerLaw(const PowerLawParams& params);

/// Community-structured generator: vertices grouped into dense communities
/// (intra-community edges drawn i.i.d. with `intra_probability`) plus a few
/// random inter-community edges per vertex. Models co-authorship-style
/// graphs (the paper's Mico) whose dense pockets hold most cliques and
/// near-clique query matches.
struct CommunityParams {
  uint32_t num_communities = 20;
  uint32_t community_size = 24;
  double intra_probability = 0.5;
  uint32_t inter_edges_per_vertex = 2;
  uint32_t num_vertex_labels = 1;
  double label_skew = 2.0;
  uint64_t seed = 1;
};
Graph GenerateCommunityGraph(const CommunityParams& params);

/// Erdős–Rényi G(n, m): exactly m distinct uniform random edges. Used by
/// property tests (brute-force cross-checks on small random graphs).
Graph GenerateRandomGraph(uint32_t num_vertices, uint32_t num_edges,
                          uint32_t num_vertex_labels, uint32_t num_edge_labels,
                          uint64_t seed);

/// Attaches Zipf-distributed keyword sets to every vertex and edge of
/// `graph` (consumes and returns it). Each element receives between
/// `min_keywords` and `max_keywords` keywords from a vocabulary of
/// `vocabulary_size`; keyword k is chosen with probability ~ 1/(k+1)^skew so
/// that low-id keywords are common and high-id keywords are rare — matching
/// the frequency spread of real knowledge-graph keywords that the §4.3
/// reduction experiments rely on.
Graph AttachKeywords(Graph graph, uint32_t vocabulary_size,
                     uint32_t min_keywords, uint32_t max_keywords, double skew,
                     uint64_t seed);

}  // namespace fractal

#endif  // FRACTAL_GRAPH_GENERATORS_H_
