#include "graph/adjacency.h"

#include <algorithm>

#include "obs/metrics.h"

namespace fractal {
namespace adjacency {
namespace {

// Cached handles: the registry lookup locks MetricsRegistry::mu once.
obs::Counter& Intersections() {
  static obs::Counter& counter = obs::IntersectionKernelsCounter();
  return counter;
}
obs::Counter& Galloped() {
  static obs::Counter& counter = obs::GallopedKernelsCounter();
  return counter;
}

FRACTAL_HOT bool ShouldGallop(size_t smaller, size_t larger) {
  return larger >= kGallopMinLarger && larger / (smaller + 1) >= kGallopRatio;
}

FRACTAL_HOT void IntersectMerge(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) out->push_back(x);
    // Branch-light advance: both cursors move on equality.
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
}

/// `small` drives; membership is probed in `large` by galloping.
FRACTAL_HOT void IntersectGallop(std::span<const uint32_t> small,
                     std::span<const uint32_t> large,
                     FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  size_t cursor = 0;
  for (const uint32_t x : small) {
    cursor = GallopLowerBound(large, cursor, x);
    if (cursor == large.size()) return;
    if (large[cursor] == x) {
      out->push_back(x);
      ++cursor;
    }
  }
}

FRACTAL_HOT void DifferenceMerge(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x < y) {
      out->push_back(x);
      ++i;
    } else if (x == y) {
      ++i;
      ++j;
    } else {
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
}

/// `a` drives; each element's absence from the much larger `b` is decided
/// by a galloping probe.
FRACTAL_HOT void DifferenceGallopProbe(std::span<const uint32_t> a,
                           std::span<const uint32_t> b,
                           FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  size_t cursor = 0;
  for (const uint32_t x : a) {
    cursor = GallopLowerBound(b, cursor, x);
    if (cursor == b.size() || b[cursor] != x) out->push_back(x);
  }
}

/// `b` is much smaller than `a`: copy the runs of `a` between consecutive
/// elements of `b`, galloping over `a` to find each run boundary.
FRACTAL_HOT void DifferenceGallopCopy(std::span<const uint32_t> a,
                          std::span<const uint32_t> b,
                          FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  size_t i = 0;
  for (const uint32_t y : b) {
    const size_t end = GallopLowerBound(a, i, y);
    out->insert(out->end(), a.begin() + i, a.begin() + end);
    i = end;
    if (i < a.size() && a[i] == y) ++i;
    if (i == a.size()) return;
  }
  out->insert(out->end(), a.begin() + i, a.end());
}

/// Restricts a sorted span to elements > bound.
FRACTAL_HOT std::span<const uint32_t> Above(std::span<const uint32_t> s, uint32_t bound) {
  const auto it = std::upper_bound(s.begin(), s.end(), bound);
  return s.subspan(static_cast<size_t>(it - s.begin()));
}

}  // namespace

FRACTAL_HOT size_t GallopLowerBound(std::span<const uint32_t> haystack, size_t begin,
                        uint32_t needle) {
  if (begin >= haystack.size() || haystack[begin] >= needle) return begin;
  // Doubling probes: bracket the needle in (begin + step/2, begin + step].
  size_t step = 1;
  size_t low = begin;
  while (low + step < haystack.size() && haystack[low + step] < needle) {
    low += step;
    step <<= 1;
  }
  const size_t high = std::min(low + step + 1, haystack.size());
  const auto it = std::lower_bound(haystack.begin() + low + 1,
                                   haystack.begin() + high, needle);
  return static_cast<size_t>(it - haystack.begin());
}

FRACTAL_HOT void Intersect(std::span<const uint32_t> a, std::span<const uint32_t> b,
               FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  Intersections().Add(1);
  if (a.size() > b.size()) std::swap(a, b);
  EnsureHeadroom(out, a.size());  // output is a subset of the smaller side
  if (ShouldGallop(a.size(), b.size())) {
    Galloped().Add(1);
    IntersectGallop(a, b, out);
  } else {
    IntersectMerge(a, b, out);
  }
}

FRACTAL_HOT void IntersectAbove(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    uint32_t bound, FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  Intersect(Above(a, bound), Above(b, bound), out);
}

FRACTAL_HOT void Difference(std::span<const uint32_t> a, std::span<const uint32_t> b,
                FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  Intersections().Add(1);
  EnsureHeadroom(out, a.size());  // output is a subset of a
  if (ShouldGallop(a.size(), b.size())) {
    Galloped().Add(1);
    DifferenceGallopProbe(a, b, out);
  } else if (ShouldGallop(b.size(), a.size())) {
    Galloped().Add(1);
    DifferenceGallopCopy(a, b, out);
  } else {
    DifferenceMerge(a, b, out);
  }
}

FRACTAL_HOT void DifferenceAbove(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     uint32_t bound, FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  Difference(Above(a, bound), Above(b, bound), out);
}

FRACTAL_HOT void CopyAbove(std::span<const uint32_t> a, uint32_t bound,
               FRACTAL_ARENA_OUT std::vector<uint32_t>* out) {
  const std::span<const uint32_t> tail = Above(a, bound);
  EnsureHeadroom(out, tail.size());
  out->insert(out->end(), tail.begin(), tail.end());
}

}  // namespace adjacency
}  // namespace fractal
