#include "graph/graph_io.h"

#include <charconv>
#include <unordered_map>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace fractal {
namespace {

StatusOr<uint32_t> ParseU32(std::string_view token) {
  uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError(
        StrFormat("bad integer token '%.*s'", (int)token.size(), token.data()));
  }
  return value;
}

}  // namespace

StatusOr<Graph> ParseAdjacencyList(const std::string& text) {
  GraphBuilder builder;
  // (u, v, edge label) triples seen from u's line, validated against v's.
  struct PendingEdge {
    VertexId u, v;
    Label label;
  };
  std::vector<PendingEdge> pending;

  size_t line_number = 0;
  std::istringstream input(text);
  std::string line;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto tokens = SplitString(line, " \t\r");
    if (tokens.empty()) continue;
    if (tokens.size() < 2) {
      return InvalidArgumentError(
          StrFormat("line %zu: expected '<id> <label> ...'", line_number));
    }
    auto id = ParseU32(tokens[0]);
    if (!id.ok()) return id.status();
    auto label = ParseU32(tokens[1]);
    if (!label.ok()) return label.status();
    if (*id != builder.NumVertices()) {
      return InvalidArgumentError(
          StrFormat("line %zu: vertex ids must be dense and in order "
                    "(expected %u, got %u)",
                    line_number, builder.NumVertices(), *id));
    }
    const VertexId vertex = builder.AddVertex(*label);
    for (size_t i = 2; i < tokens.size(); ++i) {
      std::string_view token = tokens[i];
      Label edge_label = 0;
      const size_t colon = token.find(':');
      if (colon != std::string_view::npos) {
        auto parsed_label = ParseU32(token.substr(colon + 1));
        if (!parsed_label.ok()) return parsed_label.status();
        edge_label = *parsed_label;
        token = token.substr(0, colon);
      }
      auto neighbor = ParseU32(token);
      if (!neighbor.ok()) return neighbor.status();
      pending.push_back({vertex, *neighbor, edge_label});
    }
  }

  // Each undirected edge appears twice (once per endpoint line); add it once.
  for (const PendingEdge& edge : pending) {
    if (edge.v >= builder.NumVertices()) {
      return InvalidArgumentError(
          StrFormat("edge (%u,%u): neighbor id out of range", edge.u, edge.v));
    }
    if (edge.u == edge.v) {
      return InvalidArgumentError(
          StrFormat("self-loop on vertex %u is not allowed", edge.u));
    }
    if (edge.u < edge.v) {
      builder.AddEdge(edge.u, edge.v, edge.label);
    }
  }
  return std::move(builder).Build();
}

StatusOr<Graph> LoadAdjacencyListFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseAdjacencyList(contents.str());
}

std::string WriteAdjacencyList(const Graph& graph) {
  std::ostringstream out;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    out << v << ' ' << graph.VertexLabel(v);
    const auto neighbors = graph.Neighbors(v);
    const auto edges = graph.IncidentEdges(v);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      out << ' ' << neighbors[i];
      const Label label = graph.GetEdgeLabel(edges[i]);
      if (label != 0) out << ':' << label;
    }
    out << '\n';
  }
  return out.str();
}

StatusOr<Graph> ParseEdgeList(const std::string& text) {
  GraphBuilder builder;
  std::unordered_map<uint32_t, VertexId> id_map;
  auto intern = [&](uint32_t raw) {
    const auto [it, inserted] = id_map.try_emplace(raw, builder.NumVertices());
    if (inserted) builder.AddVertex(0);
    return it->second;
  };
  size_t line_number = 0;
  std::istringstream input(text);
  std::string line;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto tokens = SplitString(line, " \t\r");
    if (tokens.empty()) continue;
    if (tokens.size() != 2) {
      return InvalidArgumentError(
          StrFormat("line %zu: expected '<u> <v>'", line_number));
    }
    auto u = ParseU32(tokens[0]);
    if (!u.ok()) return u.status();
    auto v = ParseU32(tokens[1]);
    if (!v.ok()) return v.status();
    if (*u == *v) continue;  // skip self-loops
    const VertexId a = intern(*u);
    const VertexId b = intern(*v);
    if (!builder.HasEdge(a, b)) builder.AddEdge(a, b);
  }
  return std::move(builder).Build();
}

StatusOr<Graph> LoadEdgeListFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseEdgeList(contents.str());
}

Status SaveAdjacencyListFile(const Graph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file) return InternalError("cannot write " + path);
  file << WriteAdjacencyList(graph);
  return file ? Status::Ok() : InternalError("write failed for " + path);
}

}  // namespace fractal
