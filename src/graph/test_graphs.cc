#include "graph/test_graphs.h"

namespace fractal {
namespace testgraphs {

Graph Path(uint32_t n) {
  FRACTAL_CHECK(n >= 1);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) builder.AddVertex(0);
  for (uint32_t i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  return std::move(builder).Build();
}

Graph Cycle(uint32_t n) {
  FRACTAL_CHECK(n >= 3);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) builder.AddVertex(0);
  for (uint32_t i = 0; i < n; ++i) builder.AddEdge(i, (i + 1) % n);
  return std::move(builder).Build();
}

Graph Complete(uint32_t n) {
  FRACTAL_CHECK(n >= 1);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) builder.AddVertex(0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) builder.AddEdge(i, j);
  }
  return std::move(builder).Build();
}

Graph Star(uint32_t n) {
  FRACTAL_CHECK(n >= 2);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) builder.AddVertex(0);
  for (uint32_t i = 1; i < n; ++i) builder.AddEdge(0, i);
  return std::move(builder).Build();
}

Graph Grid(uint32_t rows, uint32_t cols) {
  FRACTAL_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder builder;
  for (uint32_t i = 0; i < rows * cols; ++i) builder.AddVertex(0);
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).Build();
}

Graph Petersen() {
  GraphBuilder builder;
  for (uint32_t i = 0; i < 10; ++i) builder.AddVertex(0);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (uint32_t i = 0; i < 5; ++i) {
    builder.AddEdge(i, (i + 1) % 5);
    builder.AddEdge(5 + i, 5 + (i + 2) % 5);
    builder.AddEdge(i, 5 + i);
  }
  return std::move(builder).Build();
}

Graph PaperFigure1() {
  GraphBuilder builder;
  for (uint32_t i = 0; i < 7; ++i) builder.AddVertex(0);
  builder.AddEdge(0, 1);  // e1
  builder.AddEdge(1, 2);  // e2
  builder.AddEdge(2, 3);  // e3
  builder.AddEdge(0, 3);  // e4
  builder.AddEdge(4, 0);  // e5
  builder.AddEdge(4, 1);  // e6
  builder.AddEdge(4, 2);  // e7
  builder.AddEdge(5, 2);  // e8
  builder.AddEdge(5, 3);  // e9
  builder.AddEdge(6, 3);  // e10
  return std::move(builder).Build();
}

Graph LabeledFsmExample() {
  GraphBuilder builder;
  // Triangle A: vertices 0(label 0), 1(label 0), 2(label 1).
  builder.AddVertex(0);
  builder.AddVertex(0);
  builder.AddVertex(1);
  // Triangle B: vertices 3(label 0), 4(label 0), 5(label 1).
  builder.AddVertex(0);
  builder.AddVertex(0);
  builder.AddVertex(1);
  // Bridge: vertex 6(label 2).
  builder.AddVertex(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(3, 5);
  builder.AddEdge(2, 6);
  builder.AddEdge(5, 6);
  return std::move(builder).Build();
}

}  // namespace testgraphs
}  // namespace fractal
