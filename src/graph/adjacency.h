// Branch-light sorted-set kernels: the algebra the enumeration data plane
// is built on (DESIGN.md §8). Every adjacency list in Graph is sorted, so
// extension computation reduces to intersections and differences of sorted
// uint32 runs. Each kernel appends to `out` (never clears), preserves
// ascending order, and picks between a linear two-pointer merge and a
// galloping (exponential-probe + binary-search) scan of the larger input
// based on the size ratio — galloping wins once one side is much shorter
// than the other, which is the common case deep in the DFS where the
// candidate set has already shrunk but neighbor lists stay large.
//
// Instrumentation: every kernel call bumps "enumerate.intersections" and,
// when the galloping path is chosen, "enumerate.galloped" (obs/metrics.h) —
// one relaxed fetch_add per *call*, not per element.
#ifndef FRACTAL_GRAPH_ADJACENCY_H_
#define FRACTAL_GRAPH_ADJACENCY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/alloc_guard.h"
#include "util/hot_annotations.h"

namespace fractal {
namespace adjacency {

/// Ensures `out` can absorb `extra` more elements without reallocating
/// mid-kernel. Every kernel bounds its output size by its input size, so
/// with headroom secured up front the append loops are allocation-free;
/// amortized high-water-mark growth of the recycled arena buffer happens
/// here, under an AllocGuard::Allow (the runtime twin of the lint escape),
/// and grows geometrically so a stream of new marks stays O(n) total copy.
FRACTAL_HOT inline void EnsureHeadroom(
    FRACTAL_ARENA_OUT std::vector<uint32_t>* out, size_t extra) {
  const size_t needed = out->size() + extra;
  if (out->capacity() < needed) {
    FRACTAL_HOT_ESCAPE("arena-buffer high-water-mark growth");
    AllocGuard::Allow allow("arena-buffer high-water-mark growth");
    const size_t doubled = out->capacity() * 2;
    out->reserve(needed > doubled ? needed : doubled);
  }
}

/// Size ratio (larger/smaller) above which kernels switch from the linear
/// merge to galloping, provided the larger side also clears
/// kGallopMinLarger (probing overhead only pays off on long runs).
inline constexpr size_t kGallopRatio = 8;
inline constexpr size_t kGallopMinLarger = 32;

/// First index >= begin with haystack[index] >= needle, found by doubling
/// probes from `begin` followed by a binary search of the bracketed run.
/// O(log distance) instead of O(log |haystack|) — cheap for the clustered
/// accesses the kernels make.
FRACTAL_HOT size_t GallopLowerBound(std::span<const uint32_t> haystack, size_t begin,
                        uint32_t needle);

/// Appends {x : x in a, x in b} to out, ascending.
FRACTAL_HOT void Intersect(std::span<const uint32_t> a, std::span<const uint32_t> b,
               FRACTAL_ARENA_OUT std::vector<uint32_t>* out);

/// Appends {x : x in a, x in b, x > bound} to out, ascending.
FRACTAL_HOT void IntersectAbove(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    uint32_t bound, FRACTAL_ARENA_OUT std::vector<uint32_t>* out);

/// Appends {x : x in a, x not in b} to out, ascending.
FRACTAL_HOT void Difference(std::span<const uint32_t> a, std::span<const uint32_t> b,
                FRACTAL_ARENA_OUT std::vector<uint32_t>* out);

/// Appends {x : x in a, x not in b, x > bound} to out, ascending.
FRACTAL_HOT void DifferenceAbove(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     uint32_t bound, FRACTAL_ARENA_OUT std::vector<uint32_t>* out);

/// Appends {x : x in a, x > bound} to out, ascending. Pure restriction —
/// not counted as a kernel invocation.
FRACTAL_HOT void CopyAbove(std::span<const uint32_t> a, uint32_t bound,
               FRACTAL_ARENA_OUT std::vector<uint32_t>* out);

}  // namespace adjacency
}  // namespace fractal

#endif  // FRACTAL_GRAPH_ADJACENCY_H_
