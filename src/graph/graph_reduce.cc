#include "graph/graph_reduce.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"

namespace fractal {
namespace {

bool AnyKeywordMatches(std::span<const uint32_t> have,
                       std::span<const uint32_t> want) {
  // Both spans are sorted; linear merge scan.
  size_t i = 0, j = 0;
  while (i < have.size() && j < want.size()) {
    if (have[i] == want[j]) return true;
    if (have[i] < want[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

Graph ReduceGraph(const Graph& graph, const VertexPredicate& vertex_filter,
                  const EdgePredicate& edge_filter) {
  FRACTAL_TRACE_SPAN_V("graph/reduce", graph.NumEdges());
  const uint32_t num_vertices = graph.NumVertices();
  std::vector<uint8_t> keep_vertex(num_vertices, 1);
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (!graph.IsVertexActive(v) ||
        (vertex_filter && !vertex_filter(graph, v))) {
      keep_vertex[v] = 0;
    }
  }

  GraphBuilder builder;
  for (VertexId v = 0; v < num_vertices; ++v) {
    builder.AddVertex(graph.VertexLabel(v));
    if (graph.HasKeywords()) {
      const auto keywords = graph.VertexKeywords(v);
      if (!keywords.empty()) {
        builder.SetVertexKeywords(
            v, std::vector<uint32_t>(keywords.begin(), keywords.end()));
      }
    }
  }
  std::vector<uint8_t> has_incident_edge(num_vertices, 0);
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const EdgeEndpoints& endpoints = graph.Endpoints(e);
    if (!keep_vertex[endpoints.src] || !keep_vertex[endpoints.dst]) continue;
    if (edge_filter && !edge_filter(graph, e)) continue;
    const EdgeId new_edge = builder.AddEdge(endpoints.src, endpoints.dst,
                                            graph.GetEdgeLabel(e));
    has_incident_edge[endpoints.src] = 1;
    has_incident_edge[endpoints.dst] = 1;
    if (graph.HasKeywords()) {
      const auto keywords = graph.EdgeKeywords(e);
      if (!keywords.empty()) {
        builder.SetEdgeKeywords(
            new_edge, std::vector<uint32_t>(keywords.begin(), keywords.end()));
      }
    }
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (!keep_vertex[v]) builder.MarkVertexInactive(v);
  }
  return std::move(builder).Build();
}

Graph ReduceToKeywords(const Graph& graph,
                       std::span<const uint32_t> query_keywords) {
  FRACTAL_TRACE_SPAN_V("graph/reduce_to_keywords", query_keywords.size());
  FRACTAL_CHECK(graph.HasKeywords())
      << "ReduceToKeywords requires an attributed graph";
  std::vector<uint32_t> sorted(query_keywords.begin(), query_keywords.end());
  std::sort(sorted.begin(), sorted.end());

  // An edge survives iff it (or one of its endpoints) carries a query
  // keyword; a vertex survives iff it has at least one surviving incident
  // edge or carries a query keyword itself.
  const uint32_t num_edges = graph.NumEdges();
  std::vector<uint8_t> keep_edge(num_edges, 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    const EdgeEndpoints& endpoints = graph.Endpoints(e);
    if (AnyKeywordMatches(graph.EdgeKeywords(e), sorted) ||
        AnyKeywordMatches(graph.VertexKeywords(endpoints.src), sorted) ||
        AnyKeywordMatches(graph.VertexKeywords(endpoints.dst), sorted)) {
      keep_edge[e] = 1;
    }
  }
  std::vector<uint8_t> keep_vertex(graph.NumVertices(), 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (!keep_edge[e]) continue;
    keep_vertex[graph.Endpoints(e).src] = 1;
    keep_vertex[graph.Endpoints(e).dst] = 1;
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (AnyKeywordMatches(graph.VertexKeywords(v), sorted)) keep_vertex[v] = 1;
  }
  return ReduceGraph(
      graph,
      [&keep_vertex](const Graph&, VertexId v) {
        return keep_vertex[v] != 0;
      },
      [&keep_edge](const Graph&, EdgeId e) { return keep_edge[e] != 0; });
}

}  // namespace fractal
