#include "graph/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "graph/generators.h"
#include "util/strings.h"

namespace fractal {
namespace {

struct Spec {
  const char* base_name;
  const char* paper_stats;
  uint32_t num_vertices;
  uint32_t edges_per_vertex;
  uint32_t num_vertex_labels;
  uint32_t num_edge_labels;
  double triangle_closure;  // clustering knob (Holme-Kim)
  uint64_t seed;
};

Spec GetSpec(DatasetId id) {
  // |V| and m are scaled-down stand-ins; the vertex/edge label counts match
  // the paper's Table 1 exactly.
  switch (id) {
    case DatasetId::kMico:
      return {"Mico", "paper: 100K/1.08M/29", 1200, 9, 29, 1, 0.5, 0xA11CE};
    case DatasetId::kPatents:
      return {"Patents", "paper: 2.74M/13.96M/37", 6000, 3, 37, 1, 0.25, 0xBEEF1};
    case DatasetId::kYoutube:
      return {"Youtube", "paper: 4.58M/43.96M/80", 8000, 6, 80, 1, 0.45, 0xCAFE2};
    case DatasetId::kWikidata:
      return {"Wikidata", "paper: 15.51M/18.55M/2569", 12000, 1, 64, 200,
              0.05, 0xD00D3};
    case DatasetId::kOrkut:
      return {"Orkut", "paper: 3.07M/117.18M/1", 2500, 24, 1, 1, 0.5, 0x0B44};
  }
  FRACTAL_CHECK(false) << "unknown dataset";
  return {};
}

}  // namespace

double BenchScale() {
  const char* env = std::getenv("FRACTAL_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return std::clamp(scale, 0.1, 10.0);
}

DatasetInfo MakeDataset(DatasetId id, LabelMode mode) {
  Spec spec = GetSpec(id);
  PowerLawParams params;
  params.num_vertices = static_cast<uint32_t>(spec.num_vertices * BenchScale());
  params.num_vertices = std::max<uint32_t>(params.num_vertices, 64);
  params.edges_per_vertex = spec.edges_per_vertex;
  params.num_vertex_labels =
      mode == LabelMode::kSingleLabel ? 1 : spec.num_vertex_labels;
  params.num_edge_labels =
      mode == LabelMode::kSingleLabel ? 1 : spec.num_edge_labels;
  params.label_skew = 1.6;
  params.triangle_closure = spec.triangle_closure;
  params.seed = spec.seed;

  DatasetInfo info;
  info.id = id;
  info.name = StrFormat("%s-%s", spec.base_name,
                        mode == LabelMode::kSingleLabel ? "SL" : "ML");
  info.paper_name = spec.paper_stats;
  info.graph = GeneratePowerLaw(params);
  return info;
}

std::vector<DatasetInfo> MakeTable1Datasets(LabelMode mode) {
  std::vector<DatasetInfo> datasets;
  for (const DatasetId id : {DatasetId::kMico, DatasetId::kPatents,
                             DatasetId::kYoutube, DatasetId::kWikidata}) {
    datasets.push_back(MakeDataset(id, mode));
  }
  return datasets;
}

Graph MakeWikidataWithKeywords() {
  DatasetInfo info = MakeDataset(DatasetId::kWikidata, LabelMode::kMultiLabel);
  // ~4K keyword vocabulary (paper: ~4M unique keywords at 15.5M vertices;
  // the vocabulary-to-vertex ratio is preserved at the scaled size).
  return AttachKeywords(std::move(info.graph), /*vocabulary_size=*/4000,
                        /*min_keywords=*/1, /*max_keywords=*/4,
                        /*skew=*/2.5, /*seed=*/0x5EED5);
}

}  // namespace fractal
