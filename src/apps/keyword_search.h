// Keyword-based subgraph search over an attributed graph (paper §2.2 and
// Listing 4): given a keyword query K = {w1..wC}, retrieve connected
// subgraphs whose keywords cover K and where every edge is responsible for
// at least one cover. The edge-induced pipeline grows candidates one edge at
// a time; the Listing 4 filter keeps a candidate only if its newest edge
// contributes a keyword no earlier edge contains — bounding candidates to
// |K| edges. A final cover filter keeps complete answers.
//
// This kernel is the paper's showcase for graph reduction (§4.3): run it on
// ReduceToKeywords(G, K) and both the enumeration cost (EC) and the runtime
// collapse by orders of magnitude.
#ifndef FRACTAL_APPS_KEYWORD_SEARCH_H_
#define FRACTAL_APPS_KEYWORD_SEARCH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/context.h"
#include "graph/inverted_index.h"

namespace fractal {

struct KeywordSearchResult {
  uint64_t num_matches = 0;        // subgraphs fully covering the query
  uint64_t extension_cost = 0;     // EC: candidate tests during enumeration
  double seconds = 0;
  uint32_t graph_vertices = 0;     // size of the graph actually searched
  uint32_t graph_edges = 0;
};

/// Builds the Listing 4 fractoid over `graph` (which must carry keywords).
/// The inverted index must be built over the same graph.
Fractoid KeywordSearchFractoid(const FractalGraph& graph,
                               std::shared_ptr<const InvertedIndex> index,
                               std::vector<uint32_t> keywords);

/// Runs keyword search. When `use_graph_reduction` is set, the graph is
/// first reduced to elements carrying query keywords (paper §4.3) and the
/// search runs on the reduced graph.
KeywordSearchResult RunKeywordSearch(const FractalGraph& graph,
                                     std::span<const uint32_t> keywords,
                                     bool use_graph_reduction,
                                     const ExecutionConfig& config = {});

}  // namespace fractal

#endif  // FRACTAL_APPS_KEYWORD_SEARCH_H_
