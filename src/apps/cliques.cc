#include "apps/cliques.h"

#include "core/computation.h"

namespace fractal {

Fractoid CliquesFractoid(const FractalGraph& graph, uint32_t k) {
  FRACTAL_CHECK(k >= 1);
  // Listing 2's satisfiability criterion: the number of edges added by the
  // last expansion equals the number of vertices minus one, i.e. the newest
  // vertex is adjacent to every other vertex of the subgraph.
  LocalFilterFn clique_filter = [](const Subgraph& subgraph, Computation&) {
    return subgraph.NumEdges() ==
           subgraph.NumVertices() * (subgraph.NumVertices() - 1) / 2;
  };
  return graph.VFractoid().Expand(1).Filter(clique_filter).Explore(k - 1);
}

Fractoid OptimizedCliquesFractoid(const FractalGraph& graph, uint32_t k) {
  FRACTAL_CHECK(k >= 1);
  return graph.CustomFractoid(MakeKClistStrategy()).Expand(k);
}

uint64_t CountCliques(const FractalGraph& graph, uint32_t k,
                      const ExecutionConfig& config) {
  return CliquesFractoid(graph, k).CountSubgraphs(config);
}

uint64_t CountCliquesOptimized(const FractalGraph& graph, uint32_t k,
                               const ExecutionConfig& config) {
  return OptimizedCliquesFractoid(graph, k).CountSubgraphs(config);
}

}  // namespace fractal
