// Frequent subgraph mining (paper §2.2, Listing 3): finds all edge-induced
// patterns whose minimum image-based (MNI) support meets a threshold. The
// MNI support of a pattern [Bringmann & Nijssen 2008] is the minimum, over
// pattern positions, of the number of distinct graph vertices appearing at
// that position across all embeddings — anti-monotonic, so frequent
// (k+1)-edge patterns can only extend frequent k-edge patterns (the
// aggregation filter of the workflow).
//
// The driver mirrors Listing 3: a bootstrap step computes frequent single
// edges; each following iteration appends filter -> expand -> aggregate to
// the fractoid and re-executes it. Thanks to cached aggregations, each
// execution only runs the newly appended fractal step (paper §4.1).
#ifndef FRACTAL_APPS_FSM_H_
#define FRACTAL_APPS_FSM_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/context.h"
#include "runtime/telemetry.h"
#include "pattern/canonical.h"
#include "pattern/pattern.h"

namespace fractal {

/// MNI support accumulator (the paper's DomainSupport): one vertex-id domain
/// per canonical pattern position.
class DomainSupport {
 public:
  DomainSupport() = default;
  explicit DomainSupport(uint32_t threshold) : threshold_(threshold) {}

  /// Records one embedding: subgraph vertex at position i lands in the
  /// domain of canonical position `canonical.permutation[i]`.
  void AddEmbedding(const Subgraph& subgraph, const CanonicalResult& canonical);

  /// Folds `other` into this (the aggregation's reduce function).
  void Merge(DomainSupport&& other);

  /// min over positions of |domain| — the MNI support.
  uint64_t Support() const;

  bool HasEnoughSupport() const { return Support() >= threshold_; }

  uint32_t threshold() const { return threshold_; }

  uint64_t ApproxBytes() const;

  /// Aggregation memory-accounting hook (core/aggregation.h HeapBytesOf):
  /// heap owned by the domains, excluding sizeof(DomainSupport) which the
  /// storage counts inline.
  uint64_t ApproxHeapBytes() const {
    return ApproxBytes() - sizeof(DomainSupport);
  }

 private:
  uint32_t threshold_ = 0;
  std::vector<std::unordered_set<VertexId>> domains_;
};

struct FsmResult {
  /// All frequent patterns with their exact MNI supports, in discovery
  /// order (by number of edges, then unspecified within a level).
  std::vector<std::pair<Pattern, uint64_t>> frequent;
  uint32_t iterations = 0;  // number of expansion rounds executed
  double seconds = 0;
  uint64_t total_work_units = 0;
  uint64_t peak_state_bytes = 0;
  /// Telemetry of every fractal step executed across all iterations.
  std::vector<StepTelemetry> step_telemetry;
  /// Edges of the graph the iterations actually mined (== the input's edge
  /// count unless transparent graph reduction shrank it).
  uint32_t mined_graph_edges = 0;
};

struct FsmOptions {
  uint32_t min_support = 1;
  /// Maximum pattern size in edges (0 = mine until nothing is frequent).
  uint32_t max_edges = 0;
  /// Transparent graph reduction (paper §4.3): after the bootstrap step,
  /// drop every edge whose single-edge pattern is infrequent and mine the
  /// remaining iterations on the reduced graph. Sound by anti-monotonicity:
  /// every embedding of a frequent pattern consists solely of edges whose
  /// own patterns are frequent, so frequent sets and supports are
  /// unchanged (asserted by tests).
  bool transparent_graph_reduction = false;
};

/// Runs FSM with MNI support >= `min_support`, mining patterns with at most
/// `max_edges` edges (0 = unbounded, runs until no pattern is frequent).
FsmResult RunFsm(const FractalGraph& graph, uint32_t min_support,
                 uint32_t max_edges, const ExecutionConfig& config = {});

/// Full-control variant (reduction etc.).
FsmResult RunFsmWithOptions(const FractalGraph& graph,
                            const FsmOptions& options,
                            const ExecutionConfig& config = {});

}  // namespace fractal

#endif  // FRACTAL_APPS_FSM_H_
