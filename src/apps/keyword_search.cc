#include "apps/keyword_search.h"

#include "core/computation.h"
#include "graph/graph_reduce.h"
#include "util/timer.h"

namespace fractal {
namespace {

/// Listing 4's lastEdgeIsValid: the newest edge must contribute at least
/// one query keyword that no earlier edge of the candidate contains.
bool LastEdgeIsValid(const Subgraph& subgraph, const InvertedIndex& index,
                     std::span<const uint32_t> keywords) {
  const auto edges = subgraph.Edges();
  const EdgeId last_edge = edges.back();
  for (const uint32_t keyword : keywords) {
    if (!index.EdgeContains(keyword, last_edge)) continue;
    bool covered_before = false;
    for (size_t i = 0; i + 1 < edges.size(); ++i) {
      if (index.EdgeContains(keyword, edges[i])) {
        covered_before = true;
        break;
      }
    }
    if (!covered_before) return true;
  }
  return false;
}

/// Full cover: every query keyword appears in some edge of the subgraph.
bool CoversQuery(const Subgraph& subgraph, const InvertedIndex& index,
                 std::span<const uint32_t> keywords) {
  for (const uint32_t keyword : keywords) {
    bool covered = false;
    for (const EdgeId edge : subgraph.Edges()) {
      if (index.EdgeContains(keyword, edge)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace

Fractoid KeywordSearchFractoid(const FractalGraph& graph,
                               std::shared_ptr<const InvertedIndex> index,
                               std::vector<uint32_t> keywords) {
  FRACTAL_CHECK(!keywords.empty());
  auto keywords_shared =
      std::make_shared<const std::vector<uint32_t>>(std::move(keywords));

  LocalFilterFn last_edge_valid =
      [index, keywords_shared](const Subgraph& subgraph, Computation&) {
        return LastEdgeIsValid(subgraph, *index, *keywords_shared);
      };
  LocalFilterFn covers =
      [index, keywords_shared](const Subgraph& subgraph, Computation&) {
        return CoversQuery(subgraph, *index, *keywords_shared);
      };

  // Listing 4: explore the (expand, filter) fragment |K| times, then keep
  // complete covers.
  return graph.EFractoid()
      .Expand(1)
      .Filter(last_edge_valid)
      .Explore(static_cast<uint32_t>(keywords_shared->size()) - 1)
      .Filter(covers);
}

KeywordSearchResult RunKeywordSearch(const FractalGraph& graph,
                                     std::span<const uint32_t> keywords,
                                     bool use_graph_reduction,
                                     const ExecutionConfig& config) {
  WallTimer timer;
  FractalGraph search_graph =
      use_graph_reduction
          ? FractalGraph(std::make_shared<const Graph>(ReduceToKeywords(
                             graph.graph(), keywords)),
                         graph.config())
          : graph;
  auto index = std::make_shared<const InvertedIndex>(search_graph.graph());

  Fractoid fractoid = KeywordSearchFractoid(
      search_graph, index,
      std::vector<uint32_t>(keywords.begin(), keywords.end()));
  ExecutionResult execution = fractoid.Execute(config);
  FRACTAL_CHECK(execution.status.ok()) << execution.status;

  KeywordSearchResult result;
  result.num_matches = execution.num_subgraphs;
  for (const auto& step : execution.telemetry.steps) {
    result.extension_cost += step.TotalExtensionTests();
  }
  result.seconds = timer.ElapsedSeconds();
  result.graph_vertices = search_graph.graph().NumActiveVertices();
  result.graph_edges = search_graph.graph().NumEdges();
  return result;
}

}  // namespace fractal
