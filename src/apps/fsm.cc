#include "apps/fsm.h"

#include "core/computation.h"
#include "util/timer.h"

namespace fractal {

void DomainSupport::AddEmbedding(const Subgraph& subgraph,
                                 const CanonicalResult& canonical) {
  const uint32_t k = subgraph.NumVertices();
  if (domains_.size() < k) domains_.resize(k);
  // Orbit closure: automorphic positions have identical domains, so each
  // vertex is recorded once under its orbit representative (the MNI support
  // is then the min over representatives).
  for (uint32_t position = 0; position < k; ++position) {
    domains_[canonical.orbit[canonical.permutation[position]]].insert(
        subgraph.VertexAt(position));
  }
}

void DomainSupport::Merge(DomainSupport&& other) {
  if (domains_.size() < other.domains_.size()) {
    domains_.resize(other.domains_.size());
  }
  for (size_t i = 0; i < other.domains_.size(); ++i) {
    if (domains_[i].empty()) {
      domains_[i] = std::move(other.domains_[i]);
    } else {
      domains_[i].insert(other.domains_[i].begin(), other.domains_[i].end());
    }
  }
  threshold_ = std::max(threshold_, other.threshold_);
}

uint64_t DomainSupport::Support() const {
  if (domains_.empty()) return 0;
  // Only orbit-representative slots are populated (see AddEmbedding); the
  // other positions share a representative's domain, so skip their empty
  // slots.
  uint64_t support = UINT64_MAX;
  bool any = false;
  for (const auto& domain : domains_) {
    if (domain.empty()) continue;
    support = std::min<uint64_t>(support, domain.size());
    any = true;
  }
  return any ? support : 0;
}

uint64_t DomainSupport::ApproxBytes() const {
  uint64_t bytes = sizeof(DomainSupport);
  for (const auto& domain : domains_) {
    bytes += domain.size() * (sizeof(VertexId) + sizeof(void*));
  }
  return bytes;
}

namespace {

/// Appends the FSM aggregation (pattern -> DomainSupport with the
/// has-enough-support post-filter) to a fractoid.
Fractoid WithSupportAggregation(const Fractoid& fractoid,
                                uint32_t min_support) {
  return fractoid.Aggregate<Pattern, DomainSupport, PatternHash>(
      "support",
      /*key_fn=*/
      [](const Subgraph& subgraph, Computation& comp) {
        return comp.CanonicalPattern(subgraph).pattern;
      },
      /*value_fn=*/
      [min_support](const Subgraph& subgraph, Computation& comp) {
        DomainSupport support(min_support);
        support.AddEmbedding(subgraph, comp.CanonicalPattern(subgraph));
        return support;
      },
      /*reduce_fn=*/
      [](DomainSupport& into, DomainSupport&& from) {
        into.Merge(std::move(from));
      },
      /*post_filter=*/
      [](const Pattern&, const DomainSupport& support) {
        return support.HasEnoughSupport();
      });
}

}  // namespace

FsmResult RunFsm(const FractalGraph& graph, uint32_t min_support,
                 uint32_t max_edges, const ExecutionConfig& config) {
  FsmOptions options;
  options.min_support = min_support;
  options.max_edges = max_edges;
  return RunFsmWithOptions(graph, options, config);
}

FsmResult RunFsmWithOptions(const FractalGraph& graph,
                            const FsmOptions& options,
                            const ExecutionConfig& config) {
  const uint32_t min_support = options.min_support;
  const uint32_t max_edges = options.max_edges;
  FRACTAL_CHECK(min_support >= 1);
  WallTimer timer;
  FsmResult result;
  result.mined_graph_edges = graph.graph().NumEdges();

  // Bootstrap (Listing 3 lines 1-9): frequent single edges.
  Fractoid fsm =
      WithSupportAggregation(graph.EFractoid().Expand(1), min_support);
  ExecutionResult execution = fsm.Execute(config);
  FRACTAL_CHECK(execution.status.ok()) << execution.status;
  auto harvest = [&result, &execution]() -> size_t {
    const auto& storage =
        execution.Aggregation<Pattern, DomainSupport, PatternHash>("support");
    for (const auto& [pattern, support] : storage.entries()) {
      result.frequent.emplace_back(pattern, support.Support());
    }
    return storage.NumEntries();
  };
  auto account = [&result, &execution]() {
    for (const auto& step : execution.telemetry.steps) {
      result.total_work_units += step.TotalWorkUnits();
      result.step_telemetry.push_back(step);
    }
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, execution.peak_state_bytes);
  };
  size_t new_frequent = harvest();
  account();
  result.iterations = 1;

  if (options.transparent_graph_reduction && new_frequent > 0) {
    // Paper §4.3: keep only edges that participated in a frequent
    // single-edge pattern, then restart the pipeline on the reduced graph
    // (1-edge supports are recomputed there — they are identical by
    // anti-monotonicity, see FsmOptions).
    const auto& frequent_edges =
        execution.Aggregation<Pattern, DomainSupport, PatternHash>("support");
    const FractalGraph reduced =
        graph.EFilter([&frequent_edges](const Graph& g, EdgeId e) {
          Pattern single;
          const EdgeEndpoints& ends = g.Endpoints(e);
          single.AddVertex(g.VertexLabel(ends.src));
          single.AddVertex(g.VertexLabel(ends.dst));
          single.AddEdge(0, 1, g.GetEdgeLabel(e));
          return frequent_edges.Contains(CanonicalForm(single).pattern);
        });
    result.mined_graph_edges = reduced.graph().NumEdges();
    fsm = WithSupportAggregation(reduced.EFractoid().Expand(1), min_support);
    execution = fsm.Execute(config);  // cheap: reduced bootstrap
    FRACTAL_CHECK(execution.status.ok()) << execution.status;
    account();
  }

  // Iterate (Listing 3 lines 13-26): filter by the previous frequent set,
  // grow by one edge, re-aggregate.
  while (new_frequent > 0 &&
         (max_edges == 0 || result.iterations < max_edges)) {
    fsm = fsm.FilterByAggregation<Pattern, DomainSupport, PatternHash>(
        "support",
        [](const Subgraph& subgraph, Computation& comp,
           const AggregationStorage<Pattern, DomainSupport, PatternHash>&
               frequent_patterns) {
          return frequent_patterns.Contains(
              comp.CanonicalPattern(subgraph).pattern);
        });
    fsm = WithSupportAggregation(fsm.Expand(1), min_support);
    execution = fsm.Execute(config);
    FRACTAL_CHECK(execution.status.ok()) << execution.status;
    new_frequent = harvest();
    account();
    ++result.iterations;
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fractal
