// Approximate GPM via the sampling custom enumerator (paper Appendix B):
// unbiased estimators for subgraph and motif counts obtained by keeping
// each extension with probability p and scaling counts by 1/p^k.
#ifndef FRACTAL_APPS_ESTIMATION_H_
#define FRACTAL_APPS_ESTIMATION_H_

#include <cstdint>
#include <unordered_map>

#include "core/context.h"
#include "pattern/pattern.h"

namespace fractal {

struct EstimationResult {
  /// Scaled estimates: canonical pattern -> estimated occurrence count.
  std::unordered_map<Pattern, uint64_t, PatternHash> estimated_counts;
  uint64_t estimated_total = 0;
  uint64_t sampled_subgraphs = 0;  // raw (unscaled) sampled count
  double keep_probability = 1.0;
};

/// Estimates k-vertex motif counts by sampled vertex-induced enumeration.
/// keep_probability = 1 degenerates to the exact Listing-1 computation.
EstimationResult EstimateMotifCounts(const FractalGraph& graph, uint32_t k,
                                     double keep_probability, uint64_t seed,
                                     const ExecutionConfig& config = {});

/// Estimates the number of connected induced k-vertex subgraphs.
uint64_t EstimateSubgraphCount(const FractalGraph& graph, uint32_t k,
                               double keep_probability, uint64_t seed,
                               const ExecutionConfig& config = {});

}  // namespace fractal

#endif  // FRACTAL_APPS_ESTIMATION_H_
