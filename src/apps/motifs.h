// Motif extraction & counting (paper §2.2, Listing 1): counts the frequency
// of every connected induced k-vertex pattern. Vertex-induced fractoid,
// expand(k), aggregate by canonical pattern with count 1 and sum reduction.
#ifndef FRACTAL_APPS_MOTIFS_H_
#define FRACTAL_APPS_MOTIFS_H_

#include <cstdint>
#include <unordered_map>

#include "core/context.h"
#include "pattern/pattern.h"

namespace fractal {

struct MotifsResult {
  /// canonical pattern -> number of vertex-induced occurrences
  std::unordered_map<Pattern, uint64_t, PatternHash> counts;
  /// Total subgraphs enumerated (sum of counts).
  uint64_t total = 0;
  ExecutionResult execution;
};

/// Builds the motifs fractoid of Listing 1 (without executing it).
Fractoid MotifsFractoid(const FractalGraph& graph, uint32_t k);

/// Runs motif counting for k-vertex motifs.
MotifsResult CountMotifs(const FractalGraph& graph, uint32_t k,
                         const ExecutionConfig& config = {});

}  // namespace fractal

#endif  // FRACTAL_APPS_MOTIFS_H_
