#include "apps/estimation.h"

#include <cmath>

#include "core/computation.h"
#include "enumerate/sampling.h"

namespace fractal {
namespace {

Fractoid SampledVertexFractoid(const FractalGraph& graph, uint32_t k,
                               double keep_probability, uint64_t seed) {
  auto strategy = std::make_shared<SamplingStrategy>(
      std::make_shared<VertexInducedStrategy>(), keep_probability, seed);
  return graph.CustomFractoid(std::move(strategy)).Expand(k);
}

}  // namespace

EstimationResult EstimateMotifCounts(const FractalGraph& graph, uint32_t k,
                                     double keep_probability, uint64_t seed,
                                     const ExecutionConfig& config) {
  EstimationResult result;
  result.keep_probability = keep_probability;
  auto execution =
      SampledVertexFractoid(graph, k, keep_probability, seed)
          .Aggregate<Pattern, uint64_t, PatternHash>(
              "motifs",
              [](const Subgraph& s, Computation& comp) {
                return comp.CanonicalPattern(s).pattern;
              },
              [](const Subgraph&, Computation&) -> uint64_t { return 1; },
              [](uint64_t& a, uint64_t&& b) { a += b; })
          .Execute(config);
  FRACTAL_CHECK(execution.status.ok()) << execution.status;
  const double scale = 1.0 / std::pow(keep_probability, k);
  const auto& storage =
      execution.Aggregation<Pattern, uint64_t, PatternHash>("motifs");
  for (const auto& [pattern, count] : storage.entries()) {
    result.sampled_subgraphs += count;
    result.estimated_counts[pattern] =
        static_cast<uint64_t>(count * scale + 0.5);
    result.estimated_total += result.estimated_counts[pattern];
  }
  return result;
}

uint64_t EstimateSubgraphCount(const FractalGraph& graph, uint32_t k,
                               double keep_probability, uint64_t seed,
                               const ExecutionConfig& config) {
  const uint64_t sampled =
      SampledVertexFractoid(graph, k, keep_probability, seed)
          .CountSubgraphs(config);
  return static_cast<uint64_t>(
      sampled / std::pow(keep_probability, k) + 0.5);
}

}  // namespace fractal
