// Subgraph querying (paper §2.2, Listing 5): lists/counts all subgraphs of
// the input graph isomorphic to a user-defined pattern, using the
// pattern-induced fractoid with symmetry breaking. Also defines the SEED
// query set q1..q8 the paper evaluates in Fig. 14/15.
#ifndef FRACTAL_APPS_QUERIES_H_
#define FRACTAL_APPS_QUERIES_H_

#include <cstdint>
#include <string>

#include "core/context.h"
#include "pattern/pattern.h"

namespace fractal {

/// The SEED benchmark queries (paper Fig. 14; shapes documented in
/// DESIGN.md §2): 1 = triangle, 2 = square, 3 = chordal square (diamond),
/// 4 = 4-clique, 5 = 5-clique, 6 = house, 7 = double-diamond,
/// 8 = near-5-clique. All unlabeled.
Pattern SeedQuery(uint32_t index);
std::string SeedQueryName(uint32_t index);
inline constexpr uint32_t kNumSeedQueries = 8;

/// Listing 5: pfractoid(query).expand(|V(query)|).
Fractoid QueryFractoid(const FractalGraph& graph, const Pattern& query);

/// Number of subgraphs of `graph` isomorphic to `query`.
uint64_t CountQueryMatches(const FractalGraph& graph, const Pattern& query,
                           const ExecutionConfig& config = {});

}  // namespace fractal

#endif  // FRACTAL_APPS_QUERIES_H_
