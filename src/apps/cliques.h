// Clique listing & counting (paper §2.2, Listings 2 and 7): k-vertex
// complete subgraphs. Two variants:
//   * CliquesFractoid — the 3-line Listing 2 program: vertex-induced
//     expansion with a local filter requiring the newest vertex to connect
//     to every existing vertex;
//   * OptimizedCliquesFractoid — Listing 7's custom KClist enumerator
//     (Appendix B), which generates only clique-extending candidates.
// Triangles = k = 3 (Appendix C).
#ifndef FRACTAL_APPS_CLIQUES_H_
#define FRACTAL_APPS_CLIQUES_H_

#include <cstdint>

#include "core/context.h"

namespace fractal {

/// Listing 2: expand(1).filter(clique check).explore(k-1).
Fractoid CliquesFractoid(const FractalGraph& graph, uint32_t k);

/// Listing 7: custom KClist subgraph enumerator, no filter needed.
Fractoid OptimizedCliquesFractoid(const FractalGraph& graph, uint32_t k);

uint64_t CountCliques(const FractalGraph& graph, uint32_t k,
                      const ExecutionConfig& config = {});

uint64_t CountCliquesOptimized(const FractalGraph& graph, uint32_t k,
                               const ExecutionConfig& config = {});

inline uint64_t CountTriangles(const FractalGraph& graph,
                               const ExecutionConfig& config = {}) {
  return CountCliques(graph, 3, config);
}

}  // namespace fractal

#endif  // FRACTAL_APPS_CLIQUES_H_
