#include "apps/queries.h"

namespace fractal {
namespace {

Pattern Diamond() {
  Pattern p = Pattern::CyclePattern(4);  // 0-1-2-3-0
  p.AddEdge(0, 2);                       // chord
  return p;
}

}  // namespace

Pattern SeedQuery(uint32_t index) {
  switch (index) {
    case 1:
      return Pattern::Clique(3);
    case 2:
      return Pattern::CyclePattern(4);
    case 3:
      return Diamond();
    case 4:
      return Pattern::Clique(4);
    case 5:
      return Pattern::Clique(5);
    case 6: {
      // House: 5-cycle with one chord closing a triangle on the "roof".
      Pattern p = Pattern::CyclePattern(5);
      p.AddEdge(0, 2);
      return p;
    }
    case 7: {
      // Double-diamond: two diamonds sharing the chord edge (join-friendly:
      // SEED assembles it from two q3 matches).
      Pattern p;
      for (int i = 0; i < 6; ++i) p.AddVertex(0);
      // Shared chord (0,1); diamond A adds 2,3; diamond B adds 4,5.
      p.AddEdge(0, 1);
      p.AddEdge(0, 2);
      p.AddEdge(1, 2);
      p.AddEdge(0, 3);
      p.AddEdge(1, 3);
      p.AddEdge(0, 4);
      p.AddEdge(1, 4);
      p.AddEdge(0, 5);
      p.AddEdge(1, 5);
      return p;
    }
    case 8: {
      // Near-5-clique: K5 minus one edge.
      Pattern p = Pattern::Clique(5);
      Pattern q;
      for (int i = 0; i < 5; ++i) q.AddVertex(0);
      for (const PatternEdge& e : p.Edges()) {
        if (e.src == 0 && e.dst == 1) continue;
        q.AddEdge(e.src, e.dst);
      }
      return q;
    }
    default:
      FRACTAL_CHECK(false) << "SEED queries are q1..q8";
      return Pattern();
  }
}

std::string SeedQueryName(uint32_t index) {
  switch (index) {
    case 1:
      return "q1(triangle)";
    case 2:
      return "q2(square)";
    case 3:
      return "q3(diamond)";
    case 4:
      return "q4(4-clique)";
    case 5:
      return "q5(5-clique)";
    case 6:
      return "q6(house)";
    case 7:
      return "q7(double-diamond)";
    case 8:
      return "q8(near-5-clique)";
    default:
      return "q?";
  }
}

Fractoid QueryFractoid(const FractalGraph& graph, const Pattern& query) {
  return graph.PFractoid(query).Expand(query.NumVertices());
}

uint64_t CountQueryMatches(const FractalGraph& graph, const Pattern& query,
                           const ExecutionConfig& config) {
  return QueryFractoid(graph, query).CountSubgraphs(config);
}

}  // namespace fractal
