#include "apps/motifs.h"

#include "core/computation.h"

namespace fractal {

Fractoid MotifsFractoid(const FractalGraph& graph, uint32_t k) {
  FRACTAL_CHECK(k >= 1);
  return graph.VFractoid().Expand(k).Aggregate<Pattern, uint64_t, PatternHash>(
      "motifs",
      /*key_fn=*/
      [](const Subgraph& subgraph, Computation& comp) {
        return comp.CanonicalPattern(subgraph).pattern;
      },
      /*value_fn=*/
      [](const Subgraph&, Computation&) -> uint64_t { return 1; },
      /*reduce_fn=*/
      [](uint64_t& into, uint64_t&& from) { into += from; });
}

MotifsResult CountMotifs(const FractalGraph& graph, uint32_t k,
                         const ExecutionConfig& config) {
  MotifsResult result;
  result.execution = MotifsFractoid(graph, k).Execute(config);
  FRACTAL_CHECK(result.execution.status.ok()) << result.execution.status;
  const auto& storage =
      result.execution.Aggregation<Pattern, uint64_t, PatternHash>("motifs");
  for (const auto& [pattern, count] : storage.entries()) {
    result.counts.emplace(pattern, count);
    result.total += count;
  }
  return result;
}

}  // namespace fractal
