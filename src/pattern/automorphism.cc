#include "pattern/automorphism.h"

#include <algorithm>

namespace fractal {
namespace {

/// Depth-first search over partial position assignments with pruning on
/// labels, degrees and adjacency consistency.
class AutomorphismSearch {
 public:
  explicit AutomorphismSearch(const Pattern& pattern) : pattern_(pattern) {
    n_ = pattern.NumVertices();
    mapping_.assign(n_, UINT32_MAX);
    used_.assign(n_, 0);
  }

  std::vector<std::vector<uint32_t>> Run() {
    Assign(0);
    return std::move(results_);
  }

 private:
  void Assign(uint32_t position) {
    if (position == n_) {
      results_.push_back(mapping_);
      return;
    }
    for (uint32_t image = 0; image < n_; ++image) {
      if (used_[image]) continue;
      if (pattern_.VertexLabel(image) != pattern_.VertexLabel(position)) {
        continue;
      }
      if (pattern_.Degree(image) != pattern_.Degree(position)) continue;
      if (!ConsistentWithEarlier(position, image)) continue;
      mapping_[position] = image;
      used_[image] = 1;
      Assign(position + 1);
      used_[image] = 0;
      mapping_[position] = UINT32_MAX;
    }
  }

  bool ConsistentWithEarlier(uint32_t position, uint32_t image) const {
    for (uint32_t earlier = 0; earlier < position; ++earlier) {
      const bool adjacent = pattern_.IsAdjacent(earlier, position);
      const bool image_adjacent =
          pattern_.IsAdjacent(mapping_[earlier], image);
      if (adjacent != image_adjacent) return false;
      if (adjacent &&
          pattern_.EdgeLabelBetween(earlier, position) !=
              pattern_.EdgeLabelBetween(mapping_[earlier], image)) {
        return false;
      }
    }
    return true;
  }

  const Pattern& pattern_;
  uint32_t n_ = 0;
  std::vector<uint32_t> mapping_;
  std::vector<uint8_t> used_;
  std::vector<std::vector<uint32_t>> results_;
};

}  // namespace

std::vector<std::vector<uint32_t>> Automorphisms(const Pattern& pattern) {
  return AutomorphismSearch(pattern).Run();
}

std::vector<SymmetryCondition> SymmetryBreakingConditions(
    const Pattern& pattern) {
  std::vector<std::vector<uint32_t>> automorphisms = Automorphisms(pattern);
  std::vector<SymmetryCondition> conditions;
  const uint32_t n = pattern.NumVertices();

  while (automorphisms.size() > 1) {
    // Smallest position moved by some remaining automorphism.
    uint32_t anchor = UINT32_MAX;
    for (uint32_t v = 0; v < n && anchor == UINT32_MAX; ++v) {
      for (const auto& a : automorphisms) {
        if (a[v] != v) {
          anchor = v;
          break;
        }
      }
    }
    FRACTAL_CHECK(anchor != UINT32_MAX);

    // Orbit of the anchor under the remaining automorphisms.
    std::vector<uint32_t> orbit;
    for (const auto& a : automorphisms) {
      if (std::find(orbit.begin(), orbit.end(), a[anchor]) == orbit.end()) {
        orbit.push_back(a[anchor]);
      }
    }
    for (const uint32_t member : orbit) {
      if (member != anchor) conditions.push_back({anchor, member});
    }

    // Keep only automorphisms fixing the anchor.
    std::vector<std::vector<uint32_t>> remaining;
    for (auto& a : automorphisms) {
      if (a[anchor] == anchor) remaining.push_back(std::move(a));
    }
    automorphisms = std::move(remaining);
  }
  return conditions;
}

}  // namespace fractal
