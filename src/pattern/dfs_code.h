// gSpan DFS-code canonical labeling (Yan & Han 2002), the algorithm the
// paper adopts for pattern canonicalization (§2.1): a pattern's minimum DFS
// code is a string of edge tuples that is identical for all members of an
// isomorphism class. Used as an alternative provider to the adjacency-code
// minimizer in canonical.h; tests assert the two induce the same classes.
#ifndef FRACTAL_PATTERN_DFS_CODE_H_
#define FRACTAL_PATTERN_DFS_CODE_H_

#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace fractal {

/// One DFS-code edge tuple (i, j, l_i, l_ij, l_j): i and j are discovery
/// indices; a forward edge has i < j (j is discovered by this edge), a
/// backward edge has i > j.
struct DfsEdge {
  uint32_t i = 0;
  uint32_t j = 0;
  Label label_i = 0;
  Label label_ij = 0;
  Label label_j = 0;

  bool IsForward() const { return i < j; }

  friend bool operator==(const DfsEdge&, const DfsEdge&) = default;
};

/// Strict gSpan linear order on extension tuples (≺_e in the paper):
/// backward edges sort before forward ones from the same rightmost path;
/// among backwards smaller destination first; among forwards deeper source
/// first; ties broken by (l_i, l_ij, l_j).
bool DfsEdgeLess(const DfsEdge& a, const DfsEdge& b);

/// A DFS code: an edge-tuple sequence. Comparable lexicographically under
/// DfsEdgeLess; the minimum over all DFS traversals is canonical.
struct DfsCode {
  std::vector<DfsEdge> edges;

  std::string ToString() const;

  friend bool operator==(const DfsCode&, const DfsCode&) = default;
};

/// True iff a < b in the gSpan DFS-code lexicographic order.
bool DfsCodeLess(const DfsCode& a, const DfsCode& b);

/// Computes the minimum DFS code of a connected pattern with >= 1 edge.
DfsCode MinDfsCode(const Pattern& pattern);

/// Rebuilds a pattern (in discovery-index positions) from a DFS code.
Pattern PatternFromDfsCode(const DfsCode& code);

}  // namespace fractal

#endif  // FRACTAL_PATTERN_DFS_CODE_H_
