// Pattern: a small labeled graph acting as the template of a subgraph
// (paper §2.1). Patterns are the aggregation keys of motif counting and FSM
// and the inputs of pattern-induced enumeration (subgraph querying).
//
// Patterns are tiny (<= 32 vertices, enforced) and value-semantic: equality,
// hashing and ordering compare the exact labeled structure over *positions*
// (vertex indices). Two isomorphic patterns with different position
// numberings compare unequal — use CanonicalForm() (canonical.h) to get the
// class representative.
#ifndef FRACTAL_PATTERN_PATTERN_H_
#define FRACTAL_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"

namespace fractal {

/// Edge of a pattern; endpoints are position indices with src < dst.
struct PatternEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  Label label = 0;

  friend bool operator==(const PatternEdge&, const PatternEdge&) = default;
  friend auto operator<=>(const PatternEdge&, const PatternEdge&) = default;
};

/// Small labeled graph over positions 0..NumVertices()-1.
class Pattern {
 public:
  static constexpr uint32_t kMaxVertices = 32;

  Pattern() = default;

  /// Adds a vertex position with the given label; returns its index.
  uint32_t AddVertex(Label label);

  /// Adds an undirected edge between positions u and v. Duplicate edges and
  /// self-loops are programming errors.
  void AddEdge(uint32_t u, uint32_t v, Label label = 0);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertex_labels_.size());
  }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  Label VertexLabel(uint32_t position) const {
    FRACTAL_DCHECK(position < NumVertices());
    return vertex_labels_[position];
  }

  /// Edges sorted by (src, dst).
  const std::vector<PatternEdge>& Edges() const { return edges_; }

  bool IsAdjacent(uint32_t u, uint32_t v) const {
    FRACTAL_DCHECK(u < NumVertices() && v < NumVertices());
    return (adjacency_[u] >> v) & 1u;
  }

  /// Label of edge (u, v); the edge must exist.
  Label EdgeLabelBetween(uint32_t u, uint32_t v) const;

  /// Bitmask of neighbors of position v.
  uint32_t NeighborMask(uint32_t v) const {
    FRACTAL_DCHECK(v < NumVertices());
    return adjacency_[v];
  }

  uint32_t Degree(uint32_t v) const {
    return static_cast<uint32_t>(__builtin_popcount(NeighborMask(v)));
  }

  bool IsConnected() const;

  /// True iff every pair of positions is adjacent.
  bool IsClique() const {
    return NumEdges() == NumVertices() * (NumVertices() - 1) / 2;
  }

  /// Relabels positions: result position perm[i] gets this pattern's vertex
  /// i (perm must be a permutation of 0..n-1).
  Pattern Permuted(const std::vector<uint32_t>& perm) const;

  /// "v0(l) v1(l) ... ; (0-1:l) (1-2:l) ..." — stable, human-readable.
  std::string ToString() const;

  uint64_t Hash() const;

  /// Heap bytes owned by this pattern (its three vectors) — the
  /// aggregation memory-accounting hook (core/aggregation.h HeapBytesOf);
  /// sizeof(Pattern) itself is counted by the caller.
  uint64_t ApproxHeapBytes() const {
    return vertex_labels_.capacity() * sizeof(Label) +
           edges_.capacity() * sizeof(PatternEdge) +
           adjacency_.capacity() * sizeof(uint32_t);
  }

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.vertex_labels_ == b.vertex_labels_ && a.edges_ == b.edges_;
  }
  friend auto operator<=>(const Pattern& a, const Pattern& b) {
    if (auto c = a.vertex_labels_ <=> b.vertex_labels_; c != 0) return c;
    return a.edges_ <=> b.edges_;
  }

  // --- Common shapes (unlabeled: all labels 0) --------------------------

  static Pattern Clique(uint32_t k);
  static Pattern CyclePattern(uint32_t k);
  static Pattern PathPattern(uint32_t k);
  static Pattern StarPattern(uint32_t k);

 private:
  std::vector<Label> vertex_labels_;
  std::vector<PatternEdge> edges_;     // kept sorted by (src, dst)
  std::vector<uint32_t> adjacency_;    // neighbor bitmask per position
};

struct PatternHash {
  size_t operator()(const Pattern& pattern) const {
    return static_cast<size_t>(pattern.Hash());
  }
};

}  // namespace fractal

#endif  // FRACTAL_PATTERN_PATTERN_H_
