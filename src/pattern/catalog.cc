#include "pattern/catalog.h"

#include <algorithm>
#include <set>

#include "pattern/canonical.h"
#include "util/strings.h"

namespace fractal {

std::vector<Pattern> ConnectedPatterns(uint32_t k) {
  FRACTAL_CHECK(k >= 1 && k <= 7) << "catalog supports 1..7 vertices";
  // Grow patterns one vertex at a time: attach the new vertex to every
  // non-empty subset of the existing vertices, dedup by canonical form.
  std::set<Pattern> current;
  {
    Pattern single;
    single.AddVertex(0);
    current.insert(single);
  }
  for (uint32_t size = 2; size <= k; ++size) {
    std::set<Pattern> next;
    for (const Pattern& base : current) {
      const uint32_t n = base.NumVertices();
      for (uint32_t mask = 1; mask < (1u << n); ++mask) {
        Pattern grown = base;
        const uint32_t v = grown.AddVertex(0);
        for (uint32_t i = 0; i < n; ++i) {
          if ((mask >> i) & 1u) grown.AddEdge(i, v);
        }
        next.insert(CanonicalForm(grown).pattern);
      }
    }
    current = std::move(next);
  }
  std::vector<Pattern> result(current.begin(), current.end());
  std::sort(result.begin(), result.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.NumEdges() != b.NumEdges()) {
                return a.NumEdges() < b.NumEdges();
              }
              return a < b;
            });
  return result;
}

std::string PatternShapeName(const Pattern& pattern) {
  const Pattern canonical = CanonicalForm(pattern).pattern;
  struct Named {
    const char* name;
    Pattern pattern;
  };
  static const std::vector<Named>& named = *new std::vector<Named>([] {
    std::vector<Named> list;
    auto add = [&list](const char* name, Pattern p) {
      list.push_back({name, CanonicalForm(p).pattern});
    };
    add("edge", Pattern::PathPattern(2));
    add("path-3", Pattern::PathPattern(3));
    add("triangle", Pattern::Clique(3));
    add("path-4", Pattern::PathPattern(4));
    add("3-star", Pattern::StarPattern(4));
    add("square", Pattern::CyclePattern(4));
    {
      Pattern p = Pattern::PathPattern(4);  // triangle with a tail
      p.AddEdge(0, 2);
      add("tadpole", p);
    }
    {
      Pattern p = Pattern::CyclePattern(4);
      p.AddEdge(0, 2);
      add("diamond", p);
    }
    add("4-clique", Pattern::Clique(4));
    add("path-5", Pattern::PathPattern(5));
    add("4-star", Pattern::StarPattern(5));
    add("5-cycle", Pattern::CyclePattern(5));
    {
      Pattern p = Pattern::CyclePattern(5);
      p.AddEdge(0, 2);
      add("house", p);
    }
    add("5-clique", Pattern::Clique(5));
    return list;
  }());
  for (const Named& entry : named) {
    if (entry.pattern == canonical) return entry.name;
  }
  return StrFormat("k%u-e%u-%08llx", canonical.NumVertices(),
                   canonical.NumEdges(),
                   (unsigned long long)(canonical.Hash() & 0xFFFFFFFFull));
}

}  // namespace fractal
