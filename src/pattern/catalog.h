// Pattern catalog: enumeration of all connected unlabeled patterns with k
// vertices (canonical representatives), plus human-readable names for the
// common small shapes. Used by motif reporting and — because the number of
// connected graphs on k vertices is known (1, 1, 2, 6, 21, 112, ...) — as
// an end-to-end validation of the canonicalization machinery.
#ifndef FRACTAL_PATTERN_CATALOG_H_
#define FRACTAL_PATTERN_CATALOG_H_

#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace fractal {

/// All connected unlabeled k-vertex patterns, one canonical representative
/// per isomorphism class, sorted by (num edges, canonical order). Exact
/// search: practical for k <= 7.
std::vector<Pattern> ConnectedPatterns(uint32_t k);

/// Name of a small shape ("triangle", "diamond", "4-star", ...) or a
/// generic "k5-e7-<hash>" tag for unnamed ones. Input need not be
/// canonical.
std::string PatternShapeName(const Pattern& pattern);

}  // namespace fractal

#endif  // FRACTAL_PATTERN_CATALOG_H_
