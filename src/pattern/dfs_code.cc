#include "pattern/dfs_code.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace fractal {
namespace {

std::tuple<Label, Label, Label> Labels(const DfsEdge& e) {
  return {e.label_i, e.label_ij, e.label_j};
}

/// One partial DFS traversal of the pattern realizing the current code.
struct Instantiation {
  std::vector<uint32_t> index_to_vertex;  // discovery index -> pattern vertex
  std::vector<int32_t> vertex_to_index;   // -1 when undiscovered
  uint64_t used_edges = 0;                // bitmask over pattern edge slots
  std::vector<uint32_t> rightmost_path;   // discovery indices, root..rightmost
};

/// Index of the pattern edge (u, v) in pattern.Edges(). The edge must exist.
uint32_t EdgeSlot(const Pattern& pattern, uint32_t u, uint32_t v) {
  const uint32_t src = std::min(u, v);
  const uint32_t dst = std::max(u, v);
  const auto& edges = pattern.Edges();
  for (uint32_t slot = 0; slot < edges.size(); ++slot) {
    if (edges[slot].src == src && edges[slot].dst == dst) return slot;
  }
  FRACTAL_CHECK(false) << "edge not in pattern";
  return 0;
}

struct Extension {
  DfsEdge edge;
  uint32_t source_vertex;  // pattern vertex at edge.i
  uint32_t target_vertex;  // pattern vertex at edge.j
};

/// All gSpan-valid extensions of one instantiation.
void CollectExtensions(const Pattern& pattern, const Instantiation& inst,
                       std::vector<Extension>* out) {
  const uint32_t rightmost_index = inst.rightmost_path.back();
  const uint32_t rightmost_vertex = inst.index_to_vertex[rightmost_index];

  // Backward edges: rightmost vertex -> earlier vertex on the rightmost
  // path, using a pattern edge not yet in the code.
  for (const uint32_t path_index : inst.rightmost_path) {
    if (path_index == rightmost_index) continue;
    const uint32_t target = inst.index_to_vertex[path_index];
    if (!pattern.IsAdjacent(rightmost_vertex, target)) continue;
    const uint32_t slot = EdgeSlot(pattern, rightmost_vertex, target);
    if ((inst.used_edges >> slot) & 1ull) continue;
    Extension ext;
    ext.edge = {rightmost_index, path_index,
                pattern.VertexLabel(rightmost_vertex),
                pattern.EdgeLabelBetween(rightmost_vertex, target),
                pattern.VertexLabel(target)};
    ext.source_vertex = rightmost_vertex;
    ext.target_vertex = target;
    out->push_back(ext);
  }

  // Forward edges: from any rightmost-path vertex to an undiscovered vertex.
  const uint32_t next_index =
      static_cast<uint32_t>(inst.index_to_vertex.size());
  for (const uint32_t path_index : inst.rightmost_path) {
    const uint32_t source = inst.index_to_vertex[path_index];
    for (uint32_t target = 0; target < pattern.NumVertices(); ++target) {
      if (!pattern.IsAdjacent(source, target)) continue;
      if (inst.vertex_to_index[target] >= 0) continue;
      Extension ext;
      ext.edge = {path_index, next_index, pattern.VertexLabel(source),
                  pattern.EdgeLabelBetween(source, target),
                  pattern.VertexLabel(target)};
      ext.source_vertex = source;
      ext.target_vertex = target;
      out->push_back(ext);
    }
  }
}

Instantiation Extend(const Pattern& pattern, const Instantiation& inst,
                     const Extension& ext) {
  Instantiation next = inst;
  next.used_edges |=
      1ull << EdgeSlot(pattern, ext.source_vertex, ext.target_vertex);
  if (ext.edge.IsForward()) {
    const uint32_t new_index = ext.edge.j;
    FRACTAL_DCHECK(new_index == next.index_to_vertex.size());
    next.index_to_vertex.push_back(ext.target_vertex);
    next.vertex_to_index[ext.target_vertex] =
        static_cast<int32_t>(new_index);
    // New rightmost path: ancestors of the source index, then the new index.
    while (!next.rightmost_path.empty() &&
           next.rightmost_path.back() != ext.edge.i) {
      next.rightmost_path.pop_back();
    }
    FRACTAL_DCHECK(!next.rightmost_path.empty());
    next.rightmost_path.push_back(new_index);
  }
  // Backward edges leave the rightmost path unchanged.
  return next;
}

}  // namespace

bool DfsEdgeLess(const DfsEdge& a, const DfsEdge& b) {
  const bool a_forward = a.IsForward();
  const bool b_forward = b.IsForward();
  if (!a_forward && !b_forward) {  // both backward
    if (a.i != b.i) return a.i < b.i;
    if (a.j != b.j) return a.j < b.j;
    return Labels(a) < Labels(b);
  }
  if (a_forward && b_forward) {
    if (a.j != b.j) return a.j < b.j;
    if (a.i != b.i) return a.i > b.i;  // deeper source first
    return Labels(a) < Labels(b);
  }
  if (!a_forward) return a.i < b.j;  // backward vs forward
  return a.j <= b.i;                 // forward vs backward
}

bool DfsCodeLess(const DfsCode& a, const DfsCode& b) {
  const size_t common = std::min(a.edges.size(), b.edges.size());
  for (size_t k = 0; k < common; ++k) {
    if (a.edges[k] == b.edges[k]) continue;
    return DfsEdgeLess(a.edges[k], b.edges[k]);
  }
  return a.edges.size() < b.edges.size();
}

std::string DfsCode::ToString() const {
  std::ostringstream out;
  for (const DfsEdge& e : edges) {
    out << '(' << e.i << ',' << e.j << ',' << e.label_i << ',' << e.label_ij
        << ',' << e.label_j << ')';
  }
  return out.str();
}

DfsCode MinDfsCode(const Pattern& pattern) {
  FRACTAL_CHECK(pattern.NumEdges() >= 1) << "DFS code needs >= 1 edge";
  FRACTAL_CHECK(pattern.IsConnected()) << "DFS code needs a connected pattern";
  FRACTAL_CHECK(pattern.NumEdges() <= 64) << "pattern too large for DFS code";

  // Seed instantiations: every directed version of every edge realizing the
  // minimal first tuple (0, 1, l_u, l_uv, l_v).
  std::tuple<Label, Label, Label> best_first{};
  bool have_first = false;
  for (const PatternEdge& edge : pattern.Edges()) {
    for (const auto& [u, v] : {std::pair{edge.src, edge.dst},
                              std::pair{edge.dst, edge.src}}) {
      const std::tuple<Label, Label, Label> labels{
          pattern.VertexLabel(u), edge.label, pattern.VertexLabel(v)};
      if (!have_first || labels < best_first) {
        best_first = labels;
        have_first = true;
      }
    }
  }

  DfsCode code;
  code.edges.push_back({0, 1, std::get<0>(best_first),
                        std::get<1>(best_first), std::get<2>(best_first)});

  std::vector<Instantiation> current;
  for (const PatternEdge& edge : pattern.Edges()) {
    for (const auto& [u, v] : {std::pair{edge.src, edge.dst},
                              std::pair{edge.dst, edge.src}}) {
      const std::tuple<Label, Label, Label> labels{
          pattern.VertexLabel(u), edge.label, pattern.VertexLabel(v)};
      if (labels != best_first) continue;
      Instantiation inst;
      inst.index_to_vertex = {u, v};
      inst.vertex_to_index.assign(pattern.NumVertices(), -1);
      inst.vertex_to_index[u] = 0;
      inst.vertex_to_index[v] = 1;
      inst.used_edges = 1ull << EdgeSlot(pattern, u, v);
      inst.rightmost_path = {0, 1};
      current.push_back(std::move(inst));
    }
  }

  // Grow the code one edge at a time; at each step keep only the
  // instantiations realizing the minimal extension tuple.
  std::vector<Extension> extensions;
  while (code.edges.size() < pattern.NumEdges()) {
    bool have_min = false;
    DfsEdge min_edge;
    std::vector<Instantiation> next;
    for (const Instantiation& inst : current) {
      extensions.clear();
      CollectExtensions(pattern, inst, &extensions);
      for (const Extension& ext : extensions) {
        if (!have_min || DfsEdgeLess(ext.edge, min_edge)) {
          min_edge = ext.edge;
          have_min = true;
          next.clear();
        }
        if (ext.edge == min_edge) {
          next.push_back(Extend(pattern, inst, ext));
        }
      }
    }
    FRACTAL_CHECK(have_min) << "connected pattern must always extend";
    code.edges.push_back(min_edge);
    current = std::move(next);
  }
  return code;
}

Pattern PatternFromDfsCode(const DfsCode& code) {
  Pattern pattern;
  for (const DfsEdge& e : code.edges) {
    if (e.IsForward()) {
      while (pattern.NumVertices() <= e.i) pattern.AddVertex(e.label_i);
      FRACTAL_CHECK(pattern.NumVertices() == e.j)
          << "forward edges must discover vertices in index order";
      pattern.AddVertex(e.label_j);
    }
    pattern.AddEdge(e.i, e.j, e.label_ij);
  }
  return pattern;
}

}  // namespace fractal
