// Canonical labeling of patterns (paper §2.1): maps every member of an
// isomorphism class to one representative, so that pattern equality becomes
// cheap value comparison. Two providers are implemented:
//   * CanonicalForm(): branch-and-bound minimization of the labeled
//     adjacency-matrix code over all position permutations — the reference
//     implementation, also returns the permutation (needed by MNI support
//     counting, which must align embedding positions across subgraphs).
//   * MinDfsCode() (dfs_code.h): the gSpan DFS-code canonicalization the
//     paper adopts. The two providers are cross-checked in tests: they must
//     induce the same equivalence classes.
// CanonicalPatternCache memoizes canonicalization by "quick pattern" (the
// pattern in subgraph addition order), the Arabesque two-phase aggregation
// trick: distinct quick patterns are few, so the expensive canonicalization
// runs once per quick pattern rather than once per subgraph.
#ifndef FRACTAL_PATTERN_CANONICAL_H_
#define FRACTAL_PATTERN_CANONICAL_H_

#include <unordered_map>
#include <vector>

#include "pattern/pattern.h"

namespace fractal {

struct CanonicalResult {
  /// The class representative.
  Pattern pattern;
  /// perm[i] = canonical position of input position i
  /// (pattern == input.Permuted(perm)).
  std::vector<uint32_t> permutation;
  /// orbit[p] = smallest canonical position in p's automorphism orbit.
  /// Needed by MNI support counting: an embedding vertex belongs to the
  /// domain of every position its canonical position is automorphic to.
  std::vector<uint32_t> orbit;
};

/// Computes the canonical form of `pattern` by exact search. Cost grows
/// with NumVertices()! — intended for the small patterns of GPM (<= ~9
/// vertices); memoize with CanonicalPatternCache in hot paths.
CanonicalResult CanonicalForm(const Pattern& pattern);

/// True iff a and b are isomorphic (labels respected).
bool AreIsomorphic(const Pattern& a, const Pattern& b);

/// Memoizing wrapper around CanonicalForm keyed by the quick pattern.
/// Not thread-safe: use one instance per execution thread.
class CanonicalPatternCache {
 public:
  const CanonicalResult& Canonicalize(const Pattern& quick_pattern);

  size_t CacheSize() const { return cache_.size(); }
  uint64_t Hits() const { return hits_; }
  uint64_t Misses() const { return misses_; }

 private:
  std::unordered_map<Pattern, CanonicalResult, PatternHash> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace fractal

#endif  // FRACTAL_PATTERN_CANONICAL_H_
