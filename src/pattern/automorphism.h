// Pattern automorphisms and Grochow–Kellis symmetry breaking (paper §3,
// reference [24]): pattern-induced extension must enumerate each subgraph
// instance exactly once even when the pattern has symmetries. The classic
// fix is a set of "match[a] < match[b]" ordering conditions on pattern
// positions that exactly one member of each automorphism orbit of an
// embedding satisfies.
#ifndef FRACTAL_PATTERN_AUTOMORPHISM_H_
#define FRACTAL_PATTERN_AUTOMORPHISM_H_

#include <vector>

#include "pattern/pattern.h"

namespace fractal {

/// All automorphisms of `pattern` (label-preserving structure-preserving
/// permutations). The identity is always included. Exact search — patterns
/// are small.
std::vector<std::vector<uint32_t>> Automorphisms(const Pattern& pattern);

/// A symmetry-breaking condition: the matched graph-vertex id at position
/// `smaller` must be less than the one at position `larger`.
struct SymmetryCondition {
  uint32_t smaller = 0;
  uint32_t larger = 0;

  friend bool operator==(const SymmetryCondition&,
                         const SymmetryCondition&) = default;
};

/// Grochow–Kellis conditions: fixes orbit representatives iteratively until
/// only the identity automorphism remains. An embedding set of distinct
/// vertices satisfies the returned conditions for exactly one automorphic
/// re-assignment, so pattern-induced enumeration yields each instance once.
std::vector<SymmetryCondition> SymmetryBreakingConditions(
    const Pattern& pattern);

}  // namespace fractal

#endif  // FRACTAL_PATTERN_AUTOMORPHISM_H_
