#include "pattern/pattern.h"

#include <algorithm>
#include <sstream>

namespace fractal {

uint32_t Pattern::AddVertex(Label label) {
  FRACTAL_CHECK(NumVertices() < kMaxVertices) << "pattern too large";
  vertex_labels_.push_back(label);
  adjacency_.push_back(0);
  return NumVertices() - 1;
}

void Pattern::AddEdge(uint32_t u, uint32_t v, Label label) {
  FRACTAL_CHECK(u < NumVertices() && v < NumVertices());
  FRACTAL_CHECK(u != v) << "pattern self-loop";
  FRACTAL_CHECK(!IsAdjacent(u, v)) << "duplicate pattern edge";
  PatternEdge edge;
  edge.src = std::min(u, v);
  edge.dst = std::max(u, v);
  edge.label = label;
  edges_.insert(std::lower_bound(edges_.begin(), edges_.end(), edge), edge);
  adjacency_[u] |= 1u << v;
  adjacency_[v] |= 1u << u;
}

Label Pattern::EdgeLabelBetween(uint32_t u, uint32_t v) const {
  const uint32_t src = std::min(u, v);
  const uint32_t dst = std::max(u, v);
  for (const PatternEdge& edge : edges_) {
    if (edge.src == src && edge.dst == dst) return edge.label;
  }
  FRACTAL_CHECK(false) << "no edge (" << u << "," << v << ") in pattern";
  return 0;
}

bool Pattern::IsConnected() const {
  const uint32_t n = NumVertices();
  if (n <= 1) return true;
  uint32_t visited = 1u;  // start from position 0
  uint32_t frontier = 1u;
  while (frontier != 0) {
    uint32_t next = 0;
    for (uint32_t v = 0; v < n; ++v) {
      if ((frontier >> v) & 1u) next |= adjacency_[v];
    }
    frontier = next & ~visited;
    visited |= next;
  }
  return visited == (n == 32 ? ~0u : ((1u << n) - 1u));
}

Pattern Pattern::Permuted(const std::vector<uint32_t>& perm) const {
  FRACTAL_CHECK(perm.size() == NumVertices());
  Pattern result;
  std::vector<Label> labels(NumVertices());
  for (uint32_t i = 0; i < NumVertices(); ++i) {
    labels[perm[i]] = vertex_labels_[i];
  }
  for (const Label label : labels) result.AddVertex(label);
  for (const PatternEdge& edge : edges_) {
    result.AddEdge(perm[edge.src], perm[edge.dst], edge.label);
  }
  return result;
}

std::string Pattern::ToString() const {
  std::ostringstream out;
  for (uint32_t v = 0; v < NumVertices(); ++v) {
    if (v > 0) out << ' ';
    out << 'v' << v << '(' << vertex_labels_[v] << ')';
  }
  out << " ;";
  for (const PatternEdge& edge : edges_) {
    out << " (" << edge.src << '-' << edge.dst;
    if (edge.label != 0) out << ':' << edge.label;
    out << ')';
  }
  return out.str();
}

uint64_t Pattern::Hash() const {
  uint64_t hash = 0x9e3779b97f4a7c15ull ^ NumVertices();
  auto mix = [&hash](uint64_t value) {
    hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  };
  for (const Label label : vertex_labels_) mix(label);
  for (const PatternEdge& edge : edges_) {
    mix((static_cast<uint64_t>(edge.src) << 40) |
        (static_cast<uint64_t>(edge.dst) << 20) | edge.label);
  }
  return hash;
}

Pattern Pattern::Clique(uint32_t k) {
  Pattern pattern;
  for (uint32_t i = 0; i < k; ++i) pattern.AddVertex(0);
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) pattern.AddEdge(i, j);
  }
  return pattern;
}

Pattern Pattern::CyclePattern(uint32_t k) {
  FRACTAL_CHECK(k >= 3);
  Pattern pattern;
  for (uint32_t i = 0; i < k; ++i) pattern.AddVertex(0);
  for (uint32_t i = 0; i < k; ++i) pattern.AddEdge(i, (i + 1) % k);
  return pattern;
}

Pattern Pattern::PathPattern(uint32_t k) {
  FRACTAL_CHECK(k >= 1);
  Pattern pattern;
  for (uint32_t i = 0; i < k; ++i) pattern.AddVertex(0);
  for (uint32_t i = 0; i + 1 < k; ++i) pattern.AddEdge(i, i + 1);
  return pattern;
}

Pattern Pattern::StarPattern(uint32_t k) {
  FRACTAL_CHECK(k >= 2);
  Pattern pattern;
  for (uint32_t i = 0; i < k; ++i) pattern.AddVertex(0);
  for (uint32_t i = 1; i < k; ++i) pattern.AddEdge(0, i);
  return pattern;
}

}  // namespace fractal
