#include "pattern/canonical.h"

#include "pattern/automorphism.h"

#include <algorithm>

namespace fractal {
namespace {

// The code of an ordering places, for each new position d, one entry for the
// vertex label followed by d entries describing (non)adjacency + edge label
// to each earlier position. Minimizing the flat entry sequence
// lexicographically over all orderings yields a canonical form.
class Minimizer {
 public:
  explicit Minimizer(const Pattern& pattern) : pattern_(pattern) {
    n_ = pattern.NumVertices();
    used_.assign(n_, 0);
    order_.reserve(n_);
  }

  CanonicalResult Run() {
    Search();
    CanonicalResult result;
    result.permutation.assign(n_, 0);
    for (uint32_t position = 0; position < n_; ++position) {
      result.permutation[best_order_[position]] = position;
    }
    result.pattern = pattern_.Permuted(result.permutation);
    return result;
  }

 private:
  // One code entry: vertex label, or adjacency slot (0 = non-adjacent,
  // 1+edge label = adjacent).
  using Entry = uint64_t;

  void Search() {
    if (n_ == 0) {
      best_order_.clear();
      have_best_ = true;
      return;
    }
    SearchAt(0);
    FRACTAL_CHECK(have_best_);
  }

  void SearchAt(uint32_t depth) {
    if (depth == n_) {
      if (!have_best_ || current_code_ < best_code_) {
        best_code_ = current_code_;
        best_order_ = order_;
        have_best_ = true;
      }
      return;
    }
    for (uint32_t v = 0; v < n_; ++v) {
      if (used_[v]) continue;
      const size_t code_size_before = current_code_.size();
      AppendColumn(v, depth);
      // Prune: if the prefix already exceeds the best full code, no
      // completion can win.
      if (!have_best_ || !PrefixGreaterThanBest()) {
        used_[v] = 1;
        order_.push_back(v);
        SearchAt(depth + 1);
        order_.pop_back();
        used_[v] = 0;
      }
      current_code_.resize(code_size_before);
    }
  }

  void AppendColumn(uint32_t v, uint32_t depth) {
    current_code_.push_back(pattern_.VertexLabel(v));
    for (uint32_t i = 0; i < depth; ++i) {
      const uint32_t earlier = order_[i];
      if (pattern_.IsAdjacent(earlier, v)) {
        current_code_.push_back(
            1ull + pattern_.EdgeLabelBetween(earlier, v));
      } else {
        current_code_.push_back(0);
      }
    }
  }

  bool PrefixGreaterThanBest() const {
    const size_t len = current_code_.size();
    FRACTAL_DCHECK(len <= best_code_.size());
    for (size_t i = 0; i < len; ++i) {
      if (current_code_[i] != best_code_[i]) {
        return current_code_[i] > best_code_[i];
      }
    }
    return false;  // equal prefix: keep searching
  }

  const Pattern& pattern_;
  uint32_t n_ = 0;
  std::vector<uint8_t> used_;
  std::vector<uint32_t> order_;
  std::vector<Entry> current_code_;
  std::vector<Entry> best_code_;
  std::vector<uint32_t> best_order_;
  bool have_best_ = false;
};

}  // namespace

CanonicalResult CanonicalForm(const Pattern& pattern) {
  CanonicalResult result = Minimizer(pattern).Run();
  const uint32_t n = result.pattern.NumVertices();
  const auto automorphisms = Automorphisms(result.pattern);
  // Union-find by minimum: positions connected by any automorphism share an
  // orbit; iterate to a fixed point.
  result.orbit.resize(n);
  for (uint32_t p = 0; p < n; ++p) result.orbit[p] = p;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& automorphism : automorphisms) {
      for (uint32_t p = 0; p < n; ++p) {
        const uint32_t minimum =
            std::min(result.orbit[p], result.orbit[automorphism[p]]);
        if (result.orbit[p] != minimum ||
            result.orbit[automorphism[p]] != minimum) {
          result.orbit[p] = minimum;
          result.orbit[automorphism[p]] = minimum;
          changed = true;
        }
      }
    }
  }
  return result;
}

bool AreIsomorphic(const Pattern& a, const Pattern& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  return CanonicalForm(a).pattern == CanonicalForm(b).pattern;
}

const CanonicalResult& CanonicalPatternCache::Canonicalize(
    const Pattern& quick_pattern) {
  auto it = cache_.find(quick_pattern);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return cache_.emplace(quick_pattern, CanonicalForm(quick_pattern))
      .first->second;
}

}  // namespace fractal
