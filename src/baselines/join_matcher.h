// SEED/GraphFrames-style join-based subgraph matching: partial matches are
// materialized *relations* grown by hash joins against the edge relation
// (one pattern vertex per join step), with symmetry-breaking conditions
// applied as join predicates. SEED's signature optimization — growing by
// whole triangle units for clique-like queries — is modeled by seeding the
// relation with the triangle list when the join plan's first three vertices
// form a triangle.
//
// Like the BFS engine, the matcher carries a memory budget and reports OOM
// when intermediate relations outgrow it (the GraphFrames failures of
// Fig. 12/20a).
#ifndef FRACTAL_BASELINES_JOIN_MATCHER_H_
#define FRACTAL_BASELINES_JOIN_MATCHER_H_

#include <cstdint>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace fractal {
namespace baselines {

struct JoinOptions {
  uint64_t memory_budget_bytes = 1ull << 31;  // 2 GB
  /// Seed with the triangle relation when the plan starts with a triangle
  /// (SEED-style multi-edge join units). Disable for the plain
  /// GraphFrames-like edge-at-a-time behaviour.
  bool use_triangle_seed = true;
  /// Simulated materialization/shuffle cost per intermediate tuple, in
  /// microseconds (SEED runs on Hadoop: every join round writes and
  /// shuffles its relation). Added to JoinResult::seconds.
  double shuffle_micros_per_tuple = 0.0;
  /// Fixed job overhead in seconds (Spark/Hadoop stage scheduling, task
  /// dispatch, JVM warm-up — independent of data size). Added once.
  double fixed_overhead_seconds = 0.0;
  /// Apply symmetry-breaking conditions during the joins (SEED). When off
  /// (GraphFrames-style motif joins), every automorphic ordering of a match
  /// is materialized and deduplication happens at the end — inflating the
  /// intermediate relations by the automorphism factor.
  bool use_symmetry_breaking = true;
};

struct JoinResult {
  bool out_of_memory = false;
  uint64_t count = 0;              // distinct subgraph matches
  uint64_t peak_state_bytes = 0;   // largest materialized relation chain
  uint64_t tuples_materialized = 0;
  double seconds = 0;
};

/// Counts distinct subgraphs of `graph` isomorphic to `query`.
JoinResult JoinCountMatches(const Graph& graph, const Pattern& query,
                            const JoinOptions& options = {});

/// Triangle counting via the join matcher (the GraphFrames benchmark of
/// Fig. 20a).
JoinResult JoinCountTriangles(const Graph& graph,
                              const JoinOptions& options = {});

}  // namespace baselines
}  // namespace fractal

#endif  // FRACTAL_BASELINES_JOIN_MATCHER_H_
