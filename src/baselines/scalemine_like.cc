#include "baselines/scalemine_like.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "enumerate/extension.h"
#include "enumerate/subgraph.h"
#include "pattern/canonical.h"
#include "util/random.h"
#include "util/timer.h"

namespace fractal {
namespace baselines {
namespace {

/// Capped MNI domains: insertion stops once every populated orbit domain
/// reaches the threshold — ScaleMine's approximate support counting.
struct CappedDomains {
  uint32_t threshold = 0;
  bool enough = false;
  std::vector<std::unordered_set<VertexId>> sets;

  void Add(const Subgraph& subgraph, const CanonicalResult& canonical) {
    if (enough) return;
    const uint32_t k = subgraph.NumVertices();
    if (sets.size() < k) sets.resize(k);
    for (uint32_t i = 0; i < k; ++i) {
      sets[canonical.orbit[canonical.permutation[i]]].insert(
          subgraph.VertexAt(i));
    }
    uint64_t support = UINT64_MAX;
    bool any = false;
    for (const auto& domain : sets) {
      if (domain.empty()) continue;
      support = std::min<uint64_t>(support, domain.size());
      any = true;
    }
    if (any && support >= threshold) enough = true;
  }
};

}  // namespace

ScaleMineResult RunScaleMineFsm(const Graph& graph, uint32_t min_support,
                                uint32_t max_edges,
                                const ScaleMineOptions& options) {
  ScaleMineResult result;
  WallTimer total_timer;

  // --- Phase 1: sampled search-space estimation -------------------------
  // Random embedding walks estimate per-pattern frequency; ScaleMine uses
  // these estimates for load balancing and pruning decisions. The cost is
  // real (and fixed), which is why ScaleMine loses at high supports where
  // the actual mining work is tiny.
  {
    WallTimer phase1;
    SplitMix64 rng(options.seed);
    EdgeInducedStrategy strategy;
    ExtensionContext ctx;
    CanonicalPatternCache cache;
    std::unordered_map<Pattern, uint64_t, PatternHash> estimates;
    Subgraph subgraph;
    std::vector<uint32_t> extensions;
    for (uint32_t walk = 0; walk < options.sample_walks; ++walk) {
      subgraph.Clear();
      const uint32_t length = 1 + rng.NextBounded(max_edges);
      bool alive = true;
      for (uint32_t step = 0; step < length && alive; ++step) {
        strategy.ComputeExtensions(graph, subgraph, ctx, &extensions);
        if (extensions.empty()) {
          alive = false;
          break;
        }
        subgraph.PushEdgeInduced(
            graph, extensions[rng.NextBounded(extensions.size())]);
      }
      if (alive && !subgraph.Empty()) {
        ++estimates[cache.Canonicalize(subgraph.QuickPattern(graph)).pattern];
      }
    }
    result.phase1_seconds = phase1.ElapsedSeconds();
  }

  // --- Phase 2: exact frequent-pattern mining with capped supports ------
  WallTimer phase2;
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  CanonicalPatternCache cache;
  std::unordered_map<Pattern, uint64_t, PatternHash> frequent_all;
  Subgraph subgraph;

  for (uint32_t level = 1; level <= max_edges; ++level) {
    std::unordered_map<Pattern, CappedDomains, PatternHash> domains;
    std::function<void(uint32_t)> recurse = [&](uint32_t depth) {
      if (depth > 0) {
        const CanonicalResult& canonical =
            cache.Canonicalize(subgraph.QuickPattern(graph));
        if (depth == level) {
          auto [it, inserted] = domains.try_emplace(canonical.pattern);
          if (inserted) it->second.threshold = min_support;
          it->second.Add(subgraph, canonical);
          return;
        }
        if (level > 1 && !frequent_all.count(canonical.pattern)) {
          return;  // anti-monotone pruning on the prefix pattern
        }
      }
      std::vector<uint32_t> extensions;
      strategy.ComputeExtensions(graph, subgraph, ctx, &extensions);
      for (const uint32_t extension : extensions) {
        subgraph.PushEdgeInduced(graph, extension);
        recurse(depth + 1);
        subgraph.Pop();
      }
    };
    recurse(0);

    uint32_t frequent_this_level = 0;
    for (const auto& [pattern, capped] : domains) {
      if (capped.enough) {
        frequent_all[pattern] = min_support;  // clamped support
        ++frequent_this_level;
      }
    }
    if (frequent_this_level == 0) break;
  }
  result.phase2_seconds = phase2.ElapsedSeconds();
  result.frequent = std::move(frequent_all);
  result.seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace fractal
