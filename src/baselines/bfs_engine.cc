#include "baselines/bfs_engine.h"

#include <algorithm>

#include "apps/fsm.h"
#include "pattern/canonical.h"
#include "util/timer.h"

namespace fractal {
namespace baselines {
namespace {

/// Flat storage of fixed-width embedding words (the materialized level).
struct FlatLevel {
  uint32_t width = 0;
  std::vector<uint32_t> data;

  size_t NumRows() const { return width == 0 ? 0 : data.size() / width; }
  std::span<const uint32_t> Row(size_t index) const {
    return {data.data() + index * width, width};
  }
  uint64_t Bytes() const { return data.size() * sizeof(uint32_t); }
  void Append(std::span<const uint32_t> row, uint32_t extension) {
    data.insert(data.end(), row.begin(), row.end());
    data.push_back(extension);
  }
};

Subgraph RebuildVertexWord(const Graph& graph, std::span<const uint32_t> word) {
  Subgraph subgraph;
  for (const uint32_t v : word) subgraph.PushVertexInduced(graph, v);
  return subgraph;
}

Subgraph RebuildEdgeWord(const Graph& graph, std::span<const uint32_t> word) {
  Subgraph subgraph;
  for (const uint32_t e : word) subgraph.PushEdgeInduced(graph, e);
  return subgraph;
}

uint64_t Replicated(uint64_t bytes, const BfsOptions& options) {
  return static_cast<uint64_t>(bytes * options.state_replication);
}

}  // namespace

BfsResult BfsEngine::CountVertexInduced(uint32_t k) {
  return Motifs(k);  // same enumeration; Motifs also returns total count
}

BfsResult BfsEngine::Motifs(uint32_t k) {
  WallTimer timer;
  BfsResult result;
  VertexInducedStrategy strategy;
  ExtensionContext ctx;
  CanonicalPatternCache cache;

  FlatLevel current;
  current.width = 1;
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    if (graph_.IsVertexActive(v)) current.data.push_back(v);
  }
  result.peak_state_bytes = current.Bytes();

  std::vector<uint32_t> extensions;
  for (uint32_t depth = 1; depth < k; ++depth) {
    FlatLevel next;
    next.width = depth + 1;
    for (size_t row = 0; row < current.NumRows(); ++row) {
      Subgraph subgraph = RebuildVertexWord(graph_, current.Row(row));
      strategy.ComputeExtensions(graph_, subgraph, ctx, &extensions);
      for (const uint32_t extension : extensions) {
        next.Append(current.Row(row), extension);
      }
    }
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, Replicated(current.Bytes() + next.Bytes(), options_));
    if (result.peak_state_bytes > options_.memory_budget_bytes) {
      result.out_of_memory = true;
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    result.seconds +=
        next.NumRows() * options_.shuffle_micros_per_embedding * 1e-6;
    current = std::move(next);
  }

  for (size_t row = 0; row < current.NumRows(); ++row) {
    const Subgraph subgraph = RebuildVertexWord(graph_, current.Row(row));
    const Pattern canonical =
        options_.disable_pattern_cache
            ? CanonicalForm(subgraph.QuickPattern(graph_)).pattern
            : cache.Canonicalize(subgraph.QuickPattern(graph_)).pattern;
    ++result.pattern_counts[canonical];
  }
  result.count = current.NumRows();
  result.seconds += timer.ElapsedSeconds();
  return result;
}

BfsResult BfsEngine::Cliques(uint32_t k) {
  WallTimer timer;
  BfsResult result;
  VertexInducedStrategy strategy;
  ExtensionContext ctx;

  FlatLevel current;
  current.width = 1;
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    if (graph_.IsVertexActive(v)) current.data.push_back(v);
  }
  result.peak_state_bytes = current.Bytes();

  std::vector<uint32_t> extensions;
  for (uint32_t depth = 1; depth < k; ++depth) {
    FlatLevel next;
    next.width = depth + 1;
    for (size_t row = 0; row < current.NumRows(); ++row) {
      Subgraph subgraph = RebuildVertexWord(graph_, current.Row(row));
      strategy.ComputeExtensions(graph_, subgraph, ctx, &extensions);
      for (const uint32_t extension : extensions) {
        subgraph.PushVertexInduced(graph_, extension);
        const bool clique =
            subgraph.NumEdges() ==
            subgraph.NumVertices() * (subgraph.NumVertices() - 1) / 2;
        subgraph.Pop();
        if (clique) next.Append(current.Row(row), extension);
      }
    }
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, Replicated(current.Bytes() + next.Bytes(), options_));
    if (result.peak_state_bytes > options_.memory_budget_bytes) {
      result.out_of_memory = true;
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    result.seconds +=
        next.NumRows() * options_.shuffle_micros_per_embedding * 1e-6;
    current = std::move(next);
  }
  result.count = current.NumRows();
  result.seconds += timer.ElapsedSeconds();
  return result;
}

BfsResult BfsEngine::Query(const Pattern& query) {
  WallTimer timer;
  BfsResult result;
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  CanonicalPatternCache cache;
  const Pattern canonical_query = CanonicalForm(query).pattern;
  const uint32_t target_edges = query.NumEdges();
  const uint32_t target_vertices = query.NumVertices();

  FlatLevel current;
  current.width = 1;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) current.data.push_back(e);
  result.peak_state_bytes = current.Bytes();

  std::vector<uint32_t> extensions;
  for (uint32_t depth = 1; depth < target_edges; ++depth) {
    FlatLevel next;
    next.width = depth + 1;
    for (size_t row = 0; row < current.NumRows(); ++row) {
      Subgraph subgraph = RebuildEdgeWord(graph_, current.Row(row));
      strategy.ComputeExtensions(graph_, subgraph, ctx, &extensions);
      for (const uint32_t extension : extensions) {
        // Cheap structural pruning only (Arabesque-style): vertex budget.
        subgraph.PushEdgeInduced(graph_, extension);
        const bool feasible = subgraph.NumVertices() <= target_vertices;
        subgraph.Pop();
        if (feasible) next.Append(current.Row(row), extension);
      }
    }
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, Replicated(current.Bytes() + next.Bytes(), options_));
    if (result.peak_state_bytes > options_.memory_budget_bytes) {
      result.out_of_memory = true;
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    result.seconds +=
        next.NumRows() * options_.shuffle_micros_per_embedding * 1e-6;
    current = std::move(next);
  }

  for (size_t row = 0; row < current.NumRows(); ++row) {
    const Subgraph subgraph = RebuildEdgeWord(graph_, current.Row(row));
    const Pattern& canonical =
        cache.Canonicalize(subgraph.QuickPattern(graph_)).pattern;
    if (canonical == canonical_query) ++result.count;
  }
  result.seconds += timer.ElapsedSeconds();
  return result;
}

BfsResult BfsEngine::Fsm(uint32_t min_support, uint32_t max_edges) {
  WallTimer timer;
  BfsResult result;
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  CanonicalPatternCache cache;

  FlatLevel current;
  current.width = 1;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) current.data.push_back(e);

  std::vector<uint32_t> extensions;
  for (uint32_t level = 1; level <= max_edges; ++level) {
    // Aggregate supports of the current level.
    std::unordered_map<Pattern, DomainSupport, PatternHash> supports;
    for (size_t row = 0; row < current.NumRows(); ++row) {
      const Subgraph subgraph = RebuildEdgeWord(graph_, current.Row(row));
      const CanonicalResult& canonical =
          cache.Canonicalize(subgraph.QuickPattern(graph_));
      auto [it, inserted] =
          supports.try_emplace(canonical.pattern, DomainSupport(min_support));
      it->second.AddEmbedding(subgraph, canonical);
    }
    uint64_t support_bytes = 0;
    std::unordered_map<Pattern, uint64_t, PatternHash> frequent;
    for (const auto& [pattern, support] : supports) {
      support_bytes += support.ApproxBytes();
      if (support.HasEnoughSupport()) {
        frequent.emplace(pattern, support.Support());
      }
    }
    result.peak_state_bytes = std::max(
        result.peak_state_bytes,
        Replicated(current.Bytes(), options_) + support_bytes);
    if (result.peak_state_bytes > options_.memory_budget_bytes) {
      result.out_of_memory = true;
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    for (const auto& [pattern, support] : frequent) {
      result.pattern_counts.emplace(pattern, support);
    }
    if (frequent.empty() || level == max_edges) break;

    // Keep only embeddings of frequent patterns, then expand one edge.
    FlatLevel next;
    next.width = level + 1;
    for (size_t row = 0; row < current.NumRows(); ++row) {
      Subgraph subgraph = RebuildEdgeWord(graph_, current.Row(row));
      const CanonicalResult& canonical =
          cache.Canonicalize(subgraph.QuickPattern(graph_));
      if (!frequent.count(canonical.pattern)) continue;
      strategy.ComputeExtensions(graph_, subgraph, ctx, &extensions);
      for (const uint32_t extension : extensions) {
        next.Append(current.Row(row), extension);
      }
    }
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, Replicated(current.Bytes() + next.Bytes(), options_));
    if (result.peak_state_bytes > options_.memory_budget_bytes) {
      result.out_of_memory = true;
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    result.seconds +=
        next.NumRows() * options_.shuffle_micros_per_embedding * 1e-6;
    current = std::move(next);
  }
  result.count = result.pattern_counts.size();
  result.seconds += timer.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace fractal
