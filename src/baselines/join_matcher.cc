#include "baselines/join_matcher.h"

#include <algorithm>

#include "enumerate/extension.h"
#include "pattern/automorphism.h"
#include "util/timer.h"

namespace fractal {
namespace baselines {
namespace {

struct Relation {
  uint32_t width = 0;
  std::vector<VertexId> data;

  size_t NumRows() const { return width == 0 ? 0 : data.size() / width; }
  std::span<const VertexId> Row(size_t index) const {
    return {data.data() + index * width, width};
  }
  uint64_t Bytes() const { return data.size() * sizeof(VertexId); }
};

/// Symmetry conditions among plan steps both < `limit`.
bool ConditionsHold(const std::vector<SymmetryCondition>& conditions,
                    std::span<const VertexId> row, uint32_t limit) {
  for (const SymmetryCondition& condition : conditions) {
    if (condition.smaller >= limit || condition.larger >= limit) continue;
    if (row[condition.smaller] >= row[condition.larger]) return false;
  }
  return true;
}

}  // namespace

JoinResult JoinCountMatches(const Graph& graph, const Pattern& query,
                            const JoinOptions& options) {
  WallTimer timer;
  JoinResult result;
  // Reuse the library's matching-plan construction (ordering + symmetry
  // conditions); the execution model below is the join baseline's own.
  const PatternInducedStrategy plan(query);
  const auto& order = plan.plan_order();
  const auto& conditions = plan.plan_conditions();
  const uint32_t n = query.NumVertices();

  // Pattern adjacency in plan-step space.
  auto step_label = [&](uint32_t step) {
    return query.VertexLabel(order[step]);
  };
  auto steps_adjacent = [&](uint32_t a, uint32_t b) {
    return query.IsAdjacent(order[a], order[b]);
  };
  auto step_edge_label = [&](uint32_t a, uint32_t b) {
    return query.EdgeLabelBetween(order[a], order[b]);
  };

  Relation current;
  uint32_t start_step = 1;
  const bool triangle_start =
      options.use_triangle_seed && n >= 3 && steps_adjacent(0, 1) &&
      steps_adjacent(0, 2) && steps_adjacent(1, 2);
  if (triangle_start) {
    // Seed with the triangle relation (SEED's multi-edge join unit).
    current.width = 3;
    for (VertexId a = 0; a < graph.NumVertices(); ++a) {
      if (!graph.IsVertexActive(a)) continue;
      for (const VertexId b : graph.Neighbors(a)) {
        if (b <= a) continue;
        for (const VertexId c : graph.Neighbors(b)) {
          if (c <= b || !graph.IsAdjacent(a, c)) continue;
          // Assign {a,b,c} to plan steps 0..2 in every consistent way.
          VertexId tri[3] = {a, b, c};
          std::sort(tri, tri + 3);
          do {
            bool ok = true;
            for (uint32_t i = 0; i < 3 && ok; ++i) {
              if (graph.VertexLabel(tri[i]) != step_label(i)) ok = false;
            }
            for (uint32_t i = 0; i < 3 && ok; ++i) {
              for (uint32_t j = i + 1; j < 3 && ok; ++j) {
                const auto edge = graph.EdgeBetween(tri[i], tri[j]);
                if (!edge ||
                    graph.GetEdgeLabel(*edge) != step_edge_label(i, j)) {
                  ok = false;
                }
              }
            }
            if (ok && (!options.use_symmetry_breaking ||
                       ConditionsHold(conditions, {tri, 3}, 3))) {
              current.data.insert(current.data.end(), tri, tri + 3);
            }
          } while (std::next_permutation(tri, tri + 3));
        }
      }
    }
    start_step = 3;
  } else {
    current.width = 1;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (graph.IsVertexActive(v) && graph.VertexLabel(v) == step_label(0)) {
        current.data.push_back(v);
      }
    }
  }
  result.tuples_materialized += current.NumRows();
  result.peak_state_bytes = current.Bytes();

  for (uint32_t step = start_step; step < n; ++step) {
    // Required earlier steps adjacent to this one (>= 1 by plan order).
    std::vector<uint32_t> required;
    for (uint32_t earlier = 0; earlier < step; ++earlier) {
      if (steps_adjacent(earlier, step)) required.push_back(earlier);
    }
    FRACTAL_CHECK(!required.empty());

    Relation next;
    next.width = step + 1;
    for (size_t index = 0; index < current.NumRows(); ++index) {
      const auto row = current.Row(index);
      // Probe from the lowest-degree required match.
      uint32_t pivot = required[0];
      for (const uint32_t r : required) {
        if (graph.Degree(row[r]) < graph.Degree(row[pivot])) pivot = r;
      }
      for (const VertexId candidate : graph.Neighbors(row[pivot])) {
        if (graph.VertexLabel(candidate) != step_label(step)) continue;
        bool ok = true;
        for (uint32_t i = 0; i < step && ok; ++i) {
          if (row[i] == candidate) ok = false;
        }
        for (const uint32_t r : required) {
          if (!ok) break;
          const auto edge = graph.EdgeBetween(row[r], candidate);
          if (!edge ||
              graph.GetEdgeLabel(*edge) != step_edge_label(r, step)) {
            ok = false;
          }
        }
        if (!ok) continue;
        // Symmetry conditions touching this step.
        if (!options.use_symmetry_breaking) {
          next.data.insert(next.data.end(), row.begin(), row.end());
          next.data.push_back(candidate);
          continue;
        }
        for (const SymmetryCondition& condition : conditions) {
          if (condition.larger == step && condition.smaller < step &&
              candidate <= row[condition.smaller]) {
            ok = false;
            break;
          }
          if (condition.smaller == step && condition.larger < step &&
              candidate >= row[condition.larger]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        next.data.insert(next.data.end(), row.begin(), row.end());
        next.data.push_back(candidate);
      }
    }
    result.tuples_materialized += next.NumRows();
    result.peak_state_bytes = std::max(
        result.peak_state_bytes, current.Bytes() + next.Bytes());
    if (result.peak_state_bytes > options.memory_budget_bytes) {
      result.out_of_memory = true;
      result.seconds = timer.ElapsedSeconds();
      return result;
    }
    current = std::move(next);
  }
  result.seconds +=
      result.tuples_materialized * options.shuffle_micros_per_tuple * 1e-6 +
      options.fixed_overhead_seconds;
  if (options.use_symmetry_breaking) {
    result.count = current.NumRows();
  } else {
    // Deduplicate at the end: every match was materialized once per
    // automorphism of the query.
    const uint64_t automorphisms = Automorphisms(query).size();
    FRACTAL_CHECK(current.NumRows() % automorphisms == 0);
    result.count = current.NumRows() / automorphisms;
  }
  result.seconds += timer.ElapsedSeconds();
  return result;
}

JoinResult JoinCountTriangles(const Graph& graph, const JoinOptions& options) {
  return JoinCountMatches(graph, Pattern::Clique(3), options);
}

}  // namespace baselines
}  // namespace fractal
