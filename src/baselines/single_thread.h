// Tuned single-thread baselines for the COST analysis (paper §5.2.4,
// Fig. 18/20b: Gtries for motifs/cliques/queries, Grami for FSM, Neo4j's
// built-in triangle counting, KClist for optimized cliques, and Doulion
// for sampled triangles). These are independent tight-loop implementations:
// no fractoid machinery, no work stealing, no telemetry — the "efficient
// single-thread implementation" a parallel system must beat.
#ifndef FRACTAL_BASELINES_SINGLE_THREAD_H_
#define FRACTAL_BASELINES_SINGLE_THREAD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace fractal {
namespace baselines {

/// Neo4j-style triangle counting: forward-adjacency sorted intersection.
uint64_t TunedTriangleCount(const Graph& graph);

/// KClist [Danisch et al. 2018]: k-clique counting on the degeneracy-ordered
/// DAG with per-level candidate intersection.
uint64_t TunedCliqueCount(const Graph& graph, uint32_t k);

/// Gtries-style motif counting: canonical-extension DFS with quick-pattern
/// memoized canonicalization.
std::unordered_map<Pattern, uint64_t, PatternHash> TunedMotifCounts(
    const Graph& graph, uint32_t k);

/// Gtries-style subgraph query counting: symmetry-broken matching DFS.
uint64_t TunedQueryCount(const Graph& graph, const Pattern& query);

/// Grami-style FSM: level-wise pattern-growth DFS with MNI domains.
/// Returns frequent canonical patterns with exact supports.
std::unordered_map<Pattern, uint64_t, PatternHash> TunedFsm(
    const Graph& graph, uint32_t min_support, uint32_t max_edges);

/// Doulion [Tsourakakis et al. 2009]: triangle estimate by sparsifying each
/// edge with probability p and scaling the count by 1/p^3.
uint64_t DoulionTriangleEstimate(const Graph& graph, double p, uint64_t seed);

}  // namespace baselines
}  // namespace fractal

#endif  // FRACTAL_BASELINES_SINGLE_THREAD_H_
