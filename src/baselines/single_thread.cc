#include "baselines/single_thread.h"

#include <algorithm>
#include <functional>

#include "enumerate/extension.h"
#include "enumerate/subgraph.h"
#include "pattern/canonical.h"
#include "util/random.h"

namespace fractal {
namespace baselines {
namespace {

/// Degeneracy (smallest-last) vertex ordering; rank[v] = position.
std::vector<uint32_t> DegeneracyRank(const Graph& graph) {
  const uint32_t n = graph.NumVertices();
  std::vector<uint32_t> degree(n), rank(n, 0);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket queue.
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<uint8_t> removed(n, 0);
  uint32_t position = 0;
  uint32_t current = 0;
  while (position < n) {
    while (current <= max_degree && buckets[current].empty()) ++current;
    if (current > max_degree) break;
    const VertexId v = buckets[current].back();
    buckets[current].pop_back();
    if (removed[v] || degree[v] != current) {
      // Stale entry: re-bucket if needed.
      if (!removed[v] && degree[v] < current) {
        buckets[degree[v]].push_back(v);
        current = degree[v];
      }
      continue;
    }
    removed[v] = 1;
    rank[v] = position++;
    for (const VertexId u : graph.Neighbors(v)) {
      if (!removed[u] && degree[u] > 0) {
        --degree[u];
        buckets[degree[u]].push_back(u);
        if (degree[u] < current) current = degree[u];
      }
    }
  }
  return rank;
}

}  // namespace

uint64_t TunedTriangleCount(const Graph& graph) {
  // Forward adjacency by vertex id: for each edge (u, v) with u < v, count
  // common forward neighbors via two-pointer merge.
  uint64_t count = 0;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    const auto u_neighbors = graph.Neighbors(u);
    for (const VertexId v : u_neighbors) {
      if (v <= u) continue;
      const auto v_neighbors = graph.Neighbors(v);
      auto i = std::upper_bound(u_neighbors.begin(), u_neighbors.end(), v);
      auto j = std::upper_bound(v_neighbors.begin(), v_neighbors.end(), v);
      while (i != u_neighbors.end() && j != v_neighbors.end()) {
        if (*i == *j) {
          ++count;
          ++i;
          ++j;
        } else if (*i < *j) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return count;
}

uint64_t TunedCliqueCount(const Graph& graph, uint32_t k) {
  if (k == 1) return graph.NumActiveVertices();
  if (k == 2) return graph.NumEdges();
  const std::vector<uint32_t> rank = DegeneracyRank(graph);
  // DAG adjacency: out-neighbors by increasing degeneracy rank.
  std::vector<std::vector<VertexId>> out(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const VertexId u : graph.Neighbors(v)) {
      if (rank[u] > rank[v]) out[v].push_back(u);
    }
    std::sort(out[v].begin(), out[v].end());
  }
  uint64_t count = 0;
  std::vector<VertexId> scratch;
  // Recursive candidate-set intersection over the DAG.
  std::function<void(const std::vector<VertexId>&, uint32_t)> expand =
      [&](const std::vector<VertexId>& candidates, uint32_t remaining) {
        if (remaining == 0) {
          ++count;
          return;
        }
        for (const VertexId v : candidates) {
          if (remaining == 1) {
            ++count;
            continue;
          }
          scratch.clear();
          std::set_intersection(candidates.begin(), candidates.end(),
                                out[v].begin(), out[v].end(),
                                std::back_inserter(scratch));
          if (scratch.size() + 1 >= remaining) {
            std::vector<VertexId> next = scratch;
            expand(next, remaining - 1);
          }
        }
      };
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!graph.IsVertexActive(v)) continue;
    expand(out[v], k - 1);
  }
  return count;
}

std::unordered_map<Pattern, uint64_t, PatternHash> TunedMotifCounts(
    const Graph& graph, uint32_t k) {
  std::unordered_map<Pattern, uint64_t, PatternHash> counts;
  VertexInducedStrategy strategy;
  ExtensionContext ctx;
  CanonicalPatternCache cache;
  Subgraph subgraph;
  std::vector<std::vector<uint32_t>> scratch(k + 1);
  std::function<void(uint32_t)> recurse = [&](uint32_t depth) {
    if (depth == k) {
      ++counts[cache.Canonicalize(subgraph.QuickPattern(graph)).pattern];
      return;
    }
    auto& extensions = scratch[depth];
    strategy.ComputeExtensions(graph, subgraph, ctx, &extensions);
    const std::vector<uint32_t> local = extensions;
    for (const uint32_t extension : local) {
      subgraph.PushVertexInduced(graph, extension);
      recurse(depth + 1);
      subgraph.Pop();
    }
  };
  recurse(0);
  return counts;
}

uint64_t TunedQueryCount(const Graph& graph, const Pattern& query) {
  const PatternInducedStrategy strategy(query);
  ExtensionContext ctx;
  Subgraph subgraph;
  uint64_t count = 0;
  const uint32_t target = query.NumVertices();
  std::function<void(uint32_t)> recurse = [&](uint32_t depth) {
    if (depth == target) {
      ++count;
      return;
    }
    std::vector<uint32_t> extensions;
    strategy.ComputeExtensions(graph, subgraph, ctx, &extensions);
    for (const uint32_t extension : extensions) {
      strategy.Apply(graph, extension, &subgraph);
      recurse(depth + 1);
      strategy.Undo(graph, &subgraph);
    }
  };
  recurse(0);
  return count;
}

std::unordered_map<Pattern, uint64_t, PatternHash> TunedFsm(
    const Graph& graph, uint32_t min_support, uint32_t max_edges) {
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  CanonicalPatternCache cache;
  // Domain maps per canonical pattern, rebuilt per level (pattern growth).
  struct Domains {
    std::vector<std::unordered_map<VertexId, bool>> sets;
  };
  std::unordered_map<Pattern, uint64_t, PatternHash> frequent_all;
  std::unordered_map<Pattern, uint64_t, PatternHash> frequent_level;

  Subgraph subgraph;
  for (uint32_t level = 1; level <= max_edges; ++level) {
    std::unordered_map<Pattern, std::vector<std::unordered_map<VertexId, bool>>,
                       PatternHash>
        domains;
    // Enumerate all level-edge subgraphs whose (level-1)-prefix pattern was
    // frequent (anti-monotone pruning).
    std::function<void(uint32_t)> recurse = [&](uint32_t depth) {
      if (depth > 0) {
        const CanonicalResult& canonical =
            cache.Canonicalize(subgraph.QuickPattern(graph));
        if (depth < level) {
          if (depth >= 1 && !frequent_all.count(canonical.pattern) &&
              depth < level) {
            // Prefix pattern infrequent: prune (only from level 2 on).
            if (level > 1) return;
          }
        } else {
          auto& pattern_domains = domains[canonical.pattern];
          pattern_domains.resize(subgraph.NumVertices());
          for (uint32_t i = 0; i < subgraph.NumVertices(); ++i) {
            pattern_domains[canonical.orbit[canonical.permutation[i]]]
                           [subgraph.VertexAt(i)] = true;
          }
          return;
        }
      }
      std::vector<uint32_t> extensions;
      strategy.ComputeExtensions(graph, subgraph, ctx, &extensions);
      for (const uint32_t extension : extensions) {
        subgraph.PushEdgeInduced(graph, extension);
        recurse(depth + 1);
        subgraph.Pop();
      }
    };
    recurse(0);

    frequent_level.clear();
    for (const auto& [pattern, pattern_domains] : domains) {
      uint64_t support = UINT64_MAX;
      bool any = false;
      for (const auto& domain : pattern_domains) {
        if (domain.empty()) continue;
        support = std::min<uint64_t>(support, domain.size());
        any = true;
      }
      if (any && support >= min_support) frequent_level[pattern] = support;
    }
    if (frequent_level.empty()) break;
    for (const auto& [pattern, support] : frequent_level) {
      frequent_all[pattern] = support;
    }
  }
  return frequent_all;
}

uint64_t DoulionTriangleEstimate(const Graph& graph, double p, uint64_t seed) {
  FRACTAL_CHECK(p > 0 && p <= 1.0);
  SplitMix64 rng(seed);
  // Sparsify: keep each edge with probability p.
  GraphBuilder builder;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    builder.AddVertex(graph.VertexLabel(v));
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    if (rng.NextDouble() < p) {
      const EdgeEndpoints& ends = graph.Endpoints(e);
      builder.AddEdge(ends.src, ends.dst, graph.GetEdgeLabel(e));
    }
  }
  const Graph sparse = std::move(builder).Build();
  const double scale = 1.0 / (p * p * p);
  return static_cast<uint64_t>(TunedTriangleCount(sparse) * scale + 0.5);
}

}  // namespace baselines
}  // namespace fractal
