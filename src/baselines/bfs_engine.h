// Arabesque-style BFS (level-synchronous) GPM engine: the first-generation
// general-purpose design the paper compares against. The engine materializes
// *every* embedding of each enumeration level before expanding to the next
// — the source of the intermediate-state explosion of Table 2 and the
// synchronization overheads of Figs 11-13/20a. Extension rules are shared
// with the library (identical result sets); the *execution model* is the
// baseline's.
//
// A memory budget models the OOM failures the paper reports for Arabesque
// and GraphFrames: when materialized state exceeds the budget the run stops
// and reports out_of_memory (counts are then invalid).
#ifndef FRACTAL_BASELINES_BFS_ENGINE_H_
#define FRACTAL_BASELINES_BFS_ENGINE_H_

#include <cstdint>
#include <unordered_map>

#include "enumerate/extension.h"
#include "graph/graph.h"
#include "pattern/pattern.h"

namespace fractal {
namespace baselines {

struct BfsOptions {
  /// Materialized-state budget; beyond it the engine reports OOM.
  uint64_t memory_budget_bytes = 1ull << 31;  // 2 GB
  /// Charge per-embedding canonicalization without quick-pattern caching
  /// (MRSUB-style): slows pattern aggregation dramatically.
  bool disable_pattern_cache = false;
  /// Simulated per-level synchronization/shuffle cost in microseconds per
  /// materialized embedding (models the BSP shuffle between supersteps).
  double shuffle_micros_per_embedding = 0.0;
  /// Accounting multiplier on materialized state: MapReduce-style engines
  /// (MRSUB) replicate candidate lists across the shuffle before reduction.
  double state_replication = 1.0;
};

struct BfsResult {
  bool out_of_memory = false;
  uint64_t count = 0;  // embeddings at the final level
  std::unordered_map<Pattern, uint64_t, PatternHash> pattern_counts;
  uint64_t peak_state_bytes = 0;  // max materialized level size
  double seconds = 0;
};

/// Level-synchronous engine over one input graph.
class BfsEngine {
 public:
  explicit BfsEngine(const Graph& graph, BfsOptions options = {})
      : graph_(graph), options_(options) {}

  /// All connected induced k-vertex subgraphs (no aggregation).
  BfsResult CountVertexInduced(uint32_t k);

  /// Motif counting: patterns of all k-vertex induced subgraphs.
  BfsResult Motifs(uint32_t k);

  /// k-cliques via level filtering (Arabesque's cliques program).
  BfsResult Cliques(uint32_t k);

  /// Matches of `query` (edge-grown, canonical edge words, final
  /// isomorphism check) — Arabesque's edge-induced querying, the reason it
  /// OOMs on larger queries in Fig. 15.
  BfsResult Query(const Pattern& query);

  /// FSM with MNI support; returns frequent pattern count in `count` and
  /// patterns in `pattern_counts` (value = support).
  BfsResult Fsm(uint32_t min_support, uint32_t max_edges);

 private:
  const Graph& graph_;
  BfsOptions options_;
};

}  // namespace baselines
}  // namespace fractal

#endif  // FRACTAL_BASELINES_BFS_ENGINE_H_
