// ScaleMine-style two-phase FSM (paper §5.1, reference [1]): phase 1 builds
// an approximate view of the search space by sampling embeddings (the paper
// notes this phase "can be quite expensive especially when there is less
// overall work"); phase 2 mines exactly which patterns are frequent but —
// unlike Fractal — does not retain exact support counts: domain counting
// stops as soon as a pattern provably reaches the threshold, so reported
// supports are clamped at the threshold ("approximate counts").
#ifndef FRACTAL_BASELINES_SCALEMINE_LIKE_H_
#define FRACTAL_BASELINES_SCALEMINE_LIKE_H_

#include <cstdint>
#include <unordered_map>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace fractal {
namespace baselines {

struct ScaleMineOptions {
  /// Phase-1 sampling effort: random embedding walks performed per level.
  uint32_t sample_walks = 20000;
  uint64_t seed = 7;
};

struct ScaleMineResult {
  /// Frequent patterns; support values are clamped at the threshold
  /// (the pattern set matches exact FSM, the counts are approximate).
  std::unordered_map<Pattern, uint64_t, PatternHash> frequent;
  double phase1_seconds = 0;
  double phase2_seconds = 0;
  double seconds = 0;
};

ScaleMineResult RunScaleMineFsm(const Graph& graph, uint32_t min_support,
                                uint32_t max_edges,
                                const ScaleMineOptions& options = {});

}  // namespace baselines
}  // namespace fractal

#endif  // FRACTAL_BASELINES_SCALEMINE_LIKE_H_
