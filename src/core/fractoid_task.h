// FractoidStepTask: the application side of one fractal step, plugged into
// the runtime's Cluster/Worker layer through the StepTask interface.
// Implements Algorithm 1 — the recursive DFS over subgraph enumerators, one
// enumerator per extension level, reused across siblings — plus the
// primitive pipeline (expand / filter / aggregation-filter / aggregate) and
// the thread-local aggregation accumulators that are merged at the step
// barrier. Thread lifecycle, partitioning, and stealing live in
// `runtime/cluster.*` / `runtime/worker.*`, not here.
#ifndef FRACTAL_CORE_FRACTOID_TASK_H_
#define FRACTAL_CORE_FRACTOID_TASK_H_

#include <memory>
#include <vector>

#include "core/computation.h"
#include "core/executor.h"
#include "core/fractoid.h"
#include "core/step.h"
#include "runtime/worker.h"
#include "util/alloc_guard.h"
#include "util/hot_annotations.h"

namespace fractal {

class FractoidStepTask : public StepTask {
 public:
  /// Prepares one step execution attempt across `total_threads` threads.
  /// `completed[i]` is the result of workflow aggregation primitive i (or
  /// null); `sink` is the optional streaming output of the final step.
  FractoidStepTask(const Fractoid& fractoid, const StepPlan& plan,
                   bool is_final, const ExecutionConfig& config,
                   uint32_t total_threads, const SubgraphSink* sink,
                   std::vector<const AggregationStorageBase*> completed);
  ~FractoidStepTask() override;

  /// Number of E primitives in the step (the frame-stack depth).
  uint32_t num_levels() const { return num_levels_; }

  /// Aggregation indices this step computes.
  const std::vector<uint32_t>& new_aggregates() const {
    return new_aggregates_;
  }

  // --- StepTask interface (called by the runtime on its threads) ----------
  FRACTAL_HOT void DrainRoots(ThreadContext& t,
                              std::vector<uint32_t> roots) override;
  FRACTAL_HOT void ProcessStolen(
      ThreadContext& t, const SubgraphEnumerator::StolenWork& work) override;
  void FinishThread(ThreadContext& t) override;

  /// Everything the step produced besides telemetry, merged across threads.
  /// Only valid after the step barrier (Cluster::RunStep returned).
  struct Output {
    uint64_t subgraph_count = 0;
    std::vector<Subgraph> collected;
    uint64_t peak_state_bytes = 0;
    std::vector<std::shared_ptr<AggregationStorageBase>> merged;  // by slot
  };
  Output MergeOutputs();

 private:
  /// Application state of one execution thread for this step attempt.
  struct CoreState {
    Subgraph subgraph;
    std::unique_ptr<Computation> computation;
    // Expansion buffers come from the computation's ScratchArena (leased in
    // Process, recycled through SubgraphEnumerator::Refill's swap), so the
    // DFS performs no per-level heap allocation in steady state.
    std::vector<uint64_t> frame_bytes;  // per E-depth

    // Thread-local accumulators for the step's new aggregations, indexed
    // by storage slot (see storage_slots_).
    std::vector<std::unique_ptr<AggregationStorageBase>> storages;

    uint64_t local_count = 0;  // subgraphs reaching the end of a final step
    std::vector<Subgraph> collected;
    uint64_t state_bytes = 0;
    uint64_t peak_state_bytes = 0;

    // Task-scoped double buffers, used only with lineage tracking
    // (ThreadContext::lineage != null): one fractoid task's aggregation /
    // count / collection output is staged here and folded into the
    // committed fields above by CommitTask, immediately before the ledger
    // completion stamp. The committed state therefore contains exactly the
    // watermarked tasks, so a salvage pass can retain it verbatim while an
    // uncommitted task's scratch is dropped with DiscardTaskScratch.
    std::vector<std::unique_ptr<AggregationStorageBase>> task_storages;
    uint64_t task_count = 0;
    std::vector<Subgraph> task_collected;
    // Extension tests already flushed into per-step stats by FinishThread.
    // Stats must carry the per-attempt delta because CoreStates (and their
    // Computations) are retained across salvage passes of one task.
    uint64_t tests_flushed = 0;
  };

  FRACTAL_HOT void DrainFrame(ThreadContext& t, CoreState& s,
                              SubgraphEnumerator& frame);
  FRACTAL_HOT void Process(ThreadContext& t, CoreState& s, uint32_t index);
  FRACTAL_HOT void SinkVisit(ThreadContext& t, CoreState& s);

  /// DrainRoots with lineage tracking: one ledger task per root extension,
  /// committed (or discarded) at its subtree boundary. On a salvage pass
  /// the roots are replay indices routed through ProcessReplayRoot.
  FRACTAL_HOT void DrainRootsTracked(ThreadContext& t, CoreState& s,
                                     std::vector<uint32_t> roots);
  /// Re-executes one salvaged descriptor (LineageLedger::replay_root) as a
  /// tracked task. The descriptor's own (prefix, extension) is applied
  /// directly, bypassing the exclusion check — it IS the replayed work.
  FRACTAL_HOT void ProcessReplayRoot(ThreadContext& t, CoreState& s,
                                     uint32_t replay_index, uint64_t task_id);
  /// Folds the task scratch into the committed state, then stamps the
  /// ledger: the completion watermark is written only after the results it
  /// covers are durable in this thread's committed CoreState.
  void CommitTask(ThreadContext& t, CoreState& s, uint64_t task_id,
                  uint64_t units_before);
  /// Drops the uncommitted task scratch (this worker crashed mid-task).
  static void DiscardTaskScratch(CoreState& s);

  /// Mode for the per-extension AllocGuard scope: the global mode once the
  /// thread has consumed its per-step warm-up (scratch pools and recycled
  /// buffers start cold every step attempt), kOff before that.
  FRACTAL_HOT static AllocGuard::Mode GuardModeFor(const ThreadContext& t) {
    const AllocGuard::Mode mode = AllocGuard::GlobalMode();
    if (mode == AllocGuard::Mode::kOff) return mode;
    return t.stats.work_units > AllocGuard::warmup_units()
               ? mode
               : AllocGuard::Mode::kOff;
  }

  const Fractoid& fractoid_;
  const Graph& graph_;
  const ExtensionStrategy& strategy_;
  const StepPlan plan_;
  const bool is_final_;
  const ExecutionConfig& config_;
  const SubgraphSink* sink_;  // optional streaming output (final step only)
  // completed_[i] = result of workflow aggregation primitive i (or null).
  std::vector<const AggregationStorageBase*> completed_;

  uint32_t num_levels_ = 0;
  std::vector<int32_t> storage_slots_;
  std::vector<uint32_t> new_aggregates_;

  std::vector<std::unique_ptr<CoreState>> states_;  // by global core id
};

}  // namespace fractal

#endif  // FRACTAL_CORE_FRACTOID_TASK_H_
