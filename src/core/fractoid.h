// Fractoid: the state object of a Fractal application (paper §3.1). A
// fractoid couples an input graph, an extension strategy (vertex-, edge- or
// pattern-induced) and a workflow of primitives; the workflow operators
// (Fig. 4) derive new fractoids without executing anything. Output operators
// (Fig. 5 — here CountSubgraphs / CollectSubgraphs / AggregationResult via
// Execute) trigger compilation into fractal steps and execution.
//
// Fractoids are cheap immutable values; deriving shares the graph, the
// strategy, and the cached aggregation results of already-executed steps
// (paper §4.1: W4 aggregation results are reused, never recomputed).
#ifndef FRACTAL_CORE_FRACTOID_H_
#define FRACTAL_CORE_FRACTOID_H_

#include <memory>
#include <string>
#include <vector>

#include "core/computation.h"
#include "core/execution_types.h"
#include "core/primitives.h"
#include "enumerate/extension.h"
#include "graph/graph.h"

namespace fractal {

class Fractoid {
 public:
  /// Builds a fractoid over `graph` with the given extension strategy.
  /// Usually obtained from FractalGraph (context.h) rather than directly.
  Fractoid(std::shared_ptr<const Graph> graph,
           std::shared_ptr<const ExtensionStrategy> strategy);

  // --- Workflow operators (Fig. 4) ---------------------------------------

  /// W1: appends `depth` extension (E) primitives.
  Fractoid Expand(uint32_t depth = 1) const;

  /// W3: appends a local filter (F) primitive.
  Fractoid Filter(LocalFilterFn filter) const;

  /// W4: appends an aggregation-reading filter (a synchronization point).
  /// The typed predicate receives the completed aggregation previously
  /// registered under `name` (the nearest preceding Aggregate call).
  template <typename K, typename V, typename Hash = std::hash<K>,
            typename Predicate>
  Fractoid FilterByAggregation(const std::string& name,
                               Predicate filter) const {
    AggregationFilterFn erased =
        [filter = std::move(filter)](const Subgraph& subgraph,
                                     Computation& comp,
                                     const AggregationStorageBase& storage) {
          return filter(subgraph, comp, TypedStorage<K, V, Hash>(storage));
        };
    return WithAggregationFilter(name, std::move(erased));
  }

  /// W2: appends an aggregation (A) primitive named `name`.
  template <typename K, typename V, typename Hash = std::hash<K>>
  Fractoid Aggregate(
      const std::string& name,
      typename AggregationStorage<K, V, Hash>::KeyFn key_fn,
      typename AggregationStorage<K, V, Hash>::ValueFn value_fn,
      typename AggregationStorage<K, V, Hash>::ReduceFn reduce_fn,
      typename AggregationStorage<K, V, Hash>::PostFilterFn post_filter =
          nullptr) const {
    auto spec = std::make_shared<AggregationSpec<K, V, Hash>>(
        name, std::move(key_fn), std::move(value_fn), std::move(reduce_fn),
        std::move(post_filter));
    return WithAggregate(std::move(spec));
  }

  /// W5: chains the current workflow fragment `times` more times
  /// (Explore(0) is the identity). Keeps iterative applications concise —
  /// e.g. cliques: vfractoid.Expand(1).Filter(c).Explore(k - 1).
  Fractoid Explore(uint32_t times) const;

  // --- Output operators (Fig. 5) ------------------------------------------

  /// Compiles, executes all (non-cached) steps and returns everything.
  /// Implemented in executor.cc.
  ExecutionResult Execute(const ExecutionConfig& config = {}) const;

  /// Number of subgraphs reaching the end of the workflow.
  uint64_t CountSubgraphs(const ExecutionConfig& config = {}) const;

  /// The subgraphs themselves (sets collect_subgraphs).
  std::vector<Subgraph> CollectSubgraphs(
      const ExecutionConfig& config = {}) const;

  /// Streams every result subgraph to `sink` as it is found (the paper's
  /// RDD output without materialization). `sink` must be thread-safe; the
  /// reference is only valid during the call. Returns the total count.
  uint64_t ForEachSubgraph(const std::function<void(const Subgraph&)>& sink,
                           const ExecutionConfig& config = {}) const;

  // --- Introspection -------------------------------------------------------

  const std::vector<Primitive>& primitives() const { return primitives_; }
  const std::shared_ptr<const Graph>& graph() const { return graph_; }
  const std::shared_ptr<const ExtensionStrategy>& strategy() const {
    return strategy_;
  }
  const std::shared_ptr<ExecutionState>& state() const { return state_; }

  /// Number of E primitives (the maximum enumeration depth).
  uint32_t NumExpansions() const;

 private:
  Fractoid WithAggregationFilter(const std::string& name,
                                 AggregationFilterFn filter) const;
  Fractoid WithAggregate(
      std::shared_ptr<const AggregationSpecBase> spec) const;

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const ExtensionStrategy> strategy_;
  std::vector<Primitive> primitives_;
  std::shared_ptr<ExecutionState> state_;
};

}  // namespace fractal

#endif  // FRACTAL_CORE_FRACTOID_H_
