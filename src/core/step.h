// Fractal-step compilation (paper §4.1, Algorithm 2, FROM-SCRATCH-EXECUTION):
// a workflow is cut at synchronization points — aggregation-reading filters
// (W4) whose source aggregation is not yet computed — into steps. Steps
// accumulate their ancestors' primitives, so each step re-enumerates from
// scratch; aggregation results computed by earlier steps are reused.
#ifndef FRACTAL_CORE_STEP_H_
#define FRACTAL_CORE_STEP_H_

#include <cstdint>
#include <vector>

#include "core/primitives.h"

namespace fractal {

/// One fractal step: executes workflow primitives [0, end); the aggregation
/// primitives in [new_begin, end) are the ones this step computes (earlier
/// ones were computed by ancestor steps and are reused).
struct StepPlan {
  uint32_t new_begin = 0;
  uint32_t end = 0;
};

/// Implements Algorithm 2's step construction. The workflow must start with
/// an E primitive (every fractoid begins by extending the empty subgraph).
std::vector<StepPlan> CompileSteps(const std::vector<Primitive>& workflow);

}  // namespace fractal

#endif  // FRACTAL_CORE_STEP_H_
