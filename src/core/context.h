// FractalContext / FractalGraph: the entry points of a Fractal application
// (paper §3.1, Figs. 2-3). The context configures the simulated cluster; a
// fractal graph wraps an input graph and hands out fractoids:
//
//   FractalContext fctx(config);
//   FractalGraph graph = fctx.AdjacencyList(path);        // or FromGraph
//   Fractoid vfrac = graph.VFractoid();                    // B1
//   Fractoid efrac = graph.EFractoid();                    // B2
//   Fractoid pfrac = graph.PFractoid(pattern);             // B3
//
// Graph reduction (paper §4.3, Fig. 10) is exposed as VFilter/EFilter,
// returning a new FractalGraph over the materialized reduced graph.
#ifndef FRACTAL_CORE_CONTEXT_H_
#define FRACTAL_CORE_CONTEXT_H_

#include <memory>
#include <string>

#include "core/executor.h"
#include "core/fractoid.h"
#include "graph/graph_reduce.h"
#include "util/status.h"

namespace fractal {

class FractalGraph;

/// Configures and initializes the resources of a Fractal application
/// (paper C1). Owns the default ExecutionConfig used by fractoids created
/// through it.
class FractalContext {
 public:
  explicit FractalContext(ExecutionConfig config = {})
      : config_(std::move(config)) {}

  /// I1: loads a graph in the adjacency-list text format.
  StatusOr<FractalGraph> AdjacencyList(const std::string& path) const;

  /// Builds a fractal graph from an in-memory graph.
  FractalGraph FromGraph(Graph graph) const;

  const ExecutionConfig& config() const { return config_; }
  ExecutionConfig* mutable_config() { return &config_; }

 private:
  ExecutionConfig config_;
};

/// A (possibly reduced) input graph from which fractoids are derived.
/// Cheap to copy (shares the underlying immutable graph).
class FractalGraph {
 public:
  FractalGraph(std::shared_ptr<const Graph> graph, ExecutionConfig config)
      : graph_(std::move(graph)), config_(std::move(config)) {}

  /// B1: vertex-induced fractoid.
  Fractoid VFractoid() const;
  /// B2: edge-induced fractoid.
  Fractoid EFractoid() const;
  /// B3: pattern-induced fractoid guided by `pattern`.
  Fractoid PFractoid(Pattern pattern) const;

  /// Advanced (paper Appendix B): fractoid with a custom extension
  /// strategy, e.g. KClistStrategy for optimized clique listing.
  Fractoid CustomFractoid(
      std::shared_ptr<const ExtensionStrategy> strategy) const;

  /// R1: reduced fractal graph keeping only vertices passing the filter.
  FractalGraph VFilter(const VertexPredicate& keep) const;
  /// R2: reduced fractal graph keeping only edges passing the filter.
  FractalGraph EFilter(const EdgePredicate& keep) const;
  /// R1+R2 in one materialization pass.
  FractalGraph Reduce(const VertexPredicate& vertex_keep,
                      const EdgePredicate& edge_keep) const;

  const Graph& graph() const { return *graph_; }
  const std::shared_ptr<const Graph>& shared_graph() const { return graph_; }
  const ExecutionConfig& config() const { return config_; }

 private:
  std::shared_ptr<const Graph> graph_;
  ExecutionConfig config_;
};

}  // namespace fractal

#endif  // FRACTAL_CORE_CONTEXT_H_
