#include "core/fractoid.h"

#include "core/executor.h"

namespace fractal {

Fractoid::Fractoid(std::shared_ptr<const Graph> graph,
                   std::shared_ptr<const ExtensionStrategy> strategy)
    : graph_(std::move(graph)),
      strategy_(std::move(strategy)),
      state_(std::make_shared<ExecutionState>()) {
  FRACTAL_CHECK(graph_ != nullptr);
  FRACTAL_CHECK(strategy_ != nullptr);
}

Fractoid Fractoid::Expand(uint32_t depth) const {
  Fractoid derived = *this;
  for (uint32_t i = 0; i < depth; ++i) {
    Primitive primitive;
    primitive.kind = Primitive::Kind::kExpand;
    derived.primitives_.push_back(std::move(primitive));
  }
  return derived;
}

Fractoid Fractoid::Filter(LocalFilterFn filter) const {
  FRACTAL_CHECK(filter != nullptr);
  Fractoid derived = *this;
  Primitive primitive;
  primitive.kind = Primitive::Kind::kLocalFilter;
  primitive.local_filter = std::move(filter);
  derived.primitives_.push_back(std::move(primitive));
  return derived;
}

Fractoid Fractoid::WithAggregationFilter(const std::string& name,
                                         AggregationFilterFn filter) const {
  Fractoid derived = *this;
  Primitive primitive;
  primitive.kind = Primitive::Kind::kAggregationFilter;
  primitive.source_name = name;
  primitive.aggregation_filter = std::move(filter);
  // Resolve the source now: the nearest preceding A primitive with the name.
  primitive.source_primitive = -1;
  for (int32_t i = static_cast<int32_t>(primitives_.size()) - 1; i >= 0; --i) {
    if (primitives_[i].kind == Primitive::Kind::kAggregate &&
        primitives_[i].aggregation->name() == name) {
      primitive.source_primitive = i;
      break;
    }
  }
  FRACTAL_CHECK(primitive.source_primitive >= 0)
      << "FilterByAggregation('" << name
      << "') has no preceding Aggregate with that name";
  derived.primitives_.push_back(std::move(primitive));
  return derived;
}

Fractoid Fractoid::WithAggregate(
    std::shared_ptr<const AggregationSpecBase> spec) const {
  Fractoid derived = *this;
  Primitive primitive;
  primitive.kind = Primitive::Kind::kAggregate;
  primitive.aggregation = std::move(spec);
  derived.primitives_.push_back(std::move(primitive));
  return derived;
}

Fractoid Fractoid::Explore(uint32_t times) const {
  Fractoid derived = *this;
  const std::vector<Primitive> fragment = primitives_;
  for (uint32_t i = 0; i < times; ++i) {
    // Aggregation-filter sources keep their absolute indices only within
    // the original fragment; re-resolve relative offsets per copy.
    const size_t base = derived.primitives_.size();
    for (const Primitive& primitive : fragment) {
      Primitive copy = primitive;
      if (copy.kind == Primitive::Kind::kAggregationFilter) {
        copy.source_primitive += static_cast<int32_t>(base);
      }
      derived.primitives_.push_back(std::move(copy));
    }
  }
  return derived;
}

// --- Output operators (Fig. 5): compile + execute via the executor. -------

ExecutionResult Fractoid::Execute(const ExecutionConfig& config) const {
  return ExecuteFractoid(*this, config);
}

// The convenience wrappers drop ExecutionResult::status, so they CHECK it:
// callers that inject faults (and can see ResourceExhausted) must use
// Execute() and handle the status themselves.
uint64_t Fractoid::CountSubgraphs(const ExecutionConfig& config) const {
  const ExecutionResult result = ExecuteFractoid(*this, config);
  FRACTAL_CHECK(result.status.ok()) << result.status;
  return result.num_subgraphs;
}

std::vector<Subgraph> Fractoid::CollectSubgraphs(
    const ExecutionConfig& config) const {
  ExecutionConfig collecting = config;
  collecting.collect_subgraphs = true;
  ExecutionResult result = ExecuteFractoid(*this, collecting);
  FRACTAL_CHECK(result.status.ok()) << result.status;
  return std::move(result.subgraphs);
}

uint64_t Fractoid::ForEachSubgraph(
    const std::function<void(const Subgraph&)>& sink,
    const ExecutionConfig& config) const {
  FRACTAL_CHECK(sink != nullptr);
  const ExecutionResult result = ExecuteFractoidStreaming(*this, config, sink);
  FRACTAL_CHECK(result.status.ok()) << result.status;
  return result.num_subgraphs;
}

uint32_t Fractoid::NumExpansions() const {
  uint32_t count = 0;
  for (const Primitive& primitive : primitives_) {
    if (primitive.kind == Primitive::Kind::kExpand) ++count;
  }
  return count;
}

}  // namespace fractal
