// Shared execution types: configuration, results, and the cached
// aggregation state a fractoid carries between executions (the paper's
// "fractoid holds ... any aggregation result required for computation").
#ifndef FRACTAL_CORE_EXECUTION_TYPES_H_
#define FRACTAL_CORE_EXECUTION_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "core/aggregation.h"
#include "enumerate/subgraph.h"
#include "runtime/fault.h"
#include "runtime/message_bus.h"
#include "runtime/query.h"
#include "runtime/telemetry.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fractal {

class Cluster;

/// How the executor responds to step failures (injected worker crashes).
/// The from-scratch execution model (paper §4) makes recovery a pure
/// re-execution: a failed step is discarded wholesale and re-run, so any
/// successful attempt produces bit-identical results.
struct RetryPolicy {
  /// What a retry re-executes after a worker crash.
  enum class Mode : uint8_t {
    /// Discard the failed step wholesale and re-run it (paper §4).
    kFromScratch,
    /// Partial recovery via the lineage ledger (runtime/lineage.h): keep
    /// the survivors' committed results and re-enumerate only the fractoid
    /// tasks the crashed worker left unfinished, partitioned across the
    /// survivors as synthetic roots. Falls back to kFromScratch when the
    /// crash is not salvageable (several workers died at once, or the
    /// salvage-pass budget below ran out). Results stay bit-identical to a
    /// fault-free run either way.
    kSalvage,
  };
  /// Total attempts per step (first try included). Must be >= 1. When the
  /// budget is exhausted the execution fails with a ResourceExhausted
  /// status in ExecutionResult::status instead of aborting. Salvage replay
  /// passes count as attempts.
  uint32_t max_attempts = 3;
  /// Sleep between attempts (doubled per attempt). 0 retries immediately.
  int64_t backoff_micros = 0;
  /// Mark crashed workers dead on the cluster so re-execution runs
  /// degraded on the surviving subset (instead of re-running on a worker
  /// that would just crash again deterministically). Salvage always
  /// excludes the crashed worker — its lost frontier is replayed on the
  /// survivors by construction.
  bool exclude_crashed_workers = true;
  /// Recovery mode; see Mode.
  Mode mode = Mode::kFromScratch;
  /// Cap on salvage replay passes per step (a crash during recovery starts
  /// another pass); past it the step falls back to a from-scratch retry.
  uint32_t max_salvage_passes = 8;
};

/// How a fractoid is executed on the simulated cluster (paper §4/5.2.2
/// work-stealing configurations map to the two stealing flags).
struct ExecutionConfig {
  /// Simulated worker processes (paper: machines/executors).
  uint32_t num_workers = 1;
  /// Execution threads ("cores") per worker.
  uint32_t threads_per_worker = 2;

  /// Optional injected persistent runtime (not owned). When set, the
  /// execution runs on this cluster — sharing its parked worker threads
  /// with other executions instead of spinning up an ephemeral cluster —
  /// and the cluster's topology overrides num_workers / threads_per_worker
  /// and the stealing flags. See runtime/cluster.h.
  Cluster* cluster = nullptr;

  /// WS_int: stealing between cores of the same worker.
  bool internal_work_stealing = true;
  /// WS_ext: stealing between workers through the message bus.
  bool external_work_stealing = true;

  /// Simulated network parameters for WS_ext.
  NetworkConfig network;

  /// When > 0 (and no cluster is injected), the ephemeral cluster logs
  /// step progress (work-unit throughput, steal rates) at this interval.
  int64_t progress_interval_ms = 0;

  /// When >= 0 (and no cluster is injected), the ephemeral cluster serves
  /// /statusz, /metricsz, /tracez, and /profilez on 127.0.0.1:<port> for
  /// the execution's lifetime (obs/exposition.h; 0 = ephemeral port).
  int statusz_port = -1;

  /// Collect matched subgraphs of the final step (otherwise only counted).
  bool collect_subgraphs = false;
  /// Cap on collected subgraphs (protects memory on huge result sets).
  uint64_t max_collected_subgraphs = UINT64_MAX;

  /// Reuse aggregations cached on the fractoid from earlier executions
  /// (paper §4.1: W4 aggregation results are never recomputed).
  bool reuse_cached_aggregations = true;

  /// Query control block of this execution (multi-tenant scheduling,
  /// DESIGN.md §12; not owned, may be null). When set, the executor checks
  /// cancellation/deadline at every step boundary, worker threads poll the
  /// cancel flag once per work unit, and an unwound execution resolves to
  /// kCancelled / kDeadlineExceeded in ExecutionResult::status. Wired
  /// automatically by ExecuteFractoidAsync; synchronous callers may point
  /// it at a stack-owned QueryControl to get a deadline without a
  /// scheduler. Must outlive the execution.
  QueryControl* query = nullptr;

  /// Fault injection for resilience testing (runtime/fault.h): a seeded,
  /// deterministic schedule of worker crashes, steal-service deaths,
  /// message drops/delays, and stragglers. The from-scratch execution
  /// model makes recovery trivial: a failed step is simply re-executed
  /// (the paper inherits this resilience from Spark's lineage; here the
  /// executor retries directly, per `retry`). Empty plan = no faults.
  FaultPlan fault_plan;
  /// Step re-execution policy after worker failures.
  RetryPolicy retry;

  uint32_t TotalThreads() const { return num_workers * threads_per_worker; }

  /// Checks the configuration before any thread is spawned: at least one
  /// worker and one thread per worker, the fault plan must target existing
  /// workers, and the retry policy must allow at least one attempt. Called
  /// at execution entry so misconfiguration fails fast with a message
  /// instead of crashing mid-step. External work stealing with a single
  /// worker is not an error here — it is normalized off (WS_ext needs a
  /// second worker; an explicit single-worker external-stealing Cluster is
  /// rejected by Cluster::Validate).
  [[nodiscard]] Status Validate() const;
};

/// Completed aggregation of one A-primitive occurrence. `spec` is kept for
/// identity checking when fractoid branches share cached state.
struct CompletedAggregation {
  const AggregationSpecBase* spec = nullptr;
  std::shared_ptr<AggregationStorageBase> storage;
};

/// Aggregation results cached across executions of derived fractoids.
/// Innermost lock of the core layer: nothing else is ever acquired while
/// `mu` is held.
struct ExecutionState {
  Mutex mu{"ExecutionState::mu"};
  std::unordered_map<uint32_t, CompletedAggregation> completed GUARDED_BY(mu);
  /// Single-execution guard: set for the duration of one execution over
  /// this state. Fractoids deriving from a common ancestor share one
  /// ExecutionState (that is what makes cached step aggregations work), so
  /// two executions over it concurrently would race on the cache; the
  /// executor turns that into kFailedPrecondition instead of corruption
  /// (see core/executor.h).
  std::atomic<bool> executing{false};
};

/// Everything one fractoid execution produced.
struct ExecutionResult {
  /// Overall outcome. Ok when every step completed (possibly after
  /// recovered retries); ResourceExhausted when a step kept failing past
  /// RetryPolicy::max_attempts; FailedPrecondition when no live workers
  /// remained or the fractoid's state was already mid-execution; Cancelled
  /// / DeadlineExceeded when the execution's QueryControl was cancelled or
  /// expired. On error the data fields below are incomplete and must not
  /// be consumed.
  Status status;
  /// Subgraphs reaching the end of the final step's pipeline.
  uint64_t num_subgraphs = 0;
  /// Collected subgraphs (when ExecutionConfig::collect_subgraphs).
  std::vector<Subgraph> subgraphs;
  /// Completed aggregations by A-primitive index.
  std::unordered_map<uint32_t, std::shared_ptr<AggregationStorageBase>>
      aggregations;
  /// Last A-primitive index per aggregation name.
  std::unordered_map<std::string, uint32_t> last_aggregate_by_name;
  /// Telemetry of all executed steps.
  ExecutionTelemetry telemetry;
  /// Peak enumerator-state bytes across threads (Fractal's intermediate
  /// state — contrast with the BFS baseline's embedding lists, Table 2).
  uint64_t peak_state_bytes = 0;
  /// Number of fractal steps the workflow compiled into / actually ran.
  uint32_t num_steps = 0;
  uint32_t steps_executed = 0;
  /// Step executions abandoned due to (injected) worker failures
  /// (recovered or not); equals failures.size().
  uint32_t steps_retried = 0;
  /// One record per abandoned step attempt: which worker crashed, why, and
  /// what the attempt cost (runtime/telemetry.h).
  std::vector<StepFailure> failures;
  /// Work units whose results survived a crash via the lineage ledger and
  /// were not re-executed (RetryPolicy::Mode::kSalvage only).
  uint64_t units_salvaged = 0;
  /// Work units re-executed during salvage replay passes. With a mid-step
  /// crash this is far below the from-scratch re-execution cost (the
  /// recovery acceptance bound in tests/resilience_test.cc).
  uint64_t units_replayed = 0;
  /// Salvage replay passes run across all steps (0 under kFromScratch).
  uint32_t salvage_passes = 0;

  /// Typed view of the final aggregation registered under `name`.
  template <typename K, typename V, typename Hash = std::hash<K>>
  const AggregationStorage<K, V, Hash>& Aggregation(
      const std::string& name) const {
    const auto name_it = last_aggregate_by_name.find(name);
    FRACTAL_CHECK(name_it != last_aggregate_by_name.end())
        << "no aggregation named '" << name << "'";
    const auto it = aggregations.find(name_it->second);
    FRACTAL_CHECK(it != aggregations.end());
    return TypedStorage<K, V, Hash>(*it->second);
  }
};

}  // namespace fractal

#endif  // FRACTAL_CORE_EXECUTION_TYPES_H_
