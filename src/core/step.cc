#include "core/step.h"

#include "util/check.h"

namespace fractal {

std::vector<StepPlan> CompileSteps(const std::vector<Primitive>& workflow) {
  FRACTAL_CHECK(!workflow.empty()) << "empty workflow";
  FRACTAL_CHECK(workflow[0].kind == Primitive::Kind::kExpand)
      << "workflows must start with Expand";

  std::vector<StepPlan> steps;
  uint32_t previous_end = 0;
  for (uint32_t index = 0; index < workflow.size(); ++index) {
    const Primitive& primitive = workflow[index];
    if (primitive.kind != Primitive::Kind::kAggregationFilter) continue;
    FRACTAL_CHECK(primitive.source_primitive >= 0);
    const uint32_t source = static_cast<uint32_t>(primitive.source_primitive);
    // Synchronization point: the filter reads an aggregation not yet
    // computed by an already-emitted step.
    if (source >= previous_end) {
      FRACTAL_CHECK(source < index);
      steps.push_back({previous_end, index});
      previous_end = index;
    }
  }
  steps.push_back({previous_end,
                   static_cast<uint32_t>(workflow.size())});
  return steps;
}

}  // namespace fractal
