#include "core/context.h"

#include "graph/graph_io.h"

namespace fractal {

StatusOr<FractalGraph> FractalContext::AdjacencyList(
    const std::string& path) const {
  auto graph = LoadAdjacencyListFile(path);
  if (!graph.ok()) return graph.status();
  return FractalGraph(std::make_shared<const Graph>(std::move(graph).value()),
                      config_);
}

FractalGraph FractalContext::FromGraph(Graph graph) const {
  return FractalGraph(std::make_shared<const Graph>(std::move(graph)),
                      config_);
}

Fractoid FractalGraph::VFractoid() const {
  // Factory honors FRACTAL_REFERENCE_EXTENSIONS (A/B escape hatch).
  return Fractoid(graph_, MakeVertexInducedStrategy());
}

Fractoid FractalGraph::EFractoid() const {
  return Fractoid(graph_, MakeEdgeInducedStrategy());
}

Fractoid FractalGraph::PFractoid(Pattern pattern) const {
  return Fractoid(graph_,
                  std::make_shared<PatternInducedStrategy>(std::move(pattern)));
}

Fractoid FractalGraph::CustomFractoid(
    std::shared_ptr<const ExtensionStrategy> strategy) const {
  return Fractoid(graph_, std::move(strategy));
}

FractalGraph FractalGraph::VFilter(const VertexPredicate& keep) const {
  return Reduce(keep, nullptr);
}

FractalGraph FractalGraph::EFilter(const EdgePredicate& keep) const {
  return Reduce(nullptr, keep);
}

FractalGraph FractalGraph::Reduce(const VertexPredicate& vertex_keep,
                                  const EdgePredicate& edge_keep) const {
  return FractalGraph(std::make_shared<const Graph>(
                          ReduceGraph(*graph_, vertex_keep, edge_keep)),
                      config_);
}

}  // namespace fractal
