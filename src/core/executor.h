// Parallel fractoid execution on the simulated cluster (paper §4):
//   * Algorithm 2: the workflow is compiled into fractal steps; each step
//     re-enumerates from scratch (DFS), reusing aggregations computed by
//     earlier steps. This driver (executor.cc) compiles the plans, binds
//     cached aggregation storages, submits one step task per step, and
//     merges/publishes the results.
//   * Algorithm 1: the per-step DFS over subgraph enumerators lives in
//     core/fractoid_task.* (the application side of a step).
//   * §4.2: thread lifecycle, root-extension partitioning, and the
//     hierarchical WS_int/WS_ext work stealing live in the persistent
//     runtime layer, runtime/cluster.* / runtime/worker.*. Executions use
//     an ephemeral cluster by default, or share a long-lived one injected
//     through ExecutionConfig::cluster.
#ifndef FRACTAL_CORE_EXECUTOR_H_
#define FRACTAL_CORE_EXECUTOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/execution_types.h"
#include "core/fractoid.h"
#include "runtime/query_scheduler.h"

namespace fractal {

/// Executes all (non-cached) steps of `fractoid` under `config`.
/// Thread-safe with respect to distinct fractoids (they interleave on a
/// shared cluster via the step-admission gate, DESIGN.md §12). Executing
/// the same fractoid — or two fractoids sharing cached execution state,
/// i.e. derived from a common ancestor — concurrently is not supported and
/// returns kFailedPrecondition instead of corrupting the cached step
/// aggregations. [[nodiscard]]: dropping the result discards the subgraph
/// counts/aggregations the run computed.
///
/// This synchronous entry point is the same query-aware engine that backs
/// ExecuteFractoidAsync: set ExecutionConfig::query to get cooperative
/// cancellation and a deadline without a scheduler.
[[nodiscard]] ExecutionResult ExecuteFractoid(const Fractoid& fractoid,
                                              const ExecutionConfig& config);

/// Streaming variant of the O1 output operator: `sink` is invoked for every
/// subgraph reaching the end of the final step, from the execution threads
/// as results are found (no materialization). The sink MUST be thread-safe;
/// the Subgraph reference is only valid during the call.
using SubgraphSink = std::function<void(const Subgraph&)>;
[[nodiscard]] ExecutionResult ExecuteFractoidStreaming(
    const Fractoid& fractoid, const ExecutionConfig& config,
    const SubgraphSink& sink);

/// Joinable/cancellable handle to an asynchronous fractoid execution
/// (ExecuteFractoidAsync). Thin core-level wrapper over the runtime's
/// ScheduledQuery: adds the typed ExecutionResult. Copyable (shared
/// handle); must be joined — or dropped — before the scheduler's cluster
/// is destroyed.
class QueryHandle {
 public:
  /// Blocks until the query resolves, then returns its ExecutionResult
  /// (valid as long as any copy of the handle lives). The result's status
  /// mirrors ScheduledQuery::Join: kCancelled / kDeadlineExceeded when the
  /// query was cancelled or expired, even before it started running.
  const ExecutionResult& Wait();

  /// Requests cooperative cancellation (idempotent).
  void Cancel() { ticket_->Cancel(); }

  bool done() const { return ticket_->done(); }
  uint64_t id() const { return ticket_->control().id; }
  const std::string& name() const { return ticket_->control().name; }
  const QueryControl& control() const { return ticket_->control(); }

 private:
  friend StatusOr<QueryHandle> ExecuteFractoidAsync(
      const Fractoid& fractoid, const ExecutionConfig& config,
      QueryScheduler& scheduler, QueryScheduler::Submission submission);

  /// The body fills `result` before the ticket resolves; `once` covers the
  /// no-body paths (cancelled while queued, scheduler shutdown) where Wait
  /// itself back-fills the status exactly once.
  struct Slot {
    std::once_flag once;
    ExecutionResult result;
  };

  QueryHandle(std::shared_ptr<ScheduledQuery> ticket,
              std::shared_ptr<Slot> slot)
      : ticket_(std::move(ticket)), slot_(std::move(slot)) {}

  std::shared_ptr<ScheduledQuery> ticket_;
  std::shared_ptr<Slot> slot_;
};

/// Submits `fractoid` to `scheduler` for asynchronous execution and returns
/// a joinable/cancellable handle, or kResourceExhausted when the
/// scheduler's admission queue is full (backpressure — back off and
/// resubmit). The fractoid must outlive the execution (keep it alive until
/// Wait returns or the scheduler is destroyed). `config.cluster` must be
/// null or the scheduler's own cluster; topology fields are overridden by
/// that cluster either way. `config.query` must be null — the scheduler
/// wires the control block.
[[nodiscard]] StatusOr<QueryHandle> ExecuteFractoidAsync(
    const Fractoid& fractoid, const ExecutionConfig& config,
    QueryScheduler& scheduler, QueryScheduler::Submission submission = {});

}  // namespace fractal

#endif  // FRACTAL_CORE_EXECUTOR_H_
