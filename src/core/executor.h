// Parallel fractoid execution on the simulated cluster (paper §4):
//   * Algorithm 2: the workflow is compiled into fractal steps; each step
//     re-enumerates from scratch (DFS), reusing aggregations computed by
//     earlier steps.
//   * Algorithm 1: within a step, every core runs a recursive DFS over
//     subgraph enumerators, one enumerator per extension level, reused
//     across siblings (bounded memory).
//   * §4.2: hierarchical work stealing — idle cores first steal from
//     enumerators of sibling cores in the same worker (WS_int), then issue
//     steal requests to other workers over the message bus (WS_ext), where
//     stolen work crosses the boundary serialized.
#ifndef FRACTAL_CORE_EXECUTOR_H_
#define FRACTAL_CORE_EXECUTOR_H_

#include "core/execution_types.h"
#include "core/fractoid.h"

namespace fractal {

/// Executes all (non-cached) steps of `fractoid` under `config`.
/// Thread-safe with respect to distinct fractoids; executing the same
/// fractoid concurrently is not supported.
ExecutionResult ExecuteFractoid(const Fractoid& fractoid,
                                const ExecutionConfig& config);

/// Streaming variant of the O1 output operator: `sink` is invoked for every
/// subgraph reaching the end of the final step, from the execution threads
/// as results are found (no materialization). The sink MUST be thread-safe;
/// the Subgraph reference is only valid during the call.
using SubgraphSink = std::function<void(const Subgraph&)>;
ExecutionResult ExecuteFractoidStreaming(const Fractoid& fractoid,
                                         const ExecutionConfig& config,
                                         const SubgraphSink& sink);

}  // namespace fractal

#endif  // FRACTAL_CORE_EXECUTOR_H_
