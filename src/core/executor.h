// Parallel fractoid execution on the simulated cluster (paper §4):
//   * Algorithm 2: the workflow is compiled into fractal steps; each step
//     re-enumerates from scratch (DFS), reusing aggregations computed by
//     earlier steps. This driver (executor.cc) compiles the plans, binds
//     cached aggregation storages, submits one step task per step, and
//     merges/publishes the results.
//   * Algorithm 1: the per-step DFS over subgraph enumerators lives in
//     core/fractoid_task.* (the application side of a step).
//   * §4.2: thread lifecycle, root-extension partitioning, and the
//     hierarchical WS_int/WS_ext work stealing live in the persistent
//     runtime layer, runtime/cluster.* / runtime/worker.*. Executions use
//     an ephemeral cluster by default, or share a long-lived one injected
//     through ExecutionConfig::cluster.
#ifndef FRACTAL_CORE_EXECUTOR_H_
#define FRACTAL_CORE_EXECUTOR_H_

#include "core/execution_types.h"
#include "core/fractoid.h"

namespace fractal {

/// Executes all (non-cached) steps of `fractoid` under `config`.
/// Thread-safe with respect to distinct fractoids; executing the same
/// fractoid concurrently is not supported. [[nodiscard]]: dropping the
/// result discards the subgraph counts/aggregations the run computed.
[[nodiscard]] ExecutionResult ExecuteFractoid(const Fractoid& fractoid,
                                              const ExecutionConfig& config);

/// Streaming variant of the O1 output operator: `sink` is invoked for every
/// subgraph reaching the end of the final step, from the execution threads
/// as results are found (no materialization). The sink MUST be thread-safe;
/// the Subgraph reference is only valid during the call.
using SubgraphSink = std::function<void(const Subgraph&)>;
[[nodiscard]] ExecutionResult ExecuteFractoidStreaming(
    const Fractoid& fractoid, const ExecutionConfig& config,
    const SubgraphSink& sink);

}  // namespace fractal

#endif  // FRACTAL_CORE_EXECUTOR_H_
