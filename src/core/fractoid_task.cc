#include "core/fractoid_task.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/lineage.h"
#include "util/check.h"

namespace fractal {

FractoidStepTask::FractoidStepTask(
    const Fractoid& fractoid, const StepPlan& plan, bool is_final,
    const ExecutionConfig& config, uint32_t total_threads,
    const SubgraphSink* sink,
    std::vector<const AggregationStorageBase*> completed)
    : fractoid_(fractoid),
      graph_(*fractoid.graph()),
      strategy_(*fractoid.strategy()),
      plan_(plan),
      is_final_(is_final),
      config_(config),
      sink_(sink),
      completed_(std::move(completed)) {
  const auto& workflow = fractoid_.primitives();
  num_levels_ = 0;
  for (uint32_t i = 0; i < plan_.end; ++i) {
    if (workflow[i].kind == Primitive::Kind::kExpand) ++num_levels_;
  }
  // Map each to-compute aggregation index to a storage slot.
  storage_slots_.assign(plan_.end, -1);
  for (uint32_t i = plan_.new_begin; i < plan_.end; ++i) {
    if (workflow[i].kind == Primitive::Kind::kAggregate) {
      storage_slots_[i] = static_cast<int32_t>(new_aggregates_.size());
      new_aggregates_.push_back(i);
    }
  }
  // Fresh per-thread state per step attempt: a crashed attempt's partial
  // accumulators are simply dropped with the task.
  for (uint32_t core = 0; core < total_threads; ++core) {
    auto s = std::make_unique<CoreState>();
    s->computation = std::make_unique<Computation>(&graph_);
    s->frame_bytes.assign(num_levels_, 0);
    for (const uint32_t agg_index : new_aggregates_) {
      s->storages.push_back(
          fractoid_.primitives()[agg_index].aggregation->CreateStorage());
      // Task-scoped scratch accumulator, used only under lineage tracking.
      s->task_storages.push_back(
          fractoid_.primitives()[agg_index].aggregation->CreateStorage());
    }
    states_.push_back(std::move(s));
  }
}

FractoidStepTask::~FractoidStepTask() = default;

FRACTAL_HOT void FractoidStepTask::DrainRoots(ThreadContext& t,
                                              std::vector<uint32_t> roots) {
  CoreState& s = *states_[t.core_id];
  s.computation->SetIds(t.worker_id, t.core_id);
  if (num_levels_ == 0 || roots.empty()) return;
  if (t.lineage != nullptr) {
    DrainRootsTracked(t, s, std::move(roots));
    return;
  }
  t.frames[0]->Refill(s.subgraph, /*primitive_index=*/1, std::move(roots));
  DrainFrame(t, s, *t.frames[0]);
}

FRACTAL_HOT void FractoidStepTask::DrainRootsTracked(
    ThreadContext& t, CoreState& s, std::vector<uint32_t> roots) {
  LineageLedger& lineage = *t.lineage;
  const bool replay = lineage.salvage_pass();
  // Frame 0 stays the stealable root queue in both modes; the sentinel
  // primitive index marks stolen entries as replay indices, not extensions.
  SubgraphEnumerator& frame = *t.frames[0];
  frame.Refill(s.subgraph, replay ? kReplayRootPrimitive : 1,
               std::move(roots));
  FaultInjector* const injector = t.control->injector;
  while (const auto extension = frame.ConsumeNext()) {
    const uint64_t task_id = lineage.RootTaskId(*extension);
    if (replay) {
      ProcessReplayRoot(t, s, *extension, task_id);
    } else {
      const uint64_t units_before = t.stats.work_units;
      if (!t.ConsumeWorkUnit()) {
        DiscardTaskScratch(s);
        break;
      }
      {
        const AllocGuard guard(GuardModeFor(t));
        strategy_.Apply(graph_, *extension, &s.subgraph);
        Process(t, s, /*index=*/1);
        strategy_.Undo(graph_, &s.subgraph);
      }
      if (injector != nullptr && injector->WorkerCrashed(t.worker_id)) {
        DiscardTaskScratch(s);
      } else {
        CommitTask(t, s, task_id, units_before);
      }
    }
    if (injector != nullptr && injector->WorkerCrashed(t.worker_id)) break;
  }
  frame.Deactivate();
}

FRACTAL_HOT void FractoidStepTask::ProcessReplayRoot(ThreadContext& t,
                                                     CoreState& s,
                                                     uint32_t replay_index,
                                                     uint64_t task_id) {
  const SubgraphEnumerator::StolenWork& work =
      t.lineage->replay_root(replay_index);
  const uint64_t units_before = t.stats.work_units;
  {
    const AllocGuard guard(GuardModeFor(t));
    s.subgraph = work.prefix;
    strategy_.Apply(graph_, work.extension, &s.subgraph);
    if (!t.ConsumeWorkUnit()) {
      s.subgraph.Clear();
      DiscardTaskScratch(s);
      return;
    }
    Process(t, s, work.primitive_index);
    s.subgraph.Clear();
  }
  FaultInjector* const injector = t.control->injector;
  if (injector != nullptr && injector->WorkerCrashed(t.worker_id)) {
    DiscardTaskScratch(s);
  } else {
    CommitTask(t, s, task_id, units_before);
  }
}

void FractoidStepTask::CommitTask(ThreadContext& t, CoreState& s,
                                  uint64_t task_id, uint64_t units_before) {
  FRACTAL_HOT_ESCAPE("lineage commit: once per fractoid task, not per unit");
  AllocGuard::Allow allow("lineage commit: fold task scratch, stamp ledger");
  for (size_t slot = 0; slot < s.task_storages.size(); ++slot) {
    // MergeFrom consumes (empties) the scratch storage.
    s.storages[slot]->MergeFrom(*s.task_storages[slot]);
  }
  s.local_count += s.task_count;
  s.task_count = 0;
  for (Subgraph& subgraph : s.task_collected) {
    s.collected.push_back(std::move(subgraph));
  }
  s.task_collected.clear();
  t.lineage->StampComplete(task_id, t.stats.work_units - units_before);
}

void FractoidStepTask::DiscardTaskScratch(CoreState& s) {
  FRACTAL_HOT_ESCAPE("crash unwind: once per abandoned task, not per unit");
  for (auto& storage : s.task_storages) storage->Clear();
  s.task_count = 0;
  s.task_collected.clear();
}

FRACTAL_HOT void FractoidStepTask::ProcessStolen(
    ThreadContext& t, const SubgraphEnumerator::StolenWork& work) {
  CoreState& s = *states_[t.core_id];
  s.computation->SetIds(t.worker_id, t.core_id);
  if (t.lineage != nullptr) {
    if (work.primitive_index == kReplayRootPrimitive) {
      // A replay root stolen off frame 0: `extension` is the replay index.
      ProcessReplayRoot(t, s, work.extension, work.lineage_id);
      return;
    }
    if (t.lineage->has_exclusions() &&
        t.lineage->Excluded(work.prefix, work.extension,
                            work.primitive_index)) {
      // Already covered by a completed earlier pass; StampClaim minted the
      // record pre-completed, so dropping it loses nothing.
      return;
    }
    const uint64_t units_before = t.stats.work_units;
    {
      const AllocGuard guard(GuardModeFor(t));
      s.subgraph = work.prefix;
      strategy_.Apply(graph_, work.extension, &s.subgraph);
      if (!t.ConsumeWorkUnit()) {
        s.subgraph.Clear();
        DiscardTaskScratch(s);
        return;
      }
      Process(t, s, work.primitive_index);
      s.subgraph.Clear();
    }
    FaultInjector* const injector = t.control->injector;
    if (injector != nullptr && injector->WorkerCrashed(t.worker_id)) {
      DiscardTaskScratch(s);
    } else {
      CommitTask(t, s, work.lineage_id, units_before);
    }
    return;
  }
  const AllocGuard guard(GuardModeFor(t));
  s.subgraph = work.prefix;
  strategy_.Apply(graph_, work.extension, &s.subgraph);
  if (!t.ConsumeWorkUnit()) {
    // The worker crashed: drop the stolen unit — the whole step attempt is
    // discarded and re-executed anyway.
    s.subgraph.Clear();
    return;
  }
  Process(t, s, work.primitive_index);
  s.subgraph.Clear();
}

void FractoidStepTask::FinishThread(ThreadContext& t) {
  CoreState& s = *states_[t.core_id];
  // Per-attempt delta: the Computation (and its cumulative test counter)
  // survives across salvage passes of one task, while t.stats resets at
  // every step start.
  const uint64_t tests = s.computation->extension_context().extension_tests;
  t.stats.extension_tests = tests - s.tests_flushed;
  s.tests_flushed = tests;
}

void FractoidStepTask::DrainFrame(ThreadContext& t, CoreState& s,
                                  SubgraphEnumerator& frame) {
  const uint32_t next_index = frame.primitive_index();
  while (const auto extension = frame.ConsumeNext()) {
    // Salvage replay: subtrees that left the crashed worker through a
    // steal claim are re-enumerated from their own descriptors, so skip
    // them here (no work unit consumed — the subtree is not re-executed).
    // `s.subgraph` is exactly this frame's prefix pre-Apply.
    if (t.lineage != nullptr && t.lineage->has_exclusions() &&
        t.lineage->Excluded(s.subgraph, *extension, next_index)) {
      continue;
    }
    if (!t.ConsumeWorkUnit()) break;
    // Runtime backstop of the allocation discipline (DESIGN.md §9): once
    // the thread is past per-step warm-up, the whole expansion of this
    // extension — Apply, the recursive Process, Undo — runs under an
    // AllocGuard that counts (or aborts on) any heap allocation the static
    // lint failed to rule out.
    const AllocGuard guard(GuardModeFor(t));
    strategy_.Apply(graph_, *extension, &s.subgraph);
    Process(t, s, next_index);
    strategy_.Undo(graph_, &s.subgraph);
  }
  frame.Deactivate();
}

void FractoidStepTask::SinkVisit(ThreadContext& t, CoreState& s) {
  ++t.stats.subgraphs_visited;
  if (!is_final_) return;
  // Under lineage tracking the count/collection land in the task scratch
  // and only become durable at CommitTask. The streaming sink still fires
  // immediately: it is documented at-least-once under salvage recovery.
  if (t.lineage != nullptr) {
    ++s.task_count;
  } else {
    ++s.local_count;
  }
  if (sink_ != nullptr) {
    FRACTAL_HOT_ESCAPE("user-supplied sink: application code may allocate");
    AllocGuard::Allow allow("subgraph sink callback");
    (*sink_)(s.subgraph);
  }
  if (config_.collect_subgraphs &&
      s.collected.size() + s.task_collected.size() <
          static_cast<size_t>(config_.max_collected_subgraphs)) {
    FRACTAL_HOT_ESCAPE("opt-in diagnostics: bounded subgraph collection");
    AllocGuard::Allow allow("collect_subgraphs diagnostics copy");
    auto& collected =
        t.lineage != nullptr ? s.task_collected : s.collected;
    collected.push_back(s.subgraph);
  }
}

void FractoidStepTask::Process(ThreadContext& t, CoreState& s,
                               uint32_t index) {
  if (index == plan_.end) {
    SinkVisit(t, s);
    return;
  }
  const Primitive& primitive = fractoid_.primitives()[index];
  switch (primitive.kind) {
    case Primitive::Kind::kExpand: {
      const uint32_t depth = s.subgraph.Depth();
      FRACTAL_TRACE_INSTANT("dfs/expand", depth);
      FRACTAL_DCHECK(depth < num_levels_);
      SubgraphEnumerator& frame = *t.frames[depth];
      // Extensions are computed into an arena lease; Refill's swap then
      // hands the frame's previous buffer back through the lease, so buffer
      // capacity cycles through the pool instead of being reallocated.
      ScratchArena::BufferLease scratch(s.computation->scratch_arena());
      strategy_.ComputeExtensions(graph_, s.subgraph,
                                  s.computation->extension_context(),
                                  scratch.get());
      // Enumerator-state accounting (Table 2): the extension arrays plus
      // the prefix are Fractal's entire per-level intermediate state.
      s.state_bytes -= s.frame_bytes[depth];
      s.frame_bytes[depth] =
          scratch->size() * sizeof(uint32_t) +
          s.subgraph.NumVertices() * sizeof(VertexId) +
          s.subgraph.NumEdges() * sizeof(EdgeId);
      s.state_bytes += s.frame_bytes[depth];
      s.peak_state_bytes = std::max(s.peak_state_bytes, s.state_bytes);
      frame.Refill(s.subgraph, index + 1, std::move(*scratch.get()));
      DrainFrame(t, s, frame);
      break;
    }
    case Primitive::Kind::kLocalFilter: {
      bool pass;
      {
        // User-supplied filter: application code may allocate; audited as
        // outside the system's allocation discipline.
        AllocGuard::Allow allow("user local-filter callback");
        pass = primitive.local_filter(s.subgraph, *s.computation);
      }
      if (pass) Process(t, s, index + 1);
      break;
    }
    case Primitive::Kind::kAggregationFilter: {
      const AggregationStorageBase* storage =
          completed_[primitive.source_primitive];
      FRACTAL_DCHECK(storage != nullptr);
      bool pass;
      {
        AllocGuard::Allow allow("user aggregation-filter callback");
        pass = primitive.aggregation_filter(s.subgraph, *s.computation,
                                            *storage);
      }
      if (pass) Process(t, s, index + 1);
      break;
    }
    case Primitive::Kind::kAggregate: {
      const int32_t slot = storage_slots_[index];
      if (slot >= 0) {
        // Accumulators (hash maps, pattern keys) are application-level
        // storage with their own growth policy. Under lineage tracking the
        // update goes to the task scratch (durable only at CommitTask).
        AllocGuard::Allow allow("aggregation accumulator update");
        auto& storages =
            t.lineage != nullptr ? s.task_storages : s.storages;
        storages[slot]->Accumulate(s.subgraph, *s.computation);
      }
      // An aggregation ends the pipeline unless more primitives follow
      // (already-computed aggregations pass straight through).
      if (index + 1 < plan_.end) Process(t, s, index + 1);
      break;
    }
  }
}

FractoidStepTask::Output FractoidStepTask::MergeOutputs() {
  Output output;
  for (auto& s : states_) {
    output.subgraph_count += s->local_count;
    output.peak_state_bytes =
        std::max(output.peak_state_bytes, s->peak_state_bytes);
    for (Subgraph& subgraph : s->collected) {
      if (output.collected.size() <
          static_cast<size_t>(config_.max_collected_subgraphs)) {
        output.collected.push_back(std::move(subgraph));
      }
    }
  }

  // Merge thread-local aggregation storages (the reduction side of A).
  for (size_t slot = 0; slot < new_aggregates_.size(); ++slot) {
    std::shared_ptr<AggregationStorageBase> merged =
        std::move(states_[0]->storages[slot]);
    for (size_t i = 1; i < states_.size(); ++i) {
      merged->MergeFrom(*states_[i]->storages[slot]);
    }
    merged->ApplyPostFilter();
    output.merged.push_back(std::move(merged));
  }
  return output;
}

}  // namespace fractal
