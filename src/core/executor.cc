#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/computation.h"
#include "core/step.h"
#include "runtime/codec.h"
#include "runtime/message_bus.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fractal {
namespace {

/// State of one execution thread ("core" in the paper's architecture).
struct ThreadState {
  uint32_t worker_id = 0;
  uint32_t core_id = 0;     // global thread id
  uint32_t local_core = 0;  // index within the worker

  Subgraph subgraph;
  std::unique_ptr<Computation> computation;
  std::vector<std::unique_ptr<SubgraphEnumerator>> frames;  // per E-depth
  std::vector<std::vector<uint32_t>> scratch;               // per E-depth
  std::vector<uint64_t> frame_bytes;                        // per E-depth

  // Thread-local accumulators for the step's new aggregations, indexed by
  // storage slot (see StepExecution::storage_slots_).
  std::vector<std::unique_ptr<AggregationStorageBase>> storages;

  uint64_t local_count = 0;  // subgraphs reaching the end of a final step
  std::vector<Subgraph> collected;
  uint64_t state_bytes = 0;
  uint64_t peak_state_bytes = 0;

  ThreadStats stats;
};

/// Executes one fractal step across all workers/threads.
class StepExecution {
 public:
  StepExecution(const Fractoid& fractoid, const StepPlan& plan, bool is_final,
                const ExecutionConfig& config, bool arm_fault_injection,
                const SubgraphSink* sink,
                std::vector<const AggregationStorageBase*> completed)
      : fractoid_(fractoid),
        graph_(*fractoid.graph()),
        strategy_(*fractoid.strategy()),
        plan_(plan),
        is_final_(is_final),
        config_(config),
        arm_fault_injection_(arm_fault_injection && config.crash_worker >= 0),
        sink_(sink),
        completed_(std::move(completed)) {
    const auto& workflow = fractoid_.primitives();
    num_levels_ = 0;
    for (uint32_t i = 0; i < plan_.end; ++i) {
      if (workflow[i].kind == Primitive::Kind::kExpand) ++num_levels_;
    }
    // Map each to-compute aggregation index to a storage slot.
    storage_slots_.assign(plan_.end, -1);
    for (uint32_t i = plan_.new_begin; i < plan_.end; ++i) {
      if (workflow[i].kind == Primitive::Kind::kAggregate) {
        storage_slots_[i] = static_cast<int32_t>(new_aggregates_.size());
        new_aggregates_.push_back(i);
      }
    }
  }

  /// Aggregation indices this step computes.
  const std::vector<uint32_t>& new_aggregates() const {
    return new_aggregates_;
  }

  struct Output {
    bool failed = false;  // a worker "crashed": discard and re-execute
    StepTelemetry telemetry;
    uint64_t subgraph_count = 0;
    std::vector<Subgraph> collected;
    uint64_t peak_state_bytes = 0;
    std::vector<std::shared_ptr<AggregationStorageBase>> merged;  // by slot
  };

  Output Run();

 private:
  void RunThread(ThreadState& t);
  void DrainFrame(ThreadState& t, SubgraphEnumerator& frame);
  void Process(ThreadState& t, uint32_t index);
  void SinkVisit(ThreadState& t);
  void ProcessStolen(ThreadState& t,
                     const SubgraphEnumerator::StolenWork& work);
  bool TryInternalSteal(ThreadState& t);
  bool TryExternalSteal(ThreadState& t);
  void StealServiceLoop(uint32_t worker_id);
  std::optional<SubgraphEnumerator::StolenWork> ClaimLocalWork(
      uint32_t worker_id);

  ThreadState& ThreadAt(uint32_t worker, uint32_t local_core) {
    return *threads_[worker * config_.threads_per_worker + local_core];
  }

  const Fractoid& fractoid_;
  const Graph& graph_;
  const ExtensionStrategy& strategy_;
  const StepPlan plan_;
  const bool is_final_;
  const ExecutionConfig& config_;
  const bool arm_fault_injection_;
  const SubgraphSink* sink_;  // optional streaming output (final step only)
  // completed_[i] = result of workflow aggregation primitive i (or null).
  std::vector<const AggregationStorageBase*> completed_;

  uint32_t num_levels_ = 0;
  std::vector<int32_t> storage_slots_;
  std::vector<uint32_t> new_aggregates_;

  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::vector<uint32_t> root_extensions_;
  std::unique_ptr<MessageBus> bus_;
  std::atomic<uint64_t> working_{0};
  std::atomic<bool> step_failed_{false};
  std::atomic<uint64_t> crash_worker_units_{0};
  WallTimer step_timer_;
  bool external_enabled_ = false;
};

StepExecution::Output StepExecution::Run() {
  const uint32_t total_threads = config_.TotalThreads();
  FRACTAL_CHECK(config_.num_workers >= 1);
  FRACTAL_CHECK(config_.threads_per_worker >= 1);
  external_enabled_ =
      config_.external_work_stealing && config_.num_workers >= 2;

  // Root extensions of the empty subgraph, partitioned across cores. The
  // candidate tests performed here are part of the EC metric and credited
  // to core 0 below.
  uint64_t root_extension_tests = 0;
  {
    ExtensionContext root_ctx;
    strategy_.ComputeExtensions(graph_, Subgraph(), root_ctx,
                                &root_extensions_);
    root_extension_tests = root_ctx.extension_tests;
  }

  threads_.clear();
  for (uint32_t worker = 0; worker < config_.num_workers; ++worker) {
    for (uint32_t core = 0; core < config_.threads_per_worker; ++core) {
      auto t = std::make_unique<ThreadState>();
      t->worker_id = worker;
      t->local_core = core;
      t->core_id = worker * config_.threads_per_worker + core;
      t->computation = std::make_unique<Computation>(&graph_);
      t->computation->SetIds(worker, t->core_id);
      t->frames.resize(num_levels_);
      t->scratch.resize(num_levels_);
      t->frame_bytes.assign(num_levels_, 0);
      for (uint32_t level = 0; level < num_levels_; ++level) {
        t->frames[level] = std::make_unique<SubgraphEnumerator>();
      }
      for (const uint32_t agg_index : new_aggregates_) {
        t->storages.push_back(
            fractoid_.primitives()[agg_index].aggregation->CreateStorage());
      }
      t->stats.worker_id = worker;
      t->stats.core_id = t->core_id;
      threads_.push_back(std::move(t));
    }
  }

  if (external_enabled_) {
    bus_ = std::make_unique<MessageBus>(config_.num_workers, config_.network);
  }

  working_.store(total_threads, std::memory_order_relaxed);
  step_timer_.Restart();

  std::vector<std::thread> service_threads;
  if (external_enabled_) {
    for (uint32_t worker = 0; worker < config_.num_workers; ++worker) {
      service_threads.emplace_back(
          [this, worker] { StealServiceLoop(worker); });
    }
  }

  std::vector<std::thread> execution_threads;
  for (auto& t : threads_) {
    execution_threads.emplace_back([this, state = t.get()] {
      RunThread(*state);
    });
  }
  for (std::thread& thread : execution_threads) thread.join();
  if (bus_) bus_->Shutdown();
  for (std::thread& thread : service_threads) thread.join();

  Output output;
  output.failed = step_failed_.load(std::memory_order_acquire);
  output.telemetry.wall_seconds = step_timer_.ElapsedSeconds();
  threads_[0]->computation->extension_context().extension_tests +=
      root_extension_tests;
  for (auto& t : threads_) {
    t->stats.extension_tests =
        t->computation->extension_context().extension_tests;
    output.telemetry.threads.push_back(t->stats);
    output.subgraph_count += t->local_count;
    output.peak_state_bytes =
        std::max(output.peak_state_bytes, t->peak_state_bytes);
    for (Subgraph& subgraph : t->collected) {
      if (output.collected.size() <
          static_cast<size_t>(config_.max_collected_subgraphs)) {
        output.collected.push_back(std::move(subgraph));
      }
    }
  }

  // Merge thread-local aggregation storages (the reduction side of A).
  for (size_t slot = 0; slot < new_aggregates_.size(); ++slot) {
    std::shared_ptr<AggregationStorageBase> merged =
        std::move(threads_[0]->storages[slot]);
    for (size_t i = 1; i < threads_.size(); ++i) {
      merged->MergeFrom(*threads_[i]->storages[slot]);
    }
    merged->ApplyPostFilter();
    output.merged.push_back(std::move(merged));
  }
  return output;
}

void StepExecution::RunThread(ThreadState& t) {
  WallTimer busy_timer;
  // Initial partition: a contiguous block of the root extensions selected
  // by the global core id (paper §4: "an initial partition of extensions
  // ... determined on-the-fly using its unique core identifier"; the Spark
  // substrate hands each core one contiguous input partition). Contiguous
  // blocks concentrate hub-adjacent roots, producing the raw skew the
  // work-stealing hierarchy then fixes (§4.2).
  const size_t total = root_extensions_.size();
  const uint32_t threads = config_.TotalThreads();
  const size_t begin = total * t.core_id / threads;
  const size_t end = total * (t.core_id + 1) / threads;
  std::vector<uint32_t> slice(root_extensions_.begin() + begin,
                              root_extensions_.begin() + end);
  if (num_levels_ > 0 && !slice.empty()) {
    t.frames[0]->Refill(t.subgraph, /*primitive_index=*/1, std::move(slice));
    DrainFrame(t, *t.frames[0]);
  }
  t.stats.own_work_micros = step_timer_.ElapsedMicros();
  working_.fetch_sub(1, std::memory_order_acq_rel);

  // Steal loop: WS_int preferred over WS_ext (paper §4.2). Backoff scales
  // with the thread count: on an oversubscribed host, aggressive idle
  // rescans starve the threads that still hold work.
  const int64_t max_backoff_micros =
      std::max<int64_t>(400, 100 * config_.TotalThreads());
  int64_t backoff_micros = 50;
  while (true) {
    if (step_failed_.load(std::memory_order_acquire)) break;
    if (working_.load(std::memory_order_acquire) == 0) break;
    working_.fetch_add(1, std::memory_order_acq_rel);
    bool got = false;
    if (config_.internal_work_stealing) got = TryInternalSteal(t);
    if (!got && external_enabled_) got = TryExternalSteal(t);
    working_.fetch_sub(1, std::memory_order_acq_rel);
    if (got) {
      backoff_micros = 50;
    } else {
      ++t.stats.steal_failures;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
      backoff_micros = std::min(backoff_micros * 2, max_backoff_micros);
    }
  }
  t.stats.finish_micros = step_timer_.ElapsedMicros();
  t.stats.busy_seconds = busy_timer.ElapsedSeconds();
}

void StepExecution::DrainFrame(ThreadState& t, SubgraphEnumerator& frame) {
  const uint32_t next_index = frame.primitive_index();
  while (const auto extension = frame.ConsumeNext()) {
    if (step_failed_.load(std::memory_order_relaxed)) break;
    ++t.stats.work_units;
    if (arm_fault_injection_ &&
        t.worker_id == static_cast<uint32_t>(config_.crash_worker) &&
        crash_worker_units_.fetch_add(1, std::memory_order_relaxed) >=
            config_.crash_after_work_units) {
      // The worker dies: its in-flight state (including thread-local
      // aggregation accumulators) is lost; the whole step is abandoned.
      step_failed_.store(true, std::memory_order_release);
      break;
    }
    strategy_.Apply(graph_, *extension, &t.subgraph);
    Process(t, next_index);
    strategy_.Undo(graph_, &t.subgraph);
  }
  frame.Deactivate();
}

void StepExecution::SinkVisit(ThreadState& t) {
  ++t.stats.subgraphs_visited;
  if (!is_final_) return;
  ++t.local_count;
  if (sink_ != nullptr) (*sink_)(t.subgraph);
  if (config_.collect_subgraphs &&
      t.collected.size() < static_cast<size_t>(
                               config_.max_collected_subgraphs)) {
    t.collected.push_back(t.subgraph);
  }
}

void StepExecution::Process(ThreadState& t, uint32_t index) {
  if (index == plan_.end) {
    SinkVisit(t);
    return;
  }
  const Primitive& primitive = fractoid_.primitives()[index];
  switch (primitive.kind) {
    case Primitive::Kind::kExpand: {
      const uint32_t depth = t.subgraph.Depth();
      FRACTAL_DCHECK(depth < num_levels_);
      SubgraphEnumerator& frame = *t.frames[depth];
      std::vector<uint32_t>& scratch = t.scratch[depth];
      strategy_.ComputeExtensions(graph_, t.subgraph,
                                  t.computation->extension_context(),
                                  &scratch);
      // Enumerator-state accounting (Table 2): the extension arrays plus
      // the prefix are Fractal's entire per-level intermediate state.
      t.state_bytes -= t.frame_bytes[depth];
      t.frame_bytes[depth] =
          scratch.size() * sizeof(uint32_t) +
          t.subgraph.NumVertices() * sizeof(VertexId) +
          t.subgraph.NumEdges() * sizeof(EdgeId);
      t.state_bytes += t.frame_bytes[depth];
      t.peak_state_bytes = std::max(t.peak_state_bytes, t.state_bytes);
      frame.Refill(t.subgraph, index + 1, std::move(scratch));
      DrainFrame(t, frame);
      break;
    }
    case Primitive::Kind::kLocalFilter:
      if (primitive.local_filter(t.subgraph, *t.computation)) {
        Process(t, index + 1);
      }
      break;
    case Primitive::Kind::kAggregationFilter: {
      const AggregationStorageBase* storage =
          completed_[primitive.source_primitive];
      FRACTAL_DCHECK(storage != nullptr);
      if (primitive.aggregation_filter(t.subgraph, *t.computation, *storage)) {
        Process(t, index + 1);
      }
      break;
    }
    case Primitive::Kind::kAggregate: {
      const int32_t slot = storage_slots_[index];
      if (slot >= 0) {
        t.storages[slot]->Accumulate(t.subgraph, *t.computation);
      }
      // An aggregation ends the pipeline unless more primitives follow
      // (already-computed aggregations pass straight through).
      if (index + 1 < plan_.end) Process(t, index + 1);
      break;
    }
  }
}

void StepExecution::ProcessStolen(ThreadState& t,
                                  const SubgraphEnumerator::StolenWork& work) {
  t.subgraph = work.prefix;
  strategy_.Apply(graph_, work.extension, &t.subgraph);
  ++t.stats.work_units;
  Process(t, work.primitive_index);
  t.subgraph.Clear();
}

bool StepExecution::TryInternalSteal(ThreadState& t) {
  // Shallowest frames first: they hold the largest pieces of work.
  for (uint32_t depth = 0; depth < num_levels_; ++depth) {
    for (uint32_t other = 0; other < config_.threads_per_worker; ++other) {
      if (other == t.local_core) continue;
      ThreadState& victim = ThreadAt(t.worker_id, other);
      SubgraphEnumerator& frame = *victim.frames[depth];
      if (!frame.LooksNonEmpty()) continue;
      if (auto work = frame.TrySteal()) {
        ++t.stats.internal_steals;
        ProcessStolen(t, *work);
        return true;
      }
    }
  }
  return false;
}

std::optional<SubgraphEnumerator::StolenWork> StepExecution::ClaimLocalWork(
    uint32_t worker_id) {
  for (uint32_t depth = 0; depth < num_levels_; ++depth) {
    for (uint32_t core = 0; core < config_.threads_per_worker; ++core) {
      SubgraphEnumerator& frame = *ThreadAt(worker_id, core).frames[depth];
      if (!frame.LooksNonEmpty()) continue;
      if (auto work = frame.TrySteal()) return work;
    }
  }
  return std::nullopt;
}

bool StepExecution::TryExternalSteal(ThreadState& t) {
  for (uint32_t offset = 1; offset < config_.num_workers; ++offset) {
    const uint32_t victim =
        (t.worker_id + offset) % config_.num_workers;
    auto payload = bus_->RequestSteal(t.worker_id, victim);
    if (!payload.has_value()) continue;
    SubgraphEnumerator::StolenWork work;
    if (!SubgraphCodec::DecodeStolenWork(*payload, &work)) {
      FRACTAL_CHECK(false) << "corrupted stolen-work payload";
    }
    ++t.stats.external_steals;
    t.stats.bytes_shipped += payload->size();
    ProcessStolen(t, work);
    return true;
  }
  return false;
}

void StepExecution::StealServiceLoop(uint32_t worker_id) {
  while (auto token = bus_->WaitForRequest(worker_id)) {
    auto work = ClaimLocalWork(worker_id);
    if (work.has_value()) {
      bus_->Reply(*token, SubgraphCodec::EncodeStolenWork(*work));
    } else {
      bus_->Reply(*token, std::nullopt);
    }
  }
}

}  // namespace

ExecutionResult ExecuteFractoid(const Fractoid& fractoid,
                                const ExecutionConfig& config) {
  return ExecuteFractoidStreaming(fractoid, config, nullptr);
}

ExecutionResult ExecuteFractoidStreaming(const Fractoid& fractoid,
                                         const ExecutionConfig& config,
                                         const SubgraphSink& sink) {
  const auto& workflow = fractoid.primitives();
  const std::vector<StepPlan> steps = CompileSteps(workflow);
  ExecutionState& state = *fractoid.state();

  ExecutionResult result;
  result.num_steps = static_cast<uint32_t>(steps.size());
  WallTimer total_timer;

  for (size_t step_index = 0; step_index < steps.size(); ++step_index) {
    const StepPlan& plan = steps[step_index];
    const bool is_final = step_index + 1 == steps.size();

    std::vector<uint32_t> new_aggregate_indices;
    // Gather already-completed aggregations feeding this step, and decide
    // whether the whole step can be skipped (its aggregations are cached).
    std::vector<const AggregationStorageBase*> completed(workflow.size(),
                                                         nullptr);
    std::vector<uint32_t> to_compute;
    bool all_cached = true;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      for (uint32_t i = 0; i < plan.end; ++i) {
        if (workflow[i].kind != Primitive::Kind::kAggregate) continue;
        const auto it = state.completed.find(i);
        const bool cached =
            config.reuse_cached_aggregations && it != state.completed.end() &&
            it->second.spec == workflow[i].aggregation.get();
        if (cached) {
          completed[i] = it->second.storage.get();
        } else if (i < plan.new_begin) {
          FRACTAL_CHECK(false)
              << "aggregation " << i << " required by step " << step_index
              << " was not computed by an earlier step";
        } else {
          to_compute.push_back(i);
          all_cached = false;
        }
      }
    }

    // Skip the step when it has nothing new to compute: all its
    // aggregations are cached and — if it is the final step — its output is
    // fully determined by those aggregations (workflow ends with A).
    (void)all_cached;
    const bool skip =
        to_compute.empty() &&
        (!is_final ||
         workflow.back().kind == Primitive::Kind::kAggregate);
    if (skip) {
      continue;
    }

    // Execute the step; on (injected) worker failure, the from-scratch
    // model lets us simply re-run it.
    bool injection_pending = config.crash_worker >= 0 &&
                             result.steps_retried == 0;
    StepExecution::Output output;
    uint32_t attempt = 0;
    while (true) {
      StepExecution execution_attempt(fractoid, plan, is_final, config,
                                      injection_pending,
                                      (is_final && sink) ? &sink : nullptr,
                                      completed);
      output = execution_attempt.Run();
      if (!output.failed) {
        // Keep the successful attempt's aggregation indices visible below.
        new_aggregate_indices = execution_attempt.new_aggregates();
        break;
      }
      ++result.steps_retried;
      injection_pending = false;  // the injected fault fires once
      FRACTAL_CHECK(++attempt <= config.max_step_retries)
          << "step kept failing after retries";
    }

    result.telemetry.steps.push_back(std::move(output.telemetry));
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, output.peak_state_bytes);
    ++result.steps_executed;
    if (is_final) {
      result.num_subgraphs = output.subgraph_count;
      result.subgraphs = std::move(output.collected);
    }

    // Publish the step's aggregations.
    {
      std::lock_guard<std::mutex> lock(state.mu);
      const auto& indices = new_aggregate_indices;
      for (size_t slot = 0; slot < indices.size(); ++slot) {
        CompletedAggregation entry;
        entry.spec = workflow[indices[slot]].aggregation.get();
        entry.storage = output.merged[slot];
        state.completed[indices[slot]] = std::move(entry);
      }
    }
  }

  // Expose every completed aggregation of this workflow in the result.
  {
    std::lock_guard<std::mutex> lock(state.mu);
    for (uint32_t i = 0; i < workflow.size(); ++i) {
      if (workflow[i].kind != Primitive::Kind::kAggregate) continue;
      const auto it = state.completed.find(i);
      if (it != state.completed.end() &&
          it->second.spec == workflow[i].aggregation.get()) {
        result.aggregations[i] = it->second.storage;
        result.last_aggregate_by_name[workflow[i].aggregation->name()] = i;
      }
    }
  }
  result.telemetry.wall_seconds = total_timer.ElapsedSeconds();
  return result;
}

uint64_t Fractoid::CountSubgraphs(const ExecutionConfig& config) const {
  return ExecuteFractoid(*this, config).num_subgraphs;
}

std::vector<Subgraph> Fractoid::CollectSubgraphs(
    const ExecutionConfig& config) const {
  ExecutionConfig collecting = config;
  collecting.collect_subgraphs = true;
  return ExecuteFractoid(*this, collecting).subgraphs;
}

ExecutionResult Fractoid::Execute(const ExecutionConfig& config) const {
  return ExecuteFractoid(*this, config);
}

uint64_t Fractoid::ForEachSubgraph(
    const std::function<void(const Subgraph&)>& sink,
    const ExecutionConfig& config) const {
  FRACTAL_CHECK(sink != nullptr);
  return ExecuteFractoidStreaming(*this, config, sink).num_subgraphs;
}

}  // namespace fractal
