// Slim execution driver: compiles the workflow into fractal steps
// (Algorithm 2), binds cached aggregation storages, submits one
// FractoidStepTask per step to the runtime Cluster (ephemeral per
// execution, or injected and shared via ExecutionConfig::cluster), retries
// crashed steps per the RetryPolicy — from scratch, or under
// RetryPolicy::Mode::kSalvage by replaying only the crashed worker's
// unfinished fractoid tasks out of the lineage ledger while the survivors'
// committed results are retained — and merges/publishes the results. All
// thread lifecycle, partitioning, and work stealing live in
// runtime/cluster.* / worker.*.
#include "core/executor.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "core/fractoid_task.h"
#include "core/step.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cluster.h"
#include "runtime/lineage.h"
#include "util/strings.h"
#include "util/timer.h"

namespace fractal {
namespace {

/// Maps an execution configuration onto a cluster shape. WS_ext needs at
/// least two workers to have a victim, so the flag is normalized off for
/// single-worker configs (the seed executor did the same silently).
ClusterOptions ToClusterOptions(const ExecutionConfig& config) {
  ClusterOptions options;
  options.num_workers = config.num_workers;
  options.threads_per_worker = config.threads_per_worker;
  options.internal_work_stealing = config.internal_work_stealing;
  options.external_work_stealing =
      config.external_work_stealing && config.num_workers >= 2;
  options.network = config.network;
  options.progress_interval_ms = config.progress_interval_ms;
  options.statusz_port = config.statusz_port;
  return options;
}

/// All-workers mask for the cluster shape. Cluster::live_mask() keeps bits
/// above num_workers set, so consumers mask with this before popcounting or
/// handing the mask to the lineage ledger.
uint64_t FullMask(uint32_t num_workers) {
  return num_workers >= 64 ? ~uint64_t{0}
                           : (uint64_t{1} << num_workers) - 1;
}

}  // namespace

Status ExecutionConfig::Validate() const {
  if (cluster == nullptr) {
    if (num_workers == 0) {
      return InvalidArgumentError("num_workers must be at least 1");
    }
    if (threads_per_worker == 0) {
      return InvalidArgumentError("threads_per_worker must be at least 1");
    }
    if (num_workers > 64) {
      return InvalidArgumentError("num_workers must be at most 64");
    }
  }
  const uint32_t effective_workers =
      cluster != nullptr ? cluster->options().num_workers : num_workers;
  FRACTAL_RETURN_IF_ERROR(fault_plan.Validate(effective_workers));
  if (retry.max_attempts == 0) {
    return InvalidArgumentError("retry.max_attempts must be at least 1");
  }
  return Status::Ok();
}

ExecutionResult ExecuteFractoid(const Fractoid& fractoid,
                                const ExecutionConfig& config) {
  return ExecuteFractoidStreaming(fractoid, config, nullptr);
}

ExecutionResult ExecuteFractoidStreaming(const Fractoid& fractoid,
                                         const ExecutionConfig& config,
                                         const SubgraphSink& sink) {
  const Status config_status = config.Validate();
  FRACTAL_CHECK(config_status.ok()) << config_status;
  FRACTAL_TRACE_SPAN("executor/execute");

  ExecutionResult result;

  // Single-execution contract (core/executor.h): fractoids deriving from a
  // common ancestor share one ExecutionState, and a second concurrent
  // execution over it would race on the cached step aggregations. Fail
  // closed instead of corrupting the cache.
  ExecutionState& state = *fractoid.state();
  if (state.executing.exchange(true, std::memory_order_acq_rel)) {
    result.status = FailedPreconditionError(
        "this fractoid (or one sharing its cached execution state) is "
        "already executing: concurrent executions of one fractoid are not "
        "supported — derive a distinct fractoid per query");
    return result;
  }
  struct ExecutingGuard {
    std::atomic<bool>& flag;
    ~ExecutingGuard() { flag.store(false, std::memory_order_release); }
  } executing_guard{state.executing};

  // Multi-tenant controls (DESIGN.md §12): checked at every step boundary
  // here, and once per work unit inside the step by the worker threads.
  QueryControl* const query = config.query;
  if (query != nullptr) FRACTAL_TRACE_INSTANT("executor/query", query->id);
  const auto query_status = [query]() -> Status {
    return query->DeadlineHit()
               ? DeadlineExceededError(StrFormat(
                     "query %llu '%s' exceeded its deadline",
                     (unsigned long long)query->id, query->name.c_str()))
               : CancelledError(StrFormat(
                     "query %llu '%s' cancelled",
                     (unsigned long long)query->id, query->name.c_str()));
  };
  const auto query_aborted = [query]() {
    if (query == nullptr) return false;
    query->CheckDeadline(std::chrono::steady_clock::now());
    return query->cancelled();
  };
  if (query_aborted()) {
    result.status = query_status();
    return result;
  }

  // The runtime: injected and shared across executions, or ephemeral —
  // created once here and reused by every step of this execution.
  std::unique_ptr<Cluster> owned_cluster;
  Cluster* cluster = config.cluster;
  if (cluster == nullptr) {
    owned_cluster = std::make_unique<Cluster>(ToClusterOptions(config));
    cluster = owned_cluster.get();
  }

  const auto& workflow = fractoid.primitives();
  const std::vector<StepPlan> steps = CompileSteps(workflow);
  const ExtensionStrategy& strategy = *fractoid.strategy();
  const Graph& graph = *fractoid.graph();

  result.num_steps = static_cast<uint32_t>(steps.size());
  WallTimer total_timer;

  // One injector for the whole execution: deterministic entries fire once
  // across retries, probabilistic ones re-arm per step (FaultInjector).
  std::shared_ptr<FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    injector = std::make_shared<FaultInjector>(config.fault_plan);
  }

  for (size_t step_index = 0; step_index < steps.size(); ++step_index) {
    if (query_aborted()) {
      result.status = query_status();
      break;
    }
    FRACTAL_TRACE_SPAN_V("executor/step", step_index);
    const StepPlan& plan = steps[step_index];
    const bool is_final = step_index + 1 == steps.size();

    // Gather already-completed aggregations feeding this step, and decide
    // whether the whole step can be skipped (its aggregations are cached).
    std::vector<const AggregationStorageBase*> completed(workflow.size(),
                                                         nullptr);
    std::vector<uint32_t> to_compute;
    {
      MutexLock lock(state.mu);
      for (uint32_t i = 0; i < plan.end; ++i) {
        if (workflow[i].kind != Primitive::Kind::kAggregate) continue;
        const auto it = state.completed.find(i);
        const bool cached =
            config.reuse_cached_aggregations && it != state.completed.end() &&
            it->second.spec == workflow[i].aggregation.get();
        if (cached) {
          completed[i] = it->second.storage.get();
        } else if (i < plan.new_begin) {
          FRACTAL_CHECK(false)
              << "aggregation " << i << " required by step " << step_index
              << " was not computed by an earlier step";
        } else {
          to_compute.push_back(i);
        }
      }
    }

    // Skip the step when it has nothing new to compute: all its
    // aggregations are cached and — if it is the final step — its output is
    // fully determined by those aggregations (workflow ends with A).
    const bool skip =
        to_compute.empty() &&
        (!is_final || workflow.back().kind == Primitive::Kind::kAggregate);
    if (skip) continue;

    // Execute the step; on (injected) worker failure, the from-scratch
    // model lets us simply re-run it with a fresh task — degraded on the
    // surviving workers when the policy excludes crashed ones. Under
    // RetryPolicy::Mode::kSalvage a lineage ledger additionally watermarks
    // fractoid-task completion, so a crash replays only the crashed
    // worker's unfinished tasks (a salvage pass) on the survivors while
    // everything already committed is retained. Failure is reported
    // through result.status, never by aborting the process.
    const bool salvage_mode =
        config.retry.mode == RetryPolicy::Mode::kSalvage;
    const uint64_t full_mask = FullMask(cluster->options().num_workers);
    const uint32_t threads_per_worker =
        cluster->options().threads_per_worker;
    std::vector<uint32_t> new_aggregate_indices;
    FractoidStepTask::Output output;
    Cluster::StepResult step_result;
    bool step_ok = false;
    // Retained across the salvage passes of one step: the task (its
    // committed per-thread CoreStates hold the salvaged results) and the
    // ledger. Both reset for a from-scratch attempt.
    std::unique_ptr<FractoidStepTask> task;
    std::unique_ptr<LineageLedger> ledger;
    bool salvage_pass = false;
    uint32_t replay_count = 0;
    uint32_t salvage_passes_used = 0;
    uint64_t last_salvaged_units = 0;
    uint64_t root_extension_tests = 0;
    for (uint32_t attempt = 1; attempt <= config.retry.max_attempts;
         ++attempt) {
      if (query_aborted()) {
        result.status = query_status();
        break;
      }
      if (cluster->num_live_workers() == 0) {
        result.status = FailedPreconditionError(
            "no live workers remain to execute the step on");
        break;
      }
      std::vector<uint32_t> roots;
      if (!salvage_pass) {
        task = std::make_unique<FractoidStepTask>(
            fractoid, plan, is_final, config, cluster->TotalThreads(),
            (is_final && sink) ? &sink : nullptr, completed);

        // Root extensions of the empty subgraph; the runtime partitions
        // them across cores. The candidate tests performed here are part
        // of the EC metric and credited to core 0 below.
        ExtensionContext root_ctx;
        strategy.ComputeExtensions(graph, Subgraph(), root_ctx, &roots);
        root_extension_tests = root_ctx.extension_tests;

        if (salvage_mode) {
          ledger = std::make_unique<LineageLedger>();
          ledger->BeginAttempt(roots, cluster->live_mask() & full_mask,
                               threads_per_worker);
          last_salvaged_units = 0;
        }
      } else {
        // Salvage replay pass: the "roots" are indices into the ledger's
        // replay set, routed through FractoidStepTask::ProcessReplayRoot.
        roots.resize(replay_count);
        std::iota(roots.begin(), roots.end(), 0u);
      }

      Cluster::StepOptions step_options;
      step_options.num_levels = task->num_levels();
      step_options.fault_injector = injector;
      step_options.lineage = ledger.get();
      step_options.query = query;
      if (injector != nullptr) injector->SetSalvagePass(salvage_pass);
      step_result = cluster->RunStep(*task, std::move(roots), step_options);
      // Cancellation/deadline outranks everything else about the attempt:
      // the step's output is partial (possibly empty telemetry when the
      // query was cancelled while queued at the admission gate), so it must
      // not be merged, retried, or treated as a crash.
      if (step_result.cancelled) {
        result.status = query_status();
        break;
      }
      if (salvage_pass) {
        const uint64_t replayed = step_result.telemetry.TotalWorkUnits();
        result.units_replayed += replayed;
        obs::UnitsReplayedCounter().Add(replayed);
      }

      if (step_result.ok()) {
        // threads[0] is the first live worker's first thread.
        step_result.telemetry.threads[0].extension_tests +=
            root_extension_tests;
        new_aggregate_indices = task->new_aggregates();
        output = task->MergeOutputs();
        step_ok = true;
        break;
      }
      ++result.steps_retried;
      FRACTAL_TRACE_INSTANT("executor/step_retry", step_index);
      const int32_t crashed_worker = step_result.failure->worker;
      result.failures.push_back(std::move(*step_result.failure));
      if (attempt == config.retry.max_attempts) {
        result.status = ResourceExhaustedError(StrFormat(
            "step %u failed %u times (last failure: %s)",
            static_cast<uint32_t>(step_index), attempt,
            result.failures.back().ToString().c_str()));
        break;
      }
      // A crash is salvageable when exactly one worker died this attempt
      // (a simultaneous multi-worker crash would need cross-crash
      // exclusion reasoning the ledger does not model) and the pass budget
      // allows another replay.
      const bool salvageable =
          salvage_mode && ledger != nullptr && crashed_worker >= 0 &&
          injector != nullptr &&
          std::popcount(injector->crashed_mask() & full_mask) == 1 &&
          salvage_passes_used < config.retry.max_salvage_passes;
      if ((salvageable || config.retry.exclude_crashed_workers) &&
          crashed_worker >= 0) {
        if (cluster->num_live_workers() <= 1) {
          result.status = FailedPreconditionError(StrFormat(
              "step %u: last live worker crashed (%s); nothing left to "
              "re-execute on",
              static_cast<uint32_t>(step_index),
              result.failures.back().ToString().c_str()));
          break;
        }
        cluster->MarkWorkerDead(static_cast<uint32_t>(crashed_worker));
      }
      if (salvageable) {
        // Partial recovery: keep everything committed, replay only what
        // the crashed worker left unfinished. PrepareSalvage runs after
        // MarkWorkerDead so the replay set is partitioned over the actual
        // survivors.
        FRACTAL_TRACE_INSTANT("executor/step_salvage", step_index);
        const uint64_t salvaged = ledger->completed_units();
        result.units_salvaged += salvaged - last_salvaged_units;
        obs::UnitsSalvagedCounter().Add(salvaged - last_salvaged_units);
        last_salvaged_units = salvaged;
        replay_count = ledger->PrepareSalvage(
            static_cast<uint32_t>(crashed_worker),
            cluster->live_mask() & full_mask, threads_per_worker);
        obs::LedgerBytesGauge().Set(
            static_cast<int64_t>(ledger->ApproxBytes()));
        salvage_pass = true;
        ++salvage_passes_used;
        ++result.salvage_passes;
      } else {
        // From-scratch retry (the only mode when salvage is off; the
        // fallback when it cannot apply): discard the attempt wholesale.
        salvage_pass = false;
        task.reset();
        ledger.reset();
      }
      if (config.retry.backoff_micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            config.retry.backoff_micros << (attempt - 1)));
      }
    }
    if (injector != nullptr) injector->SetSalvagePass(false);
    if (!step_ok) break;  // result.status carries the failure

    result.telemetry.steps.push_back(std::move(step_result.telemetry));
    result.peak_state_bytes =
        std::max(result.peak_state_bytes, output.peak_state_bytes);
    ++result.steps_executed;
    if (is_final) {
      result.num_subgraphs = output.subgraph_count;
      result.subgraphs = std::move(output.collected);
    }

    // Publish the step's aggregations.
    {
      MutexLock lock(state.mu);
      const auto& indices = new_aggregate_indices;
      for (size_t slot = 0; slot < indices.size(); ++slot) {
        CompletedAggregation entry;
        entry.spec = workflow[indices[slot]].aggregation.get();
        entry.storage = output.merged[slot];
        state.completed[indices[slot]] = std::move(entry);
      }
    }
  }

  // Expose every completed aggregation of this workflow in the result.
  {
    MutexLock lock(state.mu);
    for (uint32_t i = 0; i < workflow.size(); ++i) {
      if (workflow[i].kind != Primitive::Kind::kAggregate) continue;
      const auto it = state.completed.find(i);
      if (it != state.completed.end() &&
          it->second.spec == workflow[i].aggregation.get()) {
        result.aggregations[i] = it->second.storage;
        result.last_aggregate_by_name[workflow[i].aggregation->name()] = i;
      }
    }
  }
  result.telemetry.wall_seconds = total_timer.ElapsedSeconds();
  return result;
}

const ExecutionResult& QueryHandle::Wait() {
  Status status = ticket_->Join();
  // When the body ran, it filled the slot (including the status) before the
  // ticket resolved — Join is the happens-before edge. When it never ran
  // (cancelled while queued, scheduler shutdown) the slot is still
  // default-constructed; back-fill the final status exactly once so
  // concurrent Wait callers don't race on the assignment.
  std::call_once(slot_->once, [this, &status] {
    if (!status.ok() && slot_->result.status.ok()) {
      slot_->result.status = std::move(status);
    }
  });
  return slot_->result;
}

StatusOr<QueryHandle> ExecuteFractoidAsync(
    const Fractoid& fractoid, const ExecutionConfig& config,
    QueryScheduler& scheduler, QueryScheduler::Submission submission) {
  if (config.cluster != nullptr &&
      config.cluster != scheduler.cluster()) {
    return InvalidArgumentError(
        "ExecutionConfig::cluster must be null or the scheduler's own "
        "cluster");
  }
  if (config.query != nullptr) {
    return InvalidArgumentError(
        "ExecutionConfig::query is wired by the scheduler and must be null");
  }
  ExecutionConfig effective = config;
  effective.cluster = scheduler.cluster();
  auto slot = std::make_shared<QueryHandle::Slot>();
  // The fractoid is captured by reference (documented: it must outlive the
  // execution); the config and result slot by value so the caller's copies
  // can go out of scope immediately.
  auto submitted = scheduler.Submit(
      std::move(submission),
      [&fractoid, effective, slot](QueryControl& control) mutable -> Status {
        effective.query = &control;
        slot->result = ExecuteFractoid(fractoid, effective);
        return slot->result.status;
      });
  if (!submitted.ok()) return submitted.status();
  return QueryHandle(std::move(submitted).value(), std::move(slot));
}

}  // namespace fractal
