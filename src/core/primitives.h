// Primitive descriptors: the units a fractoid workflow is made of
// (paper §3: Extension E, Filtering F — local and aggregation-based — and
// Aggregation A).
#ifndef FRACTAL_CORE_PRIMITIVES_H_
#define FRACTAL_CORE_PRIMITIVES_H_

#include <functional>
#include <memory>
#include <string>

#include "core/aggregation.h"
#include "enumerate/subgraph.h"

namespace fractal {

class Computation;

/// Local filter predicate (W3): keep the subgraph iff true.
using LocalFilterFn = std::function<bool(const Subgraph&, Computation&)>;

/// Aggregation filter predicate (W4): receives the completed upstream
/// aggregation result (type-erased; typed wrappers downcast).
using AggregationFilterFn = std::function<bool(
    const Subgraph&, Computation&, const AggregationStorageBase&)>;

struct Primitive {
  enum class Kind {
    kExpand,             // E: one extension level
    kLocalFilter,        // F (local)
    kAggregationFilter,  // F (aggregation-based) — a synchronization point
    kAggregate,          // A
  };

  Kind kind = Kind::kExpand;

  // kLocalFilter
  LocalFilterFn local_filter;

  // kAggregationFilter
  std::string source_name;        // aggregation name this filter reads
  int32_t source_primitive = -1;  // resolved index of the source A primitive
  AggregationFilterFn aggregation_filter;

  // kAggregate
  std::shared_ptr<const AggregationSpecBase> aggregation;
};

}  // namespace fractal

#endif  // FRACTAL_CORE_PRIMITIVES_H_
