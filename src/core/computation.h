// Computation: the per-thread execution context handed to every user
// function (the `comp` parameter of the paper's API, Fig. 4). Provides the
// (possibly reduced) input graph, memoized pattern canonicalization, and the
// extension-cost counters.
#ifndef FRACTAL_CORE_COMPUTATION_H_
#define FRACTAL_CORE_COMPUTATION_H_

#include <cstdint>

#include "enumerate/extension.h"
#include "enumerate/subgraph.h"
#include "graph/graph.h"
#include "pattern/canonical.h"

namespace fractal {

/// Not thread-safe; one instance per execution thread.
class Computation {
 public:
  explicit Computation(const Graph* graph) : graph_(graph) {}

  Computation(const Computation&) = delete;
  Computation& operator=(const Computation&) = delete;

  const Graph& graph() const { return *graph_; }

  /// Canonical pattern (and position permutation) of `subgraph`, memoized
  /// by quick pattern — the hot path of motif counting and FSM.
  const CanonicalResult& CanonicalPattern(const Subgraph& subgraph) {
    return canonical_cache_.Canonicalize(subgraph.QuickPattern(*graph_));
  }

  CanonicalPatternCache& canonical_cache() { return canonical_cache_; }

  ExtensionContext& extension_context() { return extension_context_; }

  /// Per-thread scratch pool of the enumeration data plane (DESIGN.md §8).
  ScratchArena& scratch_arena() { return extension_context_.arena; }

  uint32_t worker_id() const { return worker_id_; }
  uint32_t core_id() const { return core_id_; }
  void SetIds(uint32_t worker_id, uint32_t core_id) {
    worker_id_ = worker_id;
    core_id_ = core_id;
  }

 private:
  const Graph* graph_;
  CanonicalPatternCache canonical_cache_;
  ExtensionContext extension_context_;
  uint32_t worker_id_ = 0;
  uint32_t core_id_ = 0;
};

}  // namespace fractal

#endif  // FRACTAL_CORE_COMPUTATION_H_
