// The Aggregation primitive (paper §3, W2): maps each subgraph to a
// key/value entry and reduces values sharing a key. An AggregationSpec packs
// the user's key/value/reduce/post-filter functions; each execution thread
// accumulates into its own AggregationStorage, and the executor merges the
// thread-local storages into the step's final result (then applies the
// optional aggregation filter `aggFilter`).
//
// Typed K/V with std::function user hooks; the executor manipulates
// storages through the type-erased base classes.
#ifndef FRACTAL_CORE_AGGREGATION_H_
#define FRACTAL_CORE_AGGREGATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "enumerate/subgraph.h"
#include "util/check.h"

namespace fractal {

class Computation;

// --- Heap-footprint hook for aggregation keys/values ----------------------
// AggregationStorage::ApproxBytes must count heap owned *by* the entries
// (Pattern edge vectors, strings, FSM domain sets, ...), not just their
// inline sizeof — otherwise Table 2 memory drilldowns undercount exactly
// the workloads (motifs, FSM) where the keys dominate. A type opts in by
// exposing a `uint64_t ApproxHeapBytes() const` member; common standard
// containers are covered by the overloads below. Types without either
// report 0 (inline-only, correct for trivially copyable keys like ints).

namespace internal {
template <typename T, typename = void>
struct HasApproxHeapBytes : std::false_type {};
template <typename T>
struct HasApproxHeapBytes<
    T, std::void_t<decltype(static_cast<uint64_t>(
           std::declval<const T&>().ApproxHeapBytes()))>> : std::true_type {
};
}  // namespace internal

/// Heap bytes owned by `value` (not counting sizeof(T) itself).
template <typename T>
uint64_t HeapBytesOf(const T& value) {
  if constexpr (internal::HasApproxHeapBytes<T>::value) {
    return value.ApproxHeapBytes();
  } else {
    // No hook: assume inline-only. Exact for trivially copyable types;
    // heap-owning types should expose ApproxHeapBytes() or they undercount.
    return 0;
  }
}

inline uint64_t HeapBytesOf(const std::string& value) {
  // Approximate SSO: a capacity at or below the inline buffer owns no heap.
  return value.capacity() > sizeof(std::string) - 1 ? value.capacity() + 1
                                                    : 0;
}

template <typename E, typename A>
uint64_t HeapBytesOf(const std::vector<E, A>& value) {
  uint64_t bytes = static_cast<uint64_t>(value.capacity()) * sizeof(E);
  if constexpr (!std::is_trivially_copyable_v<E>) {
    for (const E& element : value) bytes += HeapBytesOf(element);
  }
  return bytes;
}

template <typename A, typename B>
uint64_t HeapBytesOf(const std::pair<A, B>& value) {
  return HeapBytesOf(value.first) + HeapBytesOf(value.second);
}

/// Type-erased view of an aggregation result / accumulator.
///
/// The reduce function must be commutative and associative: thread-local
/// storages merge in thread order, but which thread accumulated which
/// subgraph depends on stealing — and under salvage recovery
/// (runtime/lineage.h) on which tasks were replayed where. Bit-exactness of
/// recovered runs (DESIGN.md §11) rests on the merge being
/// order-independent.
class AggregationStorageBase {
 public:
  virtual ~AggregationStorageBase() = default;

  /// Maps `subgraph` to a key/value entry and reduces it in.
  virtual void Accumulate(const Subgraph& subgraph, Computation& comp) = 0;

  /// Merges (and consumes) another storage created by the same spec.
  virtual void MergeFrom(AggregationStorageBase& other) = 0;

  /// Drops every entry (used to discard an uncommitted task's scratch
  /// accumulator after a crash).
  virtual void Clear() = 0;

  /// Applies the spec's post-filter (aggFilter), dropping failing entries.
  virtual void ApplyPostFilter() = 0;

  virtual size_t NumEntries() const = 0;

  /// Rough heap footprint in bytes (for memory drilldowns).
  virtual uint64_t ApproxBytes() const = 0;
};

/// Type-erased aggregation descriptor (the payload of an A primitive).
class AggregationSpecBase {
 public:
  explicit AggregationSpecBase(std::string name) : name_(std::move(name)) {}
  virtual ~AggregationSpecBase() = default;

  const std::string& name() const { return name_; }

  virtual std::unique_ptr<AggregationStorageBase> CreateStorage() const = 0;

 private:
  std::string name_;
};

/// Typed aggregation storage: an unordered_map<K, V> plus the user hooks.
template <typename K, typename V, typename Hash = std::hash<K>>
class AggregationStorage : public AggregationStorageBase {
 public:
  /// Key extractor (paper: `key: (Subgraph, Computation) => K`).
  using KeyFn = std::function<K(const Subgraph&, Computation&)>;
  /// Value extractor (paper: `value: (Subgraph, Computation) => V`).
  using ValueFn = std::function<V(const Subgraph&, Computation&)>;
  /// In-place reduction: folds `from` into `into` (paper: `(V, V) => V`).
  using ReduceFn = std::function<void(V& into, V&& from)>;
  /// Final filter on reduced entries (paper: `aggFilter: (K, V) => Boolean`).
  using PostFilterFn = std::function<bool(const K&, const V&)>;

  AggregationStorage(KeyFn key_fn, ValueFn value_fn, ReduceFn reduce_fn,
                     PostFilterFn post_filter)
      : key_fn_(std::move(key_fn)),
        value_fn_(std::move(value_fn)),
        reduce_fn_(std::move(reduce_fn)),
        post_filter_(std::move(post_filter)) {}

  void Accumulate(const Subgraph& subgraph, Computation& comp) override {
    K key = key_fn_(subgraph, comp);
    V value = value_fn_(subgraph, comp);
    auto [it, inserted] = entries_.try_emplace(std::move(key));
    if (inserted) {
      it->second = std::move(value);
    } else {
      reduce_fn_(it->second, std::move(value));
    }
  }

  void MergeFrom(AggregationStorageBase& other_base) override {
    auto* other = dynamic_cast<AggregationStorage*>(&other_base);
    FRACTAL_CHECK(other != nullptr) << "merging incompatible aggregations";
    // Move whole map nodes across instead of copying keys: for heap-owning
    // keys (Pattern, strings) the thread-local merge at every step barrier
    // would otherwise allocate per entry — a hot-path violation under the
    // alloc-guard (the lineage CommitTask path merges inside the guarded
    // region). Only a rehash of the destination can allocate here.
    for (auto it = other->entries_.begin(); it != other->entries_.end();) {
      auto node = other->entries_.extract(it++);
      const auto found = entries_.find(node.key());
      if (found == entries_.end()) {
        entries_.insert(std::move(node));
      } else {
        reduce_fn_(found->second, std::move(node.mapped()));
        // `node` frees the duplicate on scope exit.
      }
    }
  }

  void Clear() override { entries_.clear(); }

  void ApplyPostFilter() override {
    if (!post_filter_) return;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (post_filter_(it->first, it->second)) {
        ++it;
      } else {
        it = entries_.erase(it);
      }
    }
  }

  size_t NumEntries() const override { return entries_.size(); }

  uint64_t ApproxBytes() const override {
    // Node-based map: per entry one node (key + value + next pointer +
    // cached hash) plus the bucket array, plus whatever heap the key/value
    // themselves own (HeapBytesOf hook above). O(entries) — this feeds
    // memory drilldowns (Table 2), not the enumeration hot path.
    uint64_t bytes =
        static_cast<uint64_t>(entries_.bucket_count()) * sizeof(void*) +
        entries_.size() * (sizeof(K) + sizeof(V) + 2 * sizeof(void*));
    for (const auto& [key, value] : entries_) {
      bytes += HeapBytesOf(key) + HeapBytesOf(value);
    }
    return bytes;
  }

  const std::unordered_map<K, V, Hash>& entries() const { return entries_; }

  bool Contains(const K& key) const { return entries_.count(key) > 0; }

  const V* Find(const K& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<K, V, Hash> entries_;
  KeyFn key_fn_;
  ValueFn value_fn_;
  ReduceFn reduce_fn_;
  PostFilterFn post_filter_;
};

/// Typed aggregation descriptor.
template <typename K, typename V, typename Hash = std::hash<K>>
class AggregationSpec : public AggregationSpecBase {
 public:
  using Storage = AggregationStorage<K, V, Hash>;

  AggregationSpec(std::string name, typename Storage::KeyFn key_fn,
                  typename Storage::ValueFn value_fn,
                  typename Storage::ReduceFn reduce_fn,
                  typename Storage::PostFilterFn post_filter = nullptr)
      : AggregationSpecBase(std::move(name)),
        key_fn_(std::move(key_fn)),
        value_fn_(std::move(value_fn)),
        reduce_fn_(std::move(reduce_fn)),
        post_filter_(std::move(post_filter)) {}

  std::unique_ptr<AggregationStorageBase> CreateStorage() const override {
    return std::make_unique<Storage>(key_fn_, value_fn_, reduce_fn_,
                                     post_filter_);
  }

 private:
  typename Storage::KeyFn key_fn_;
  typename Storage::ValueFn value_fn_;
  typename Storage::ReduceFn reduce_fn_;
  typename Storage::PostFilterFn post_filter_;
};

/// Downcasts a completed storage to its typed form (CHECKs on mismatch).
template <typename K, typename V, typename Hash = std::hash<K>>
const AggregationStorage<K, V, Hash>& TypedStorage(
    const AggregationStorageBase& base) {
  const auto* typed = dynamic_cast<const AggregationStorage<K, V, Hash>*>(&base);
  FRACTAL_CHECK(typed != nullptr) << "aggregation type mismatch";
  return *typed;
}

}  // namespace fractal

#endif  // FRACTAL_CORE_AGGREGATION_H_
