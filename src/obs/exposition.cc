#include "obs/exposition.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fractal {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr int kIoTimeoutMillis = 2000;
constexpr int kTracezSpansPerThread = 32;

std::string StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    default:
      return "500 Internal Server Error";
  }
}

void SetIoTimeouts(int fd) {
  struct timeval tv;
  tv.tv_sec = kIoTimeoutMillis / 1000;
  tv.tv_usec = (kIoTimeoutMillis % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

int ClampedIntParam(const ExpositionServer::Request& request,
                    const std::string& key, int fallback, int lo, int hi) {
  const std::string raw = request.QueryParam(key, "");
  if (raw.empty()) return fallback;
  return std::min(hi, std::max(lo, std::atoi(raw.c_str())));
}

// --- Built-in endpoint renderings ----------------------------------------

ExpositionServer::Response RenderMetricsz(
    const ExpositionServer::Request& /*request*/) {
  ExpositionServer::Response response;
  // The de-facto content type Prometheus scrapers expect.
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = MetricsRegistry::Get().DumpPrometheus();
  return response;
}

ExpositionServer::Response RenderTracez(
    const ExpositionServer::Request& /*request*/) {
  ExpositionServer::Response response;
  const TraceSnapshot snapshot = Tracer::Get().Snapshot();
  std::ostringstream out;
  out << "tracez: most recent completed spans per thread (newest first)\n";
  if (!Tracer::TracingEnabled()) {
    out << "note: tracing is currently disabled; showing retained rings\n";
  }
  for (const ThreadTrace& thread : snapshot.threads) {
    struct Open {
      uint32_t name_id;
      int64_t ts_nanos;
    };
    struct Done {
      uint32_t name_id;
      int64_t ts_nanos;
      int64_t dur_nanos;
    };
    std::vector<Open> open;
    std::vector<Done> done;
    for (const TraceEvent& event : thread.events) {
      if (event.phase == TracePhase::kBegin) {
        open.push_back({event.name_id, event.ts_nanos});
      } else if (event.phase == TracePhase::kEnd && !open.empty()) {
        // Rings are balanced per thread after the exporter's repair, but a
        // raw snapshot can hold orphan ends past wraparound — match
        // innermost-first and drop ends with no open begin.
        const Open begin = open.back();
        open.pop_back();
        done.push_back(
            {begin.name_id, begin.ts_nanos, event.ts_nanos - begin.ts_nanos});
      }
    }
    out << StrFormat("\nthread %s/%s (pid %u tid %u): %zu completed, "
                     "%zu still open, %llu dropped\n",
                     thread.process_name.empty() ? "?"
                                                 : thread.process_name.c_str(),
                     thread.thread_name.empty() ? "?"
                                                : thread.thread_name.c_str(),
                     thread.pid, thread.tid, done.size(), open.size(),
                     (unsigned long long)thread.dropped);
    const size_t limit =
        std::min<size_t>(done.size(), kTracezSpansPerThread);
    for (size_t i = 0; i < limit; ++i) {
      const Done& span = done[done.size() - 1 - i];
      const std::string& name = span.name_id < snapshot.names.size()
                                    ? snapshot.names[span.name_id]
                                    : std::string("?");
      out << StrFormat("  t=%10.6fs dur=%9.3fus  %s\n",
                       static_cast<double>(span.ts_nanos) / 1e9,
                       static_cast<double>(span.dur_nanos) / 1e3,
                       name.c_str());
    }
  }
  response.body = out.str();
  return response;
}

ExpositionServer::Response RenderProfilez(
    const ExpositionServer::Request& request) {
  FRACTAL_TRACE_SPAN("obs/profile_window");
  const int seconds = ClampedIntParam(request, "seconds", 1, 1, 30);
  const int hz =
      ClampedIntParam(request, "hz", Profiler::kDefaultHz, 1,
                      Profiler::kMaxHz);
  Profiler& profiler = Profiler::Get();
  const std::vector<uint64_t> marks = profiler.Marks();
  // If a session is already running (e.g. --profile-out), piggyback on it
  // instead of failing: the window is still delimited by the marks.
  const bool started_here = !profiler.running();
  if (started_here) {
    const Status status = profiler.Start(hz);
    if (!status.ok()) {
      return ExpositionServer::Response{
          500, "text/plain; charset=utf-8",
          StrFormat("profiler start failed: %s\n",
                    status.ToString().c_str())};
    }
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  if (started_here) profiler.Stop();
  const ProfileSnapshot snapshot = profiler.Snapshot(&marks);
  ExpositionServer::Response response;
  response.body = request.QueryParam("view", "") == "spans"
                      ? Profiler::SpanProfile(snapshot)
                      : Profiler::CollapsedStacks(snapshot);
  if (response.body.empty()) {
    response.body =
        "# no samples: no registered threads ran during the window\n";
  }
  return response;
}

}  // namespace

std::string ExpositionServer::Request::QueryParam(
    const std::string& key, const std::string& fallback) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, end - eq - 1);
    }
    pos = end + 1;
  }
  return fallback;
}

StatusOr<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    const Options& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    return InternalError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd);
    return InvalidArgumentError(
        StrFormat("bad bind address %s", options.bind_address.c_str()));
  }
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = StrFormat(
        "bind(%s:%d): %s", options.bind_address.c_str(), options.port,
        std::strerror(errno));
    ::close(listen_fd);
    return InternalError(message);
  }
  if (::listen(listen_fd, 8) != 0) {
    const std::string message =
        StrFormat("listen(): %s", std::strerror(errno));
    ::close(listen_fd);
    return InternalError(message);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  int port = options.port;
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port = ntohs(bound.sin_port);
  }
  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_CLOEXEC) != 0) {
    const std::string message = StrFormat("pipe2(): %s", std::strerror(errno));
    ::close(listen_fd);
    return InternalError(message);
  }
  std::unique_ptr<ExpositionServer> server(
      new ExpositionServer(listen_fd, wake[0], wake[1], port));
  server->AddEndpoint("/healthz", [](const Request&) {
    return Response{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server->AddEndpoint("/metricsz", RenderMetricsz);
  server->AddEndpoint("/tracez", RenderTracez);
  server->AddEndpoint("/profilez", RenderProfilez);
  ExpositionServer* raw = server.get();
  server->AddEndpoint("/", [raw](const Request&) {
    std::ostringstream out;
    out << "fractal exposition server\n";
    {
      MutexLock lock(raw->mu_);
      for (const auto& [path, handler] : raw->handlers_) {
        (void)handler;
        out << "  " << path << "\n";
      }
    }
    return Response{200, "text/plain; charset=utf-8", out.str()};
  });
  server->thread_ = std::thread(&ExpositionServer::Serve, raw);
  FRACTAL_LOG(Info) << "exposition server listening on "
                    << options.bind_address << ":" << port;
  return server;
}

ExpositionServer::ExpositionServer(int listen_fd, int wake_fd_read,
                                   int wake_fd_write, int port)
    : listen_fd_(listen_fd),
      wake_fd_read_(wake_fd_read),
      wake_fd_write_(wake_fd_write),
      port_(port) {}

ExpositionServer::~ExpositionServer() {
  stop_.store(true, std::memory_order_release);
  const char byte = 'x';
  // Best-effort: if the pipe is somehow full the poll timeout still ends
  // the loop within one tick.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_write_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_fd_read_);
  ::close(wake_fd_write_);
}

void ExpositionServer::AddEndpoint(const std::string& path, Handler handler) {
  MutexLock lock(mu_);
  handlers_[path] = std::move(handler);
}

void ExpositionServer::Serve() {
  Profiler::Get().RegisterCurrentThread("obs/exposition");
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fd_read_, POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/250);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) continue;
    SetIoTimeouts(conn);
    HandleConnection(conn);
    ::close(conn);
  }
}

void ExpositionServer::HandleConnection(int fd) {
  std::string raw;
  raw.reserve(512);
  char buf[1024];
  while (raw.size() < kMaxRequestBytes &&
         raw.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return;  // not HTTP; drop silently
  const std::string request_line = raw.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  Response response;
  Request request;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = Response{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (request_line.substr(0, sp1) != "GET") {
    response =
        Response{405, "text/plain; charset=utf-8", "only GET is served\n"};
  } else {
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t question = target.find('?');
    if (question != std::string::npos) {
      request.query = target.substr(question + 1);
      target.resize(question);
    }
    request.path = target;
    Handler handler;
    {
      MutexLock lock(mu_);
      const auto it = handlers_.find(request.path);
      if (it != handlers_.end()) handler = it->second;
    }
    if (handler) {
      // Outside mu_: handlers may block (e.g. /profilez's sample window).
      response = handler(request);
    } else {
      response = Response{404, "text/plain; charset=utf-8",
                          StrFormat("no endpoint %s (see /)\n",
                                    request.path.c_str())};
    }
  }
  ExpositionRequestsCounter().Add(1);
  const std::string head = StrFormat(
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      StatusLine(response.status).c_str(), response.content_type.c_str(),
      response.body.size());
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, response.body.data(), response.body.size());
  }
}

}  // namespace obs
}  // namespace fractal
