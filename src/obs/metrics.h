// Process-wide metrics registry: named counters, gauges, and log-scale
// (power-of-two) bucketed histograms, with a text and a JSON dump. Unlike
// tracing (obs/trace.h), metrics are always on: handles are plain atomics
// and one update costs a relaxed fetch_add — cheap enough for the runtime's
// hot paths even on the work-unit counter.
//
// Lookup is by name and locks the registry, so call sites cache the handle:
//
//   static obs::Counter& c = obs::MetricsRegistry::Get().GetCounter("x");
//   c.Add(1);
//
// Handles are never invalidated (the registry leaks; metric objects are
// node-allocated). Well-known runtime counters used by both the worker
// instrumentation and the step-progress reporter are exposed as accessors
// at the bottom so both sides agree on the names — the barrier-aggregated
// StepTelemetry reports the same quantities per step, these accumulate
// them process-wide and live (sampleable mid-step).
#ifndef FRACTAL_OBS_METRICS_H_
#define FRACTAL_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fractal {
namespace obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale histogram: bucket 0 holds the value 0, bucket i (i >= 1) holds
/// values in [2^(i-1), 2^i - 1]. 65 buckets cover the full uint64 range, so
/// Record never clips. Concurrent Record calls are lock-free.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  static size_t BucketIndex(uint64_t value) {
    return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  }
  /// Smallest value landing in bucket `i`.
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  /// Largest value landing in bucket `i`.
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }
  /// Lower bound of the bucket containing the p-th percentile (p in
  /// [0,100]); approximate by construction (bucket resolution).
  uint64_t ApproxPercentile(double p) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Name -> metric registry. Get* creates on first use; returned references
/// are stable for the process lifetime. `MetricsRegistry::mu` is a leaf
/// lock (DESIGN.md §5): held only for the map lookup, never while
/// acquiring anything else.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter& GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Human-readable dump, one metric per line, sorted by name.
  std::string DumpText() const EXCLUDES(mu_);
  /// {"counters":{...},"gauges":{...},"histograms":{...}}; histogram
  /// buckets are keyed by their lower bound and only nonzero ones appear.
  std::string DumpJson() const EXCLUDES(mu_);
  /// Prometheus text exposition format (served at /metricsz): names are
  /// sanitized (dots -> underscores) under a `fractal_` prefix, counters
  /// get the conventional `_total` suffix, histograms render as cumulative
  /// `_bucket{le="..."}` series (power-of-two upper bounds; only buckets
  /// with mass, plus `+Inf`) with `_sum`/`_count`, and p50/p90/p99 from
  /// ApproxPercentile appear as companion `_p50`/`_p90`/`_p99` gauges.
  std::string DumpPrometheus() const EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_{"MetricsRegistry::mu"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

// --- Well-known runtime metrics -------------------------------------------
// Cumulative across steps and executions; the per-step barrier snapshot of
// the same quantities is StepTelemetry (runtime/telemetry.h).

/// Extensions consumed and processed ("runtime.work_units").
Counter& WorkUnitsCounter();
/// Successful WS_int claims ("runtime.steals_internal").
Counter& InternalStealsCounter();
/// Successful WS_ext claims ("runtime.steals_external").
Counter& ExternalStealsCounter();
/// Serialized bytes received via WS_ext ("runtime.bytes_shipped").
Counter& BytesShippedCounter();
/// Extension candidate tests, credited at the step barrier
/// ("runtime.extension_tests", the paper's EC metric).
Counter& ExtensionTestsCounter();
/// Fractal steps completed ("runtime.steps").
Counter& StepsCounter();
/// Steps executed on a degraded (W−1 or fewer) live-worker subset
/// ("runtime.steps_degraded").
Counter& StepsDegradedCounter();
/// Simulated worker crashes observed at step barriers
/// ("runtime.workers_crashed").
Counter& WorkersCrashedCounter();
/// Work units whose results survived a crash via the lineage ledger and
/// were *not* re-executed ("runtime.units_salvaged").
Counter& UnitsSalvagedCounter();
/// Work units re-executed during salvage replay passes
/// ("runtime.units_replayed").
Counter& UnitsReplayedCounter();
/// Queries accepted by a QueryScheduler ("runtime.queries_admitted").
Counter& QueriesAdmittedCounter();
/// Queries refused with kResourceExhausted because the admission queue was
/// full ("runtime.queries_rejected").
Counter& QueriesRejectedCounter();
/// Queries that resolved kCancelled ("runtime.queries_cancelled").
Counter& QueriesCancelledCounter();
/// Queries that resolved kDeadlineExceeded
/// ("runtime.queries_deadline_exceeded").
Counter& QueriesDeadlineExceededCounter();
/// Queries that resolved OK ("runtime.queries_completed").
Counter& QueriesCompletedCounter();
/// WS_ext steal requests that hit their deadline ("bus.steal_timeouts").
Counter& StealTimeoutsCounter();
/// WS_ext steal requests dropped in flight by fault injection
/// ("bus.requests_dropped").
Counter& DroppedRequestsCounter();
/// Sorted-set kernel invocations (intersections and differences) in the
/// enumeration data plane ("enumerate.intersections").
Counter& IntersectionKernelsCounter();
/// Kernel invocations that took the galloping path instead of the linear
/// merge ("enumerate.galloped").
Counter& GallopedKernelsCounter();
/// ScratchArena buffer acquisitions served from the per-thread pool with no
/// heap allocation ("enumerate.scratch_hits").
Counter& ScratchHitsCounter();
/// ScratchArena buffer acquisitions that had to allocate — should flatline
/// once the DFS reaches steady state ("enumerate.scratch_misses").
Counter& ScratchMissesCounter();

/// Samples captured by the sampling profiler, credited at each
/// Profiler::Stop ("obs.profiler_samples").
Counter& ProfilerSamplesCounter();
/// HTTP requests answered by the exposition server
/// ("obs.exposition_requests").
Counter& ExpositionRequestsCounter();

/// (requester, victim) pairs currently marked suspect by the steal-RPC
/// health tracker; reset to 0 at each step start
/// ("runtime.suspect_victims").
Gauge& SuspectVictimsGauge();
/// 1 while a Cluster step is between submit and barrier, else 0
/// ("runtime.step_active").
Gauge& StepActiveGauge();
/// Approximate bytes held by the current step's lineage ledger, published
/// when a salvage pass is prepared ("runtime.ledger_bytes").
Gauge& LedgerBytesGauge();
/// Number of cluster steps started so far ("runtime.current_step"; a gauge
/// so /statusz shows the step the progress sampler is describing).
Gauge& CurrentStepGauge();
/// Work units per second over the progress sampler's last interval
/// ("runtime.units_per_sec").
Gauge& UnitsPerSecGauge();
/// Work units consumed by worker `w` over the progress sampler's last
/// interval ("runtime.worker_units" with a `.w` suffix, e.g.
/// "runtime.worker_units.3"). Unlike the handles above this takes the
/// registry lock per call — sampler-rate use only.
Gauge& WorkerUnitsGauge(uint32_t worker);
/// Queries currently executing on scheduler driver threads
/// ("runtime.queries_active").
Gauge& QueriesActiveGauge();
/// Queries admitted but not yet started ("runtime.queries_queued").
Gauge& QueriesQueuedGauge();
/// Cumulative work units attained by query `id` ("runtime.query_units"
/// with a `.id` suffix), set at each step barrier. Takes the registry lock
/// per call — barrier-rate use only, like WorkerUnitsGauge.
Gauge& QueryUnitsGauge(uint64_t query_id);

/// WS_ext request round-trip time in microseconds, successful steals only
/// ("bus.steal_rtt_us").
Histogram& StealRttHistogram();
/// Stolen-work serialization time in nanoseconds ("codec.encode_ns").
Histogram& EncodeTimeHistogram();
/// Stolen-work deserialization time in nanoseconds ("codec.decode_ns").
Histogram& DecodeTimeHistogram();
/// Extension batch size per enumerator refill ("enumerate.batch_size").
Histogram& ExtensionBatchHistogram();
/// Steal-retry backoff sleeps in microseconds, one sample per retry
/// ("bus.retry_backoff_us").
Histogram& RetryBackoffHistogram();

}  // namespace obs
}  // namespace fractal

#endif  // FRACTAL_OBS_METRICS_H_
