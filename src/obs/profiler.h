// In-process sampling wall-clock profiler (DESIGN.md §10). Each registered
// thread gets a POSIX interval timer (timer_create + SIGEV_THREAD_ID)
// delivering SIGPROF at the session rate; the async-signal-safe handler
// walks the frame-pointer chain from the interrupted context into a
// lock-free per-thread sample ring, and joins the sample against the
// innermost open FRACTAL_TRACE_SPAN on that thread (obs::SpanStack). All
// symbolization and aggregation happen offline, outside the handler.
//
// Usage:
//   obs::Profiler::Get().RegisterCurrentThread("worker0/core1");
//   ...
//   auto status = obs::Profiler::Get().Start(/*hz=*/100);
//   ...workload...
//   obs::Profiler::Get().Stop();
//   WriteFile(out, obs::Profiler::Get().CollapsedStacks());   // flamegraph
//   FRACTAL_LOG(Info) << obs::Profiler::Get().SpanProfile();  // span table
//
// Cost contract: an *unregistered or idle* thread pays nothing (no SIGPROF
// timer exists for it); a registered thread with the profiler stopped pays
// nothing at runtime; span-stack maintenance while profiling is armed is
// two plain stores per FRACTAL_TRACE_SPAN. The disabled trace-macro fast
// path stays one relaxed load (see trace.h Tracer::Flags()).
//
// Signal-safety contract (what the SIGPROF handler may touch): the
// thread-local ring pointer, raw slot memory, relaxed/release atomics, the
// interrupted ucontext, and the thread's SpanStack. It must not allocate,
// lock, intern names, or call any non-async-signal-safe libc function.
//
// Lock class (leaf, DESIGN.md §5): `Profiler::mu` guards the thread
// registry and session state; it is never taken by the signal handler.
#ifndef FRACTAL_OBS_PROFILER_H_
#define FRACTAL_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fractal {
namespace obs {

struct ProfileBuffer;  // defined in profiler.cc

/// One captured stack: program counters leaf-first, plus the name of the
/// innermost FRACTAL_TRACE_SPAN open when the sample fired (nullptr when
/// none; the pointer is a string literal valid for the process lifetime).
struct ProfileStack {
  std::vector<uintptr_t> pcs;  // [0] = leaf
  const char* span = nullptr;
};

/// All samples exported from one registered thread's ring.
struct ThreadProfile {
  uint32_t tid = 0;  // kernel thread id at registration
  std::string name;
  bool live = false;        // owning thread still running at snapshot time
  uint64_t truncated = 0;   // samples lost to ring wraparound or races
  std::vector<ProfileStack> stacks;
};

struct ProfileSnapshot {
  int hz = 0;  // session rate the samples were taken at (0 = never started)
  std::vector<ThreadProfile> threads;

  uint64_t TotalSamples() const;
};

/// Process-wide sampling profiler. Never destroyed (leaked singleton) so
/// late-exiting threads can still unregister during shutdown.
class Profiler {
 public:
  static constexpr int kDefaultHz = 100;
  static constexpr int kMaxHz = 1000;

  static Profiler& Get();

  /// Makes the calling thread sampleable: allocates (or reuses, via the
  /// Treiber free list) its sample ring, captures its kernel tid, stack
  /// bounds, and SpanStack pointer, and — if a session is running — arms
  /// its interval timer. Idempotent per thread (later calls only update the
  /// name). Must be called from the thread itself, outside a signal
  /// handler. `name` is copied (truncated to 63 chars).
  void RegisterCurrentThread(const char* name) EXCLUDES(mu_);

  /// Starts a sampling session at `hz` samples/sec/thread (clamped to
  /// [1, kMaxHz]), arming one interval timer per registered live thread.
  /// Rings keep accumulating across Start/Stop cycles; use Marks() +
  /// Snapshot(&marks) for windowed views. Fails if already running or if
  /// the platform lacks per-thread timers.
  Status Start(int hz = kDefaultHz) EXCLUDES(mu_);

  /// Disarms every timer and stops sampling. Samples stay exported until
  /// the next process exit. No-op when not running.
  void Stop() EXCLUDES(mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Per-thread sample cursors, for windowed profiles: pass the result to
  /// Snapshot() later to export only samples taken after this call.
  std::vector<uint64_t> Marks() const EXCLUDES(mu_);

  /// Copies every ring's valid samples (optionally only those after
  /// `since`, a vector from Marks()). Safe while sampling is live: slots
  /// that lose an overwrite race with the handler are dropped and counted
  /// as truncated.
  ProfileSnapshot Snapshot(const std::vector<uint64_t>* since = nullptr)
      const EXCLUDES(mu_);

  /// Renders a snapshot as collapsed-stack text (one line per distinct
  /// stack: "thread;frameroot;...;frameleaf count"), the format consumed by
  /// flamegraph.pl and speedscope. Symbolizes via dladdr + demangle.
  static std::string CollapsedStacks(const ProfileSnapshot& snapshot);
  std::string CollapsedStacks() const { return CollapsedStacks(Snapshot()); }

  /// Renders a snapshot as a self-time-per-span table: samples whose
  /// innermost open FRACTAL_TRACE_SPAN was S count toward S's self time.
  static std::string SpanProfile(const ProfileSnapshot& snapshot);
  std::string SpanProfile() const { return SpanProfile(Snapshot()); }

  /// Writes CollapsedStacks() followed by a commented-out span table to
  /// `path`.
  Status WriteCollapsed(const std::string& path) const;

  /// Best-effort symbolization of one pc (exposed for tests): demangled
  /// function name, or "0x<hex>" when unknown. Not async-signal-safe.
  static std::string Symbolize(uintptr_t pc);

 private:
  Profiler() = default;

  void ArmTimer(ProfileBuffer* buffer, int hz) REQUIRES(mu_);
  void DisarmTimer(ProfileBuffer* buffer) REQUIRES(mu_);

  mutable Mutex mu_{"Profiler::mu"};
  /// Every ring ever created, including rings whose thread exited (their
  /// samples stay exportable) and rings reused by new threads. Index into
  /// this vector is the stable cursor index used by Marks()/Snapshot().
  std::vector<std::unique_ptr<ProfileBuffer>> buffers_ GUARDED_BY(mu_);
  /// Treiber stack of rings whose owning thread exited, for reuse. Same
  /// pattern and rationale as Tracer::free_list_: the push runs in a
  /// thread_local destructor at thread exit where no instrumented Mutex may
  /// be taken; pops are serialized under mu_ (single consumer, ABA-safe).
  std::atomic<ProfileBuffer*> free_list_{nullptr};
  std::atomic<bool> running_{false};
  int hz_ GUARDED_BY(mu_) = 0;
  uint64_t samples_at_start_ GUARDED_BY(mu_) = 0;

  friend struct ProfileTlsSlot;  // thread-exit unregistration
};

/// RAII profile session for CLIs and benches: when `path` is non-empty,
/// registers the calling thread and starts the profiler at `hz`;
/// destruction stops it and writes collapsed stacks to `path`. When `path`
/// is empty, does nothing.
class ProfileSession {
 public:
  ProfileSession(std::string path, int hz = Profiler::kDefaultHz);
  ~ProfileSession();

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

 private:
  std::string path_;
};

}  // namespace obs
}  // namespace fractal

#endif  // FRACTAL_OBS_PROFILER_H_
