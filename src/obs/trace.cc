#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/alloc_guard.h"
#include "util/hot_annotations.h"
#include "util/strings.h"

namespace fractal {
namespace obs {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping (names are code literals, but stay safe).
std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

/// One thread's ring. Owned by the Tracer registry (so it outlives its
/// thread); the owning thread holds only a raw thread_local pointer.
/// The per-buffer mutex is a leaf lock: Record holds it for one slot write
/// and never acquires anything else under it.
struct ThreadBuffer {
  ThreadBuffer(uint32_t auto_tid, size_t capacity)
      : tid(auto_tid),
        thread_name(StrFormat("thread-%u", auto_tid)),
        slots(capacity) {}

  /// Intrusive link for Tracer::free_list_. Written only by the exiting
  /// owner thread (before the release push) or read by the single popper
  /// under Tracer::mu_; never touched while the buffer has a live owner.
  ThreadBuffer* next_free = nullptr;

  mutable Mutex mu{"Tracer::ThreadBuffer::mu"};
  uint32_t pid GUARDED_BY(mu) = 0;
  uint32_t tid GUARDED_BY(mu) = 0;
  std::string thread_name GUARDED_BY(mu);
  std::string process_name GUARDED_BY(mu) = "driver";
  /// Ring storage: slot `next % slots.size()` is written next. `next`
  /// counts events ever recorded; the valid window is the trailing
  /// min(next, slots.size()) entries.
  std::vector<TraceEvent> slots GUARDED_BY(mu);
  uint64_t next GUARDED_BY(mu) = 0;
};

std::atomic<uint32_t> Tracer::flags_{0};

namespace {
// Constant-initialized: no TLS init guard, so instrumentation reaching this
// from any point (including via the profiler's registration path) never
// allocates or locks.
constinit thread_local SpanStack tls_span_stack;
}  // namespace

SpanStack& CurrentSpanStack() { return tls_span_stack; }

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: see class comment
  return *tracer;
}

void Tracer::Enable(size_t events_per_thread) {
  flags_.fetch_and(~kTracingFlag, std::memory_order_seq_cst);
  MutexLock lock(mu_);
  if (names_.empty()) names_.push_back("");  // id 0 reserved
  capacity_ = events_per_thread;
  epoch_nanos_ = NowNanos();
  for (auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    buffer->slots.assign(capacity_, TraceEvent{});
    buffer->next = 0;
  }
  flags_.fetch_or(kTracingFlag, std::memory_order_release);
}

void Tracer::Disable() {
  flags_.fetch_and(~kTracingFlag, std::memory_order_seq_cst);
}

uint32_t Tracer::InternName(const char* name) {
  // Per-call-site one-time interning; the first span through a given site
  // can execute mid-run on a guarded thread (e.g. the first steal).
  AllocGuard::Allow allow("one-time trace-name interning");
  MutexLock lock(mu_);
  if (names_.empty()) names_.push_back("");
  for (uint32_t id = 1; id < names_.size(); ++id) {
    if (names_[id] == name) return id;
  }
  names_.emplace_back(name);
  return static_cast<uint32_t>(names_.size() - 1);
}

ThreadBuffer& Tracer::LocalBuffer() {
  // The thread_local slot returns the ring to the free list at thread exit,
  // so thread churn (ephemeral clusters spawn workers per execution) reuses
  // rings instead of growing the registry without bound. Reused rings are
  // NOT cleared: the dead thread's events stay exportable, and the new
  // occupant appends after them (timestamps remain monotone per ring; the
  // new occupant re-labels the identity if it cares).
  //
  // The exit-time push MUST NOT acquire a fractal::Mutex: lockdep's own
  // per-thread state is a thread_local constructed *after* this slot (its
  // first touch is inside the MutexLock below), so it is destroyed first
  // and an instrumented acquisition here would use it after destruction.
  // Hence the lock-free Treiber push onto Tracer::free_list_.
  struct Slot {
    Tracer* tracer = nullptr;
    ThreadBuffer* buffer = nullptr;
    ~Slot() {
      if (buffer == nullptr) return;
      ThreadBuffer* head = tracer->free_list_.load(std::memory_order_relaxed);
      do {
        buffer->next_free = head;
      } while (!tracer->free_list_.compare_exchange_weak(
          head, buffer, std::memory_order_release, std::memory_order_relaxed));
    }
  };
  thread_local Slot slot;
  if (slot.buffer == nullptr) {
    FRACTAL_HOT_ESCAPE(
        "one-time per-thread ring acquisition; every later Record on this "
        "thread takes the fast path above");
    AllocGuard::Allow allow("trace ring registration for a new thread");
    MutexLock lock(mu_);
    // Single consumer: pops only happen here, under mu_. A concurrent
    // exit-time push can only prepend new nodes, so head->next_free is
    // stable once head is observed.
    ThreadBuffer* head = free_list_.load(std::memory_order_acquire);
    while (head != nullptr &&
           !free_list_.compare_exchange_weak(head, head->next_free,
                                             std::memory_order_acquire,
                                             std::memory_order_acquire)) {
    }
    if (head != nullptr) {
      head->next_free = nullptr;
      slot.buffer = head;
    } else {
      auto buffer = std::make_unique<ThreadBuffer>(next_auto_tid_++, capacity_);
      slot.buffer = buffer.get();
      buffers_.push_back(std::move(buffer));
    }
    slot.tracer = this;
  }
  return *slot.buffer;
}

void Tracer::SetCurrentThreadIdentity(uint32_t pid, uint32_t tid,
                                      const std::string& thread_name,
                                      const std::string& process_name) {
  ThreadBuffer& buffer = LocalBuffer();
  MutexLock lock(buffer.mu);
  buffer.pid = pid;
  buffer.tid = tid;
  buffer.thread_name = thread_name;
  buffer.process_name = process_name;
}

void Tracer::Record(TracePhase phase, uint32_t name_id, uint64_t arg) {
  ThreadBuffer& buffer = LocalBuffer();
  // The timestamp is taken inside the critical section so that a session
  // boundary (Enable clearing this ring under the same mutex) orders
  // cleanly with in-flight records.
  MutexLock lock(buffer.mu);
  if (buffer.slots.empty()) return;  // registered before any session
  TraceEvent& event = buffer.slots[buffer.next % buffer.slots.size()];
  event.ts_nanos = NowNanos();
  event.name_id = name_id;
  event.phase = phase;
  event.arg = arg;
  ++buffer.next;
}

void Tracer::RecordBegin(uint32_t name_id, uint64_t arg) {
  Record(TracePhase::kBegin, name_id, arg);
}

void Tracer::RecordEnd(uint32_t name_id) {
  Record(TracePhase::kEnd, name_id, 0);
}

void Tracer::RecordInstant(uint32_t name_id, uint64_t arg) {
  Record(TracePhase::kInstant, name_id, arg);
}

TraceSnapshot Tracer::Snapshot() const {
  MutexLock lock(mu_);
  TraceSnapshot snapshot;
  snapshot.names = names_;
  if (snapshot.names.empty()) snapshot.names.push_back("");
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    ThreadTrace trace;
    trace.pid = buffer->pid;
    trace.tid = buffer->tid;
    trace.thread_name = buffer->thread_name;
    trace.process_name = buffer->process_name;
    const uint64_t size = buffer->slots.size();
    const uint64_t count = std::min<uint64_t>(buffer->next, size);
    trace.dropped = buffer->next - count;
    trace.events.reserve(count);
    for (uint64_t i = buffer->next - count; i < buffer->next; ++i) {
      TraceEvent event = buffer->slots[i % size];
      // Events that raced a session boundary can predate the epoch; clamp
      // instead of emitting negative timestamps.
      event.ts_nanos = std::max<int64_t>(0, event.ts_nanos - epoch_nanos_);
      trace.events.push_back(event);
    }
    snapshot.threads.push_back(std::move(trace));
  }
  return snapshot;
}

std::string Tracer::ToChromeTraceJson() const {
  const TraceSnapshot snapshot = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& event_json) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event_json;
  };
  auto name_of = [&snapshot](uint32_t id) -> std::string {
    if (id < snapshot.names.size()) return snapshot.names[id];
    return StrFormat("name-%u", id);
  };

  for (const ThreadTrace& thread : snapshot.threads) {
    if (thread.events.empty()) continue;
    emit(StrFormat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        thread.pid, thread.tid, EscapeJson(thread.process_name).c_str()));
    emit(StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        thread.pid, thread.tid, EscapeJson(thread.thread_name).c_str()));

    // Balanced-pair repair over the ring window: orphan ends (their begin
    // was overwritten by wraparound) are dropped, begins still open at the
    // window's end are closed at the last timestamp.
    std::vector<uint32_t> open;  // name ids of open begins
    int64_t last_ts = 0;
    for (const TraceEvent& event : thread.events) {
      const double ts_micros = static_cast<double>(event.ts_nanos) / 1000.0;
      last_ts = event.ts_nanos;
      switch (event.phase) {
        case TracePhase::kBegin: {
          std::string args;
          if (event.arg != 0) {
            args = StrFormat(",\"args\":{\"v\":%llu}",
                             (unsigned long long)event.arg);
          }
          emit(StrFormat(
              "{\"name\":\"%s\",\"cat\":\"fractal\",\"ph\":\"B\","
              "\"ts\":%.3f,\"pid\":%u,\"tid\":%u%s}",
              EscapeJson(name_of(event.name_id)).c_str(), ts_micros,
              thread.pid, thread.tid, args.c_str()));
          open.push_back(event.name_id);
          break;
        }
        case TracePhase::kEnd: {
          if (open.empty()) break;  // begin lost to wraparound
          open.pop_back();
          emit(StrFormat(
              "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":%u,"
              "\"tid\":%u}",
              EscapeJson(name_of(event.name_id)).c_str(), ts_micros,
              thread.pid, thread.tid));
          break;
        }
        case TracePhase::kInstant:
          emit(StrFormat(
              "{\"name\":\"%s\",\"cat\":\"fractal\",\"ph\":\"i\","
              "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,\"s\":\"t\","
              "\"args\":{\"v\":%llu}}",
              EscapeJson(name_of(event.name_id)).c_str(), ts_micros,
              thread.pid, thread.tid, (unsigned long long)event.arg));
          break;
      }
    }
    const double close_micros = static_cast<double>(last_ts) / 1000.0;
    while (!open.empty()) {
      emit(StrFormat(
          "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":%u,"
          "\"tid\":%u}",
          EscapeJson(name_of(open.back())).c_str(), close_micros, thread.pid,
          thread.tid));
      open.pop_back();
    }
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::ExportChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError(StrFormat("cannot open trace file %s", path.c_str()));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != json.size() || !closed) {
    return InternalError(StrFormat("short write to trace file %s",
                                   path.c_str()));
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace fractal
