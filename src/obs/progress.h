// Mid-step progress reporting. A StepProgressReporter owns one background
// thread that periodically samples the live runtime counters (work units,
// steal counts, shipped bytes — obs/metrics.h) and logs the deltas as
// work-unit throughput and steal rates, so a long fractal step shows signs
// of life before the barrier-aggregated StepTelemetry exists.
//
// Started by Cluster::RunStep when ClusterOptions::progress_interval_ms > 0
// (default off); the reporter is scoped to the step — construction spawns
// the thread, destruction stops and joins it. `StepProgressReporter::mu` is
// a leaf lock (DESIGN.md §5).
#ifndef FRACTAL_OBS_PROGRESS_H_
#define FRACTAL_OBS_PROGRESS_H_

#include <cstdint>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fractal {
namespace obs {

class StepProgressReporter {
 public:
  /// Spawns the sampling thread; logs every `interval_ms` milliseconds.
  explicit StepProgressReporter(int64_t interval_ms);

  /// Stops and joins the sampling thread. Emits no final report: the step
  /// barrier's StepTelemetry is the authoritative end-of-step summary.
  ~StepProgressReporter();

  StepProgressReporter(const StepProgressReporter&) = delete;
  StepProgressReporter& operator=(const StepProgressReporter&) = delete;

 private:
  void Loop(int64_t interval_ms);

  Mutex mu_{"StepProgressReporter::mu"};
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace fractal

#endif  // FRACTAL_OBS_PROGRESS_H_
