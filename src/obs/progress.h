// Mid-step progress reporting. A ProgressSampler turns the live runtime
// counters (work units, steal counts, shipped bytes — obs/metrics.h) into
// interval deltas and publishes them as gauges (`runtime.units_per_sec`,
// per-worker `runtime.worker_units.<w>`) so every consumer — the periodic
// log line, /statusz, tests — renders the same snapshot from one code path.
//
// A StepProgressReporter owns one background thread that drives a sampler
// every interval and logs the result, so a long fractal step shows signs of
// life before the barrier-aggregated StepTelemetry exists. Started by
// Cluster::RunStep when ClusterOptions::progress_interval_ms > 0 (default
// off); the reporter is scoped to the step — construction spawns the
// thread, destruction stops and joins it. `StepProgressReporter::mu` is a
// leaf lock (DESIGN.md §5).
#ifndef FRACTAL_OBS_PROGRESS_H_
#define FRACTAL_OBS_PROGRESS_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace fractal {
namespace obs {

/// One sampling interval's worth of deltas.
struct ProgressSnapshot {
  double interval_seconds = 0;
  uint64_t work_units = 0;        // cumulative, at sample time
  uint64_t work_units_delta = 0;  // over the interval
  uint64_t units_per_sec = 0;
  uint64_t internal_steals_delta = 0;
  uint64_t external_steals_delta = 0;
  uint64_t bytes_shipped_delta = 0;
  /// Per-worker work-unit deltas, indexed by worker id; empty when the
  /// sampler has no per-worker source.
  std::vector<uint64_t> worker_units_delta;
};

/// Fills `*out` (resizing as needed) with cumulative work units per worker,
/// indexed by worker id. Cluster provides one over its workers' counters.
using WorkerUnitsFn = std::function<void(std::vector<uint64_t>* out)>;

/// Stateful delta computer over the process-wide counters. Not thread-safe:
/// each consumer owns its own sampler (deltas are relative to *its* last
/// Sample call). Sample() also publishes UnitsPerSecGauge and the
/// per-worker WorkerUnitsGauge values, last-writer-wins.
class ProgressSampler {
 public:
  explicit ProgressSampler(WorkerUnitsFn worker_units = nullptr);

  /// Computes deltas since the previous Sample() (or construction),
  /// publishes the gauges, and returns the snapshot.
  ProgressSnapshot Sample();

 private:
  WorkerUnitsFn worker_units_;
  WallTimer timer_;
  double last_seconds_ = 0;
  uint64_t last_work_ = 0;
  uint64_t last_internal_ = 0;
  uint64_t last_external_ = 0;
  uint64_t last_bytes_ = 0;
  std::vector<uint64_t> last_worker_units_;
  std::vector<uint64_t> worker_units_now_;
};

class StepProgressReporter {
 public:
  /// Spawns the sampling thread; logs every `interval_ms` milliseconds.
  /// `worker_units` (optional) adds per-worker deltas to the gauges and the
  /// log line.
  explicit StepProgressReporter(int64_t interval_ms,
                                WorkerUnitsFn worker_units = nullptr);

  /// Stops and joins the sampling thread. Emits no final report: the step
  /// barrier's StepTelemetry is the authoritative end-of-step summary.
  ~StepProgressReporter();

  StepProgressReporter(const StepProgressReporter&) = delete;
  StepProgressReporter& operator=(const StepProgressReporter&) = delete;

 private:
  void Loop(int64_t interval_ms, WorkerUnitsFn worker_units);

  Mutex mu_{"StepProgressReporter::mu"};
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace fractal

#endif  // FRACTAL_OBS_PROGRESS_H_
