#include "obs/metrics.h"

#include <sstream>

#include "util/alloc_guard.h"
#include "util/strings.h"

namespace fractal {
namespace obs {

uint64_t Histogram::ApproxPercentile(double p) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const double target = (p / 100.0) * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += BucketCount(i);
    if (static_cast<double>(seen) >= target) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

// Registration is a cold, one-time, lock-taking operation by design — hot
// code caches the returned reference in a function-local static (header
// comment), and that first call can land arbitrarily late (e.g. the first
// galloped kernel of a run), so the map-node/string allocations here must
// not trip an armed AllocGuard.
Counter& MetricsRegistry::GetCounter(const std::string& name) {
  AllocGuard::Allow allow("one-time metric registration");
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  AllocGuard::Allow allow("one-time metric registration");
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  AllocGuard::Allow allow("one-time metric registration");
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << StrFormat("counter   %-32s %llu\n", name.c_str(),
                     (unsigned long long)counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out << StrFormat("gauge     %-32s %lld\n", name.c_str(),
                     (long long)gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out << StrFormat(
        "histogram %-32s count=%llu sum=%llu mean=%.1f p50~%llu p90~%llu "
        "p99~%llu\n",
        name.c_str(), (unsigned long long)histogram->Count(),
        (unsigned long long)histogram->Sum(), histogram->Mean(),
        (unsigned long long)histogram->ApproxPercentile(50),
        (unsigned long long)histogram->ApproxPercentile(90),
        (unsigned long long)histogram->ApproxPercentile(99));
  }
  return out.str();
}

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << "\"" << name
        << "\":" << counter->Value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ",") << "\"" << name << "\":" << gauge->Value();
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << "\"" << name
        << "\":{\"count\":" << histogram->Count()
        << ",\"sum\":" << histogram->Sum() << ",\"buckets\":{";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t bucket_count = histogram->BucketCount(i);
      if (bucket_count == 0) continue;
      out << (first_bucket ? "" : ",") << "\""
          << Histogram::BucketLowerBound(i) << "\":" << bucket_count;
      first_bucket = false;
    }
    out << "}}";
    first = false;
  }
  out << "}}";
  return out.str();
}

namespace {

/// Prometheus metric name: `fractal_` prefix, every non-[a-zA-Z0-9_] byte
/// (the registry uses dots) mapped to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "fractal_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string p = PrometheusName(name) + "_total";
    out << "# TYPE " << p << " counter\n";
    out << p << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " gauge\n";
    out << p << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string p = PrometheusName(name);
    const uint64_t count = histogram->Count();
    out << "# TYPE " << p << " histogram\n";
    // Cumulative buckets; only boundaries with mass below them get a line
    // (the le values stay strictly increasing because buckets are walked in
    // order), and the top bucket (upper bound 2^64-1) folds into +Inf.
    uint64_t cumulative = 0;
    for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
      const uint64_t in_bucket = histogram->BucketCount(i);
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      out << p << "_bucket{le=\"" << Histogram::BucketUpperBound(i) << "\"} "
          << cumulative << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << count << "\n";
    out << p << "_sum " << histogram->Sum() << "\n";
    out << p << "_count " << count << "\n";
    // Percentile companions as their own gauge families: mixing summary
    // quantiles into a histogram family is invalid exposition format.
    for (const double q : {50.0, 90.0, 99.0}) {
      const std::string qp = p + StrFormat("_p%.0f", q);
      out << "# TYPE " << qp << " gauge\n";
      out << qp << " " << histogram->ApproxPercentile(q) << "\n";
    }
  }
  return out.str();
}

namespace {

// The Allow here covers the char* -> std::string key temporary, which is
// constructed before GetCounter's own Allow scope opens.
Counter& NamedCounter(const char* name) {
  AllocGuard::Allow allow("one-time metric registration");
  return MetricsRegistry::Get().GetCounter(name);
}
Histogram& NamedHistogram(const char* name) {
  AllocGuard::Allow allow("one-time metric registration");
  return MetricsRegistry::Get().GetHistogram(name);
}
Gauge& NamedGauge(const char* name) {
  AllocGuard::Allow allow("one-time metric registration");
  return MetricsRegistry::Get().GetGauge(name);
}

}  // namespace

Counter& WorkUnitsCounter() {
  static Counter& counter = NamedCounter("runtime.work_units");
  return counter;
}
Counter& InternalStealsCounter() {
  static Counter& counter = NamedCounter("runtime.steals_internal");
  return counter;
}
Counter& ExternalStealsCounter() {
  static Counter& counter = NamedCounter("runtime.steals_external");
  return counter;
}
Counter& BytesShippedCounter() {
  static Counter& counter = NamedCounter("runtime.bytes_shipped");
  return counter;
}
Counter& ExtensionTestsCounter() {
  static Counter& counter = NamedCounter("runtime.extension_tests");
  return counter;
}
Counter& StepsCounter() {
  static Counter& counter = NamedCounter("runtime.steps");
  return counter;
}
Counter& StepsDegradedCounter() {
  static Counter& counter = NamedCounter("runtime.steps_degraded");
  return counter;
}
Counter& WorkersCrashedCounter() {
  static Counter& counter = NamedCounter("runtime.workers_crashed");
  return counter;
}
Counter& UnitsSalvagedCounter() {
  static Counter& counter = NamedCounter("runtime.units_salvaged");
  return counter;
}
Counter& UnitsReplayedCounter() {
  static Counter& counter = NamedCounter("runtime.units_replayed");
  return counter;
}
Counter& StealTimeoutsCounter() {
  static Counter& counter = NamedCounter("bus.steal_timeouts");
  return counter;
}
Counter& DroppedRequestsCounter() {
  static Counter& counter = NamedCounter("bus.requests_dropped");
  return counter;
}
Counter& IntersectionKernelsCounter() {
  static Counter& counter = NamedCounter("enumerate.intersections");
  return counter;
}
Counter& GallopedKernelsCounter() {
  static Counter& counter = NamedCounter("enumerate.galloped");
  return counter;
}
Counter& ScratchHitsCounter() {
  static Counter& counter = NamedCounter("enumerate.scratch_hits");
  return counter;
}
Counter& ScratchMissesCounter() {
  static Counter& counter = NamedCounter("enumerate.scratch_misses");
  return counter;
}

Counter& QueriesAdmittedCounter() {
  static Counter& counter = NamedCounter("runtime.queries_admitted");
  return counter;
}
Counter& QueriesRejectedCounter() {
  static Counter& counter = NamedCounter("runtime.queries_rejected");
  return counter;
}
Counter& QueriesCancelledCounter() {
  static Counter& counter = NamedCounter("runtime.queries_cancelled");
  return counter;
}
Counter& QueriesDeadlineExceededCounter() {
  static Counter& counter = NamedCounter("runtime.queries_deadline_exceeded");
  return counter;
}
Counter& QueriesCompletedCounter() {
  static Counter& counter = NamedCounter("runtime.queries_completed");
  return counter;
}

Counter& ProfilerSamplesCounter() {
  static Counter& counter = NamedCounter("obs.profiler_samples");
  return counter;
}
Counter& ExpositionRequestsCounter() {
  static Counter& counter = NamedCounter("obs.exposition_requests");
  return counter;
}

Gauge& SuspectVictimsGauge() {
  static Gauge& gauge = NamedGauge("runtime.suspect_victims");
  return gauge;
}
Gauge& LedgerBytesGauge() {
  static Gauge& gauge = NamedGauge("runtime.ledger_bytes");
  return gauge;
}
Gauge& StepActiveGauge() {
  static Gauge& gauge = NamedGauge("runtime.step_active");
  return gauge;
}
Gauge& CurrentStepGauge() {
  static Gauge& gauge = NamedGauge("runtime.current_step");
  return gauge;
}
Gauge& UnitsPerSecGauge() {
  static Gauge& gauge = NamedGauge("runtime.units_per_sec");
  return gauge;
}
Gauge& QueriesActiveGauge() {
  static Gauge& gauge = NamedGauge("runtime.queries_active");
  return gauge;
}
Gauge& QueriesQueuedGauge() {
  static Gauge& gauge = NamedGauge("runtime.queries_queued");
  return gauge;
}
Gauge& QueryUnitsGauge(uint64_t query_id) {
  // Same dynamic-suffix convention as WorkerUnitsGauge below: the base
  // name "runtime.query_units" is registered for the lint, instances carry
  // ".<id>". Barrier-rate call sites only.
  AllocGuard::Allow allow("one-time metric registration");
  return MetricsRegistry::Get().GetGauge(
      StrFormat("runtime.query_units.%llu", (unsigned long long)query_id));
}
Gauge& WorkerUnitsGauge(uint32_t worker) {
  // Registered under the lint-visible base name "runtime.worker_units";
  // the dynamic per-worker suffix is invisible to the registered-name rule
  // by design (sampler-rate call sites only).
  AllocGuard::Allow allow("one-time metric registration");
  return MetricsRegistry::Get().GetGauge(
      StrFormat("runtime.worker_units.%u", worker));
}

Histogram& StealRttHistogram() {
  static Histogram& histogram = NamedHistogram("bus.steal_rtt_us");
  return histogram;
}
Histogram& EncodeTimeHistogram() {
  static Histogram& histogram = NamedHistogram("codec.encode_ns");
  return histogram;
}
Histogram& DecodeTimeHistogram() {
  static Histogram& histogram = NamedHistogram("codec.decode_ns");
  return histogram;
}
Histogram& ExtensionBatchHistogram() {
  static Histogram& histogram = NamedHistogram("enumerate.batch_size");
  return histogram;
}
Histogram& RetryBackoffHistogram() {
  static Histogram& histogram = NamedHistogram("bus.retry_backoff_us");
  return histogram;
}

}  // namespace obs
}  // namespace fractal
