#include "obs/profiler.h"

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#if defined(__linux__)
#include <dlfcn.h>
#include <pthread.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <cxxabi.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/alloc_guard.h"
#include "util/logging.h"
#include "util/strings.h"

// Older glibc spells the SIGEV_THREAD_ID target field through an internal
// union member without the POSIX-next alias.
#if defined(__linux__) && !defined(sigev_notify_thread_id)
#define sigev_notify_thread_id _sigev_un._tid
#endif

// Deep frame-pointer walks read stack words between frames, which ASan/MSan
// may have poisoned (redzones, unpoisoned-on-return memory). Under those
// sanitizers we keep only the leaf pc from the interrupted context — still
// enough for the "samples land in the spinning function" contract.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_MEMORY__)
#define FRACTAL_PROFILER_LEAF_ONLY 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#define FRACTAL_PROFILER_LEAF_ONLY 1
#endif
#endif
#ifndef FRACTAL_PROFILER_LEAF_ONLY
#define FRACTAL_PROFILER_LEAF_ONLY 0
#endif

namespace fractal {
namespace obs {

namespace {
constexpr int kMaxFrames = 32;
constexpr size_t kRingCapacity = 4096;  // ~40 s of samples at 100 Hz
}  // namespace

/// One sample slot. Written by the SIGPROF handler on the owning thread,
/// read by Snapshot() on any thread; the `next` counter's release store
/// publishes the slot, and Snapshot re-checks `next` afterwards to discard
/// slots that were overwritten mid-copy (ring wraparound race).
struct ProfileSample {
  uintptr_t pcs[kMaxFrames];
  int32_t depth;
  const char* span;
};

struct ProfileBuffer {
  /// Intrusive link for Profiler::free_list_ (thread-exit reuse).
  ProfileBuffer* next_free = nullptr;

  // Identity — written at registration (before any timer exists for the
  // thread), read by the handler and by exports.
  uint32_t tid = 0;
  char name[64] = {0};
  uintptr_t stack_lo = 0;  // 0 = unknown: leaf-only capture
  uintptr_t stack_hi = 0;
  SpanStack* spans = nullptr;

  std::atomic<bool> live{false};  // owning thread still running
  /// Timer lifecycle. `timer_armed` serializes arm/disarm between Start(),
  /// Stop(), and the owning thread's exit path (which may not lock): only
  /// the side winning the exchange touches `timer`.
  std::atomic<bool> timer_armed{false};
  timer_t timer{};

  /// Samples ever taken; the valid window is the trailing
  /// min(next, kRingCapacity) slots. Release store publishes slot writes.
  std::atomic<uint64_t> next{0};
  ProfileSample slots[kRingCapacity];
};

namespace {

/// Raw pointer the SIGPROF handler reads. Separate from the registration
/// slot below and trivially destructible, so it is never in a
/// partially-destroyed state; the exit path nulls it *before* recycling the
/// ring.
constinit thread_local ProfileBuffer* tls_profile_buffer = nullptr;

uint32_t CurrentTid() {
#if defined(__linux__)
  return static_cast<uint32_t>(syscall(SYS_gettid));
#else
  return 0;
#endif
}

void DisarmOwnTimerLockFree(ProfileBuffer* buffer) {
#if defined(__linux__)
  if (buffer->timer_armed.exchange(false, std::memory_order_acq_rel)) {
    timer_delete(buffer->timer);
  }
#else
  (void)buffer;
#endif
}

#if defined(__linux__)
/// The SIGPROF handler. May touch ONLY: tls_profile_buffer, the ring's raw
/// slot memory, relaxed/release atomics, the interrupted ucontext, and the
/// thread's SpanStack (same-thread data). No allocation, no locks, no
/// non-async-signal-safe libc. errno is saved/restored because the handler
/// interrupts arbitrary code.
void SigprofHandler(int /*signum*/, siginfo_t* /*info*/, void* ucontext) {
  const int saved_errno = errno;
  ProfileBuffer* buffer = tls_profile_buffer;
  if (buffer != nullptr) {
    const uint64_t n = buffer->next.load(std::memory_order_relaxed);
    ProfileSample& slot = buffer->slots[n % kRingCapacity];
    int depth = 0;
    uintptr_t pc = 0;
    uintptr_t fp = 0;
    auto* uc = static_cast<ucontext_t*>(ucontext);
#if defined(__x86_64__)
    pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
    pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
    fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
    (void)uc;
#endif
    if (pc != 0) slot.pcs[depth++] = pc;
#if FRACTAL_PROFILER_LEAF_ONLY
    (void)fp;  // sanitizers poison stack redzones; no frame walk
#else
    // Frame-pointer chain walk (the build compiles with
    // -fno-omit-frame-pointer). Every dereference is bounds-checked against
    // the stack extent captured at registration and required to be aligned
    // and strictly ascending, so a corrupt or foreign frame terminates the
    // walk instead of faulting.
    if (buffer->stack_lo != 0) {
      while (depth < kMaxFrames && fp >= buffer->stack_lo &&
             fp + 2 * sizeof(uintptr_t) <= buffer->stack_hi &&
             (fp & (sizeof(uintptr_t) - 1)) == 0) {
        const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
        const uintptr_t ret = frame[1];
        const uintptr_t next_fp = frame[0];
        if (ret < 0x1000) break;  // not a plausible code address
        slot.pcs[depth++] = ret;
        if (next_fp <= fp) break;  // frames must ascend
        fp = next_fp;
      }
    }
#endif
    slot.depth = depth;
    slot.span = buffer->spans != nullptr ? buffer->spans->Top() : nullptr;
    buffer->next.store(n + 1, std::memory_order_release);
  }
  errno = saved_errno;
}
#endif  // __linux__

/// Thread-exit unregistration. Mirrors Tracer::LocalBuffer's Slot: runs in
/// a thread_local destructor where lockdep's own thread_local may already
/// be destroyed, so it must not take an instrumented Mutex — hence the
/// atomic timer disarm and the lock-free Treiber push.
struct TlsSlot {
  Profiler* profiler = nullptr;
  ProfileBuffer* buffer = nullptr;
  ~TlsSlot();
};

thread_local TlsSlot tls_slot;

}  // namespace

// Out-of-line so it can reach Profiler::free_list_ (friend struct below
// can't be in an anonymous namespace and still match the friend
// declaration, so the push is delegated through this named struct).
struct ProfileTlsSlot {
  static void Unregister(Profiler* profiler, ProfileBuffer* buffer) {
    // Order matters: stop deliveries, hide the ring from any straggler
    // signal, only then recycle. A SIGPROF already in flight between the
    // disarm and the null store writes one sample into the ring, which is
    // harmless (the ring is not freed, merely listed for reuse).
    DisarmOwnTimerLockFree(buffer);
    tls_profile_buffer = nullptr;
    buffer->live.store(false, std::memory_order_release);
    ProfileBuffer* head =
        profiler->free_list_.load(std::memory_order_relaxed);
    do {
      buffer->next_free = head;
    } while (!profiler->free_list_.compare_exchange_weak(
        head, buffer, std::memory_order_release, std::memory_order_relaxed));
  }
};

namespace {
TlsSlot::~TlsSlot() {
  if (buffer != nullptr) ProfileTlsSlot::Unregister(profiler, buffer);
}
}  // namespace

uint64_t ProfileSnapshot::TotalSamples() const {
  uint64_t total = 0;
  for (const ThreadProfile& thread : threads) total += thread.stacks.size();
  return total;
}

Profiler& Profiler::Get() {
  static Profiler* profiler = new Profiler();  // leaked: see class comment
  return *profiler;
}

void Profiler::RegisterCurrentThread(const char* name) {
  // Touch the span stack now so its TLS is materialized outside the signal
  // handler.
  SpanStack& spans = CurrentSpanStack();
  if (tls_slot.buffer != nullptr) {
    // Already registered: refresh the label only.
    MutexLock lock(mu_);
    std::snprintf(tls_slot.buffer->name, sizeof(tls_slot.buffer->name), "%s",
                  name);
    return;
  }
  AllocGuard::Allow allow("profiler ring registration for a new thread");
  MutexLock lock(mu_);
  // Single consumer: pops only happen here, under mu_ (same ABA argument as
  // Tracer::LocalBuffer).
  ProfileBuffer* head = free_list_.load(std::memory_order_acquire);
  while (head != nullptr &&
         !free_list_.compare_exchange_weak(head, head->next_free,
                                           std::memory_order_acquire,
                                           std::memory_order_acquire)) {
  }
  ProfileBuffer* buffer = nullptr;
  if (head != nullptr) {
    head->next_free = nullptr;
    buffer = head;
  } else {
    auto owned = std::make_unique<ProfileBuffer>();
    buffer = owned.get();
    buffers_.push_back(std::move(owned));
  }
  buffer->tid = CurrentTid();
  std::snprintf(buffer->name, sizeof(buffer->name), "%s", name);
  buffer->stack_lo = 0;
  buffer->stack_hi = 0;
#if defined(__linux__)
  {
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
      void* stack_addr = nullptr;
      size_t stack_size = 0;
      if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
        buffer->stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
        buffer->stack_hi = buffer->stack_lo + stack_size;
      }
      pthread_attr_destroy(&attr);
    }
  }
#endif
  buffer->spans = &spans;
  buffer->live.store(true, std::memory_order_release);
  tls_slot.profiler = this;
  tls_slot.buffer = buffer;
  tls_profile_buffer = buffer;
  if (running_.load(std::memory_order_acquire)) ArmTimer(buffer, hz_);
}

void Profiler::ArmTimer(ProfileBuffer* buffer, int hz) {
#if defined(__linux__)
  // A stale timer can survive on a recycled ring when its previous owner
  // raced Start() at exit (the exit path's exchange won, so Start()'s arm
  // targeted a dead tid — deliveries are silently dropped by the kernel).
  // Reap it before arming a fresh one.
  if (buffer->timer_armed.exchange(false, std::memory_order_acq_rel)) {
    timer_delete(buffer->timer);
  }
  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event.sigev_notify_thread_id = static_cast<pid_t>(buffer->tid);
  timer_t timer;
  if (timer_create(CLOCK_MONOTONIC, &event, &timer) != 0) return;
  buffer->timer = timer;
  const long interval_ns = 1000000000L / hz;
  struct itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer, 0, &spec, nullptr) != 0) {
    timer_delete(timer);
    return;
  }
  buffer->timer_armed.store(true, std::memory_order_release);
#else
  (void)buffer;
  (void)hz;
#endif
}

void Profiler::DisarmTimer(ProfileBuffer* buffer) {
#if defined(__linux__)
  if (buffer->timer_armed.exchange(false, std::memory_order_acq_rel)) {
    timer_delete(buffer->timer);
  }
#else
  (void)buffer;
#endif
}

Status Profiler::Start(int hz) {
#if !defined(__linux__)
  (void)hz;
  return UnimplementedError("sampling profiler requires Linux timers");
#else
  hz = std::min(std::max(hz, 1), kMaxHz);
  MutexLock lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("profiler already running");
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &SigprofHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, nullptr) != 0) {
    return InternalError(
        StrFormat("sigaction(SIGPROF) failed: %s", std::strerror(errno)));
  }
  hz_ = hz;
  samples_at_start_ = 0;
  for (const auto& buffer : buffers_) {
    samples_at_start_ += buffer->next.load(std::memory_order_acquire);
  }
  // Arm span tracking before the first tick so early samples can already
  // attribute to open spans.
  Tracer::SetSpanTracking(true);
  running_.store(true, std::memory_order_release);
  for (const auto& buffer : buffers_) {
    if (buffer->live.load(std::memory_order_acquire)) {
      ArmTimer(buffer.get(), hz_);
    }
  }
  return Status::Ok();
#endif
}

void Profiler::Stop() {
  MutexLock lock(mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  for (const auto& buffer : buffers_) DisarmTimer(buffer.get());
  Tracer::SetSpanTracking(false);
  uint64_t samples_now = 0;
  for (const auto& buffer : buffers_) {
    samples_now += buffer->next.load(std::memory_order_acquire);
  }
  ProfilerSamplesCounter().Add(samples_now - samples_at_start_);
}

std::vector<uint64_t> Profiler::Marks() const {
  MutexLock lock(mu_);
  std::vector<uint64_t> marks;
  marks.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    marks.push_back(buffer->next.load(std::memory_order_acquire));
  }
  return marks;
}

ProfileSnapshot Profiler::Snapshot(const std::vector<uint64_t>* since) const {
  ProfileSnapshot snapshot;
  MutexLock lock(mu_);
  snapshot.hz = hz_;
  for (size_t b = 0; b < buffers_.size(); ++b) {
    const ProfileBuffer& buffer = *buffers_[b];
    ThreadProfile thread;
    thread.tid = buffer.tid;
    thread.name = buffer.name;
    thread.live = buffer.live.load(std::memory_order_acquire);
    const uint64_t end = buffer.next.load(std::memory_order_acquire);
    const uint64_t wrap_begin = end > kRingCapacity ? end - kRingCapacity : 0;
    // Rings registered after Marks() was taken have no cursor entry; their
    // whole window is new.
    const uint64_t window_begin =
        (since != nullptr && b < since->size()) ? (*since)[b] : 0;
    const uint64_t begin = std::max(wrap_begin, window_begin);
    thread.truncated = begin - window_begin;  // lost to wraparound
    for (uint64_t i = begin; i < end; ++i) {
      const ProfileSample& slot = buffer.slots[i % kRingCapacity];
      ProfileStack stack;
      const int depth = std::min<int32_t>(slot.depth, kMaxFrames);
      stack.pcs.assign(slot.pcs, slot.pcs + std::max(depth, 0));
      stack.span = slot.span;
      // Overwrite-race check: if the handler lapped this slot while we were
      // copying, the copy may be torn — discard it.
      const uint64_t end_now = buffer.next.load(std::memory_order_acquire);
      if (end_now > i + kRingCapacity) {
        ++thread.truncated;
        continue;
      }
      thread.stacks.push_back(std::move(stack));
    }
    snapshot.threads.push_back(std::move(thread));
  }
  return snapshot;
}

std::string Profiler::Symbolize(uintptr_t pc) {
#if defined(__linux__)
  Dl_info info;
  // Subtract 1 for non-leaf return addresses upstream of the call; callers
  // pass the pc they want resolved, so resolve it as-is here and let
  // CollapsedStacks adjust.
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Drop the argument list: collapsed-stack consumers treat ';' and
    // whitespace as structure, and "Foo::Bar" is what flame graphs show
    // anyway.
    const size_t paren = name.find('(');
    if (paren != std::string::npos && paren > 0) name.resize(paren);
    return name;
  }
#endif
  return StrFormat("0x%" PRIxPTR, pc);
}

namespace {

/// Frame name with a per-export memoization map (symbolization is the
/// expensive part of an export).
const std::string& SymbolizeCached(
    uintptr_t pc, std::unordered_map<uintptr_t, std::string>* cache) {
  auto it = cache->find(pc);
  if (it == cache->end()) {
    it = cache->emplace(pc, Profiler::Symbolize(pc)).first;
  }
  return it->second;
}

}  // namespace

std::string Profiler::CollapsedStacks(const ProfileSnapshot& snapshot) {
  std::unordered_map<uintptr_t, std::string> symbol_cache;
  std::map<std::string, uint64_t> collapsed;  // sorted: deterministic output
  std::string line;
  for (const ThreadProfile& thread : snapshot.threads) {
    for (const ProfileStack& stack : thread.stacks) {
      if (stack.pcs.empty()) continue;
      line.clear();
      line += thread.name.empty() ? "thread" : thread.name;
      // pcs are leaf-first; collapsed format is root-first. Non-leaf
      // entries are return addresses, so resolve them one byte back into
      // the call instruction.
      for (size_t i = stack.pcs.size(); i-- > 0;) {
        const uintptr_t pc = i == 0 ? stack.pcs[i] : stack.pcs[i] - 1;
        line += ';';
        line += SymbolizeCached(pc, &symbol_cache);
      }
      collapsed[line] += 1;
    }
  }
  std::string out;
  for (const auto& [stack, count] : collapsed) {
    out += stack;
    out += StrFormat(" %llu\n", (unsigned long long)count);
  }
  return out;
}

std::string Profiler::SpanProfile(const ProfileSnapshot& snapshot) {
  std::map<std::string, uint64_t> by_span;
  uint64_t total = 0;
  for (const ThreadProfile& thread : snapshot.threads) {
    for (const ProfileStack& stack : thread.stacks) {
      by_span[stack.span != nullptr ? stack.span : "(no span)"] += 1;
      ++total;
    }
  }
  std::vector<std::pair<std::string, uint64_t>> rows(by_span.begin(),
                                                     by_span.end());
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  std::ostringstream out;
  out << StrFormat("span self-time profile: %llu samples @ %d Hz\n",
                   (unsigned long long)total, snapshot.hz);
  for (const auto& [span, count] : rows) {
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(count) / total;
    out << StrFormat("%8llu  %5.1f%%  %s\n", (unsigned long long)count, pct,
                     span.c_str());
  }
  return out.str();
}

Status Profiler::WriteCollapsed(const std::string& path) const {
  const ProfileSnapshot snapshot = Snapshot();
  std::string text = CollapsedStacks(snapshot);
  // The span table rides along as comments; flamegraph.pl and speedscope
  // both ignore lines starting with '#'.
  std::istringstream spans(SpanProfile(snapshot));
  std::string span_line;
  while (std::getline(spans, span_line)) {
    text += "# ";
    text += span_line;
    text += '\n';
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError(
        StrFormat("cannot open profile file %s", path.c_str()));
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != text.size() || !closed) {
    return InternalError(
        StrFormat("short write to profile file %s", path.c_str()));
  }
  return Status::Ok();
}

ProfileSession::ProfileSession(std::string path, int hz)
    : path_(std::move(path)) {
  if (path_.empty()) return;
  Profiler::Get().RegisterCurrentThread("main");
  const Status status = Profiler::Get().Start(hz);
  if (!status.ok()) {
    FRACTAL_LOG(Warning) << "profiler start failed: " << status;
    path_.clear();
  }
}

ProfileSession::~ProfileSession() {
  if (path_.empty()) return;
  Profiler::Get().Stop();
  const Status status = Profiler::Get().WriteCollapsed(path_);
  if (!status.ok()) {
    FRACTAL_LOG(Warning) << "profile export failed: " << status;
  } else {
    FRACTAL_LOG(Info) << "profile written to " << path_;
  }
}

}  // namespace obs
}  // namespace fractal
