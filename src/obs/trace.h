// Always-available, low-overhead execution tracing (the observability layer
// of DESIGN.md §6). Every thread that records events owns a fixed-capacity
// ring buffer of timestamped begin/end/instant events with string-interned
// names; rings are merged on demand into one Chrome `trace_event` JSON file
// that loads in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Recording is armed globally with Tracer::Enable(). While tracing is
// *disabled* (the default), every instrumentation site costs one relaxed
// atomic load plus a predicted branch — a couple of nanoseconds — so the
// spans stay compiled into release builds. While *enabled*, one event costs
// a clock read plus a short uncontended critical section on the recording
// thread's own ring (~tens of ns); see the overhead budget in DESIGN.md §6.
//
// Usage:
//   FRACTAL_TRACE_SPAN("worker/drain_roots");           // RAII begin/end
//   FRACTAL_TRACE_SPAN_V("executor/step", step_index);  // span with a value
//   FRACTAL_TRACE_INSTANT("dfs/expand", depth);         // point event
//
// Names are `layer/what` literals; the layer prefix is how the CI trace
// checker groups spans. Ring wraparound drops the *oldest* events of a
// thread; the exporter repairs the resulting unbalanced begin/end pairs
// (orphan ends are dropped, still-open begins are closed at the last
// timestamp), so the emitted JSON always has balanced B/E pairs.
//
// Thread safety: everything here may be called from any thread at any time.
// Lock classes (both leaves, DESIGN.md §5): `Tracer::mu` (thread registry +
// name table) and `Tracer::ThreadBuffer::mu` (one per recording thread).
#ifndef FRACTAL_OBS_TRACE_H_
#define FRACTAL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fractal {
namespace obs {

enum class TracePhase : uint8_t { kBegin, kEnd, kInstant };

/// One recorded event. 24 bytes; rings are arrays of these.
struct TraceEvent {
  int64_t ts_nanos = 0;   // relative to the Enable() epoch in snapshots
  uint32_t name_id = 0;   // interned via Tracer::InternName
  TracePhase phase = TracePhase::kInstant;
  uint64_t arg = 0;       // span/instant payload (exported as args.v)
};

/// Snapshot of one thread's ring plus its trace identity.
struct ThreadTrace {
  uint32_t pid = 0;          // Chrome "process": 0 = driver, 1+w = worker w
  uint32_t tid = 0;          // Chrome "thread" within the pid
  std::string thread_name;
  std::string process_name;
  uint64_t dropped = 0;      // events lost to ring wraparound
  std::vector<TraceEvent> events;  // oldest -> newest, timestamps ascending
};

/// Consistent snapshot of every ring, for export and tests.
struct TraceSnapshot {
  std::vector<std::string> names;  // indexed by TraceEvent::name_id; [0]=""
  std::vector<ThreadTrace> threads;
};

struct ThreadBuffer;  // defined in trace.cc

/// Per-thread stack of the names of currently-open FRACTAL_TRACE_SPANs,
/// maintained by TraceSpan while span tracking is armed (the sampling
/// profiler arms it — obs/profiler.h — so each sample can be joined against
/// the innermost open span). All writes come from the owning thread; the
/// only concurrent reader is the SIGPROF handler *on that same thread*, so
/// release stores (compiling to plain stores plus a compiler barrier)
/// suffice and nothing here ever allocates or locks.
struct SpanStack {
  static constexpr uint32_t kMaxDepth = 64;
  /// Open span names, outermost first. Entries are the string literals of
  /// the trace macros, so the pointers are valid for the process lifetime.
  const char* names[kMaxDepth] = {};
  /// Current nesting depth. May exceed kMaxDepth transiently (deeper spans
  /// keep counting but are not recorded by name).
  std::atomic<uint32_t> depth{0};

  /// Innermost open span name, or nullptr. Async-signal-safe on the owning
  /// thread.
  const char* Top() const {
    const uint32_t d = depth.load(std::memory_order_relaxed);
    return (d == 0 || d > kMaxDepth) ? nullptr : names[d - 1];
  }
};

/// The calling thread's span stack. Constant-initialized thread_local: safe
/// to touch from instrumentation, but the *first* touch from a signal
/// handler could hit lazy TLS setup — the profiler touches it at thread
/// registration so the handler never takes that path.
SpanStack& CurrentSpanStack();

/// Process-wide trace recorder. Never destroyed (leaked singleton), so
/// worker threads may record during static destruction of other objects.
class Tracer {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1u << 16;

  /// Bits of the instrumentation flags word. One relaxed load of the word
  /// is the entire disabled-path cost of a trace macro, shared by tracing
  /// and profiler span tracking.
  static constexpr uint32_t kTracingFlag = 1u << 0;
  static constexpr uint32_t kSpanStackFlag = 1u << 1;

  static Tracer& Get();

  /// The macro fast path: one relaxed load of the combined flags word.
  static uint32_t Flags() { return flags_.load(std::memory_order_relaxed); }

  /// When false, instrumentation sites record no ring events.
  static bool TracingEnabled() { return (Flags() & kTracingFlag) != 0; }

  /// Arms/disarms per-thread open-span bookkeeping (SpanStack) without
  /// recording ring events. Used by the sampling profiler.
  static void SetSpanTracking(bool enabled) {
    if (enabled) {
      flags_.fetch_or(kSpanStackFlag, std::memory_order_relaxed);
    } else {
      flags_.fetch_and(~kSpanStackFlag, std::memory_order_relaxed);
    }
  }

  /// Starts a fresh tracing session: clears every thread's ring, sizes the
  /// rings to `events_per_thread` events, resets the time epoch, and arms
  /// recording. Thread identities survive across sessions.
  void Enable(size_t events_per_thread = kDefaultEventsPerThread)
      EXCLUDES(mu_);

  /// Disarms recording. Recorded events are kept for export; spans already
  /// open still record their end event so pairs stay balanced.
  void Disable();

  /// Interns `name`, returning its stable nonzero id. Idempotent.
  uint32_t InternName(const char* name) EXCLUDES(mu_);

  /// Labels the calling thread for the exported trace. Workers call this
  /// once at thread start (only when tracing is already enabled — enable
  /// the tracer before building the cluster): pid groups threads into
  /// Perfetto "processes" (1 + worker id; pid 0 is the driver), tid orders
  /// them within the group. Unlabeled threads get pid 0 and a unique
  /// auto-assigned tid.
  void SetCurrentThreadIdentity(uint32_t pid, uint32_t tid,
                                const std::string& thread_name,
                                const std::string& process_name)
      EXCLUDES(mu_);

  // Recording entry points; prefer the FRACTAL_TRACE_* macros.
  void RecordBegin(uint32_t name_id, uint64_t arg = 0);
  void RecordEnd(uint32_t name_id);
  void RecordInstant(uint32_t name_id, uint64_t arg = 0);

  /// Copies every ring (timestamps rebased to the Enable() epoch,
  /// clamped at 0). Safe to call while other threads record.
  TraceSnapshot Snapshot() const EXCLUDES(mu_);

  /// Renders the merged rings as Chrome trace_event JSON ("traceEvents"
  /// array of B/E/i/M events). Guaranteed balanced B/E pairs per thread
  /// and non-decreasing timestamps within each thread.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status ExportChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;

  ThreadBuffer& LocalBuffer() EXCLUDES(mu_);
  void Record(TracePhase phase, uint32_t name_id, uint64_t arg);

  static std::atomic<uint32_t> flags_;

  mutable Mutex mu_{"Tracer::mu"};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
  /// Treiber stack of rings whose owning thread exited, available for reuse
  /// (see Tracer::LocalBuffer): bounds registry growth under thread churn.
  /// Lock-free on purpose — the push runs in a thread_local destructor at
  /// thread exit, after the instrumented Mutex's own per-thread lockdep
  /// state may already be destroyed, so no Mutex may be taken there. Pops
  /// are serialized under mu_ (single consumer), which makes the stack
  /// ABA-safe.
  std::atomic<ThreadBuffer*> free_list_{nullptr};
  std::vector<std::string> names_ GUARDED_BY(mu_);  // [0] reserved
  size_t capacity_ GUARDED_BY(mu_) = 0;
  uint32_t next_auto_tid_ GUARDED_BY(mu_) = 0;
  int64_t epoch_nanos_ GUARDED_BY(mu_) = 0;
};

/// Per-call-site name cache: interns on first use, then one relaxed load.
/// Constant-initialized so `static TraceName` at block scope has no guard.
class TraceName {
 public:
  constexpr explicit TraceName(const char* name) : name_(name) {}

  uint32_t id() {
    uint32_t v = id_.load(std::memory_order_relaxed);
    if (v == 0) {
      v = Tracer::Get().InternName(name_);
      id_.store(v, std::memory_order_relaxed);
    }
    return v;
  }

  /// The call site's name literal (process-lifetime storage). Used by
  /// SpanStack entries, which must not intern (interning locks).
  const char* raw_name() const { return name_; }

 private:
  const char* name_;
  std::atomic<uint32_t> id_{0};
};

/// RAII begin/end pair. When all instrumentation is disabled at
/// construction, both ends are skipped (even if tracing is enabled
/// mid-span, keeping pairs balanced); when enabled at construction, the end
/// always records. When span tracking is armed, the span's name literal is
/// additionally pushed on the thread's SpanStack for the duration so
/// profiler samples can be attributed to it.
class TraceSpan {
 public:
  explicit TraceSpan(TraceName& name, uint64_t arg = 0) {
    const uint32_t flags = Tracer::Flags();
    if (flags == 0) return;  // the disabled path: one relaxed load
    if ((flags & Tracer::kSpanStackFlag) != 0) {
      SpanStack& stack = CurrentSpanStack();
      const uint32_t d = stack.depth.load(std::memory_order_relaxed);
      if (d < SpanStack::kMaxDepth) stack.names[d] = name.raw_name();
      stack.depth.store(d + 1, std::memory_order_release);
      pushed_ = &stack;
    }
    if ((flags & Tracer::kTracingFlag) != 0) {
      name_id_ = name.id();
      Tracer::Get().RecordBegin(name_id_, arg);
    }
  }
  ~TraceSpan() {
    if (pushed_ != nullptr) {
      const uint32_t d = pushed_->depth.load(std::memory_order_relaxed);
      if (d > 0) pushed_->depth.store(d - 1, std::memory_order_release);
    }
    if (name_id_ != 0) Tracer::Get().RecordEnd(name_id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  uint32_t name_id_ = 0;       // 0 = not recording ring events
  SpanStack* pushed_ = nullptr;  // non-null = pop on destruction
};

inline void TraceInstant(TraceName& name, uint64_t arg = 0) {
  if (!Tracer::TracingEnabled()) return;
  Tracer::Get().RecordInstant(name.id(), arg);
}

}  // namespace obs
}  // namespace fractal

#define FRACTAL_TRACE_CONCAT_INNER_(a, b) a##b
#define FRACTAL_TRACE_CONCAT_(a, b) FRACTAL_TRACE_CONCAT_INNER_(a, b)

/// Traces the enclosing scope as a span named by the string literal `name`,
/// carrying `value` (shown as args.v on the begin event).
#define FRACTAL_TRACE_SPAN_V(name, value)                                  \
  static ::fractal::obs::TraceName FRACTAL_TRACE_CONCAT_(                  \
      fractal_trace_name_, __LINE__){name};                                \
  ::fractal::obs::TraceSpan FRACTAL_TRACE_CONCAT_(fractal_trace_span_,     \
                                                  __LINE__)(               \
      FRACTAL_TRACE_CONCAT_(fractal_trace_name_, __LINE__),                \
      static_cast<uint64_t>(value))

/// Traces the enclosing scope as a span named by the string literal `name`.
#define FRACTAL_TRACE_SPAN(name) FRACTAL_TRACE_SPAN_V(name, 0)

/// Records a point event named `name` with payload `value`.
#define FRACTAL_TRACE_INSTANT(name, value)                            \
  do {                                                                \
    static ::fractal::obs::TraceName fractal_trace_iname_{name};      \
    ::fractal::obs::TraceInstant(fractal_trace_iname_,                \
                                 static_cast<uint64_t>(value));       \
  } while (0)

#endif  // FRACTAL_OBS_TRACE_H_
