// Registry of every metric and trace name the system emits — the single
// source of truth checked by tools/fractal_lint.py (rule: metric-name).
// Metric and trace names are plain string literals at their use sites;
// without a registry, a typo silently creates a fresh counter and the
// dashboards/tests reading the intended name see zeros forever. Any name
// passed to MetricsRegistry::GetCounter/GetGauge/GetHistogram or to a
// FRACTAL_TRACE_* macro inside src/ must appear below (tests may mint
// ad-hoc "test.*" names).
//
// To add a metric: add the literal here first, then use it. The lint points
// at this file when it flags an unregistered name.
#ifndef FRACTAL_OBS_METRIC_NAMES_H_
#define FRACTAL_OBS_METRIC_NAMES_H_

#include <string_view>

namespace fractal {
namespace obs {

/// Counter, gauge, and histogram names (obs/metrics.h).
inline constexpr std::string_view kMetricNames[] = {
    // Counters — runtime layer.
    "runtime.work_units",
    "runtime.steals_internal",
    "runtime.steals_external",
    "runtime.bytes_shipped",
    "runtime.extension_tests",
    "runtime.steps",
    "runtime.steps_degraded",
    "runtime.workers_crashed",
    "runtime.units_salvaged",
    "runtime.units_replayed",
    // Counters — query scheduler (DESIGN.md §12).
    "runtime.queries_admitted",
    "runtime.queries_rejected",
    "runtime.queries_cancelled",
    "runtime.queries_deadline_exceeded",
    "runtime.queries_completed",
    // Counters — message bus.
    "bus.steal_timeouts",
    "bus.requests_dropped",
    // Counters — enumeration data plane.
    "enumerate.intersections",
    "enumerate.galloped",
    "enumerate.scratch_hits",
    "enumerate.scratch_misses",
    "enumerate.steals",
    // Counters — introspection plane.
    "obs.profiler_samples",
    "obs.exposition_requests",
    // Gauges.
    "runtime.suspect_victims",
    "runtime.step_active",
    "runtime.ledger_bytes",
    "runtime.current_step",
    "runtime.units_per_sec",
    // Base name for the per-worker interval-delta gauges; live instances
    // carry a ".<worker>" suffix minted at sampler rate (dynamic names are
    // invisible to the lint — register the base).
    "runtime.worker_units",
    // Query-scheduler gauges: in-flight population, plus the per-query
    // attained-service family ("runtime.query_units.<id>", credited at
    // step barriers — same dynamic-suffix convention as worker_units).
    "runtime.queries_active",
    "runtime.queries_queued",
    "runtime.query_units",
    // Histograms.
    "bus.steal_rtt_us",
    "bus.retry_backoff_us",
    "codec.encode_ns",
    "codec.decode_ns",
    "enumerate.batch_size",
};

/// Trace span/instant names (obs/trace.h FRACTAL_TRACE_*).
inline constexpr std::string_view kTraceNames[] = {
    "bus/delay_spike",
    "bus/reply",
    "bus/reply_bytes",
    "bus/request_steal",
    "cluster/run_step",
    "cluster/step_barrier",
    "cluster/step_cancelled",
    "dfs/expand",
    "enumerate/refill",
    "executor/execute",
    "executor/query",
    "executor/step",
    "executor/step_retry",
    "executor/step_salvage",
    "graph/reduce",
    "graph/reduce_to_keywords",
    "obs/profile_window",
    "runtime/step_degraded",
    "scheduler/admit",
    "scheduler/done",
    "scheduler/reject",
    "worker/drain_roots",
    "worker/process_stolen",
    "worker/steal_miss",
    "worker/steal_service",
    "worker/victim_suspect",
};

/// HTTP paths served by the exposition server (obs/exposition.h
/// AddEndpoint). Same rationale as the metric names: a typo'd registration
/// would 404 forever while dashboards poll the intended path.
inline constexpr std::string_view kEndpointNames[] = {
    "/",
    "/healthz",
    "/metricsz",
    "/profilez",
    "/statusz",
    "/tracez",
};

}  // namespace obs
}  // namespace fractal

#endif  // FRACTAL_OBS_METRIC_NAMES_H_
