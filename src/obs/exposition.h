// Embedded HTTP exposition server (DESIGN.md §10): a single-threaded,
// plain-blocking-sockets HTTP/1.1 responder that makes a running cluster
// interrogable without stopping it. No third-party dependencies; one accept
// loop thread; one request in flight at a time (connection: close). Started
// by Cluster when ClusterOptions::statusz_port >= 0, or standalone in
// tests/tools.
//
// Built-in endpoints (all registered in obs/metric_names.h kEndpointNames):
//   /          — index of registered endpoints
//   /healthz   — "ok"
//   /metricsz  — MetricsRegistry::DumpPrometheus() (Prometheus text format)
//   /tracez    — most recent completed spans per thread, from the trace
//                rings (requires tracing enabled to have content)
//   /profilez  — on-demand sampling-profile window (?seconds=N, default 1,
//                max 30; ?hz=N rate, default 100) returning collapsed
//                stacks; ?view=spans returns the span-attributed table.
//                Threads must have registered with the Profiler.
// Callers add more (Cluster adds /statusz) via AddEndpoint.
//
// Binding: loopback only (introspection output is not for the open
// network). port 0 binds an ephemeral port; read it back with port().
//
// Lock class (leaf, DESIGN.md §5): `ExpositionServer::mu` guards the
// endpoint table only; handlers run outside it.
#ifndef FRACTAL_OBS_EXPOSITION_H_
#define FRACTAL_OBS_EXPOSITION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fractal {
namespace obs {

class ExpositionServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 binds an ephemeral port.
    int port = 0;
    /// Address to bind. Keep this loopback unless you know better.
    std::string bind_address = "127.0.0.1";
  };

  struct Request {
    std::string path;   // decoded-enough: no %-unescaping, no fragments
    std::string query;  // raw "k=v&k2=v2" text after '?', may be empty
    /// Value of `key` in the query string, or `fallback`.
    std::string QueryParam(const std::string& key,
                           const std::string& fallback = "") const;
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  using Handler = std::function<Response(const Request&)>;

  /// Binds, registers the built-in endpoints, and starts the accept-loop
  /// thread. Fails (with the errno text) if the port cannot be bound.
  static StatusOr<std::unique_ptr<ExpositionServer>> Start(
      const Options& options);

  /// Stops the accept loop and joins the server thread. In-flight requests
  /// finish first (handlers are bounded: the longest is /profilez's capped
  /// window).
  ~ExpositionServer();

  /// The bound TCP port (useful with Options::port == 0).
  int port() const { return port_; }

  /// Registers (or replaces) the handler for an exact path. Paths must be
  /// registered in obs/metric_names.h kEndpointNames (lint rule
  /// metric-name).
  void AddEndpoint(const std::string& path, Handler handler) EXCLUDES(mu_);

 private:
  ExpositionServer(int listen_fd, int wake_fd_read, int wake_fd_write,
                   int port);

  void Serve();
  void HandleConnection(int fd);

  int listen_fd_;
  int wake_fd_read_;   // self-pipe: Serve polls this to notice shutdown
  int wake_fd_write_;
  int port_;
  std::atomic<bool> stop_{false};
  mutable Mutex mu_{"ExpositionServer::mu"};
  std::map<std::string, Handler> handlers_ GUARDED_BY(mu_);
  std::thread thread_;
};

}  // namespace obs
}  // namespace fractal

#endif  // FRACTAL_OBS_EXPOSITION_H_
