#include "obs/progress.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fractal {
namespace obs {

StepProgressReporter::StepProgressReporter(int64_t interval_ms) {
  thread_ = std::thread([this, interval_ms] {
    Loop(std::max<int64_t>(1, interval_ms));
  });
}

StepProgressReporter::~StepProgressReporter() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
}

void StepProgressReporter::Loop(int64_t interval_ms) {
  WallTimer timer;
  uint64_t last_work = WorkUnitsCounter().Value();
  uint64_t last_internal = InternalStealsCounter().Value();
  uint64_t last_external = ExternalStealsCounter().Value();
  uint64_t last_bytes = BytesShippedCounter().Value();
  double last_seconds = 0;

  MutexLock lock(mu_);
  while (!stop_) {
    if (cv_.WaitFor(mu_, interval_ms)) continue;  // notified: re-check stop_
    if (stop_) break;
    const double now_seconds = timer.ElapsedSeconds();
    const double interval = std::max(now_seconds - last_seconds, 1e-9);
    const uint64_t work = WorkUnitsCounter().Value();
    const uint64_t internal = InternalStealsCounter().Value();
    const uint64_t external = ExternalStealsCounter().Value();
    const uint64_t bytes = BytesShippedCounter().Value();
    // Formatted into a stack buffer and emitted through the allocation-free
    // LogLine path: the streaming FRACTAL_LOG builds an ostringstream per
    // statement, which put periodic heap churn on a step-lifetime thread.
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "step progress: +%" PRIu64 " work units (%" PRIu64 "/s), +%" PRIu64
        " int steals, +%" PRIu64 " ext steals, +%" PRIu64 " bytes shipped",
        work - last_work,
        static_cast<uint64_t>(static_cast<double>(work - last_work) /
                              interval),
        internal - last_internal, external - last_external,
        bytes - last_bytes);
    FRACTAL_LOG_LINE(Info, line);
    last_work = work;
    last_internal = internal;
    last_external = external;
    last_bytes = bytes;
    last_seconds = now_seconds;
  }
}

}  // namespace obs
}  // namespace fractal
