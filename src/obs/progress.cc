#include "obs/progress.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fractal {
namespace obs {

StepProgressReporter::StepProgressReporter(int64_t interval_ms) {
  thread_ = std::thread([this, interval_ms] {
    Loop(std::max<int64_t>(1, interval_ms));
  });
}

StepProgressReporter::~StepProgressReporter() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
}

void StepProgressReporter::Loop(int64_t interval_ms) {
  WallTimer timer;
  uint64_t last_work = WorkUnitsCounter().Value();
  uint64_t last_internal = InternalStealsCounter().Value();
  uint64_t last_external = ExternalStealsCounter().Value();
  uint64_t last_bytes = BytesShippedCounter().Value();
  double last_seconds = 0;

  MutexLock lock(mu_);
  while (!stop_) {
    if (cv_.WaitFor(mu_, interval_ms)) continue;  // notified: re-check stop_
    if (stop_) break;
    const double now_seconds = timer.ElapsedSeconds();
    const double interval = std::max(now_seconds - last_seconds, 1e-9);
    const uint64_t work = WorkUnitsCounter().Value();
    const uint64_t internal = InternalStealsCounter().Value();
    const uint64_t external = ExternalStealsCounter().Value();
    const uint64_t bytes = BytesShippedCounter().Value();
    FRACTAL_LOG(Info) << "step progress: +" << (work - last_work)
                      << " work units (" << static_cast<uint64_t>(
                             static_cast<double>(work - last_work) / interval)
                      << "/s), +" << (internal - last_internal)
                      << " int steals, +" << (external - last_external)
                      << " ext steals, +" << (bytes - last_bytes)
                      << " bytes shipped";
    last_work = work;
    last_internal = internal;
    last_external = external;
    last_bytes = bytes;
    last_seconds = now_seconds;
  }
}

}  // namespace obs
}  // namespace fractal
