#include "obs/progress.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace fractal {
namespace obs {

ProgressSampler::ProgressSampler(WorkerUnitsFn worker_units)
    : worker_units_(std::move(worker_units)) {
  last_work_ = WorkUnitsCounter().Value();
  last_internal_ = InternalStealsCounter().Value();
  last_external_ = ExternalStealsCounter().Value();
  last_bytes_ = BytesShippedCounter().Value();
  if (worker_units_) worker_units_(&last_worker_units_);
}

ProgressSnapshot ProgressSampler::Sample() {
  ProgressSnapshot snapshot;
  const double now_seconds = timer_.ElapsedSeconds();
  snapshot.interval_seconds = std::max(now_seconds - last_seconds_, 1e-9);
  snapshot.work_units = WorkUnitsCounter().Value();
  snapshot.work_units_delta = snapshot.work_units - last_work_;
  snapshot.units_per_sec = static_cast<uint64_t>(
      static_cast<double>(snapshot.work_units_delta) /
      snapshot.interval_seconds);
  const uint64_t internal = InternalStealsCounter().Value();
  const uint64_t external = ExternalStealsCounter().Value();
  const uint64_t bytes = BytesShippedCounter().Value();
  snapshot.internal_steals_delta = internal - last_internal_;
  snapshot.external_steals_delta = external - last_external_;
  snapshot.bytes_shipped_delta = bytes - last_bytes_;
  if (worker_units_) {
    worker_units_(&worker_units_now_);
    last_worker_units_.resize(worker_units_now_.size(), 0);
    snapshot.worker_units_delta.resize(worker_units_now_.size(), 0);
    for (size_t w = 0; w < worker_units_now_.size(); ++w) {
      snapshot.worker_units_delta[w] =
          worker_units_now_[w] - last_worker_units_[w];
      WorkerUnitsGauge(static_cast<uint32_t>(w))
          .Set(static_cast<int64_t>(snapshot.worker_units_delta[w]));
    }
    std::swap(last_worker_units_, worker_units_now_);
  }
  UnitsPerSecGauge().Set(static_cast<int64_t>(snapshot.units_per_sec));
  last_work_ = snapshot.work_units;
  last_internal_ = internal;
  last_external_ = external;
  last_bytes_ = bytes;
  last_seconds_ = now_seconds;
  return snapshot;
}

StepProgressReporter::StepProgressReporter(int64_t interval_ms,
                                           WorkerUnitsFn worker_units) {
  thread_ = std::thread(
      [this, interval_ms, worker_units = std::move(worker_units)]() mutable {
        Loop(std::max<int64_t>(1, interval_ms), std::move(worker_units));
      });
}

StepProgressReporter::~StepProgressReporter() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
}

void StepProgressReporter::Loop(int64_t interval_ms,
                                WorkerUnitsFn worker_units) {
  Profiler::Get().RegisterCurrentThread("obs/progress");
  ProgressSampler sampler(std::move(worker_units));
  MutexLock lock(mu_);
  while (!stop_) {
    if (cv_.WaitFor(mu_, interval_ms)) continue;  // notified: re-check stop_
    if (stop_) break;
    const ProgressSnapshot snapshot = sampler.Sample();
    // Formatted into a stack buffer and emitted through the allocation-free
    // LogLine path: the streaming FRACTAL_LOG builds an ostringstream per
    // statement, which put periodic heap churn on a step-lifetime thread.
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "step progress: +%" PRIu64 " work units (%" PRIu64 "/s), +%" PRIu64
        " int steals, +%" PRIu64 " ext steals, +%" PRIu64 " bytes shipped",
        snapshot.work_units_delta, snapshot.units_per_sec,
        snapshot.internal_steals_delta, snapshot.external_steals_delta,
        snapshot.bytes_shipped_delta);
    FRACTAL_LOG_LINE(Info, line);
  }
}

}  // namespace obs
}  // namespace fractal
