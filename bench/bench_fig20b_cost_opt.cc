// Figure 20b (Appendix C): COST of the *optimized* implementations — the
// KClist custom subgraph enumerator (Listing 7) for 6-cliques vs a
// single-thread KClist, and triangles vs a Neo4j-style tuned counter.
// Paper shape: COST stays consistent with Figure 18 (~3-4 threads),
// showing Fractal can host highly optimized GPM algorithms.
#include "apps/cliques.h"
#include "baselines/single_thread.h"
#include "bench/bench_util.h"

using namespace fractal;

namespace {

double ModeledSeconds(double one_thread_wall, uint64_t total_units,
                      const ExecutionTelemetry& telemetry) {
  uint64_t makespan = 0;
  for (const StepTelemetry& step : telemetry.steps) {
    makespan += step.SimulatedMakespanUnits(/*steal_cost_units=*/200);
  }
  return one_thread_wall * makespan /
         std::max<double>(static_cast<double>(total_units), 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 20b: COST of optimized cliques (KClist enumerator) "
                "and triangles",
                "paper Figure 20b (Appendix C)");
  std::printf("modeled T-thread time = 1-thread wall x work-unit makespan "
              "ratio (1-core host)\n\n");

  // Denser community graph so that 6-cliques carry real work.
  CommunityParams params;
  params.num_communities = 30;
  params.community_size = 28;
  params.intra_probability = 0.75;
  params.inter_edges_per_vertex = 2;
  params.seed = 0xA11CE;
  Graph mico = GenerateCommunityGraph(params);
  DatasetInfo orkut = MakeDataset(DatasetId::kOrkut, LabelMode::kSingleLabel);
  FractalContext fctx;
  FractalGraph mico_graph = fctx.FromGraph(Graph(mico));
  FractalGraph orkut_graph = fctx.FromGraph(Graph(orkut.graph));

  int costs_found = 0;
  {  // Optimized 6-cliques vs single-thread KClist.
    WallTimer baseline_timer;
    const uint64_t expected = baselines::TunedCliqueCount(mico, 6);
    const double baseline = baseline_timer.ElapsedSeconds();

    WallTimer one_timer;
    const ExecutionResult one = OptimizedCliquesFractoid(mico_graph, 6)
                                    .Execute(bench::SingleThreadConfig());
    const double one_wall = one_timer.ElapsedSeconds();
    FRACTAL_CHECK(one.num_subgraphs == expected);
    const uint64_t total_units = one.telemetry.TotalWorkUnits();

    std::printf("6-cliques (KClist enum.) vs KClist-ST baseline %s | "
                "modeled:",
                bench::Secs(baseline).c_str());
    int cost = -1;
    for (uint32_t threads = 1; threads <= 8; ++threads) {
      const ExecutionResult run =
          OptimizedCliquesFractoid(mico_graph, 6)
              .Execute(bench::VirtualCores(1, threads));
      const double modeled = ModeledSeconds(one_wall, total_units,
                                            run.telemetry);
      std::printf(" %.2f", modeled);
      if (cost < 0 && modeled < baseline) cost = threads;
    }
    if (cost > 0) {
      std::printf("  -> COST = %d\n", cost);
      ++costs_found;
    } else {
      std::printf("  -> COST > 8\n");
    }
  }
  {  // Triangles on Orkut vs Neo4j-style counter.
    WallTimer baseline_timer;
    const uint64_t expected = baselines::TunedTriangleCount(orkut.graph);
    const double baseline = baseline_timer.ElapsedSeconds();

    WallTimer one_timer;
    const ExecutionResult one = OptimizedCliquesFractoid(orkut_graph, 3)
                                    .Execute(bench::SingleThreadConfig());
    const double one_wall = one_timer.ElapsedSeconds();
    FRACTAL_CHECK(one.num_subgraphs == expected);
    const uint64_t total_units = one.telemetry.TotalWorkUnits();

    std::printf("Triangles (Orkut)        vs Neo4j-ST  baseline %s | "
                "modeled:",
                bench::Secs(baseline).c_str());
    int cost = -1;
    for (uint32_t threads = 1; threads <= 8; ++threads) {
      const ExecutionResult run =
          OptimizedCliquesFractoid(orkut_graph, 3)
              .Execute(bench::VirtualCores(1, threads));
      const double modeled = ModeledSeconds(one_wall, total_units,
                                            run.telemetry);
      std::printf(" %.2f", modeled);
      if (cost < 0 && modeled < baseline) cost = threads;
    }
    if (cost > 0) {
      std::printf("  -> COST = %d\n", cost);
      ++costs_found;
    } else {
      std::printf("  -> COST > 8\n");
    }
  }

  bench::Claim("optimized implementations keep a COST consistent with "
               "Figure 18 (a handful of threads)");
  bench::Verdict(costs_found >= 1,
                 StrFormat("%d of 2 optimized kernels beat their "
                           "single-thread baseline within 8 threads",
                           costs_found));
  return 0;
}
