// Figure 20a (Appendix C): triangle counting — Fractal vs Arabesque(-like
// BFS) vs GraphFrames(-like joins) vs GraphX(-like edge-relation joins)
// across four graphs including Orkut. Paper shape: Fractal significantly
// outperforms the competing frameworks on the three larger datasets (up to
// an order of magnitude) and is slightly slower than Arabesque on the
// smallest one (setup overhead). Also reports Doulion-style sampled
// counting as the approximate alternative the appendix cites.
#include "apps/cliques.h"
#include "baselines/bfs_engine.h"
#include "baselines/join_matcher.h"
#include "baselines/single_thread.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 20a: triangle counting across datasets",
                "paper Figure 20a (Appendix C)");

  struct Workload {
    std::string name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"Mico-SL", bench::SmallMico()});
  {
    DatasetInfo patents =
        MakeDataset(DatasetId::kPatents, LabelMode::kSingleLabel);
    workloads.push_back({patents.name, std::move(patents.graph)});
  }
  workloads.push_back({"Youtube-SL", bench::CliqueRichYoutube()});
  {
    DatasetInfo orkut = MakeDataset(DatasetId::kOrkut,
                                    LabelMode::kSingleLabel);
    workloads.push_back({orkut.name, std::move(orkut.graph)});
  }

  const ExecutionConfig config = bench::DefaultCluster();
  std::printf("%-12s %12s | %10s %12s %14s %10s | %12s\n", "graph",
              "#triangles", "Fractal", "Arabesque~", "GraphFrames~",
              "GraphX~", "Doulion p=.3");
  int fractal_wins = 0;
  for (Workload& workload : workloads) {
    WallTimer fractal_timer;
    const uint64_t count = CountTriangles(
        FractalContext().FromGraph(Graph(workload.graph)), config);
    const double fractal = fractal_timer.ElapsedSeconds();

    baselines::BfsOptions bfs_options;
    bfs_options.shuffle_micros_per_embedding = 1.0;
    baselines::BfsEngine engine(workload.graph, bfs_options);
    const auto arabesque = engine.Cliques(3);
    FRACTAL_CHECK(arabesque.out_of_memory || arabesque.count == count);

    baselines::JoinOptions graphframes_options;
    graphframes_options.use_triangle_seed = false;
    graphframes_options.use_symmetry_breaking = false;
    graphframes_options.shuffle_micros_per_tuple = 0.4;
    graphframes_options.fixed_overhead_seconds = 0.6;  // Spark stages
    const auto graphframes = baselines::JoinCountTriangles(
        workload.graph, graphframes_options);

    baselines::JoinOptions graphx_options;  // symmetry-broken edge joins
    graphx_options.use_triangle_seed = false;
    graphx_options.shuffle_micros_per_tuple = 0.8;  // RDD-join heavier
    graphx_options.fixed_overhead_seconds = 0.8;      // Spark stages
    const auto graphx =
        baselines::JoinCountTriangles(workload.graph, graphx_options);

    WallTimer doulion_timer;
    const uint64_t estimate =
        baselines::DoulionTriangleEstimate(workload.graph, 0.3, 99);
    const double doulion = doulion_timer.ElapsedSeconds();

    std::printf("%-12s %12s | %10s %12s %14s %10s | %9s~%s\n",
                workload.name.c_str(), WithThousands(count).c_str(),
                bench::Secs(fractal).c_str(),
                arabesque.out_of_memory
                    ? "   OOM"
                    : bench::Secs(arabesque.seconds).c_str(),
                graphframes.out_of_memory
                    ? "     OOM"
                    : bench::Secs(graphframes.seconds).c_str(),
                graphx.out_of_memory ? "  OOM"
                                     : bench::Secs(graphx.seconds).c_str(),
                bench::Secs(doulion).c_str(),
                WithThousands(estimate).c_str());
    const double best_other =
        std::min({arabesque.out_of_memory ? 1e30 : arabesque.seconds,
                  graphframes.out_of_memory ? 1e30 : graphframes.seconds,
                  graphx.out_of_memory ? 1e30 : graphx.seconds});
    if (fractal < best_other) ++fractal_wins;
  }

  bench::Claim(
      "Fractal outperforms the competing frameworks on most datasets "
      "(the paper: 3 of 4, slightly slower on the smallest)");
  bench::Verdict(fractal_wins >= 2,
                 StrFormat("Fractal fastest on %d of %zu datasets",
                           fractal_wins, workloads.size()));
  return 0;
}
