// Figure 19: strong scalability of the four most time-consuming kernels
// (motifs, cliques, FSM, queries). Paper shape: ~85-90% parallel efficiency
// for enumeration-dominated kernels (motifs/cliques), ~75% for FSM, 65-80%
// for querying depending on the query.
//
// Parallel efficiency is computed from the deterministic work-unit makespan
// (ideal/actual, external steals charged), the same accounting the
// load-balance figures use (1-core host; DESIGN.md section 1).
#include "apps/cliques.h"
#include "apps/fsm.h"
#include "apps/motifs.h"
#include "apps/queries.h"
#include "bench/bench_util.h"

using namespace fractal;

namespace {

constexpr uint64_t kStealCost = 200;

double Efficiency(const std::vector<StepTelemetry>& steps) {
  uint64_t makespan = 0;
  double ideal = 0;
  for (const StepTelemetry& step : steps) {
    makespan += step.SimulatedMakespanUnits(kStealCost);
    ideal += step.IdealMakespanUnits();
  }
  return makespan == 0 ? 1.0 : ideal / makespan;
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 19: strong scalability (work-unit efficiency)",
                "paper Figure 19");

  Graph mico = bench::SmallMico();
  Graph youtube = bench::CliqueRichYoutube();
  PowerLawParams fsm_params;
  fsm_params.num_vertices = 700;
  fsm_params.edges_per_vertex = 7;
  fsm_params.num_vertex_labels = 6;
  fsm_params.label_skew = 1.8;
  fsm_params.triangle_closure = 0.4;
  fsm_params.seed = 0xA11CE;
  Graph labeled = GeneratePowerLaw(fsm_params);

  FractalContext fctx;
  FractalGraph mico_graph = fctx.FromGraph(Graph(mico));
  FractalGraph youtube_graph = fctx.FromGraph(Graph(youtube));
  FractalGraph labeled_graph = fctx.FromGraph(Graph(labeled));

  // Up to 16 simulated cores: beyond that, oversubscription of the 1-core
  // host distorts the telemetry itself (see EXPERIMENTS.md).
  const std::vector<std::pair<uint32_t, uint32_t>> cluster_shapes = {
      {1, 4}, {2, 4}, {4, 4}};  // workers x cores

  struct Kernel {
    const char* name;
    std::function<std::vector<StepTelemetry>(const ExecutionConfig&)> run;
  };
  std::vector<Kernel> kernels;
  kernels.push_back({"Motifs k=4 (Mico)", [&](const ExecutionConfig& c) {
                       return CountMotifs(mico_graph, 4, c)
                           .execution.telemetry.steps;
                     }});
  kernels.push_back({"Cliques k=5 (Youtube)", [&](const ExecutionConfig& c) {
                       return CliquesFractoid(youtube_graph, 5)
                           .Execute(c)
                           .telemetry.steps;
                     }});
  kernels.push_back({"FSM supp=140", [&](const ExecutionConfig& c) {
                       return RunFsm(labeled_graph, 140, 3, c).step_telemetry;
                     }});
  kernels.push_back({"Query q6 (Youtube)", [&](const ExecutionConfig& c) {
                       return QueryFractoid(youtube_graph, SeedQuery(6))
                           .Execute(c)
                           .telemetry.steps;
                     }});
  kernels.push_back({"Query q2 (Youtube)", [&](const ExecutionConfig& c) {
                       return QueryFractoid(youtube_graph, SeedQuery(2))
                           .Execute(c)
                           .telemetry.steps;
                     }});

  std::printf("%-24s |", "kernel \\ total cores");
  for (const auto& [workers, cores] : cluster_shapes) {
    std::printf(" %4ux%u", workers, cores);
  }
  std::printf("   (parallel efficiency)\n");

  double motifs_32core = 0, fsm_32core = 0;
  for (Kernel& kernel : kernels) {
    std::printf("%-24s |", kernel.name);
    for (const auto& [workers, cores] : cluster_shapes) {
      ExecutionConfig config = bench::VirtualCores(workers, cores);
      const double efficiency = Efficiency(kernel.run(config));
      std::printf(" %5.2f", efficiency);
      if (workers == 4) {
        if (kernel.name[0] == 'M') motifs_32core = efficiency;
        if (kernel.name[0] == 'F') fsm_32core = efficiency;
      }
    }
    std::printf("\n");
  }

  bench::Claim(
      "enumeration-dominated kernels (motifs/cliques) keep the highest "
      "efficiency at scale; FSM trails (aggregation/data movement)");
  bench::Verdict(motifs_32core > 0.6,
                 StrFormat("motifs efficiency at 16 cores: %.2f",
                           motifs_32core));
  bench::Verdict(fsm_32core <= motifs_32core + 0.05,
                 StrFormat("FSM efficiency (%.2f) does not exceed motifs' "
                           "(%.2f) at 16 cores",
                           fsm_32core, motifs_32core));
  return 0;
}
