// Paper section 4.3 motivating example: keyword queries over the Wikidata
// knowledge graph, executed on the original graph G and the reduced graph
// G' that keeps only query-keyword elements. The paper reports, for Q1,
// reductions of 54.97% (vertices), 65.27% (edges) and 92.54% (extension
// cost EC); Q2 reaches 99.87% EC reduction.
#include "apps/keyword_search.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Section 4.3: graph reduction example (keyword search)",
                "paper section 4.3 motivating example (Q1/Q2 on Wikidata)");

  Graph wikidata = MakeWikidataWithKeywords();
  const uint32_t full_vertices = wikidata.NumVertices();
  const uint32_t full_edges = wikidata.NumEdges();
  std::printf("graph: %s\n\n", wikidata.DebugString().c_str());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(std::move(wikidata));
  const ExecutionConfig config = bench::DefaultCluster();

  // Q1-like: three mid-frequency keywords ({paris, revolution, author});
  // Q2-like: rarer keywords ({tom, cruise, drama}).
  const std::vector<std::pair<std::string, std::vector<uint32_t>>> queries = {
      {"Q1 {paris, revolution, author}", {4, 11, 23}},
      {"Q2 {tom, cruise, drama}", {35, 60, 92}},
  };

  std::printf("%-32s %10s %10s %14s %9s\n", "query / graph", "|V|", "|E|",
              "EC", "matches");
  double worst_ec_reduction = 1.0;
  for (const auto& [name, keywords] : queries) {
    KeywordSearchResult on_g =
        RunKeywordSearch(graph, keywords, /*use_graph_reduction=*/false,
                         config);
    KeywordSearchResult on_reduced =
        RunKeywordSearch(graph, keywords, /*use_graph_reduction=*/true,
                         config);
    std::printf("%-32s %10u %10u %14s %9llu\n", (name + " on G").c_str(),
                full_vertices, full_edges,
                WithThousands(on_g.extension_cost).c_str(),
                (unsigned long long)on_g.num_matches);
    std::printf("%-32s %10u %10u %14s %9llu\n", "   on G'",
                on_reduced.graph_vertices, on_reduced.graph_edges,
                WithThousands(on_reduced.extension_cost).c_str(),
                (unsigned long long)on_reduced.num_matches);
    const double v_reduction =
        100.0 * (1.0 - static_cast<double>(on_reduced.graph_vertices) /
                           full_vertices);
    const double e_reduction =
        100.0 * (1.0 - static_cast<double>(on_reduced.graph_edges) /
                           full_edges);
    const double ec_reduction =
        100.0 * (1.0 - static_cast<double>(on_reduced.extension_cost) /
                           on_g.extension_cost);
    std::printf("   reduction: V %.2f%%  E %.2f%%  EC %.2f%%   "
                "(paper Q1: 54.97%% / 65.27%% / 92.54%%)\n\n",
                v_reduction, e_reduction, ec_reduction);
    worst_ec_reduction = std::min(worst_ec_reduction, ec_reduction / 100.0);
    FRACTAL_CHECK(on_g.num_matches == on_reduced.num_matches)
        << "reduction must preserve results";
  }

  bench::Claim("graph reduction removes most of the graph AND most of the "
               "extension cost for selective keyword queries");
  bench::Verdict(worst_ec_reduction > 0.5,
                 StrFormat("worst-case EC reduction %.1f%% across queries",
                           100.0 * worst_ec_reduction));
  return 0;
}
