// Resilience bench (paper §4, fault tolerance): two measurements.
//
// 1. Recovery latency. The paper's argument is that from-scratch fractal
//    steps make fault tolerance nearly free: a failed step is discarded
//    wholesale and re-executed on the survivors. We crash worker 1 after
//    25% / 50% / 75% of its fault-free work-unit budget and report the
//    end-to-end wall time of the self-healing run (abandoned attempt +
//    degraded re-execution on W-1 workers) against the fault-free
//    baseline, checking the recovered result is bit-identical.
//
// 2. Steal-deadline overhead. Bounding every WS_ext round trip with a
//    deadline (timed waits, retry bookkeeping, per-victim health) must not
//    tax the fault-free hot path. We run the same steal-heavy workload
//    with deadlines disabled (request_timeout_micros = 0, the
//    pre-resilience untimed wait) and enabled, and compare wall times.
#include <algorithm>

#include "apps/motifs.h"
#include "bench/bench_util.h"
#include "runtime/fault.h"

using namespace fractal;

namespace {

ExecutionConfig BenchCluster() {
  ExecutionConfig config = bench::DefaultCluster();  // 2 workers x 2 cores
  config.network.request_timeout_micros = 50000;
  config.network.retry_backoff_micros = 50;
  return config;
}

/// Worker 1's total fault-free work units across all steps — the budget the
/// crash fractions are taken from (FaultInjector unit counters are
/// cumulative per worker across the whole execution).
uint64_t Worker1Units(const ExecutionTelemetry& telemetry) {
  uint64_t units = 0;
  for (const StepTelemetry& step : telemetry.steps) {
    for (const ThreadStats& t : step.threads) {
      if (t.worker_id == 1) units += t.work_units;
    }
  }
  return units;
}

double MedianOf3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Resilience: recovery latency and steal-deadline overhead",
                "paper section 4 (fault tolerance of from-scratch steps)");

  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(bench::SmallMico());
  constexpr uint32_t kMotifSize = 3;

  // --- 1. recovery latency -----------------------------------------------
  const ExecutionConfig baseline_config = BenchCluster();
  WallTimer baseline_timer;
  const MotifsResult baseline = CountMotifs(graph, kMotifSize, baseline_config);
  const double baseline_seconds = baseline_timer.ElapsedSeconds();
  const uint64_t worker1_units = Worker1Units(baseline.execution.telemetry);
  std::printf("graph: %s, 2 workers x 2 cores\n",
              graph.graph().DebugString().c_str());
  std::printf("fault-free: %s, worker 1 consumes %llu work units\n",
              bench::Secs(baseline_seconds).c_str(),
              (unsigned long long)worker1_units);

  std::printf("\n%-18s | %10s | %8s | %10s | %7s\n", "crash point",
              "wall time", "retries", "units lost", "exact");
  bool all_exact = true;
  double worst_recovery_seconds = 0;
  for (const uint32_t percent : {25u, 50u, 75u}) {
    ExecutionConfig config = BenchCluster();
    const uint64_t crash_after =
        std::max<uint64_t>(1, worker1_units * percent / 100);
    config.fault_plan = FaultPlan().CrashWorker(1, crash_after);
    WallTimer timer;
    const MotifsResult recovered = CountMotifs(graph, kMotifSize, config);
    const double seconds = timer.ElapsedSeconds();
    worst_recovery_seconds = std::max(worst_recovery_seconds, seconds);
    uint64_t units_lost = 0;
    for (const StepFailure& failure : recovered.execution.failures) {
      units_lost += failure.work_units_lost;
    }
    const bool exact = recovered.total == baseline.total &&
                       recovered.counts == baseline.counts;
    all_exact = all_exact && exact;
    std::printf("%-18s | %s | %8llu | %10llu | %7s\n",
                StrFormat("crash @ %u%% (%llu)", percent,
                          (unsigned long long)crash_after)
                    .c_str(),
                bench::Secs(seconds).c_str(),
                (unsigned long long)recovered.execution.steps_retried,
                (unsigned long long)units_lost, exact ? "yes" : "NO");
  }

  // --- 2. steal-deadline overhead on the fault-free hot path -------------
  auto timed_run = [&](int64_t timeout_micros) {
    ExecutionConfig config = BenchCluster();
    config.network.request_timeout_micros = timeout_micros;
    double runs[3];
    for (double& r : runs) {
      WallTimer timer;
      const MotifsResult result = CountMotifs(graph, kMotifSize, config);
      r = timer.ElapsedSeconds();
      if (result.total != baseline.total) return -1.0;  // exactness guard
    }
    return MedianOf3(runs[0], runs[1], runs[2]);
  };
  const double untimed_seconds = timed_run(0);
  const double deadline_seconds = timed_run(50000);
  const double overhead =
      untimed_seconds > 0 ? deadline_seconds / untimed_seconds - 1.0 : 0.0;
  std::printf("\nsteal waits untimed (pre-resilience): %s\n",
              bench::Secs(untimed_seconds).c_str());
  std::printf("steal waits with 50ms deadline:       %s  (%+.1f%%)\n",
              bench::Secs(deadline_seconds).c_str(), overhead * 100);

  bench::Claim(
      "discard-and-rerun recovery keeps results exact at any crash point, "
      "costs at most ~one extra step, and deadline bookkeeping is free when "
      "no fault fires");
  bench::Verdict(all_exact,
                 "recovered counts bit-identical to fault-free baseline at "
                 "25/50/75% crash points");
  bench::Verdict(
      worst_recovery_seconds < 4 * baseline_seconds + 1.0,
      StrFormat("worst recovery %.3fs vs baseline %.3fs (abandon + degraded "
                "re-run, no restart-from-zero of prior steps)",
                worst_recovery_seconds, baseline_seconds));
  bench::Verdict(
      untimed_seconds > 0 && overhead < 0.25,
      StrFormat("deadline overhead on fault-free path: %+.1f%%", overhead * 100));
  return 0;
}
