// Resilience bench (paper §4, fault tolerance): two measurements.
//
// 1. Recovery latency, from-scratch vs salvage. The paper's argument is
//    that from-scratch fractal steps make fault tolerance nearly free: a
//    failed step is discarded wholesale and re-executed on the survivors.
//    The lineage ledger (DESIGN.md §11) sharpens that: only the crashed
//    worker's unfinished fractoid tasks are re-enumerated. We crash worker
//    1 after 25% / 50% / 75% of its fault-free work-unit budget and run
//    both recovery modes, reporting wall time, re-executed work units, and
//    the salvage/scratch replay ratio, checking both recovered results are
//    bit-identical to the fault-free baseline. With --recovery-out <path>
//    the ratios are written as google-benchmark JSON over the
//    deterministic work-unit model for tools/bench_compare.py gating.
//
// 2. Steal-deadline overhead. Bounding every WS_ext round trip with a
//    deadline (timed waits, retry bookkeeping, per-victim health) must not
//    tax the fault-free hot path. We run the same steal-heavy workload
//    with deadlines disabled (request_timeout_micros = 0, the
//    pre-resilience untimed wait) and enabled, and compare wall times.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "apps/motifs.h"
#include "bench/bench_util.h"
#include "runtime/fault.h"
#include "util/check.h"

using namespace fractal;

namespace {

ExecutionConfig BenchCluster() {
  ExecutionConfig config = bench::DefaultCluster();  // 2 workers x 2 cores
  config.network.request_timeout_micros = 50000;
  config.network.retry_backoff_micros = 50;
  return config;
}

/// Worker 1's total fault-free work units across all steps — the budget the
/// crash fractions are taken from (FaultInjector unit counters are
/// cumulative per worker across the whole execution).
uint64_t Worker1Units(const ExecutionTelemetry& telemetry) {
  uint64_t units = 0;
  for (const StepTelemetry& step : telemetry.steps) {
    for (const ThreadStats& t : step.threads) {
      if (t.worker_id == 1) units += t.work_units;
    }
  }
  return units;
}

double MedianOf3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  std::string recovery_out;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--recovery-out") && i + 1 < argc) {
      recovery_out = argv[++i];
    } else if (!std::strncmp(argv[i], "--recovery-out=", 15)) {
      recovery_out = argv[i] + 15;
    }
  }
  bench::Header("Resilience: recovery latency and steal-deadline overhead",
                "paper section 4 (fault tolerance of from-scratch steps)");

  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(bench::SmallMico());
  constexpr uint32_t kMotifSize = 3;

  // --- 1. recovery latency -----------------------------------------------
  const ExecutionConfig baseline_config = BenchCluster();
  WallTimer baseline_timer;
  const MotifsResult baseline = CountMotifs(graph, kMotifSize, baseline_config);
  const double baseline_seconds = baseline_timer.ElapsedSeconds();
  FRACTAL_CHECK(baseline.execution.status.ok()) << baseline.execution.status;
  const uint64_t worker1_units = Worker1Units(baseline.execution.telemetry);
  std::printf("graph: %s, 2 workers x 2 cores\n",
              graph.graph().DebugString().c_str());
  std::printf("fault-free: %s, worker 1 consumes %llu work units\n",
              bench::Secs(baseline_seconds).c_str(),
              (unsigned long long)worker1_units);

  std::printf("\n%-18s | %10s | %10s | %10s | %10s | %6s | %5s\n",
              "crash point", "scratch", "salvage", "re-run u", "replay u",
              "ratio", "exact");
  bool all_exact = true;
  double worst_recovery_seconds = 0;
  double ratio_at_50 = 1.0;
  struct Series {
    std::string name;
    double value;
  };
  std::vector<Series> series;
  for (const uint32_t percent : {25u, 50u, 75u}) {
    const uint64_t crash_after =
        std::max<uint64_t>(1, worker1_units * percent / 100);

    // From-scratch recovery: the successful attempt re-enumerates every
    // unit of the step on the survivor.
    ExecutionConfig scratch_config = BenchCluster();
    scratch_config.fault_plan = FaultPlan().CrashWorker(1, crash_after);
    WallTimer scratch_timer;
    const MotifsResult scratch = CountMotifs(graph, kMotifSize, scratch_config);
    const double scratch_seconds = scratch_timer.ElapsedSeconds();
    FRACTAL_CHECK(scratch.execution.status.ok()) << scratch.execution.status;
    uint64_t scratch_units = 0;
    for (const StepTelemetry& step : scratch.execution.telemetry.steps) {
      scratch_units += step.TotalWorkUnits();
    }

    // Salvage recovery: only worker 1's unfinished tasks are replayed.
    ExecutionConfig salvage_config = BenchCluster();
    salvage_config.fault_plan = FaultPlan().CrashWorker(1, crash_after);
    salvage_config.retry.mode = RetryPolicy::Mode::kSalvage;
    WallTimer salvage_timer;
    const MotifsResult salvaged =
        CountMotifs(graph, kMotifSize, salvage_config);
    const double salvage_seconds = salvage_timer.ElapsedSeconds();
    FRACTAL_CHECK(salvaged.execution.status.ok())
        << salvaged.execution.status;

    worst_recovery_seconds = std::max(
        {worst_recovery_seconds, scratch_seconds, salvage_seconds});
    const bool exact = scratch.total == baseline.total &&
                       scratch.counts == baseline.counts &&
                       salvaged.total == baseline.total &&
                       salvaged.counts == baseline.counts;
    all_exact = all_exact && exact;
    const double ratio =
        scratch_units > 0
            ? static_cast<double>(salvaged.execution.units_replayed) /
                  static_cast<double>(scratch_units)
            : 0.0;
    if (percent == 50) ratio_at_50 = ratio;
    series.push_back(
        {StrFormat("Recovery/replay_ratio/%u", percent), ratio});
    std::printf("%-18s | %s | %s | %10llu | %10llu | %5.2fx | %5s\n",
                StrFormat("crash @ %u%% (%llu)", percent,
                          (unsigned long long)crash_after)
                    .c_str(),
                bench::Secs(scratch_seconds).c_str(),
                bench::Secs(salvage_seconds).c_str(),
                (unsigned long long)scratch_units,
                (unsigned long long)salvaged.execution.units_replayed, ratio,
                exact ? "yes" : "NO");
  }

  // --- 2. steal-deadline overhead on the fault-free hot path -------------
  auto timed_run = [&](int64_t timeout_micros) {
    ExecutionConfig config = BenchCluster();
    config.network.request_timeout_micros = timeout_micros;
    double runs[3];
    for (double& r : runs) {
      WallTimer timer;
      const MotifsResult result = CountMotifs(graph, kMotifSize, config);
      r = timer.ElapsedSeconds();
      FRACTAL_CHECK(result.execution.status.ok()) << result.execution.status;
      if (result.total != baseline.total) return -1.0;  // exactness guard
    }
    return MedianOf3(runs[0], runs[1], runs[2]);
  };
  const double untimed_seconds = timed_run(0);
  const double deadline_seconds = timed_run(50000);
  const double overhead =
      untimed_seconds > 0 ? deadline_seconds / untimed_seconds - 1.0 : 0.0;
  std::printf("\nsteal waits untimed (pre-resilience): %s\n",
              bench::Secs(untimed_seconds).c_str());
  std::printf("steal waits with 50ms deadline:       %s  (%+.1f%%)\n",
              bench::Secs(deadline_seconds).c_str(), overhead * 100);

  bench::Claim(
      "recovery keeps results exact at any crash point — from scratch or by "
      "salvaging the ledger — salvage replays a fraction of the from-scratch "
      "re-execution, and deadline bookkeeping is free when no fault fires");
  bench::Verdict(all_exact,
                 "recovered counts bit-identical to fault-free baseline at "
                 "25/50/75% crash points, both recovery modes");
  bench::Verdict(
      ratio_at_50 < 0.6,
      StrFormat("salvage replays %.2fx the from-scratch re-execution units "
                "at the 50%% crash point (< 0.6x bound)",
                ratio_at_50));
  bench::Verdict(
      worst_recovery_seconds < 4 * baseline_seconds + 1.0,
      StrFormat("worst recovery %.3fs vs baseline %.3fs (abandon + degraded "
                "re-run, no restart-from-zero of prior steps)",
                worst_recovery_seconds, baseline_seconds));
  bench::Verdict(
      untimed_seconds > 0 && overhead < 0.25,
      StrFormat("deadline overhead on fault-free path: %+.1f%%", overhead * 100));

  if (!recovery_out.empty()) {
    // Hand-written google-benchmark JSON over the deterministic work-unit
    // model (not wall time) so tools/bench_compare.py can gate the replay
    // ratios; the synthetic context pins host matching (strict gate) since
    // unit counts do not depend on the machine.
    FILE* f = std::fopen(recovery_out.c_str(), "w");
    FRACTAL_CHECK(f != nullptr) << "cannot write " << recovery_out;
    std::fprintf(f,
                 "{\n  \"context\": {\"host_name\": \"work-unit-model\", "
                 "\"mhz_per_cpu\": 0, \"num_cpus\": 0},\n"
                 "  \"benchmarks\": [\n");
    for (size_t i = 0; i < series.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"real_time\": %.6f, "
                   "\"cpu_time\": %.6f, \"time_unit\": \"ratio\", "
                   "\"iterations\": 1}%s\n",
                   series[i].name.c_str(), series[i].value, series[i].value,
                   i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("recovery series written to %s\n", recovery_out.c_str());
  }
  return 0;
}
