// Figure 12: Cliques runtime — Fractal vs Arabesque(-like BFS) vs
// GraphFrames(-like joins) vs QKCount(-like specialized counter) for
// k = 3..6. Paper shape: Fractal beats Arabesque in almost every scenario
// (5.2-12.9x on Youtube); GraphFrames often runs out of memory; the
// specialized QKCount is competitive and wins some configurations (Mico
// k = 6 in the paper).
#include "apps/cliques.h"
#include "baselines/bfs_engine.h"
#include "baselines/join_matcher.h"
#include "baselines/single_thread.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header(
      "Figure 12: Cliques runtime (Fractal vs Arabesque vs GraphFrames vs "
      "QKCount)",
      "paper Figure 12");

  struct Workload {
    const char* name;
    Graph graph;
    std::vector<uint32_t> ks;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"Mico-SL(comm)", bench::CliqueRichMico(), {3, 4, 5, 6}});
  workloads.push_back({"Youtube-SL(comm)", bench::CliqueRichYoutube(),
                       {3, 4, 5, 6}});

  const ExecutionConfig config = bench::DefaultCluster();
  double worst_vs_bfs = 0;
  double best_vs_bfs = 1e9;
  bool graphframes_oomed = false;
  bool qkcount_wins_once = false;

  std::printf("%-18s %3s %12s | %10s %12s %14s %12s\n", "graph", "k",
              "#cliques", "Fractal", "Arabesque~", "GraphFrames~",
              "QKCount~");
  for (Workload& workload : workloads) {
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(workload.graph));
    for (const uint32_t k : workload.ks) {
      WallTimer fractal_timer;
      const uint64_t count = CountCliques(graph, k, config);
      const double fractal = fractal_timer.ElapsedSeconds();

      baselines::BfsOptions bfs_options;
      bfs_options.shuffle_micros_per_embedding = 1.0;
      baselines::BfsEngine engine(workload.graph, bfs_options);
      const auto arabesque = engine.Cliques(k);
      if (!arabesque.out_of_memory) {
        FRACTAL_CHECK(arabesque.count == count);
      }

      baselines::JoinOptions join_options;
      join_options.use_triangle_seed = false;      // plain relational joins
      join_options.use_symmetry_breaking = false;  // dedup at the end
      // Executor-heap budget scaled to the analog graphs (the paper's
      // GraphFrames runs exhausted real executor heaps the same way).
      join_options.memory_budget_bytes = 8ull << 20;
      const auto graphframes = baselines::JoinCountMatches(
          workload.graph, Pattern::Clique(k), join_options);
      graphframes_oomed |= graphframes.out_of_memory;

      WallTimer qk_timer;
      const uint64_t qk_count =
          baselines::TunedCliqueCount(workload.graph, k);
      const double qkcount = qk_timer.ElapsedSeconds();
      FRACTAL_CHECK(qk_count == count);
      if (qkcount < fractal) qkcount_wins_once = true;

      std::printf("%-18s %3u %12s | %10s %12s %14s %12s\n", workload.name, k,
                  WithThousands(count).c_str(), bench::Secs(fractal).c_str(),
                  arabesque.out_of_memory ? "   OOM"
                                          : bench::Secs(arabesque.seconds).c_str(),
                  graphframes.out_of_memory
                      ? "     OOM"
                      : bench::Secs(graphframes.seconds).c_str(),
                  bench::Secs(qkcount).c_str());
      if (!arabesque.out_of_memory && k >= 4) {
        const double speedup = arabesque.seconds / fractal;
        worst_vs_bfs = std::max(worst_vs_bfs, speedup);
        best_vs_bfs = std::min(best_vs_bfs, speedup);
      }
    }
  }

  bench::Claim(
      "Fractal outperforms the BFS system in almost every scenario (larger "
      "gains on the bigger graph); GraphFrames-like joins often OOM; the "
      "specialized counter stays competitive");
  bench::Verdict(worst_vs_bfs > 1.0,
                 StrFormat("best speedup vs BFS baseline %.2fx (k>=4)",
                           worst_vs_bfs));
  bench::Verdict(graphframes_oomed,
                 "GraphFrames-like joins exceeded their memory budget on at "
                 "least one configuration");
  bench::Verdict(qkcount_wins_once,
                 "specialized QKCount-like counter wins at least one "
                 "configuration (paper: Mico k=6)");
  return 0;
}
