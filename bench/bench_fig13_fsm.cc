// Figure 13: FSM runtime vs minimum support — Fractal vs Arabesque(-like
// BFS) vs ScaleMine(-like two-phase). Paper shape: Fractal scales better
// than Arabesque as support falls (up to 4.57x at 20k); ScaleMine's fixed
// estimation phase makes it lose at HIGH supports (Fractal up to 4.12x at
// 24k) while its sampling-guided approximate counting wins at LOW supports.
#include "apps/fsm.h"
#include "baselines/bfs_engine.h"
#include "baselines/scalemine_like.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 13: FSM runtime vs support (Fractal vs Arabesque "
                "vs ScaleMine)",
                "paper Figure 13");

  struct Workload {
    const char* name;
    Graph graph;
    std::vector<uint32_t> supports;  // descending, like the paper's x-axis
    uint32_t max_edges;
  };
  std::vector<Workload> workloads;
  {
    PowerLawParams params;  // labeled Mico-like
    params.num_vertices = 700;
    params.edges_per_vertex = 7;
    params.num_vertex_labels = 6;
    params.label_skew = 1.8;
    params.triangle_closure = 0.4;
    params.seed = 0xA11CE;
    workloads.push_back({"Mico-ML(small)", GeneratePowerLaw(params),
                         {230, 180, 130}, 3});
  }
  {
    PowerLawParams params;  // labeled Patents-like (sparser)
    params.num_vertices = 2500;
    params.edges_per_vertex = 3;
    params.num_vertex_labels = 8;
    params.label_skew = 1.8;
    params.triangle_closure = 0.25;
    params.seed = 0xBEEF1;
    workloads.push_back({"Patents-ML(small)", GeneratePowerLaw(params),
                         {260, 200, 150}, 3});
  }

  const ExecutionConfig config = bench::DefaultCluster();
  baselines::ScaleMineOptions scalemine_options;
  scalemine_options.sample_walks = 60000;  // the fixed phase-1 effort

  std::printf("%-20s %8s %6s | %10s %12s %12s (ph1+ph2)\n", "graph",
              "support", "#freq", "Fractal", "Arabesque~", "ScaleMine~");
  double high_support_vs_scalemine = 0;
  double low_support_vs_scalemine = 0;
  double best_vs_arabesque = 0;
  for (Workload& workload : workloads) {
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(workload.graph));
    for (size_t i = 0; i < workload.supports.size(); ++i) {
      const uint32_t support = workload.supports[i];
      WallTimer fractal_timer;
      const FsmResult fractal =
          RunFsm(graph, support, workload.max_edges, config);
      const double fractal_seconds = fractal_timer.ElapsedSeconds();

      baselines::BfsOptions bfs_options;
      bfs_options.shuffle_micros_per_embedding = 1.0;
      baselines::BfsEngine engine(workload.graph, bfs_options);
      const auto arabesque = engine.Fsm(support, workload.max_edges);
      FRACTAL_CHECK(arabesque.pattern_counts.size() ==
                    fractal.frequent.size());

      const auto scalemine = baselines::RunScaleMineFsm(
          workload.graph, support, workload.max_edges, scalemine_options);
      FRACTAL_CHECK(scalemine.frequent.size() == fractal.frequent.size());

      std::printf("%-20s %8u %6zu | %10s %12s %12s (%.2f+%.2f)\n",
                  workload.name, support, fractal.frequent.size(),
                  bench::Secs(fractal_seconds).c_str(),
                  bench::Secs(arabesque.seconds).c_str(),
                  bench::Secs(scalemine.seconds).c_str(),
                  scalemine.phase1_seconds, scalemine.phase2_seconds);
      best_vs_arabesque =
          std::max(best_vs_arabesque, arabesque.seconds / fractal_seconds);
      if (i == 0) {
        high_support_vs_scalemine = std::max(
            high_support_vs_scalemine, scalemine.seconds / fractal_seconds);
      }
      if (i + 1 == workload.supports.size()) {
        low_support_vs_scalemine =
            std::max(low_support_vs_scalemine,
                     scalemine.seconds / fractal_seconds);
      }
    }
  }

  bench::Claim(
      "Fractal's stateless execution beats the BFS system; it also beats "
      "ScaleMine at high supports (fixed phase-1 cost) while ScaleMine "
      "closes in (or wins) at low supports");
  bench::Verdict(best_vs_arabesque > 1.0,
                 StrFormat("best speedup vs BFS FSM: %.2fx",
                           best_vs_arabesque));
  bench::Verdict(high_support_vs_scalemine > 1.0,
                 StrFormat("at the highest support ScaleMine-like is %.2fx "
                           "slower than Fractal",
                           high_support_vs_scalemine));
  bench::Verdict(low_support_vs_scalemine < high_support_vs_scalemine,
                 StrFormat("ScaleMine's relative cost drops to %.2fx at the "
                           "lowest support (crossover direction)",
                           low_support_vs_scalemine));
  return 0;
}
