// Figure 17: graph reduction benefits for keyword search, scaling with the
// number of cores. Queries Q1/Q2 run on the original graph G and on the
// reduced graph G'; Q3/Q4 are heavier 3-4 keyword queries reported only
// with reduction (the paper's unreduced Q3/Q4 timed out after 4 hours).
// Paper shape: one to two orders of magnitude improvement from reduction,
// and near-linear core scaling for the heavy queries.
#include "apps/keyword_search.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 17: graph reduction for keyword search vs #cores",
                "paper Figure 17 + section 5.2.3");

  Graph wikidata = MakeWikidataWithKeywords();
  std::printf("graph: %s\n", wikidata.DebugString().c_str());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(std::move(wikidata));

  struct Query {
    const char* name;
    std::vector<uint32_t> keywords;
    bool run_unreduced;  // Q3/Q4: reduced only (unreduced timed out)
  };
  const std::vector<Query> queries = {
      {"Q1 {woody, allen, romance}", {4, 11, 23}, true},
      {"Q2 {mel, gibson, director}", {35, 60, 92}, true},
      {"Q3 {classic, fantasy, funny, author}", {1, 3, 6, 9}, false},
      {"Q4 {author, classic, award}", {0, 2, 5}, false},
  };
  const std::vector<uint32_t> core_counts = {1, 2, 4, 8};

  double worst_speedup = 1e30;
  double q3_ec = 0, q4_ec = 0;
  std::printf("\n%-38s %6s %12s %12s %14s\n", "query", "cores", "G (s)",
              "G' (s)", "EC on G'");
  for (const Query& query : queries) {
    for (const uint32_t cores : core_counts) {
      ExecutionConfig config = bench::VirtualCores(1, cores);
      KeywordSearchResult reduced =
          RunKeywordSearch(graph, query.keywords, true, config);
      std::string unreduced_seconds = "   (skipped)";
      if (query.run_unreduced) {
        const KeywordSearchResult full =
            RunKeywordSearch(graph, query.keywords, false, config);
        unreduced_seconds = bench::Secs(full.seconds);
        FRACTAL_CHECK(full.num_matches == reduced.num_matches);
        if (cores == core_counts.back()) {
          worst_speedup = std::min(
              worst_speedup,
              static_cast<double>(full.extension_cost) /
                  std::max<uint64_t>(reduced.extension_cost, 1));
        }
      }
      std::printf("%-38s %6u %12s %12s %14s\n", query.name, cores,
                  unreduced_seconds.c_str(),
                  bench::Secs(reduced.seconds).c_str(),
                  WithThousands(reduced.extension_cost).c_str());
      if (query.name[1] == '3') q3_ec = reduced.extension_cost;
      if (query.name[1] == '4') q4_ec = reduced.extension_cost;
    }
  }

  bench::Claim(
      "reduction cuts the extension cost by large factors (paper: 4.5x for "
      "Q1, 78x for Q2) and heavy queries are only feasible with it");
  bench::Verdict(worst_speedup > 2.0,
                 StrFormat("worst EC improvement from reduction: %.1fx",
                           worst_speedup));
  bench::Verdict(q3_ec > q4_ec,
                 StrFormat("Q3's workload (EC %.0f) exceeds Q4's (EC %.0f), "
                           "matching the paper's 1.5T vs 46B ordering",
                           q3_ec, q4_ec));
  return 0;
}
