// Figures 14+15: Subgraph querying q1..q8 — Fractal vs SEED(-like joins
// with triangle units) vs Arabesque(-like BFS). Paper shape: SEED wins on
// join-friendly symmetric queries (cliques q1/q4/q5 and q7 on Youtube);
// Fractal wins or stays competitive elsewhere; Arabesque only finishes the
// easy/low-edge queries (q1-q4) and OOMs on the rest.
#include "apps/queries.h"
#include "baselines/bfs_engine.h"
#include "baselines/join_matcher.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header(
      "Figures 14+15: subgraph querying q1..q8 (Fractal vs SEED vs "
      "Arabesque)",
      "paper Figures 14 and 15");

  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"Patents-SL(comm)", [] {
                         CommunityParams params;
                         params.num_communities = 60;
                         params.community_size = 18;
                         params.intra_probability = 0.4;
                         params.inter_edges_per_vertex = 2;
                         params.seed = 0xBEEF1;
                         return GenerateCommunityGraph(params);
                       }()});
  workloads.push_back({"Youtube-SL(comm)", bench::CliqueRichYoutube()});

  const ExecutionConfig config = bench::DefaultCluster();
  bool arabesque_oomed = false;
  bool arabesque_finished_easy = false;
  bool seed_wins_clique_like = false;
  bool fractal_wins_sparse = false;

  for (Workload& workload : workloads) {
    std::printf("\n%s: %s\n", workload.name,
                workload.graph.DebugString().c_str());
    std::printf("%-22s %12s | %10s %12s %12s\n", "query", "#matches",
                "Fractal", "SEED~", "Arabesque~");
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(workload.graph));
    for (uint32_t q = 1; q <= kNumSeedQueries; ++q) {
      const Pattern query = SeedQuery(q);
      WallTimer fractal_timer;
      const uint64_t count = CountQueryMatches(graph, query, config);
      const double fractal = fractal_timer.ElapsedSeconds();

      baselines::JoinOptions seed_options;  // triangle units + symmetry
      // Hadoop materialization: every intermediate tuple is written and
      // shuffled between join rounds.
      seed_options.shuffle_micros_per_tuple = 0.4;
      const auto seed =
          baselines::JoinCountMatches(workload.graph, query, seed_options);
      FRACTAL_CHECK(seed.out_of_memory || seed.count == count);

      baselines::BfsOptions bfs_options;
      bfs_options.memory_budget_bytes = 32ull << 20;   // fail fast like
      bfs_options.shuffle_micros_per_embedding = 0.5;  // the paper's runs
      baselines::BfsEngine engine(workload.graph, bfs_options);
      const auto arabesque = engine.Query(query);
      if (arabesque.out_of_memory) {
        arabesque_oomed = true;
      } else {
        FRACTAL_CHECK(arabesque.count == count);
        if (q <= 4) arabesque_finished_easy = true;
      }

      std::printf("%-22s %12s | %10s %12s %12s\n", SeedQueryName(q).c_str(),
                  WithThousands(count).c_str(), bench::Secs(fractal).c_str(),
                  seed.out_of_memory ? "    OOM"
                                     : bench::Secs(seed.seconds).c_str(),
                  arabesque.out_of_memory
                      ? "    OOM"
                      : bench::Secs(arabesque.seconds).c_str());

      const bool clique_like = (q == 1 || q == 4 || q == 5 || q == 7);
      if (clique_like && !seed.out_of_memory && seed.seconds < fractal) {
        seed_wins_clique_like = true;
      }
      if (!clique_like && !seed.out_of_memory && fractal < seed.seconds) {
        fractal_wins_sparse = true;
      }
    }
  }

  bench::Claim(
      "SEED's join plans win on symmetric/clique-like queries; Fractal wins "
      "or stays competitive on the others; the BFS system only finishes the "
      "easy queries and OOMs on the rest");
  bench::Verdict(seed_wins_clique_like,
                 "SEED-like wins at least one clique-like query (q1/q4/q5/q7)");
  bench::Verdict(fractal_wins_sparse,
                 "Fractal wins at least one sparse/irregular query");
  bench::Verdict(arabesque_oomed && arabesque_finished_easy,
                 "Arabesque-like finishes easy queries but OOMs on harder "
                 "ones");
  return 0;
}
