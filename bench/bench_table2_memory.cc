// Table 2: Memory per worker — Arabesque's materialized embedding state vs
// Fractal's enumerator state, for cliques on Youtube-ML (k = 3..6) and
// motifs on Mico-ML (k = 3..5). Paper shape: Arabesque's memory grows with
// depth (2.1x -> 17.6x Fractal's on cliques; 49.9x on motifs at k = 5)
// while Fractal stays roughly constant.
#include "apps/cliques.h"
#include "apps/motifs.h"
#include "baselines/bfs_engine.h"
#include "bench/bench_util.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Table 2: memory per worker (Arabesque vs Fractal)",
                "paper Table 2");

  const ExecutionConfig config = bench::DefaultCluster();
  std::printf("%-22s %3s %14s %14s %9s\n", "workload", "|V|", "Arab.~ state",
              "Frac. state", "ratio");

  double first_clique_ratio = 0, last_clique_ratio = 0;
  {
    // Clique counts must grow with k (as on the real Youtube-ML, where
    // Arabesque needed 204 GB per worker at k = 6): dense communities.
    CommunityParams community;
    community.num_communities = 40;
    community.community_size = 30;
    community.intra_probability = 0.85;
    community.inter_edges_per_vertex = 2;
    community.seed = 0xCAFE2;
    Graph youtube = GenerateCommunityGraph(community);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(youtube));
    for (const uint32_t k : {3u, 4u, 5u, 6u}) {
      baselines::BfsEngine engine(youtube);
      const auto bfs = engine.Cliques(k);
      const auto fractal = CliquesFractoid(graph, k).Execute(config);
      const double ratio = static_cast<double>(bfs.peak_state_bytes) /
                           std::max<uint64_t>(fractal.peak_state_bytes, 1);
      std::printf("%-22s %3u %14s %14s %8.1fx\n", "Cliques Youtube-ML", k,
                  HumanBytes(bfs.peak_state_bytes).c_str(),
                  HumanBytes(fractal.peak_state_bytes).c_str(), ratio);
      if (k == 3) first_clique_ratio = ratio;
      if (k == 6) last_clique_ratio = ratio;
    }
  }
  double motif_ratio_3 = 0, motif_ratio_5 = 0;
  {
    // Multi-labeled motifs: the labeled-pattern space grows with labels^k,
    // so this row uses a smaller analog (8 labels) to stay in budget.
    PowerLawParams params;
    params.num_vertices = 220;
    params.edges_per_vertex = 6;
    params.num_vertex_labels = 8;
    params.label_skew = 1.6;
    params.triangle_closure = 0.5;
    params.seed = 0xA11CE;
    Graph mico = GeneratePowerLaw(params);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(mico));
    for (const uint32_t k : {3u, 4u, 5u}) {
      baselines::BfsEngine engine(mico);
      const auto bfs = engine.Motifs(k);
      const auto fractal = MotifsFractoid(graph, k).Execute(config);
      const double ratio = static_cast<double>(bfs.peak_state_bytes) /
                           std::max<uint64_t>(fractal.peak_state_bytes, 1);
      std::printf("%-22s %3u %14s %14s %8.1fx\n", "Motifs Mico-ML", k,
                  HumanBytes(bfs.peak_state_bytes).c_str(),
                  HumanBytes(fractal.peak_state_bytes).c_str(), ratio);
      if (k == 3) motif_ratio_3 = ratio;
      if (k == 5) motif_ratio_5 = ratio;
    }
  }

  bench::Claim(
      "Fractal's state stays ~constant while the BFS system's grows with "
      "enumeration depth (paper: 2.1x->17.6x on cliques, up to 49.9x on "
      "motifs)");
  bench::Verdict(last_clique_ratio > 3 * first_clique_ratio,
                 StrFormat("clique state ratio grows %.1fx -> %.1fx from "
                           "k=3 to k=6",
                           first_clique_ratio, last_clique_ratio));
  bench::Verdict(motif_ratio_5 > 10 * motif_ratio_3,
                 StrFormat("motif state ratio grows %.1fx -> %.1fx from "
                           "k=3 to k=5",
                           motif_ratio_3, motif_ratio_5));
  return 0;
}
