// Ablations of three design choices DESIGN.md calls out:
//   1. Quick-pattern memoized canonicalization (the Arabesque "two-phase
//      aggregation" trick the motifs/FSM key functions rely on) — disable
//      it and canonicalize every subgraph from scratch.
//   2. The KClist custom subgraph enumerator (paper Appendix B) vs the
//      generic expand+filter clique pipeline (Listing 2) — extension work
//      and runtime.
//   3. Transparent FSM graph reduction (paper §4.3) — edges mined and
//      runtime with/without, results asserted identical.
#include "apps/cliques.h"
#include "apps/fsm.h"
#include "apps/motifs.h"
#include "bench/bench_util.h"
#include "pattern/canonical.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Ablations: quick-pattern cache, KClist enumerator, "
                "transparent FSM reduction",
                "DESIGN.md design-choice index");
  const ExecutionConfig config = bench::DefaultCluster();

  // --- 1. Quick-pattern memoization ---------------------------------------
  {
    Graph mico = bench::SmallMico(/*num_labels=*/4);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(mico));

    WallTimer cached_timer;
    const MotifsResult cached = CountMotifs(graph, 4, config);
    const double cached_seconds = cached_timer.ElapsedSeconds();

    // Same aggregation but the key function canonicalizes from scratch.
    WallTimer uncached_timer;
    auto uncached_result =
        graph.VFractoid()
            .Expand(4)
            .Aggregate<Pattern, uint64_t, PatternHash>(
                "motifs",
                [](const Subgraph& s, Computation& comp) {
                  return CanonicalForm(s.QuickPattern(comp.graph())).pattern;
                },
                [](const Subgraph&, Computation&) -> uint64_t { return 1; },
                [](uint64_t& a, uint64_t&& b) { a += b; })
            .Execute(config);
    const double uncached_seconds = uncached_timer.ElapsedSeconds();
    const auto& storage =
        uncached_result.Aggregation<Pattern, uint64_t, PatternHash>("motifs");
    FRACTAL_CHECK(storage.NumEntries() == cached.counts.size());

    std::printf("\n1. quick-pattern cache (motifs k=4, %zu labeled shapes):\n",
                cached.counts.size());
    std::printf("   memoized:   %s\n", bench::Secs(cached_seconds).c_str());
    std::printf("   per-subgraph CanonicalForm: %s\n",
                bench::Secs(uncached_seconds).c_str());
    bench::Verdict(uncached_seconds > 1.5 * cached_seconds,
                   StrFormat("memoization is %.1fx faster",
                             uncached_seconds / cached_seconds));
  }

  // --- 2. KClist enumerator vs generic pipeline ---------------------------
  {
    Graph youtube = bench::CliqueRichYoutube();
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(youtube));
    const uint32_t k = 5;

    WallTimer generic_timer;
    const ExecutionResult generic =
        CliquesFractoid(graph, k).Execute(config);
    const double generic_seconds = generic_timer.ElapsedSeconds();

    WallTimer optimized_timer;
    const ExecutionResult optimized =
        OptimizedCliquesFractoid(graph, k).Execute(config);
    const double optimized_seconds = optimized_timer.ElapsedSeconds();
    FRACTAL_CHECK(generic.num_subgraphs == optimized.num_subgraphs);

    std::printf("\n2. KClist custom enumerator (%u-cliques, %llu found):\n",
                k, (unsigned long long)generic.num_subgraphs);
    std::printf("   generic expand+filter: %s, %s work units\n",
                bench::Secs(generic_seconds).c_str(),
                WithThousands(generic.telemetry.TotalWorkUnits()).c_str());
    std::printf("   KClist enumerator:     %s, %s work units\n",
                bench::Secs(optimized_seconds).c_str(),
                WithThousands(optimized.telemetry.TotalWorkUnits()).c_str());
    bench::Verdict(optimized.telemetry.TotalWorkUnits() <
                       generic.telemetry.TotalWorkUnits(),
                   StrFormat("custom enumerator does %.1fx less extension "
                             "work",
                             static_cast<double>(
                                 generic.telemetry.TotalWorkUnits()) /
                                 optimized.telemetry.TotalWorkUnits()));
  }

  // --- 3. Transparent FSM graph reduction ---------------------------------
  {
    PowerLawParams params;
    params.num_vertices = 900;
    params.edges_per_vertex = 4;
    params.num_vertex_labels = 12;
    params.label_skew = 1.2;  // spread labels: many infrequent edges
    params.seed = 0xBEEF1;
    Graph labeled = GeneratePowerLaw(params);
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(labeled));

    FsmOptions plain;
    plain.min_support = 50;
    plain.max_edges = 3;
    FsmOptions reducing = plain;
    reducing.transparent_graph_reduction = true;

    WallTimer plain_timer;
    const FsmResult base = RunFsmWithOptions(graph, plain, config);
    const double plain_seconds = plain_timer.ElapsedSeconds();
    WallTimer reduced_timer;
    const FsmResult reduced = RunFsmWithOptions(graph, reducing, config);
    const double reduced_seconds = reduced_timer.ElapsedSeconds();
    FRACTAL_CHECK(base.frequent.size() == reduced.frequent.size());

    std::printf("\n3. transparent FSM reduction (support %u, %zu frequent "
                "patterns):\n",
                plain.min_support, base.frequent.size());
    std::printf("   full graph:    %u edges mined, %s, %s work units\n",
                base.mined_graph_edges, bench::Secs(plain_seconds).c_str(),
                WithThousands(base.total_work_units).c_str());
    std::printf("   reduced graph: %u edges mined, %s, %s work units\n",
                reduced.mined_graph_edges,
                bench::Secs(reduced_seconds).c_str(),
                WithThousands(reduced.total_work_units).c_str());
    bench::Verdict(reduced.mined_graph_edges < base.mined_graph_edges &&
                       reduced.total_work_units <= base.total_work_units,
                   StrFormat("reduction drops %.0f%% of edges with identical "
                             "results",
                             100.0 * (1.0 - static_cast<double>(
                                                reduced.mined_graph_edges) /
                                                base.mined_graph_edges)));
  }
  return 0;
}
