// Table 1: the evaluation graphs. Prints the synthetic analogs' statistics
// next to the paper's originals (scaled |V|/|E|; identical label counts and
// comparable density regimes).
#include "bench/bench_util.h"
#include "graph/datasets.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Table 1: graphs used for evaluation",
                "paper Table 1 (synthetic analogs, DESIGN.md section 1)");

  std::printf("%-14s %10s %12s %8s %12s   %s\n", "Graph (G)", "|V(G)|",
              "|E(G)|", "|L(G)|", "Density", "paper original");
  for (const LabelMode mode : {LabelMode::kMultiLabel}) {
    for (const DatasetInfo& d : MakeTable1Datasets(mode)) {
      std::printf("%-14s %10s %12s %8u %12.2e   %s\n", d.name.c_str(),
                  WithThousands(d.graph.NumVertices()).c_str(),
                  WithThousands(d.graph.NumEdges()).c_str(),
                  d.graph.NumLabels(), d.graph.Density(),
                  d.paper_name.c_str());
    }
  }
  const DatasetInfo orkut = MakeDataset(DatasetId::kOrkut,
                                        LabelMode::kSingleLabel);
  std::printf("%-14s %10s %12s %8u %12.2e   %s  (Appendix C)\n",
              orkut.name.c_str(),
              WithThousands(orkut.graph.NumVertices()).c_str(),
              WithThousands(orkut.graph.NumEdges()).c_str(),
              orkut.graph.NumLabels(), orkut.graph.Density(),
              orkut.paper_name.c_str());

  bench::Claim(
      "graphs span sparse (Wikidata-like) to dense (Mico/Orkut-like) "
      "regimes with matching label multiplicities");
  const auto datasets = MakeTable1Datasets(LabelMode::kMultiLabel);
  const double mico_density = datasets[0].graph.Density();
  const double wikidata_density = datasets[3].graph.Density();
  bench::Verdict(mico_density > 20 * wikidata_density,
                 StrFormat("Mico density %.2e >> Wikidata density %.2e",
                           mico_density, wikidata_density));
  return 0;
}
