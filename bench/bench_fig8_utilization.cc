// Figure 8: CPU utilization of 4-clique enumeration WITHOUT work balancing
// on a 28-core machine — utilization collapses as cores exhaust their
// initial partitions while a few stragglers keep running. Reproduced with
// 28 virtual cores using deterministic work-unit accounting (1-core host,
// DESIGN.md section 1): the utilization curve is the fraction of cores whose
// assigned work is still unfinished at each makespan percentile.
#include <algorithm>
#include <vector>

#include "apps/cliques.h"
#include "bench/bench_util.h"

using namespace fractal;

namespace {

void PrintUtilization(const StepTelemetry& step, uint64_t steal_cost) {
  // Per-core completion time in work units.
  std::vector<uint64_t> finish;
  for (const ThreadStats& t : step.threads) {
    finish.push_back(t.work_units + steal_cost * t.external_steals);
  }
  const uint64_t makespan = *std::max_element(finish.begin(), finish.end());
  std::printf("   %-10s", "time->");
  for (int bucket = 1; bucket <= 20; ++bucket) std::printf("%3d%%", bucket * 5);
  std::printf("\n   %-10s", "busy cores");
  for (int bucket = 1; bucket <= 20; ++bucket) {
    const uint64_t t = makespan * bucket / 20;
    int busy = 0;
    for (const uint64_t f : finish) {
      if (f >= t) ++busy;
    }
    std::printf("%4d", busy);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 8: utilization without work balancing (4-cliques)",
                "paper Figure 8 + section 4.2 motivating example");

  DatasetInfo mico_info = MakeDataset(DatasetId::kMico, LabelMode::kSingleLabel);
  Graph mico = std::move(mico_info.graph);
  std::printf("graph: %s, 28 virtual cores (1 worker)\n",
              mico.DebugString().c_str());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(std::move(mico));

  ExecutionConfig disabled = bench::VirtualCores(1, 28);
  disabled.internal_work_stealing = false;
  disabled.external_work_stealing = false;
  ExecutionConfig stealing = bench::VirtualCores(1, 28);

  double efficiency[2] = {0, 0};
  int index = 0;
  for (const auto& [name, config] :
       {std::pair{"no work stealing (Fig 8)", disabled},
        std::pair{"internal work stealing", stealing}}) {
    const ExecutionResult result =
        CliquesFractoid(graph, 4).Execute(config);
    const StepTelemetry& step = result.telemetry.steps.at(0);
    efficiency[index] = step.BalanceEfficiency(0);
    std::printf("\n%s: %llu 4-cliques, %llu work units, balance "
                "efficiency %.2f\n",
                name, (unsigned long long)result.num_subgraphs,
                (unsigned long long)step.TotalWorkUnits(),
                efficiency[index]);
    PrintUtilization(step, 0);
    ++index;
  }

  bench::Claim(
      "without balancing, utilization drops quickly while stragglers run "
      "(long tail); stealing sustains near-full utilization");
  bench::Verdict(efficiency[0] < 0.45 && efficiency[1] > efficiency[0] * 1.5,
                 StrFormat("balance efficiency %.2f (disabled) vs %.2f "
                           "(stealing)",
                           efficiency[0], efficiency[1]));
  return 0;
}
