// Figure 18: COST analysis — the number of Fractal execution threads needed
// to beat efficient single-thread implementations (Gtries for motifs,
// cliques and queries q2/q3; Grami for FSM). Paper shape: COST is typically
// 3-4 threads.
//
// On this 1-core host, multi-thread wall time cannot show real speedup, so
// Fractal's T-thread time is modeled from measured single-thread wall time
// scaled by the measured work-unit makespan ratio (DESIGN.md section 1):
//   time(T) = time(1) * makespan_units(T) / total_units.
#include "apps/cliques.h"
#include "apps/fsm.h"
#include "apps/motifs.h"
#include "apps/queries.h"
#include "baselines/single_thread.h"
#include "bench/bench_util.h"

using namespace fractal;

namespace {

struct CostResult {
  double baseline_seconds = 0;
  double fractal_one_thread = 0;
  std::vector<double> modeled;  // modeled T-thread seconds, T = 1..8
  int cost = -1;                // first T beating the baseline
};

/// Runs `fractal_run(config)` at 1 thread for wall time, then at each T for
/// work-unit telemetry, and assembles the modeled time curve.
template <typename Run>
CostResult ComputeCost(double baseline_seconds, Run fractal_run) {
  CostResult result;
  result.baseline_seconds = baseline_seconds;

  WallTimer timer;
  ExecutionTelemetry telemetry_1 =
      fractal_run(bench::SingleThreadConfig());
  result.fractal_one_thread = timer.ElapsedSeconds();
  const double total_units =
      static_cast<double>(telemetry_1.TotalWorkUnits());

  for (uint32_t threads = 1; threads <= 8; ++threads) {
    ExecutionConfig config = bench::VirtualCores(1, threads);
    const ExecutionTelemetry telemetry = fractal_run(config);
    uint64_t makespan = 0;
    for (const StepTelemetry& step : telemetry.steps) {
      makespan += step.SimulatedMakespanUnits(/*steal_cost_units=*/200);
    }
    const double modeled =
        result.fractal_one_thread * makespan / std::max(total_units, 1.0);
    result.modeled.push_back(modeled);
    if (result.cost < 0 && modeled < baseline_seconds) {
      result.cost = static_cast<int>(threads);
    }
  }
  return result;
}

void PrintCost(const char* kernel, const char* baseline_name,
               const CostResult& result) {
  std::printf("%-18s vs %-12s baseline %s | modeled:", kernel, baseline_name,
              bench::Secs(result.baseline_seconds).c_str());
  for (const double seconds : result.modeled) {
    std::printf(" %.2f", seconds);
  }
  if (result.cost > 0) {
    std::printf("  -> COST = %d threads\n", result.cost);
  } else {
    std::printf("  -> COST > 8 threads\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 18: COST analysis (threads to beat single-thread "
                "baselines)",
                "paper Figure 18 + section 5.2.4");
  std::printf("modeled T-thread time = 1-thread wall x work-unit makespan "
              "ratio (1-core host)\n\n");

  Graph mico = bench::SmallMico();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(mico));

  std::vector<int> costs;

  {  // Motifs vs Gtries.
    WallTimer timer;
    const auto counts = baselines::TunedMotifCounts(mico, 4);
    const double baseline = timer.ElapsedSeconds();
    FRACTAL_CHECK(!counts.empty());
    const CostResult result =
        ComputeCost(baseline, [&](const ExecutionConfig& config) {
          return CountMotifs(graph, 4, config).execution.telemetry;
        });
    PrintCost("Motifs k=4", "Gtries~", result);
    costs.push_back(result.cost);
  }
  {  // Cliques vs Gtries.
    WallTimer timer;
    const uint64_t count = baselines::TunedCliqueCount(mico, 5);
    const double baseline = timer.ElapsedSeconds();
    (void)count;
    const CostResult result =
        ComputeCost(baseline, [&](const ExecutionConfig& config) {
          return CliquesFractoid(graph, 5).Execute(config).telemetry;
        });
    PrintCost("Cliques k=5", "Gtries~", result);
    costs.push_back(result.cost);
  }
  for (const uint32_t q : {2u, 3u}) {  // Queries vs Gtries.
    const Pattern query = SeedQuery(q);
    WallTimer timer;
    const uint64_t count = baselines::TunedQueryCount(mico, query);
    const double baseline = timer.ElapsedSeconds();
    (void)count;
    const CostResult result =
        ComputeCost(baseline, [&](const ExecutionConfig& config) {
          return QueryFractoid(graph, query).Execute(config).telemetry;
        });
    PrintCost(SeedQueryName(q).c_str(), "Gtries~", result);
    costs.push_back(result.cost);
  }
  {  // FSM vs Grami.
    PowerLawParams params;
    params.num_vertices = 700;
    params.edges_per_vertex = 7;
    params.num_vertex_labels = 6;
    params.label_skew = 1.8;
    params.triangle_closure = 0.4;
    params.seed = 0xA11CE;
    Graph labeled = GeneratePowerLaw(params);
    FractalContext labeled_ctx;
    FractalGraph labeled_graph = labeled_ctx.FromGraph(Graph(labeled));
    WallTimer timer;
    const auto frequent = baselines::TunedFsm(labeled, 140, 3);
    const double baseline = timer.ElapsedSeconds();
    FRACTAL_CHECK(!frequent.empty());
    const CostResult result =
        ComputeCost(baseline, [&](const ExecutionConfig& config) {
          const FsmResult fsm = RunFsm(labeled_graph, 140, 3, config);
          ExecutionTelemetry telemetry;
          telemetry.steps = fsm.step_telemetry;
          return telemetry;
        });
    PrintCost("FSM supp=140", "Grami~", result);
    costs.push_back(result.cost);
  }

  bench::Claim("COST typically ranges around 3-4 threads (lower for "
               "enumeration-dominated kernels)");
  int reasonable = 0;
  for (const int cost : costs) {
    if (cost > 0 && cost <= 8) ++reasonable;
  }
  bench::Verdict(reasonable >= 3,
                 StrFormat("%d of %zu kernels reach the baseline within 8 "
                           "threads",
                           reasonable, costs.size()));
  return 0;
}
