// Figure 11: Motifs runtime — Fractal vs Arabesque(-like BFS) vs
// MRSUB(-like MapReduce) on Mico-SL and Youtube-SL analogs, k = 3..5.
// Paper shape: Arabesque wins the smallest configuration (Fractal pays a
// work-stealing setup overhead), Fractal pulls ahead as k or the graph
// grows (up to 1.6x on Mico, 3.1x on Youtube), MRSUB is worst across the
// board and runs out of memory in one instance.
#include "apps/motifs.h"
#include "baselines/bfs_engine.h"
#include "bench/bench_util.h"

using namespace fractal;

namespace {

struct Row {
  std::string graph;
  uint32_t k;
  double fractal = 0, arabesque = 0, mrsub = 0;
  bool mrsub_oom = false;
  uint64_t fractal_count = 0, arabesque_count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Figure 11: Motifs runtime (Fractal vs Arabesque vs MRSUB)",
                "paper Figure 11");

  struct Workload {
    const char* name;
    Graph graph;
    std::vector<uint32_t> ks;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"Mico-SL(small)", bench::SmallMico(), {3, 4, 5}});
  workloads.push_back({"Youtube-SL(small)", bench::SmallYoutube(), {3, 4}});

  const ExecutionConfig config = bench::DefaultCluster();
  std::vector<Row> rows;
  for (Workload& workload : workloads) {
    FractalContext fctx;
    FractalGraph graph = fctx.FromGraph(Graph(workload.graph));
    for (const uint32_t k : workload.ks) {
      Row row;
      row.graph = workload.name;
      row.k = k;
      {
        WallTimer timer;
        const MotifsResult result = CountMotifs(graph, k, config);
        row.fractal = timer.ElapsedSeconds();
        row.fractal_count = result.total;
      }
      {
        baselines::BfsOptions options;
        options.shuffle_micros_per_embedding = 0.05;
        baselines::BfsEngine engine(workload.graph, options);
        const auto result = engine.Motifs(k);
        row.arabesque = result.seconds;
        row.arabesque_count = result.count;
      }
      {
        baselines::BfsOptions options;
        options.disable_pattern_cache = true;  // MRSUB: no pattern cache
        options.shuffle_micros_per_embedding = 0.3;
        options.state_replication = 3.0;       // map-output duplication
        options.memory_budget_bytes = 1ull << 30;
        baselines::BfsEngine engine(workload.graph, options);
        const auto result = engine.Motifs(k);
        row.mrsub = result.seconds;
        row.mrsub_oom = result.out_of_memory;
      }
      rows.push_back(row);
      FRACTAL_CHECK(row.fractal_count == row.arabesque_count);
    }
  }

  std::printf("%-18s %3s %14s | %10s %12s %12s\n", "graph", "k", "#motifs",
              "Fractal", "Arabesque~", "MRSUB~");
  for (const Row& row : rows) {
    std::printf("%-18s %3u %14s | %10s %12s %12s\n", row.graph.c_str(),
                row.k, WithThousands(row.fractal_count).c_str(),
                bench::Secs(row.fractal).c_str(),
                bench::Secs(row.arabesque).c_str(),
                row.mrsub_oom ? "    OOM" : bench::Secs(row.mrsub).c_str());
  }

  bench::Claim(
      "Fractal beats the BFS system on the larger configurations; MRSUB is "
      "worst across the board (or OOM)");
  const Row& deepest_mico = rows[2];   // Mico k=5
  const Row& small_mico = rows[0];     // Mico k=3
  bool mrsub_worst = true;
  for (const Row& row : rows) {
    if (!row.mrsub_oom && row.mrsub < std::min(row.fractal, row.arabesque)) {
      mrsub_worst = false;
    }
  }
  bench::Verdict(deepest_mico.arabesque > deepest_mico.fractal,
                 StrFormat("Mico k=5 speedup over BFS baseline: %.2fx",
                           deepest_mico.arabesque / deepest_mico.fractal));
  bench::Verdict(mrsub_worst, "MRSUB-like never wins a configuration");
  std::printf("   [info] smallest configuration (Mico k=3): Fractal %.3fs "
              "vs BFS %.3fs — the paper reports the BFS system ahead here "
              "due to Fractal's setup overhead\n",
              small_mico.fractal, small_mico.arabesque);
  return 0;
}
