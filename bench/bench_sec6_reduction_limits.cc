// Paper section 6 ("Overheads and limitations"): graph reduction does NOT
// pay off for cliques — reducing Mico to the vertices/edges that occur in
// at least one k-clique shrinks the graph substantially (paper: >=29% fewer
// vertices, >=75% fewer edges) but the extension cost (which dominates the
// computation) stays essentially unchanged, for a negligible net gain.
#include "apps/cliques.h"
#include "bench/bench_util.h"
#include "graph/graph_reduce.h"
#include "util/random.h"

using namespace fractal;

namespace {

/// Reduced graph keeping exactly the vertices/edges participating in at
/// least one k-clique (computed by enumeration; this is the oracle
/// reduction the paper's example uses).
Graph ReduceToCliqueElements(const Graph& graph, uint32_t k,
                             const ExecutionConfig& config) {
  FractalContext fctx;
  FractalGraph fgraph = fctx.FromGraph(Graph(graph));
  ExecutionConfig collect = config;
  collect.collect_subgraphs = true;
  const auto cliques = CliquesFractoid(fgraph, k).CollectSubgraphs(collect);
  std::vector<uint8_t> keep_vertex(graph.NumVertices(), 0);
  std::vector<uint8_t> keep_edge(graph.NumEdges(), 0);
  for (const Subgraph& clique : cliques) {
    for (const VertexId v : clique.Vertices()) keep_vertex[v] = 1;
    for (const EdgeId e : clique.Edges()) keep_edge[e] = 1;
  }
  return ReduceGraph(
      graph,
      [&keep_vertex](const Graph&, VertexId v) {
        return keep_vertex[v] != 0;
      },
      [&keep_edge](const Graph&, EdgeId e) { return keep_edge[e] != 0; });
}

}  // namespace

/// Mico-like structure for this experiment: a dense clique-rich core plus
/// a large sparse periphery with no cliques. The periphery is most of the
/// graph (so reduction removes a lot) but contributes almost no extension
/// cost (degree-squared effects concentrate EC in the core) — the paper's
/// exact point.
Graph DenseCorePlusPeriphery() {
  SplitMix64 rng(0xA11CE);
  GraphBuilder builder;
  constexpr uint32_t kCommunities = 14;
  constexpr uint32_t kCommunitySize = 26;
  constexpr uint32_t kCore = kCommunities * kCommunitySize;
  constexpr uint32_t kPeriphery = 2200;
  for (uint32_t v = 0; v < kCore + kPeriphery; ++v) builder.AddVertex(0);
  for (uint32_t c = 0; c < kCommunities; ++c) {
    const uint32_t base = c * kCommunitySize;
    for (uint32_t i = 0; i < kCommunitySize; ++i) {
      for (uint32_t j = i + 1; j < kCommunitySize; ++j) {
        if (rng.NextDouble() < 0.6) builder.AddEdge(base + i, base + j);
      }
    }
  }
  // Sparse triangle-free periphery: a long cycle with far-apart chords.
  for (uint32_t i = 0; i < kPeriphery; ++i) {
    builder.AddEdge(kCore + i, kCore + (i + 1) % kPeriphery);
  }
  for (uint32_t i = 0; i < kPeriphery / 4; ++i) {
    const uint32_t a = kCore + rng.NextBounded(kPeriphery);
    const uint32_t b = kCore + rng.NextBounded(kPeriphery);
    if (a != b && !builder.HasEdge(a, b) &&
        (a > b ? a - b : b - a) > 2) {
      builder.AddEdge(a, b);
    }
  }
  // A few bridges from periphery into the core.
  for (uint32_t i = 0; i < 60; ++i) {
    const uint32_t a = kCore + rng.NextBounded(kPeriphery);
    const uint32_t b = rng.NextBounded(kCore);
    if (!builder.HasEdge(a, b)) builder.AddEdge(a, b);
  }
  return std::move(builder).Build();
}

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Section 6: where graph reduction does NOT pay off "
                "(k-cliques)",
                "paper section 6, 'Graph reduction' paragraph");

  Graph mico = DenseCorePlusPeriphery();
  const ExecutionConfig config = bench::DefaultCluster();
  const uint32_t k = 4;

  FractalContext fctx;
  FractalGraph original = fctx.FromGraph(Graph(mico));
  WallTimer original_timer;
  const ExecutionResult on_original =
      CliquesFractoid(original, k).Execute(config);
  const double original_seconds = original_timer.ElapsedSeconds();
  uint64_t original_ec = 0;
  for (const auto& step : on_original.telemetry.steps) {
    original_ec += step.TotalExtensionTests();
  }

  Graph reduced_graph = ReduceToCliqueElements(mico, k, config);
  const uint32_t reduced_vertices = reduced_graph.NumActiveVertices();
  const uint32_t reduced_edges = reduced_graph.NumEdges();
  FractalGraph reduced = fctx.FromGraph(std::move(reduced_graph));
  WallTimer reduced_timer;
  const ExecutionResult on_reduced =
      CliquesFractoid(reduced, k).Execute(config);
  const double reduced_seconds = reduced_timer.ElapsedSeconds();
  uint64_t reduced_ec = 0;
  for (const auto& step : on_reduced.telemetry.steps) {
    reduced_ec += step.TotalExtensionTests();
  }
  FRACTAL_CHECK(on_reduced.num_subgraphs == on_original.num_subgraphs);

  const double v_reduction =
      100.0 * (1.0 - static_cast<double>(reduced_vertices) /
                         mico.NumVertices());
  const double e_reduction =
      100.0 * (1.0 -
               static_cast<double>(reduced_edges) / mico.NumEdges());
  const double ec_reduction =
      100.0 * (1.0 - static_cast<double>(reduced_ec) / original_ec);

  std::printf("graph: %s, %u-cliques: %llu\n", mico.DebugString().c_str(), k,
              (unsigned long long)on_original.num_subgraphs);
  std::printf("%-22s %10s %10s %14s %10s\n", "", "|V|", "|E|", "EC",
              "time");
  std::printf("%-22s %10u %10u %14s %10s\n", "original G",
              mico.NumVertices(), mico.NumEdges(),
              WithThousands(original_ec).c_str(),
              bench::Secs(original_seconds).c_str());
  std::printf("%-22s %10u %10u %14s %10s\n", "clique-reduced G'",
              reduced_vertices, reduced_edges,
              WithThousands(reduced_ec).c_str(),
              bench::Secs(reduced_seconds).c_str());
  std::printf("reduction: V %.2f%%  E %.2f%%  EC %.2f%%   "
              "(paper: >=29.09%% V, >=75.28%% E, EC ~unchanged)\n",
              v_reduction, e_reduction, ec_reduction);

  bench::Claim(
      "the graph shrinks substantially but the extension cost (the dominant "
      "cost) barely moves: reduction does not pay off for cliques");
  bench::Verdict(v_reduction > 25.0 && e_reduction > 25.0,
                 StrFormat("graph itself reduced: V -%.1f%%, E -%.1f%%",
                           v_reduction, e_reduction));
  bench::Verdict(ec_reduction < 35.0,
                 StrFormat("extension cost reduced only %.1f%% (vs %.1f%% "
                           "of edges removed)",
                           ec_reduction, e_reduction));
  return 0;
}
