// Shared helpers for the paper-reproduction bench binaries: consistent
// table printing, timing, the simulated-cluster configurations, and the
// scaled bench workloads. Every bench prints (a) the paper's rows/series,
// (b) the qualitative claim ("shape") it reproduces, and (c) a PASS/WARN
// verdict for that claim.
#ifndef FRACTAL_BENCH_BENCH_UTIL_H_
#define FRACTAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/context.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/timer.h"

namespace fractal {
namespace bench {

/// Opt-in tracing and profiling for a whole bench run: construct at the top
/// of main with argc/argv. Recognizes `--trace-out <path>` /
/// `--trace-out=<path>` (or the FRACTAL_TRACE_OUT environment variable as a
/// fallback), `--profile-out <path>` / `--profile-out=<path>` (or
/// FRACTAL_PROFILE, whose value is the output path), `--profile-hz <rate>`
/// (or FRACTAL_PROFILE_HZ), and `--metrics`; all other flags are left
/// untouched for the bench itself. Tracing is enabled for the session and
/// the merged Chrome trace JSON is exported on destruction; the profiler
/// samples every thread the runtime registers and writes collapsed stacks
/// (flamegraph.pl / speedscope input) on destruction.
class TraceSession {
 public:
  TraceSession(int argc, char** argv) {
    std::string profile_out;
    int profile_hz = obs::Profiler::kDefaultHz;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
        path_ = argv[++i];
      } else if (!std::strncmp(argv[i], "--trace-out=", 12)) {
        path_ = argv[i] + 12;
      } else if (!std::strcmp(argv[i], "--profile-out") && i + 1 < argc) {
        profile_out = argv[++i];
      } else if (!std::strncmp(argv[i], "--profile-out=", 14)) {
        profile_out = argv[i] + 14;
      } else if (!std::strcmp(argv[i], "--profile-hz") && i + 1 < argc) {
        profile_hz = std::atoi(argv[++i]);
      } else if (!std::strcmp(argv[i], "--metrics")) {
        dump_metrics_ = true;
      }
    }
    if (path_.empty()) {
      const char* env = std::getenv("FRACTAL_TRACE_OUT");
      if (env != nullptr) path_ = env;
    }
    if (profile_out.empty()) {
      const char* env = std::getenv("FRACTAL_PROFILE");
      if (env != nullptr) profile_out = env;
    }
    if (const char* env = std::getenv("FRACTAL_PROFILE_HZ")) {
      profile_hz = std::atoi(env);
    }
    if (!path_.empty()) obs::Tracer::Get().Enable();
    profile_.emplace(profile_out, profile_hz);
  }

  ~TraceSession() {
    // Stop sampling (and write the collapsed stacks) before draining the
    // trace rings so the export below is not itself profiled.
    profile_.reset();
    if (!path_.empty()) {
      obs::Tracer::Get().Disable();
      const Status status = obs::Tracer::Get().ExportChromeTrace(path_);
      if (status.ok()) {
        std::printf("trace written to %s\n", path_.c_str());
      } else {
        std::fprintf(stderr, "cannot write trace: %s\n",
                     status.ToString().c_str());
      }
    }
    if (dump_metrics_) {
      std::printf("%s", obs::MetricsRegistry::Get().DumpText().c_str());
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
  bool dump_metrics_ = false;
  std::optional<obs::ProfileSession> profile_;
};

/// The default simulated cluster used by comparative benches: 2 workers x 2
/// cores with both stealing levels on (scaled down from the paper's 10
/// machines x 28 threads to match the 1-core host; load-balance figures use
/// work-unit accounting instead of wall time, see DESIGN.md §1).
inline ExecutionConfig DefaultCluster() {
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 20;
  return config;
}

inline ExecutionConfig SingleThreadConfig() {
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  config.internal_work_stealing = false;
  config.external_work_stealing = false;
  return config;
}

/// Virtual cluster with many cores for load-balance accounting figures.
inline ExecutionConfig VirtualCores(uint32_t workers, uint32_t cores) {
  ExecutionConfig config;
  config.num_workers = workers;
  config.threads_per_worker = cores;
  config.network.latency_micros = 5;
  return config;
}

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void Claim(const std::string& claim) {
  std::printf("\n-- paper claim: %s\n", claim.c_str());
}

inline void Verdict(bool ok, const std::string& detail) {
  std::printf("   [%s] %s\n", ok ? "PASS" : "WARN", detail.c_str());
}

inline std::string Secs(double seconds) {
  return StrFormat("%8.3fs", seconds);
}

// --- Bench-scaled graphs --------------------------------------------------
// Deep-k enumeration (5-vertex motifs, 6-cliques) is exponential in graph
// size; these are smaller analogs keeping the same generator shape so the
// deep configurations stay within the single-core bench budget.

inline Graph SmallMico(uint32_t num_labels = 1) {
  PowerLawParams params;
  params.num_vertices = 280;
  params.edges_per_vertex = 8;
  params.num_vertex_labels = num_labels;
  params.label_skew = 1.6;
  params.triangle_closure = 0.5;
  params.seed = 0xA11CE;
  return GeneratePowerLaw(params);
}

inline Graph SmallYoutube(uint32_t num_labels = 1) {
  PowerLawParams params;
  params.num_vertices = 1000;
  params.edges_per_vertex = 6;
  params.num_vertex_labels = num_labels;
  params.label_skew = 1.6;
  params.triangle_closure = 0.45;
  params.seed = 0xCAFE2;
  return GeneratePowerLaw(params);
}

/// Community-structured analog of Mico (co-authorship communities) used by
/// the clique and query benches: dense pockets hold large clique counts,
/// which is where the BFS baselines' materialized state bites.
inline Graph CliqueRichMico() {
  CommunityParams params;
  params.num_communities = 26;
  params.community_size = 24;
  params.intra_probability = 0.55;
  params.inter_edges_per_vertex = 3;
  params.seed = 0xA11CE;
  return GenerateCommunityGraph(params);
}

/// Larger/denser community analog of Youtube for the same benches.
inline Graph CliqueRichYoutube() {
  CommunityParams params;
  params.num_communities = 70;
  params.community_size = 26;
  params.intra_probability = 0.5;
  params.inter_edges_per_vertex = 3;
  params.seed = 0xCAFE2;
  return GenerateCommunityGraph(params);
}

}  // namespace bench
}  // namespace fractal

#endif  // FRACTAL_BENCH_BENCH_UTIL_H_
