// Microbenchmarks (google-benchmark) for the hot paths of the engine:
// extension computation per strategy, canonicalization with and without the
// quick-pattern cache, subgraph push/pop, the stolen-work codec, and step
// dispatch on an ephemeral vs. persistent cluster.
#include <benchmark/benchmark.h>

#include "core/context.h"
#include "enumerate/enumerator.h"
#include "enumerate/extension.h"
#include "enumerate/reference_extension.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "pattern/canonical.h"
#include "runtime/cluster.h"
#include "runtime/codec.h"
#include "util/check.h"

namespace fractal {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    PowerLawParams params;
    params.num_vertices = 2000;
    params.edges_per_vertex = 8;
    params.triangle_closure = 0.4;
    params.seed = 17;
    return new Graph(GeneratePowerLaw(params));
  }();
  return *graph;
}

void BM_VertexExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  VertexInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 10);
  subgraph.PushVertexInduced(graph, *graph.Neighbors(10).begin());
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * ctx.extension_tests /
                          std::max<uint64_t>(state.iterations(), 1));
}
BENCHMARK(BM_VertexExtensions);

void BM_EdgeExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushEdgeInduced(graph, 0);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EdgeExtensions);

void BM_KClistExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  KClistStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 3);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KClistExtensions);

// --- Extension data plane A/B: set-algebra kernels vs. reference scans ---
// Dense Erdős–Rényi graph (400 vertices, 24k edges, ~30% density) where the
// old quadratic candidate×word scans hurt most. The ci.sh perf-smoke stage
// runs exactly these pairs (--benchmark_filter='Extensions(Kernel|Reference)')
// and records the results in BENCH_extension.json.

const Graph& DenseBenchGraph() {
  static const Graph* graph = [] {
    return new Graph(GenerateRandomGraph(/*num_vertices=*/400,
                                         /*num_edges=*/24000,
                                         /*num_vertex_labels=*/1,
                                         /*num_edge_labels=*/1, /*seed=*/7));
  }();
  return *graph;
}

/// A depth-3 connected vertex-induced prefix on the dense graph: vertex 0,
/// a neighbor, and a common neighbor of both.
Subgraph DenseVertexPrefix(const Graph& graph) {
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 0);
  const VertexId second = graph.Neighbors(0)[0];
  subgraph.PushVertexInduced(graph, second);
  for (const VertexId v : graph.Neighbors(0)) {
    if (v != second && graph.IsAdjacent(v, second)) {
      subgraph.PushVertexInduced(graph, v);
      break;
    }
  }
  return subgraph;
}

template <typename Strategy>
void RunVertexExtensionBench(benchmark::State& state) {
  const Graph& graph = DenseBenchGraph();
  Strategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph = DenseVertexPrefix(graph);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_VertexExtensionsKernel(benchmark::State& state) {
  RunVertexExtensionBench<VertexInducedStrategy>(state);
}
BENCHMARK(BM_VertexExtensionsKernel);

void BM_VertexExtensionsReference(benchmark::State& state) {
  RunVertexExtensionBench<ReferenceVertexInducedStrategy>(state);
}
BENCHMARK(BM_VertexExtensionsReference);

template <typename Strategy>
void RunEdgeExtensionBench(benchmark::State& state) {
  const Graph& graph = DenseBenchGraph();
  Strategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushEdgeInduced(graph, 0);
  const EdgeEndpoints& base = graph.Endpoints(0);
  for (const EdgeId e : graph.IncidentEdges(base.dst)) {
    if (e != 0) {
      subgraph.PushEdgeInduced(graph, e);
      break;
    }
  }
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_EdgeExtensionsKernel(benchmark::State& state) {
  RunEdgeExtensionBench<EdgeInducedStrategy>(state);
}
BENCHMARK(BM_EdgeExtensionsKernel);

void BM_EdgeExtensionsReference(benchmark::State& state) {
  RunEdgeExtensionBench<ReferenceEdgeInducedStrategy>(state);
}
BENCHMARK(BM_EdgeExtensionsReference);

template <typename Strategy>
void RunKClistExtensionBench(benchmark::State& state) {
  const Graph& graph = DenseBenchGraph();
  Strategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph = DenseVertexPrefix(graph);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_KClistExtensionsKernel(benchmark::State& state) {
  RunKClistExtensionBench<KClistStrategy>(state);
}
BENCHMARK(BM_KClistExtensionsKernel);

void BM_KClistExtensionsReference(benchmark::State& state) {
  RunKClistExtensionBench<ReferenceKClistStrategy>(state);
}
BENCHMARK(BM_KClistExtensionsReference);

void BM_CanonicalFormUncached(benchmark::State& state) {
  const Pattern pattern = [] {
    Pattern p = Pattern::CyclePattern(5);
    p.AddEdge(0, 2);
    p.AddEdge(1, 3);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalForm(pattern));
  }
}
BENCHMARK(BM_CanonicalFormUncached);

void BM_CanonicalFormCached(benchmark::State& state) {
  CanonicalPatternCache cache;
  const Pattern pattern = [] {
    Pattern p = Pattern::CyclePattern(5);
    p.AddEdge(0, 2);
    p.AddEdge(1, 3);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cache.Canonicalize(pattern));
  }
}
BENCHMARK(BM_CanonicalFormCached);

void BM_SubgraphPushPop(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 5);
  const VertexId neighbor = graph.Neighbors(5)[0];
  for (auto _ : state) {
    subgraph.PushVertexInduced(graph, neighbor);
    subgraph.Pop();
  }
}
BENCHMARK(BM_SubgraphPushPop);

void BM_StolenWorkCodec(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(graph, 5);
  work.prefix.PushVertexInduced(graph, graph.Neighbors(5)[0]);
  work.prefix.PushVertexInduced(graph, graph.Neighbors(5)[1]);
  work.extension = 77;
  work.primitive_index = 3;
  SubgraphEnumerator::StolenWork decoded;
  for (auto _ : state) {
    const auto bytes = SubgraphCodec::EncodeStolenWork(work);
    benchmark::DoNotOptimize(
        SubgraphCodec::DecodeStolenWork(bytes, &decoded));
  }
}
BENCHMARK(BM_StolenWorkCodec);

// --- Step dispatch: ephemeral vs. persistent cluster ----------------------
// A 4-step workflow (three aggregation sync points + a final enumeration)
// over a tiny graph, so per-step dispatch dominates the enumeration work.
// The ephemeral variant pays thread spawn/join for every execution (the
// pre-refactor executor paid it for every *step*); the persistent variant
// reuses one Cluster whose threads park between steps.

ExecutionConfig DispatchConfig() {
  ExecutionConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  config.network.latency_micros = 0;
  config.network.per_kb_micros = 0;
  return config;
}

void RunMultiStepWorkflow(const FractalGraph& graph,
                          const ExecutionConfig& config) {
  auto key = [](const Subgraph&, Computation&) -> uint64_t { return 0; };
  auto value = [](const Subgraph&, Computation&) -> uint64_t { return 1; };
  auto reduce = [](uint64_t& a, uint64_t&& b) { a += b; };
  auto pass = [](const Subgraph&, Computation&,
                 const AggregationStorage<uint64_t, uint64_t>&) {
    return true;
  };
  // Fresh fractoid per run: cached aggregations would skip the steps.
  Fractoid fractoid = graph.EFractoid().Expand(1);
  for (int i = 0; i < 3; ++i) {
    // Built with += : `const char* + string&&` trips GCC 12's -Wrestrict
    // false positive (PR105651) under -O2.
    std::string name = "c";
    name += std::to_string(i);
    fractoid =
        fractoid.Aggregate<uint64_t, uint64_t>(name, key, value, reduce)
            .FilterByAggregation<uint64_t, uint64_t>(name, pass);
  }
  const ExecutionResult result = fractoid.Expand(1).Execute(config);
  // A silent failure here would benchmark the error path, not dispatch.
  FRACTAL_CHECK(result.status.ok()) << result.status;
  benchmark::DoNotOptimize(result.num_subgraphs);
}

void BM_StepDispatchEphemeralCluster(benchmark::State& state) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Star(6));
  const ExecutionConfig config = DispatchConfig();
  for (auto _ : state) {
    RunMultiStepWorkflow(graph, config);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // steps dispatched
}
BENCHMARK(BM_StepDispatchEphemeralCluster)->Unit(benchmark::kMicrosecond);

void BM_StepDispatchPersistentCluster(benchmark::State& state) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Star(6));
  ExecutionConfig config = DispatchConfig();
  ClusterOptions options;
  options.num_workers = config.num_workers;
  options.threads_per_worker = config.threads_per_worker;
  options.external_work_stealing = true;
  options.network = config.network;
  Cluster cluster(options);
  config.cluster = &cluster;
  for (auto _ : state) {
    RunMultiStepWorkflow(graph, config);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_StepDispatchPersistentCluster)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fractal

BENCHMARK_MAIN();
