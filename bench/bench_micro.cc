// Microbenchmarks (google-benchmark) for the hot paths of the engine:
// extension computation per strategy, canonicalization with and without the
// quick-pattern cache, subgraph push/pop, and the stolen-work codec.
#include <benchmark/benchmark.h>

#include "enumerate/enumerator.h"
#include "enumerate/extension.h"
#include "graph/generators.h"
#include "pattern/canonical.h"
#include "runtime/codec.h"

namespace fractal {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    PowerLawParams params;
    params.num_vertices = 2000;
    params.edges_per_vertex = 8;
    params.triangle_closure = 0.4;
    params.seed = 17;
    return new Graph(GeneratePowerLaw(params));
  }();
  return *graph;
}

void BM_VertexExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  VertexInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 10);
  subgraph.PushVertexInduced(graph, *graph.Neighbors(10).begin());
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * ctx.extension_tests /
                          std::max<uint64_t>(state.iterations(), 1));
}
BENCHMARK(BM_VertexExtensions);

void BM_EdgeExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushEdgeInduced(graph, 0);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EdgeExtensions);

void BM_KClistExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  KClistStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 3);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KClistExtensions);

void BM_CanonicalFormUncached(benchmark::State& state) {
  const Pattern pattern = [] {
    Pattern p = Pattern::CyclePattern(5);
    p.AddEdge(0, 2);
    p.AddEdge(1, 3);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalForm(pattern));
  }
}
BENCHMARK(BM_CanonicalFormUncached);

void BM_CanonicalFormCached(benchmark::State& state) {
  CanonicalPatternCache cache;
  const Pattern pattern = [] {
    Pattern p = Pattern::CyclePattern(5);
    p.AddEdge(0, 2);
    p.AddEdge(1, 3);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cache.Canonicalize(pattern));
  }
}
BENCHMARK(BM_CanonicalFormCached);

void BM_SubgraphPushPop(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 5);
  const VertexId neighbor = graph.Neighbors(5)[0];
  for (auto _ : state) {
    subgraph.PushVertexInduced(graph, neighbor);
    subgraph.Pop();
  }
}
BENCHMARK(BM_SubgraphPushPop);

void BM_StolenWorkCodec(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(graph, 5);
  work.prefix.PushVertexInduced(graph, graph.Neighbors(5)[0]);
  work.prefix.PushVertexInduced(graph, graph.Neighbors(5)[1]);
  work.extension = 77;
  work.primitive_index = 3;
  SubgraphEnumerator::StolenWork decoded;
  for (auto _ : state) {
    const auto bytes = SubgraphCodec::EncodeStolenWork(work);
    benchmark::DoNotOptimize(
        SubgraphCodec::DecodeStolenWork(bytes, &decoded));
  }
}
BENCHMARK(BM_StolenWorkCodec);

}  // namespace
}  // namespace fractal

BENCHMARK_MAIN();
