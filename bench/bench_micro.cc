// Microbenchmarks (google-benchmark) for the hot paths of the engine:
// extension computation per strategy, canonicalization with and without the
// quick-pattern cache, subgraph push/pop, the stolen-work codec, and step
// dispatch on an ephemeral vs. persistent cluster.
#include <benchmark/benchmark.h>

#include "core/context.h"
#include "enumerate/enumerator.h"
#include "enumerate/extension.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "pattern/canonical.h"
#include "runtime/cluster.h"
#include "runtime/codec.h"

namespace fractal {
namespace {

const Graph& BenchGraph() {
  static const Graph* graph = [] {
    PowerLawParams params;
    params.num_vertices = 2000;
    params.edges_per_vertex = 8;
    params.triangle_closure = 0.4;
    params.seed = 17;
    return new Graph(GeneratePowerLaw(params));
  }();
  return *graph;
}

void BM_VertexExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  VertexInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 10);
  subgraph.PushVertexInduced(graph, *graph.Neighbors(10).begin());
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * ctx.extension_tests /
                          std::max<uint64_t>(state.iterations(), 1));
}
BENCHMARK(BM_VertexExtensions);

void BM_EdgeExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  EdgeInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushEdgeInduced(graph, 0);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EdgeExtensions);

void BM_KClistExtensions(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  KClistStrategy strategy;
  ExtensionContext ctx;
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 3);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    strategy.ComputeExtensions(graph, subgraph, ctx, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KClistExtensions);

void BM_CanonicalFormUncached(benchmark::State& state) {
  const Pattern pattern = [] {
    Pattern p = Pattern::CyclePattern(5);
    p.AddEdge(0, 2);
    p.AddEdge(1, 3);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalForm(pattern));
  }
}
BENCHMARK(BM_CanonicalFormUncached);

void BM_CanonicalFormCached(benchmark::State& state) {
  CanonicalPatternCache cache;
  const Pattern pattern = [] {
    Pattern p = Pattern::CyclePattern(5);
    p.AddEdge(0, 2);
    p.AddEdge(1, 3);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cache.Canonicalize(pattern));
  }
}
BENCHMARK(BM_CanonicalFormCached);

void BM_SubgraphPushPop(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  Subgraph subgraph;
  subgraph.PushVertexInduced(graph, 5);
  const VertexId neighbor = graph.Neighbors(5)[0];
  for (auto _ : state) {
    subgraph.PushVertexInduced(graph, neighbor);
    subgraph.Pop();
  }
}
BENCHMARK(BM_SubgraphPushPop);

void BM_StolenWorkCodec(benchmark::State& state) {
  const Graph& graph = BenchGraph();
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(graph, 5);
  work.prefix.PushVertexInduced(graph, graph.Neighbors(5)[0]);
  work.prefix.PushVertexInduced(graph, graph.Neighbors(5)[1]);
  work.extension = 77;
  work.primitive_index = 3;
  SubgraphEnumerator::StolenWork decoded;
  for (auto _ : state) {
    const auto bytes = SubgraphCodec::EncodeStolenWork(work);
    benchmark::DoNotOptimize(
        SubgraphCodec::DecodeStolenWork(bytes, &decoded));
  }
}
BENCHMARK(BM_StolenWorkCodec);

// --- Step dispatch: ephemeral vs. persistent cluster ----------------------
// A 4-step workflow (three aggregation sync points + a final enumeration)
// over a tiny graph, so per-step dispatch dominates the enumeration work.
// The ephemeral variant pays thread spawn/join for every execution (the
// pre-refactor executor paid it for every *step*); the persistent variant
// reuses one Cluster whose threads park between steps.

ExecutionConfig DispatchConfig() {
  ExecutionConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  config.network.latency_micros = 0;
  config.network.per_kb_micros = 0;
  return config;
}

void RunMultiStepWorkflow(const FractalGraph& graph,
                          const ExecutionConfig& config) {
  auto key = [](const Subgraph&, Computation&) -> uint64_t { return 0; };
  auto value = [](const Subgraph&, Computation&) -> uint64_t { return 1; };
  auto reduce = [](uint64_t& a, uint64_t&& b) { a += b; };
  auto pass = [](const Subgraph&, Computation&,
                 const AggregationStorage<uint64_t, uint64_t>&) {
    return true;
  };
  // Fresh fractoid per run: cached aggregations would skip the steps.
  Fractoid fractoid = graph.EFractoid().Expand(1);
  for (int i = 0; i < 3; ++i) {
    // Built with += : `const char* + string&&` trips GCC 12's -Wrestrict
    // false positive (PR105651) under -O2.
    std::string name = "c";
    name += std::to_string(i);
    fractoid =
        fractoid.Aggregate<uint64_t, uint64_t>(name, key, value, reduce)
            .FilterByAggregation<uint64_t, uint64_t>(name, pass);
  }
  benchmark::DoNotOptimize(
      fractoid.Expand(1).Execute(config).num_subgraphs);
}

void BM_StepDispatchEphemeralCluster(benchmark::State& state) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Star(6));
  const ExecutionConfig config = DispatchConfig();
  for (auto _ : state) {
    RunMultiStepWorkflow(graph, config);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // steps dispatched
}
BENCHMARK(BM_StepDispatchEphemeralCluster)->Unit(benchmark::kMicrosecond);

void BM_StepDispatchPersistentCluster(benchmark::State& state) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Star(6));
  ExecutionConfig config = DispatchConfig();
  ClusterOptions options;
  options.num_workers = config.num_workers;
  options.threads_per_worker = config.threads_per_worker;
  options.external_work_stealing = true;
  options.network = config.network;
  Cluster cluster(options);
  config.cluster = &cluster;
  for (auto _ : state) {
    RunMultiStepWorkflow(graph, config);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_StepDispatchPersistentCluster)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fractal

BENCHMARK_MAIN();
