// Paper section 4.1 motivating example: the memory a BFS system would need
// to keep ALL vertex-induced subgraphs of the Mico graph, at 8 bytes per
// stored vertex. The paper reports 163.27 GB at k = 4 and 46.37 TB at k = 5
// for the real Mico; on the scaled analog the same super-exponential
// explosion appears, while Fractal's DFS enumerator state stays ~constant.
#include "bench/bench_util.h"
#include "core/context.h"

using namespace fractal;

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header("Section 4.1: intermediate-state estimate (BFS vs DFS)",
                "paper section 4.1 motivating example (Mico, 163GB @4 / "
                "46TB @5)");

  DatasetInfo mico = MakeDataset(DatasetId::kMico, LabelMode::kSingleLabel);
  std::printf("graph: %s\n\n", mico.graph.DebugString().c_str());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(std::move(mico.graph));

  const ExecutionConfig config = bench::DefaultCluster();
  std::printf("%3s %16s %18s %16s\n", "k", "#subgraphs",
              "BFS state (k*8B ea)", "Fractal peak state");
  uint64_t previous = 0;
  double growth = 0;
  uint64_t fractal_state_max = 0;
  for (uint32_t k = 2; k <= 4; ++k) {
    const ExecutionResult result =
        graph.VFractoid().Expand(k).Execute(config);
    const uint64_t count = result.num_subgraphs;
    const uint64_t bfs_bytes = count * k * 8ull;
    fractal_state_max =
        std::max(fractal_state_max, result.peak_state_bytes);
    std::printf("%3u %16s %18s %16s\n", k, WithThousands(count).c_str(),
                HumanBytes(bfs_bytes).c_str(),
                HumanBytes(result.peak_state_bytes).c_str());
    if (previous > 0) growth = static_cast<double>(count) / previous;
    previous = count;
  }
  // k = 5 estimated by the measured per-level growth factor (enumerating it
  // exactly is precisely the explosion the example is about).
  const uint64_t estimated5 = static_cast<uint64_t>(previous * growth);
  std::printf("%3u %16s %18s %16s   (extrapolated)\n", 5,
              WithThousands(estimated5).c_str(),
              HumanBytes(estimated5 * 5 * 8ull).c_str(),
              HumanBytes(fractal_state_max).c_str());

  bench::Claim(
      "storing all subgraphs becomes unbearable by depth 4-5 while DFS "
      "enumerator state stays ~flat");
  const uint64_t bfs4 = previous * 4 * 8ull;
  bench::Verdict(bfs4 > 100 * fractal_state_max,
                 StrFormat("BFS state at k=4 is %.0fx Fractal's peak "
                           "enumerator state",
                           static_cast<double>(bfs4) / fractal_state_max));
  return 0;
}
