// Figure 16: hierarchical work-stealing drilldown on multi-step FSM-style
// mining — four configurations (1.Disabled / 2.Internal / 3.External /
// 4.Internal+External), reported per fractal step. Paper shape: imbalance
// is evident with balancing disabled (worse in later steps); internal
// stealing balances within workers at low cost; external-only balances
// across workers but pays communication; both combined give near-perfect
// balance at low communication overhead.
//
// Load balance is reported with the deterministic work-unit makespan model
// (DESIGN.md section 1): external steals are charged a communication cost
// in work units, so the Internal-vs-External overhead trade-off is visible
// exactly as in the paper's per-task runtime plots.
#include "apps/fsm.h"
#include "bench/bench_util.h"

using namespace fractal;

namespace {

/// Three-step FSM-shaped pipeline (expand/aggregate/filter x3) over the
/// given graph; pass-all aggregation filters keep the full workload so the
/// imbalance of deep enumeration shows.
Fractoid FsmShapedPipeline(const FractalGraph& graph) {
  auto count_patterns = [](const Fractoid& fractoid, const char* name) {
    return fractoid.Aggregate<Pattern, uint64_t, PatternHash>(
        name,
        [](const Subgraph& s, Computation& c) {
          return c.CanonicalPattern(s).pattern;
        },
        [](const Subgraph&, Computation&) -> uint64_t { return 1; },
        [](uint64_t& a, uint64_t&& b) { a += b; });
  };
  auto pass_all = [](const Fractoid& fractoid, const char* name) {
    return fractoid.FilterByAggregation<Pattern, uint64_t, PatternHash>(
        name, [](const Subgraph&, Computation&,
                 const AggregationStorage<Pattern, uint64_t, PatternHash>&) {
          return true;
        });
  };
  Fractoid fsm = count_patterns(graph.EFractoid().Expand(1), "support1");
  fsm = count_patterns(pass_all(fsm, "support1").Expand(1), "support2");
  fsm = pass_all(fsm, "support2").Expand(1);
  return fsm;
}

}  // namespace

int main(int argc, char** argv) {
  fractal::bench::TraceSession trace_session(argc, argv);
  bench::Header(
      "Figure 16: work stealing drilldown (FSM-style, 4 configurations)",
      "paper Figure 16 + section 5.2.2");

  PowerLawParams params;  // Patents-ML-like
  params.num_vertices = 2200;
  params.edges_per_vertex = 3;
  params.num_vertex_labels = 6;
  params.label_skew = 1.8;
  params.triangle_closure = 0.3;
  params.seed = 0xBEEF1;
  Graph patents = GeneratePowerLaw(params);
  std::printf("graph: %s, 2 workers x 4 cores\n",
              patents.DebugString().c_str());
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(std::move(patents));

  // One WS_ext round trip is worth ~200 extension units at the simulated
  // latencies (makespan model).
  constexpr uint64_t kExternalStealCost = 200;

  auto make_config = [](bool internal, bool external) {
    ExecutionConfig config = bench::VirtualCores(2, 4);
    config.internal_work_stealing = internal;
    config.external_work_stealing = external;
    return config;
  };
  struct Row {
    const char* name;
    ExecutionConfig config;
    std::vector<double> step_efficiency;
    uint64_t internal_steals = 0;
    uint64_t external_steals = 0;
    uint64_t bytes = 0;
    double Average() const {
      double total = 0;
      for (const double e : step_efficiency) total += e;
      return step_efficiency.empty() ? 0 : total / step_efficiency.size();
    }
  };
  std::vector<Row> rows = {
      {"1.Disabled", make_config(false, false), {}, 0, 0, 0},
      {"2.Internal", make_config(true, false), {}, 0, 0, 0},
      {"3.External", make_config(false, true), {}, 0, 0, 0},
      {"4.Internal+External", make_config(true, true), {}, 0, 0, 0},
  };

  std::printf("\n%-22s | per-step balance efficiency (work-unit model)\n",
              "configuration");
  for (Row& row : rows) {
    const ExecutionResult execution =
        FsmShapedPipeline(graph).Execute(row.config);
    std::printf("%-22s |", row.name);
    for (const StepTelemetry& step : execution.telemetry.steps) {
      const double efficiency = step.BalanceEfficiency(kExternalStealCost);
      row.step_efficiency.push_back(efficiency);
      row.internal_steals += step.TotalInternalSteals();
      row.external_steals += step.TotalExternalSteals();
      row.bytes += step.TotalBytesShipped();
      std::printf(" %5.2f", efficiency);
    }
    std::printf("   (int %6llu, ext %5llu, shipped %s)\n",
                (unsigned long long)row.internal_steals,
                (unsigned long long)row.external_steals,
                HumanBytes(row.bytes).c_str());
  }

  bench::Claim(
      "disabled -> raw imbalance; internal -> good balance, zero "
      "communication; external-only -> balance with communication overhead; "
      "internal+external -> best trade-off");
  bench::Verdict(
      rows[0].Average() < rows[1].Average() &&
          rows[0].Average() < rows[3].Average(),
      StrFormat("avg efficiency: disabled %.2f < internal %.2f / both %.2f",
                rows[0].Average(), rows[1].Average(), rows[3].Average()));
  bench::Verdict(rows[1].bytes == 0 && rows[2].bytes > 0,
                 StrFormat("internal ships 0 bytes; external-only ships %s "
                           "over %llu steals",
                           HumanBytes(rows[2].bytes).c_str(),
                           (unsigned long long)rows[2].external_steals));
  bench::Verdict(rows[3].external_steals < rows[2].external_steals,
                 StrFormat("combining levels cuts external steals %llu -> "
                           "%llu (communication mitigated)",
                           (unsigned long long)rows[2].external_steals,
                           (unsigned long long)rows[3].external_steals));
  return 0;
}
