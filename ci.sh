#!/usr/bin/env bash
# CI entry point.
#
#   1. Release build + the tier-1 ctest suite (ROADMAP.md).
#   2. ASan/UBSan build running the concurrency-heavy suites.
#   3. TSan build running the same suites, so the persistent-thread
#      Cluster/Worker runtime (parked execution threads, steal-service
#      threads, enumerator cursors) is race-checked on every PR.
#
# Usage: ./ci.sh            (JOBS=<n> to override parallelism)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
SANITIZED_SUITES='core_test|runtime_test'

echo "=== tier 1: Release build + full ctest suite ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== ASan/UBSan: ${SANITIZED_SUITES} ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "$JOBS" --target core_test runtime_test
ctest --test-dir build-asan --output-on-failure -R "$SANITIZED_SUITES"

echo "=== TSan: ${SANITIZED_SUITES} ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" --target core_test runtime_test
ctest --test-dir build-tsan --output-on-failure -R "$SANITIZED_SUITES"

echo "CI OK"
