#!/usr/bin/env bash
# CI entry point.
#
#   1. Release build + the tier-1 ctest suite (ROADMAP.md). Warnings are
#      errors on every target (-Wall -Wextra -Werror, CMakeLists.txt).
#      This stage also proves the tree builds with lockdep compiled out
#      (the production configuration), then exercises the observability
#      layer end to end: a small motif bench run with --trace-out whose
#      exported Chrome trace is schema-checked by tools/check_trace.py, a
#      CLI run whose Prometheus /metricsz dump is format-checked by
#      tools/check_metricsz.py and whose sampling-profiler collapsed-stack
#      export must be non-empty. Finally a perf smoke runs the
#      extension-kernel A/B microbenchmarks (kernels vs. reference scans)
#      into BENCH_extension.json and gates it against the committed
#      baseline with tools/bench_compare.py.
#   2. Chaos sweep: resilience_test's ChaosTest replays CHAOS_SEEDS seeded
#      random fault plans (worker crashes, dead steal services, dropped and
#      delayed requests, stragglers) and fails on any result divergence
#      from the fault-free baseline.
#   3. Scheduler gate (DESIGN.md §12): the multi-tenant chaos filter
#      (SchedulerChaosTest — a crashing tenant sharing the cluster with
#      clean ones stays bit-exact) plus a CLI end-to-end of
#      --concurrency: three concurrent triangle queries on one shared
#      cluster whose /metricsz dump must contain the scheduler counter
#      families and the per-query units gauges
#      (tools/check_metricsz.py --require).
#   4. Salvage gate (DESIGN.md §11): the lineage-ledger partial-recovery
#      suite — deterministic salvage tests plus a CHAOS_SEEDS-wide
#      SalvageChaosTest sweep (random fault plans, including
#      crash-in-salvage, replayed under --retry-mode=salvage semantics) —
#      then the SalvageTest suite again under FRACTAL_ALLOC_GUARD=abort
#      (ledger stamping rides the steal hot path and must not allocate),
#      and finally the bench_resilience recovery A/B whose salvage/scratch
#      replay ratios land in BENCH_recovery.json and are gated by
#      tools/bench_compare.py against the committed budget baseline.
#   5. Allocation-discipline lint (tools/fractal_lint.py, DESIGN.md §9):
#      self-test against the seeded-violation fixtures, then the repo run —
#      every FRACTAL_HOT call graph must be provably allocation-, throw-,
#      and raw-mutex-free, and every metric/trace name registered. Uses
#      libclang when the python bindings are installed, its built-in
#      textual engine otherwise.
#   6. Alloc-guard gate: hot_path_test re-run with FRACTAL_ALLOC_GUARD=abort
#      — full-cluster runs of the vertex-induced, edge-induced, and KClist
#      strategies abort the process on any steady-state heap allocation.
#   7. Static analysis: a clang build with -Wthread-safety promoted to an
#      error (checking the GUARDED_BY/REQUIRES contracts of util/mutex.h),
#      then clang-tidy with the curated .clang-tidy profile over src/,
#      bench/, and tools/ sources. Each tool is used when installed and the
#      stage fails on any diagnostic; on containers without clang the stage
#      degrades to the GCC -Werror build of stage 1 plus the runtime
#      lockdep checking of the sanitizer stages.
#   8. ASan/UBSan build running every thread-spawning suite (including a
#      reduced-seed chaos sweep, the scheduler suite and the alloc-guard
#      suites), plus a full CHAOS_SEEDS-wide SalvageChaosTest sweep so
#      salvage passes are memory-checked at chaos scale.
#   9. TSan build running the same suites (and the same wide salvage
#      sweep), so the persistent-thread Cluster/Worker runtime (parked
#      execution threads, steal-service threads, enumerator cursors, the
#      claim-stamping lineage ledger) is race-checked on every PR.
#
# Stages 8-9 keep FRACTAL_ENABLE_LOCKDEP=ON (the default), so every
# sanitized test run also checks the lock-order graph deterministically.
#
# Usage: ./ci.sh            (JOBS=<n> to override parallelism)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
# Every suite that spawns threads (directly or through the Cluster runtime),
# plus property_test so the kernel-vs-reference differential sweeps over the
# extension data plane run under ASan/UBSan and TSan on every PR.
SANITIZED_SUITES='core_test|runtime_test|obs_test|introspection_test|profiler_test|lockdep_test|enumerate_test|property_test|apps_test|extras_test|resilience_test|alloc_guard_test|hot_path_test|scheduler_test'
SANITIZED_TARGETS='core_test runtime_test obs_test introspection_test profiler_test lockdep_test enumerate_test property_test apps_test extras_test resilience_test alloc_guard_test hot_path_test scheduler_test'
# Chaos seeds for the fault-injection sweep: a wide sweep on the fast
# Release build, a narrower one under the (10-20x slower) sanitizers.
CHAOS_SEEDS="${CHAOS_SEEDS:-32}"
CHAOS_SEEDS_SANITIZED="${CHAOS_SEEDS_SANITIZED:-8}"

echo "=== tier 1: Release build + full ctest suite ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release -DFRACTAL_ENABLE_LOCKDEP=OFF
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== trace export: fractal_cli --trace-out + schema check ==="
TRACE_JSON="build-ci/motifs_trace.json"
./build-ci/examples/fractal_cli --kernel motifs --k 3 --workers 2 \
  --threads 2 --trace-out "$TRACE_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_trace.py "$TRACE_JSON"
else
  # Degraded check: the file exists, is non-trivial, and closes cleanly.
  test -s "$TRACE_JSON"
  grep -q '"traceEvents"' "$TRACE_JSON"
  echo "python3 not installed; structural trace validation skipped"
fi

echo "=== introspection: /metricsz exposition + profiler export ==="
# The same CLI run exercises the whole introspection plane: the sampling
# profiler writes collapsed stacks (flamegraph.pl / speedscope input) and
# the Prometheus dump must satisfy the text-format contract (cumulative
# buckets, +Inf == _count) that tools/check_metricsz.py enforces.
METRICSZ_TXT="build-ci/metricsz.txt"
PROFILE_TXT="build-ci/profile_collapsed.txt"
./build-ci/examples/fractal_cli --kernel triangles --workers 2 --threads 2 \
  --metricsz-out "$METRICSZ_TXT" --profile-out "$PROFILE_TXT"
test -s "$PROFILE_TXT"
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_metricsz.py "$METRICSZ_TXT"
else
  test -s "$METRICSZ_TXT"
  grep -q '# TYPE fractal_' "$METRICSZ_TXT"
  echo "python3 not installed; structural metricsz validation skipped"
fi

echo "=== perf smoke: extension kernels vs. reference scans ==="
# A/B microbenchmark of the set-algebra extension kernels against the
# pre-refactor reference scans (bench/bench_micro.cc, dense-graph pairs).
# Results land in BENCH_extension.json for the CI artifact trail; the
# differential property tests gate correctness, this stage tracks speed.
./build-ci/bench/bench_micro \
  --benchmark_filter='Extensions(Kernel|Reference)' \
  --benchmark_out=BENCH_extension.json --benchmark_out_format=json
test -s BENCH_extension.json
# Gate against the committed baseline: >20% real_time regression on any
# shared series fails (same host) or warns (baseline from another machine —
# tools/bench_compare.py compares the benchmark context to decide).
if command -v python3 >/dev/null 2>&1; then
  python3 tools/bench_compare.py \
    bench/baselines/BENCH_extension.json BENCH_extension.json
fi

echo "=== chaos: ${CHAOS_SEEDS}-seed random fault plans stay bit-exact ==="
# Seeded random fault plans (crashes, dead steal services, drops, delays,
# stragglers) against the fault-free baseline; any divergence fails CI.
FRACTAL_CHAOS_SEEDS="$CHAOS_SEEDS" ./build-ci/tests/resilience_test \
  --gtest_filter='ChaosTest.*'

echo "=== scheduler: concurrent queries share one cluster, stay bit-exact ==="
# Multi-tenant chaos cross-product (DESIGN.md §12): a fault-injected tenant
# crashing workers mid-step next to clean tenants on the same cluster —
# every query must still match the serial ground truth. (The full
# scheduler_test suite — stress, cancellation, deadlines, admission
# overflow — already ran in the tier-1 ctest pass above.)
./build-ci/tests/scheduler_test --gtest_filter='SchedulerChaosTest.*'
# CLI end-to-end: three concurrent triangle queries on one shared cluster.
# The /metricsz dump must carry the scheduler counter families and at least
# one per-query units gauge (the dynamic fractal_runtime_query_units_<id>
# family).
SCHED_METRICSZ="build-ci/scheduler_metricsz.txt"
./build-ci/examples/fractal_cli --kernel triangles --workers 1 --threads 4 \
  --concurrency 3 --metricsz-out "$SCHED_METRICSZ"
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_metricsz.py "$SCHED_METRICSZ" \
    --require fractal_runtime_queries_admitted_total \
    --require fractal_runtime_queries_completed_total \
    --require fractal_runtime_queries_active \
    --require fractal_runtime_query_units.
else
  grep -q 'fractal_runtime_queries_admitted_total' "$SCHED_METRICSZ"
  echo "python3 not installed; structural scheduler-metrics check only"
fi

echo "=== salvage: lineage-ledger partial recovery stays bit-exact ==="
# Deterministic salvage tests (acceptance bound, nested crash-in-salvage,
# pass-budget fallback, 16-seed bit-exactness property) plus the
# CHAOS_SEEDS-wide SalvageChaosTest sweep of random fault plans replayed in
# salvage mode.
FRACTAL_CHAOS_SEEDS="$CHAOS_SEEDS" ./build-ci/tests/resilience_test \
  --gtest_filter='Salvage*'
# Ledger claim/complete stamping rides the steal rendezvous on enumeration
# threads: re-run the deterministic suite with the allocation interposer
# armed to abort on any steady-state allocation.
FRACTAL_ALLOC_GUARD=abort ./build-ci/tests/resilience_test \
  --gtest_filter='SalvageTest.*'
# Recovery A/B: crash at 25/50/75% of worker 1's budget, run from-scratch
# and salvage recovery, and record the salvage/scratch replay ratios over
# the deterministic work-unit model. The committed baseline is a *budget*,
# not a measured snapshot (run-to-run ratios vary 0.03-0.15 with stealing
# timing): 0.375 per series so the 0.6 relative threshold gates at exactly
# 0.375 * 1.6 = 0.6 — the salvage acceptance bound from
# tests/resilience_test.cc.
./build-ci/bench/bench_resilience --recovery-out BENCH_recovery.json
test -s BENCH_recovery.json
if command -v python3 >/dev/null 2>&1; then
  python3 tools/bench_compare.py \
    bench/baselines/BENCH_recovery.json BENCH_recovery.json --threshold 0.6
fi

echo "=== lint: hot-path allocation discipline (fractal_lint.py) ==="
if command -v python3 >/dev/null 2>&1; then
  # Self-test first: every seeded-violation fixture must fail its rule.
  # Then the repo itself must come back clean. --engine=auto upgrades to
  # libclang (driven by build-ci's compile_commands.json) when the python
  # bindings are installed; the built-in textual engine gates otherwise.
  python3 tools/fractal_lint.py --self-test
  python3 tools/fractal_lint.py \
    --compile-commands build-ci/compile_commands.json
  # The seeded fixtures must also stay compilable (they feed clang-tidy and
  # the libclang engine through compile_commands.json).
  cmake --build build-ci -j "$JOBS" --target fractal_lint_fixtures
else
  echo "python3 not installed; allocation-discipline lint skipped"
fi

echo "=== alloc-guard: zero steady-state allocations, abort on regression ==="
# The runtime backstop for whatever the static walk cannot see: full-cluster
# runs of all three extension strategies with the operator new interposer
# armed to abort. Any post-warm-up heap allocation on an enumeration thread
# kills the test.
FRACTAL_ALLOC_GUARD=abort ./build-ci/tests/hot_path_test
FRACTAL_ALLOC_GUARD=abort ./build-ci/tests/alloc_guard_test

echo "=== static analysis: -Wthread-safety + clang-tidy ==="
if command -v clang++ >/dev/null 2>&1; then
  # -Wthread-safety / -Werror=thread-safety are added by CMakeLists.txt
  # for clang; -Werror is global, so any clang diagnostic fails the build.
  cmake -B build-sa -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build build-sa -j "$JOBS"
  # Build the lint fixtures too so their compile_commands entries are valid
  # translation units for clang-tidy and the libclang lint engine.
  cmake --build build-sa -j "$JOBS" --target fractal_lint_fixtures
  if command -v clang-tidy >/dev/null 2>&1; then
    # .clang-tidy sets WarningsAsErrors: '*'; any finding exits non-zero.
    # Coverage: the library plus the benchmark harnesses and the lint
    # fixtures (tools/) — everything with a compile_commands entry.
    mapfile -t TIDY_SOURCES < <(
      git ls-files 'src/**/*.cc' 'bench/*.cc' 'tools/**/*.cc')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build-sa -quiet "${TIDY_SOURCES[@]}"
    else
      clang-tidy -p build-sa --quiet "${TIDY_SOURCES[@]}"
    fi
  else
    echo "clang-tidy not installed; skipping lint half of the stage"
  fi
else
  echo "clang++ not installed; thread-safety annotations compile as no-ops"
  echo "(GCC -Werror build of stage 1 and lockdep stages still gate this PR)"
fi

echo "=== ASan/UBSan: ${SANITIZED_SUITES} ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
# shellcheck disable=SC2086
cmake --build build-asan -j "$JOBS" --target $SANITIZED_TARGETS
FRACTAL_CHAOS_SEEDS="$CHAOS_SEEDS_SANITIZED" \
  ctest --test-dir build-asan --output-on-failure -R "$SANITIZED_SUITES"
# Wide salvage sweep under ASan: partial recovery allocates/frees ledger
# exclusion state per crash, the classic use-after-free shape.
FRACTAL_CHAOS_SEEDS="$CHAOS_SEEDS" ./build-asan/tests/resilience_test \
  --gtest_filter='SalvageChaosTest.*'

echo "=== TSan: ${SANITIZED_SUITES} ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
# shellcheck disable=SC2086
cmake --build build-tsan -j "$JOBS" --target $SANITIZED_TARGETS
FRACTAL_CHAOS_SEEDS="$CHAOS_SEEDS_SANITIZED" \
  ctest --test-dir build-tsan --output-on-failure -R "$SANITIZED_SUITES"
# Wide salvage sweep under TSan: claim stamping from steal-service threads
# races against completion stamping from enumeration threads by design;
# the ledger mutex must order every pair.
FRACTAL_CHAOS_SEEDS="$CHAOS_SEEDS" ./build-tsan/tests/resilience_test \
  --gtest_filter='SalvageChaosTest.*'

echo "CI OK"
