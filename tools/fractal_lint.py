#!/usr/bin/env python3
"""fractal_lint: hot-path allocation-discipline checker (DESIGN.md §9).

Walks the call graph from every FRACTAL_HOT function (src/util/
hot_annotations.h) and reports, for everything reachable:

  allocation            operator new / malloc-family / make_unique|make_shared
  stl-growth            push_back/resize/insert/... on a container that is not
                        arena-backed (FRACTAL_ARENA_OUT parameter or member,
                        or a local bound to a ScratchArena::BufferLease)
  throw                 throw statements
  unannotated-external  a call to a free function with no in-repo definition
                        and no whitelist entry

plus two repo-hygiene rules checked everywhere (not just on hot paths):

  raw-mutex             std::mutex / std::condition_variable outside
                        util/mutex.h (all locking goes through the annotated,
                        lockdep-checked wrappers)
  metric-name           a metric/trace/endpoint name literal that is not
                        registered in src/obs/metric_names.h (a typo would
                        silently create a fresh counter, or an exposition
                        endpoint no runbook links to)

`FRACTAL_HOT_ESCAPE("reason")` marks the remainder of its enclosing block as
an audited cold branch; `AllocGuard::Allow` scopes count the same way, and
`static` local initializers are treated as one-time cold setup.

Engines: with the libclang python bindings installed the checker parses real
ASTs driven by compile_commands.json (--engine=clang); without them it falls
back to a self-contained textual frontend (--engine=text) that understands
the repo's annotation conventions. --engine=auto (default) picks clang when
available. Both engines share the rule logic; CI gates on whichever engine
the host can run, like the clang-tidy stage.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Self-test: --self-test runs the checker over tools/lint_fixtures/ and
verifies every `// LINT-EXPECT: <rule>` marker fires and every
`// LINT-EXPECT-CLEAN` file stays clean.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

# Files whose functions are treated as audited: the checker neither scans
# their bodies nor descends into calls that resolve only into them.
EXEMPT_FILES = {
    # The allocation-guard runtime interposes operator new itself.
    "src/util/alloc_guard.cc",
    # Lockdep is a debug instrument with its own allocation policy (and
    # deliberately raw std::mutex to avoid self-instrumentation recursion).
    "src/util/lockdep.cc",
    "src/util/lockdep.h",
    # The pre-kernel A/B reference strategies trade speed for obvious
    # correctness; they are the differential-testing baseline, not the
    # production data plane (enabled only via FRACTAL_REFERENCE_EXTENSIONS).
    "src/enumerate/reference_extension.cc",
    "src/enumerate/reference_extension.h",
    # Comparison baselines: not the Fractal data plane.
    "src/baselines/",
}

# Files allowed to name std::mutex / std::condition_variable directly.
RAW_MUTEX_ALLOWLIST = {
    "src/util/mutex.h",       # the annotated wrappers themselves
    "src/util/lockdep.cc",    # must not recurse into its own instrumentation
    "src/util/lockdep.h",
}

RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:recursive_|shared_|timed_)?mutex\b"
    r"|std\s*::\s*condition_variable(?:_any)?\b")

# Free functions (no receiver) that are known not to allocate on the paths
# this repo uses them. Member calls are handled separately: growth methods
# are checked against arena-backedness, anything else unresolvable is
# considered part of the receiver's audited interface.
CALL_WHITELIST = {
    # <algorithm> / <numeric> / <bit> on caller-owned storage
    "min", "max", "swap", "move", "forward", "clamp", "abs",
    "fill", "fill_n", "copy", "copy_n", "equal",
    "upper_bound", "lower_bound", "binary_search", "equal_range",
    "find", "find_if", "all_of", "any_of", "none_of",
    "distance", "advance", "accumulate",
    "popcount", "countr_zero", "countl_zero", "bit_width", "rotl", "rotr",
    # <algorithm> erase-remove (shrinks, never grows)
    "remove_if", "remove",
    # libc
    "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp", "strncmp",
    "snprintf", "vsnprintf", "getenv", "strtoull", "strtol", "write",
    "fwrite", "fflush", "va_start", "va_end", "va_copy",
    # <chrono> value types and clock reads
    "nanoseconds", "microseconds", "milliseconds", "seconds", "duration",
    "now", "time_point_cast", "duration_cast",
    # <thread> idling (steal-loop backoff)
    "sleep_for", "yield",
    # misc value construction
    "make_pair", "make_optional", "nullopt",
    # functional casts / fixed-size value types (no heap behind them)
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "size_t", "ptrdiff_t", "bool", "char", "int",
    "unsigned", "long", "float", "double", "VertexId", "EdgeId", "Label",
}

GROWTH_METHODS = {
    "push_back", "emplace_back", "resize", "reserve", "insert", "emplace",
    "assign", "append", "push_front", "emplace_front", "shrink_to_fit",
}

ALLOC_RE = re.compile(
    r"(?<![\w.])new\b(?!\s*\()"        # new T / new T[n] (placement new is
    r"|(?<![\w.])new\s*\("             # not used in this tree) + new (…)
    r"|\b(?:malloc|calloc|realloc|strdup|aligned_alloc|posix_memalign)\s*\("
    r"|\bmake_unique\b|\bmake_shared\b")
THROW_RE = re.compile(r"(?<![\w.])throw\b")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "return", "catch", "try",
    "namespace", "class", "struct", "enum", "union", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "new", "delete", "co_return",
    "co_await", "co_yield", "defined", "noexcept", "requires", "concept",
    "operator",
}

MACRO_NAME_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

METRIC_LOOKUP_RE = re.compile(
    r"\b(?:GetCounter|GetGauge|GetHistogram|NamedCounter|NamedGauge"
    r"|NamedHistogram)"
    r'\s*\(\s*"([^"]+)"')
TRACE_USE_RE = re.compile(
    r'\bFRACTAL_TRACE_(?:SPAN_V|SPAN|INSTANT)\s*\(\s*"([^"]+)"')
ENDPOINT_USE_RE = re.compile(r'\bAddEndpoint\s*\(\s*"([^"]+)"')

RULES = ("allocation", "stl-growth", "throw", "unannotated-external",
         "raw-mutex", "metric-name")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# --------------------------------------------------------------------------
# Lexical preprocessing
# --------------------------------------------------------------------------

def lex_strip(text, keep_strings):
    """Returns text with comments (and, unless keep_strings, string/char
    literals) replaced by spaces; newlines preserved so offsets and line
    numbers keep matching."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c == '"' or c == "'":
            quote = c
            if not keep_strings:
                out[i] = " "
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    if not keep_strings:
                        if text[j] != "\n":
                            out[j] = " "
                        if text[j + 1] != "\n":
                            out[j + 1] = " "
                    j += 2
                    continue
                if not keep_strings and text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n and not keep_strings:
                out[j] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def strip_comments_and_strings(text):
    return lex_strip(text, keep_strings=False)


def blank_preprocessor_lines(code):
    """Blanks #-directive lines (including backslash continuations)."""
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            j = i
            while j < len(lines) and lines[j].rstrip().endswith("\\"):
                lines[j] = ""
                j += 1
            if j < len(lines):
                lines[j] = ""
            i = j + 1
        else:
            i += 1
    return "\n".join(lines)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Function model
# --------------------------------------------------------------------------

class FunctionDef:
    def __init__(self, path, name, qualname, header, body, body_offset,
                 full_code, exempt=False):
        self.path = path
        self.name = name
        self.qualname = qualname
        self.header = header
        self.body = body                # code (stripped) inside braces
        self.body_offset = body_offset  # offset of '{' in file code
        self.full_code = full_code      # whole-file stripped code
        self.exempt = exempt            # resolvable, but audited: not walked
        self.hot = bool(re.search(r"\bFRACTAL_HOT\b(?!_)", header))
        self.arena_params = self._arena_params(header)
        self.suppressed = self._suppressed_spans()
        self.arena_locals = self._arena_locals()
        # Locals bound to lambdas: calling one runs code that is already
        # scanned inline as part of this body.
        self.lambda_locals = set(
            m.group(1) for m in re.finditer(r"\b(\w+)\s*=\s*\[", self.body))
        self.calls = self._extract_calls()

    def line(self):
        return line_of(self.full_code, self.body_offset)

    @staticmethod
    def _arena_params(header):
        names = set()
        lparen = header.find("(")
        if lparen < 0:
            return names
        params = header[lparen + 1:header.rfind(")")]
        for chunk in split_top_level(params, ","):
            if "FRACTAL_ARENA_OUT" not in chunk:
                continue
            idents = re.findall(r"[A-Za-z_]\w*", chunk)
            if idents:
                names.add(idents[-1])
        return names

    def _suppressed_spans(self):
        """[start, end) spans inside body that are audited escapes: the rest
        of the enclosing block after FRACTAL_HOT_ESCAPE / AllocGuard::Allow,
        plus `static` local-initializer statements (one-time setup)."""
        spans = []
        for m in re.finditer(
                r"\bFRACTAL_HOT_ESCAPE\b|\bAllocGuard\s*::\s*Allow\b",
                self.body):
            spans.append((m.start(), self._block_end(m.start())))
        for m in re.finditer(r"\bstatic\b|\bthread_local\b", self.body):
            end = self.body.find(";", m.end())
            spans.append((m.start(), len(self.body) if end < 0 else end + 1))
        return spans

    def _block_end(self, pos):
        depth = 0
        for i in range(pos, len(self.body)):
            c = self.body[i]
            if c == "{":
                depth += 1
            elif c == "}":
                if depth == 0:
                    return i
                depth -= 1
        return len(self.body)

    def is_suppressed(self, pos):
        return any(s <= pos < e for s, e in self.suppressed)

    def _arena_locals(self):
        """Local names that alias arena-backed storage."""
        names = set(self.arena_params)
        leases = set()
        for m in re.finditer(r"\bBufferLease\s+(\w+)\s*\(", self.body):
            leases.add(m.group(1))
            names.add(m.group(1))
        for m in re.finditer(r"[&*]\s*(\w+)\s*=\s*\*\s*(\w+)\b", self.body):
            if m.group(2) in leases or m.group(2) in names:
                names.add(m.group(1))
        for m in re.finditer(r"\*\s*(\w+)\s*=\s*(\w+)\s*\.\s*get\s*\(",
                             self.body):
            if m.group(2) in leases:
                names.add(m.group(1))
        return names

    def _extract_calls(self):
        """(offset, name, is_member) for every call-looking site. For a
        local declaration `Type name(args)` the recorded call is the
        constructor, i.e. `Type`."""
        calls = []
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", self.body):
            name = m.group(1)
            if name in CONTROL_KEYWORDS or name in self.lambda_locals:
                continue
            if name.startswith("__builtin_"):
                continue
            before = self.body[:m.start()].rstrip()
            if before.endswith("~"):
                continue  # destructor mention, not a call
            is_member = before.endswith(".") or before.endswith("->")
            if not is_member:
                prev = re.search(r"([A-Za-z_]\w*)$", before)
                if prev and prev.group(1) not in CONTROL_KEYWORDS:
                    # `Type name(args)`: a declaration — what actually runs
                    # is Type's constructor.
                    name = prev.group(1)
                    if name in self.lambda_locals \
                            or name.startswith("__builtin_"):
                        continue
            calls.append((m.start(), name, is_member))
        return calls

    def receiver_of(self, call_pos):
        """Immediate receiver identifier of a member call at call_pos, or
        None when the receiver is an expression (then treated non-arena
        unless it is a (*lease)-style deref of an arena local)."""
        before = self.body[:call_pos].rstrip()
        if before.endswith("->"):
            before = before[:-2]
        elif before.endswith("."):
            before = before[:-1]
        else:
            return None
        before = before.rstrip()
        m = re.search(r"\(\s*\*\s*(\w+)\s*\)$", before)
        if m:
            return m.group(1)
        m = re.search(r"(\w+)$", before)
        return m.group(1) if m else None


def split_top_level(text, sep):
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


HEADER_REJECT = re.compile(
    r"^\s*(?:if|for|while|switch|do|else|try|catch|namespace|class|struct|"
    r"enum|union|return|case|default|extern)\b")


def extract_functions(path, code):
    """Finds function definitions in stripped code by locating each '{' and
    classifying the preceding header chunk."""
    functions = []
    i = 0
    n = len(code)
    while i < n:
        if code[i] != "{":
            i += 1
            continue
        # Header: text since the previous top-level terminator.
        start = max(code.rfind(";", 0, i), code.rfind("}", 0, i),
                    code.rfind("{", 0, i))
        header = code[start + 1:i].strip()
        func = classify_header(header)
        if func is None:
            i += 1
            continue
        body_start = i
        depth = 0
        j = i
        while j < n:
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = code[body_start + 1:j]
        name, qualname = func
        functions.append(FunctionDef(path, name, qualname, header, body,
                                     body_start, code))
        # Continue scanning *inside* the body too (inline class members).
        i += 1
    return functions


def classify_header(header):
    """Returns (name, qualname) when header looks like a function signature,
    else None."""
    if not header or "(" not in header:
        return None
    if HEADER_REJECT.match(header):
        return None
    # A real signature has balanced parens; an unbalanced header is the
    # inside of a call argument list (e.g. a lambda passed to an algorithm).
    if header.count("(") != header.count(")"):
        return None
    # Assignment at paren depth 0 => initializer, lambda assignment, etc.
    depth = 0
    for k, c in enumerate(header):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == "=" and depth == 0:
            if header[k:k + 2] in ("==", "=>"):
                continue
            if k > 0 and header[k - 1] in "!<>+-*/%&|^=":
                continue
            if "operator" in header[:k]:
                continue
            return None
    m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*)(~?[A-Za-z_]\w*)\s*\(", header)
    if m is None:
        return None
    name = m.group(2)
    if name in CONTROL_KEYWORDS or MACRO_NAME_RE.match(name):
        return None
    qual = re.sub(r"\s", "", m.group(1))
    return name, qual + name


# --------------------------------------------------------------------------
# Repo model and rules
# --------------------------------------------------------------------------

def is_exempt(relpath):
    return any(relpath == e or (e.endswith("/") and relpath.startswith(e))
               for e in EXEMPT_FILES)


class Repo:
    def __init__(self, root, files, verbose=False):
        self.root = root
        self.files = files
        self.verbose = verbose
        self.raw = {}
        self.code = {}
        self.nocomment = {}
        self.functions = []
        self.arena_members = set()
        for rel in files:
            try:
                with open(os.path.join(root, rel), encoding="utf-8",
                          errors="replace") as fh:
                    text = fh.read()
            except OSError as err:
                print("fractal_lint: cannot read %s: %s" % (rel, err),
                      file=sys.stderr)
                continue
            self.raw[rel] = text
            code = blank_preprocessor_lines(strip_comments_and_strings(text))
            self.code[rel] = code
            # Comment-stripped but strings intact: what the metric-name rule
            # scans (name literals in comments are just prose).
            self.nocomment[rel] = lex_strip(text, keep_strings=True)
            for m in re.finditer(
                    r"FRACTAL_ARENA_OUT[^;{}()]*?(\w+)\s*"
                    r"(?:GUARDED_BY\s*\([^)]*\)\s*)?;", code):
                self.arena_members.add(m.group(1))
            # Exempt files still contribute *definitions* so calls into them
            # resolve (and are treated as audited); they are never scanned
            # or walked through.
            exempt = is_exempt(rel)
            for f in extract_functions(rel, code):
                f.exempt = exempt
                self.functions.append(f)
        self.defs_by_name = {}
        for f in self.functions:
            self.defs_by_name.setdefault(f.name, []).append(f)
        self.reached_from = {}

    # -- hot-path walk -----------------------------------------------------

    def hot_roots(self):
        return [f for f in self.functions if f.hot and not f.exempt]

    def check_hot_paths(self):
        findings = []
        roots = self.hot_roots()
        visited = set()
        queue = list(roots)
        self.reached_from = {id(f): None for f in roots}
        while queue:
            func = queue.pop()
            if id(func) in visited:
                continue
            visited.add(id(func))
            findings.extend(self.scan_function(func))
            for pos, name, is_member in func.calls:
                if func.is_suppressed(pos):
                    continue
                if MACRO_NAME_RE.match(name):
                    continue
                defs = self.defs_by_name.get(name)
                if defs:
                    for callee in defs:
                        if callee.exempt:
                            continue  # audited interface, not walked
                        if id(callee) not in visited:
                            self.reached_from.setdefault(id(callee), func)
                            queue.append(callee)
                    continue
                if is_member or name in CALL_WHITELIST:
                    continue
                if name in GROWTH_METHODS:
                    continue  # handled by scan_function
                findings.append(Finding(
                    func.path, line_of(func.full_code,
                                       func.body_offset + pos),
                    "unannotated-external",
                    "call to '%s' from hot function '%s' has no in-repo "
                    "definition and no whitelist entry; annotate the callee, "
                    "whitelist it in tools/fractal_lint.py, or audit the "
                    "branch with FRACTAL_HOT_ESCAPE" % (name,
                                                        func.qualname)))
        if self.verbose:
            print("fractal_lint: %d hot roots, %d reachable functions"
                  % (len(roots), len(visited)), file=sys.stderr)
        return findings

    def explain(self, name_substr):
        """Prints the root-to-function call chain for every walked function
        whose qualified name contains name_substr (debugging aid)."""
        for func in self.functions:
            if id(func) not in self.reached_from:
                continue
            if name_substr not in func.qualname:
                continue
            chain = []
            cur = func
            while cur is not None:
                chain.append("%s (%s:%d)" % (cur.qualname, cur.path,
                                             cur.line()))
                cur = self.reached_from.get(id(cur))
            print(" <- ".join(chain))

    def scan_function(self, func):
        findings = []

        def report(pos, rule, message):
            findings.append(Finding(
                func.path, line_of(func.full_code, func.body_offset + pos),
                rule, message))

        for m in ALLOC_RE.finditer(func.body):
            if func.is_suppressed(m.start()):
                continue
            report(m.start(), "allocation",
                   "heap allocation reachable from a FRACTAL_HOT root "
                   "(in '%s'); use the ScratchArena or audit with "
                   "FRACTAL_HOT_ESCAPE" % func.qualname)
        for m in THROW_RE.finditer(func.body):
            if func.is_suppressed(m.start()):
                continue
            report(m.start(), "throw",
                   "throw reachable from a FRACTAL_HOT root (in '%s'); hot "
                   "paths report errors by value" % func.qualname)
        for pos, name, is_member in func.calls:
            if not is_member or name not in GROWTH_METHODS:
                continue
            if func.is_suppressed(pos):
                continue
            recv = func.receiver_of(pos)
            if recv is not None and (recv in func.arena_locals
                                     or recv in self.arena_members):
                continue
            report(pos, "stl-growth",
                   "'%s.%s(...)' grows a container that is not arena-backed "
                   "(in '%s'); lease it from the ScratchArena, annotate it "
                   "FRACTAL_ARENA_OUT, or audit with FRACTAL_HOT_ESCAPE"
                   % (recv or "<expr>", name, func.qualname))
        return findings

    # -- repo-hygiene rules ------------------------------------------------

    def check_raw_mutex(self):
        findings = []
        for rel, code in self.code.items():
            if rel in RAW_MUTEX_ALLOWLIST:
                continue
            for m in RAW_MUTEX_RE.finditer(code):
                findings.append(Finding(
                    rel, line_of(code, m.start()), "raw-mutex",
                    "raw std synchronization primitive; use "
                    "fractal::Mutex/CondVar from util/mutex.h (annotated + "
                    "lockdep-checked)"))
        return findings

    def check_metric_names(self, registry_rel="src/obs/metric_names.h"):
        findings = []
        registry_raw = self.raw.get(registry_rel)
        if registry_raw is None:
            reg_path = os.path.join(self.root, registry_rel)
            try:
                with open(reg_path, encoding="utf-8") as fh:
                    registry_raw = fh.read()
            except OSError:
                return [Finding(registry_rel, 1, "metric-name",
                                "metric/trace name registry not found")]
        names = parse_registry(registry_raw)
        for rel, raw in self.nocomment.items():
            if rel == registry_rel:
                continue
            for regex, kind in ((METRIC_LOOKUP_RE, "kMetricNames"),
                                (TRACE_USE_RE, "kTraceNames"),
                                (ENDPOINT_USE_RE, "kEndpointNames")):
                for m in regex.finditer(raw):
                    name = m.group(1)
                    if name.startswith("test.") or name.startswith("test/"):
                        continue
                    if name not in names[kind]:
                        findings.append(Finding(
                            rel, line_of(raw, m.start()), "metric-name",
                            "metric/trace name \"%s\" is not registered in "
                            "src/obs/metric_names.h (%s); a typo would "
                            "silently create a fresh series" % (name, kind)))
        return findings

    def check_all(self):
        findings = []
        findings.extend(self.check_hot_paths())
        findings.extend(self.check_raw_mutex())
        findings.extend(self.check_metric_names())
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings


def parse_registry(raw):
    names = {"kMetricNames": set(), "kTraceNames": set(),
             "kEndpointNames": set()}
    for kind in names:
        m = re.search(kind + r"\[\]\s*=\s*\{(.*?)\};", raw, re.S)
        if m:
            names[kind].update(re.findall(r'"([^"]+)"', m.group(1)))
    return names


# --------------------------------------------------------------------------
# libclang engine (preferred when available)
# --------------------------------------------------------------------------

def try_clang_functions(root, files, compile_commands, verbose):
    """Builds the FunctionDef list from real ASTs via clang.cindex. Returns
    None when libclang is unavailable or fails, in which case the textual
    frontend is used. Downstream rule logic is shared either way."""
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        return None
    try:
        index = cindex.Index.create()
    except Exception as err:
        if verbose:
            print("fractal_lint: libclang unusable (%s); using textual "
                  "engine" % err, file=sys.stderr)
        return None
    args_by_file = {}
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands, encoding="utf-8") as fh:
                for entry in json.load(fh):
                    rel = os.path.relpath(entry["file"], root)
                    raw_args = entry.get("arguments")
                    if raw_args is None:
                        raw_args = entry.get("command", "").split()
                    args = [a for a in raw_args[1:]
                            if not a.endswith(".o") and a not in
                            ("-c", "-o") and not a.endswith(".cc")]
                    args_by_file[rel] = args
        except (OSError, ValueError, KeyError):
            pass

    functions = []
    kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
             cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
             cindex.CursorKind.FUNCTION_TEMPLATE)
    for rel in files:
        if is_exempt(rel) or not rel.endswith(".cc"):
            continue
        path = os.path.join(root, rel)
        args = args_by_file.get(rel, ["-std=c++20",
                                      "-I" + os.path.join(root, "src")])
        try:
            tu = index.parse(path, args=args)
        except Exception:
            return None
        with open(path, encoding="utf-8", errors="replace") as fh:
            code = blank_preprocessor_lines(
                strip_comments_and_strings(fh.read()))

        def visit(cursor):
            for child in cursor.get_children():
                if (child.kind in kinds and child.is_definition()
                        and child.location.file is not None
                        and os.path.samefile(str(child.location.file), path)):
                    ext = child.extent
                    start = offset_of(code, ext.start.line, ext.start.column)
                    end = offset_of(code, ext.end.line, ext.end.column)
                    chunk = code[start:end]
                    brace = chunk.find("{")
                    if brace < 0:
                        continue
                    header = chunk[:brace].strip()
                    hot = any(a.spelling == "fractal_hot"
                              for a in annotations(child))
                    if hot and "FRACTAL_HOT" not in header:
                        header = "FRACTAL_HOT " + header
                    functions.append(FunctionDef(
                        rel, child.spelling, qualname_of(child), header,
                        chunk[brace + 1:chunk.rfind("}")], start + brace,
                        code))
                visit(child)

        def annotations(cursor):
            return [c for c in cursor.get_children()
                    if c.kind == cindex.CursorKind.ANNOTATE_ATTR]

        visit(tu.cursor)
    if verbose:
        print("fractal_lint: clang engine parsed %d function definitions"
              % len(functions), file=sys.stderr)
    return functions


def qualname_of(cursor):
    parts = []
    c = cursor
    while c is not None and c.spelling:
        parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts[:2]))


def offset_of(code, line, column):
    lines = code.split("\n")
    return sum(len(l) + 1 for l in lines[:line - 1]) + column - 1


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------

def repo_source_files(root):
    src = []
    for base in ("src",):
        for dirpath, _, filenames in os.walk(os.path.join(root, base)):
            if "CMakeFiles" in dirpath:
                continue
            for fn in sorted(filenames):
                if fn.endswith((".h", ".cc")):
                    src.append(os.path.relpath(os.path.join(dirpath, fn),
                                               root))
    return sorted(src)


def run_repo(args):
    root = os.path.abspath(args.repo)
    files = repo_source_files(root)
    if not files:
        print("fractal_lint: no sources under %s/src" % root,
              file=sys.stderr)
        return 2
    repo = Repo(root, files, verbose=args.verbose)
    engine = "text"
    if args.engine in ("auto", "clang"):
        clang_functions = try_clang_functions(root, files,
                                              args.compile_commands,
                                              args.verbose)
        if clang_functions is not None:
            # Headers are still modeled textually (libclang sees them only
            # through includes); .cc bodies come from the AST.
            header_functions = [f for f in repo.functions
                                if f.path.endswith(".h")]
            repo.functions = header_functions + clang_functions
            repo.defs_by_name = {}
            for f in repo.functions:
                repo.defs_by_name.setdefault(f.name, []).append(f)
            engine = "clang"
        elif args.engine == "clang":
            print("fractal_lint: --engine=clang requested but libclang "
                  "python bindings are unavailable", file=sys.stderr)
            return 2
    if args.list_roots:
        for f in sorted(repo.hot_roots(), key=lambda f: (f.path, f.line())):
            print("%s:%d: %s" % (f.path, f.line(), f.qualname))
        return 0
    findings = repo.check_all()
    if args.explain:
        repo.explain(args.explain)
    for f in findings:
        print(f)
    summary = ("fractal_lint[%s]: %d finding(s) across %d file(s), "
               "%d hot root(s)"
               % (engine, len(findings), len(files), len(repo.hot_roots())))
    print(summary, file=sys.stderr)
    return 1 if findings else 0


EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z-]+)")
EXPECT_CLEAN_RE = re.compile(r"//\s*LINT-EXPECT-CLEAN")


def run_self_test(args):
    root = os.path.abspath(args.repo)
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    fixtures = sorted(
        os.path.relpath(os.path.join(fixture_dir, fn), root)
        for fn in os.listdir(fixture_dir) if fn.endswith((".cc", ".h")))
    if not fixtures:
        print("fractal_lint: no fixtures under tools/lint_fixtures",
              file=sys.stderr)
        return 2
    # The registry and annotation vocabulary come from the real tree.
    repo = Repo(root, fixtures + ["src/util/hot_annotations.h"],
                verbose=args.verbose)
    findings = repo.check_all()
    by_file = {}
    for f in findings:
        by_file.setdefault(f.path, set()).add(f.rule)
    failures = []
    for rel in fixtures:
        raw = repo.raw.get(rel, "")
        expected = set(EXPECT_RE.findall(raw))
        got = by_file.get(rel, set())
        if EXPECT_CLEAN_RE.search(raw):
            if got:
                failures.append("%s: expected clean, got %s"
                                % (rel, sorted(got)))
            continue
        if not expected:
            continue
        missing = expected - got
        unexpected = got - expected
        if missing:
            failures.append("%s: expected rule(s) %s did not fire"
                            % (rel, sorted(missing)))
        if unexpected:
            failures.append("%s: unexpected rule(s) %s fired"
                            % (rel, sorted(unexpected)))
    if args.verbose or failures:
        for f in findings:
            print(f)
    if failures:
        print("fractal_lint --self-test: FAIL", file=sys.stderr)
        for line in failures:
            print("  " + line, file=sys.stderr)
        return 1
    print("fractal_lint --self-test: OK (%d fixtures, %d findings matched)"
          % (len(fixtures), len(findings)), file=sys.stderr)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="fractal_lint.py",
        description="hot-path allocation-discipline checker (DESIGN.md §9)")
    parser.add_argument("--repo", default=default_repo_root(),
                        help="repository root (default: the script's repo)")
    parser.add_argument("--compile-commands",
                        default=None,
                        help="compile_commands.json for the clang engine "
                             "(default: <repo>/build/compile_commands.json)")
    parser.add_argument("--engine", choices=("auto", "text", "clang"),
                        default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="check the seeded fixtures under "
                             "tools/lint_fixtures/")
    parser.add_argument("--list-roots", action="store_true",
                        help="list FRACTAL_HOT roots and exit")
    parser.add_argument("--explain", metavar="NAME",
                        help="print the root-to-function call chain for "
                             "walked functions whose name contains NAME")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.compile_commands is None:
        args.compile_commands = os.path.join(args.repo, "build",
                                             "compile_commands.json")
    if args.self_test:
        return run_self_test(args)
    return run_repo(args)


def default_repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
