#!/usr/bin/env python3
"""CI validator for exported Chrome trace JSON (obs/trace.h).

Checks: the file parses, traceEvents is non-empty, every event carries the
schema keys, timestamps are non-decreasing per (pid, tid), begin/end pairs
are balanced per thread with LIFO name matching, and spans cover at least
four distinct runtime layers. Usage: check_trace.py <trace.json>
"""
import json
import sys

REQUIRED_LAYERS = {"executor", "worker", "cluster", "enumerate", "bus"}

def main(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    assert events, "trace has no events"
    last_ts, stacks, layers = {}, {}, set()
    for ev in events:
        assert {"name", "ph", "pid", "tid"} <= ev.keys(), f"bad event {ev}"
        if ev["ph"] == "M":
            continue
        assert ev["ph"] in ("B", "E", "i"), f"unexpected phase {ev['ph']}"
        key = (ev["pid"], ev["tid"])
        assert ev["ts"] >= last_ts.get(key, 0), f"ts regressed on {key}"
        last_ts[key] = ev["ts"]
        if ev["ph"] == "B":
            stacks.setdefault(key, []).append(ev["name"])
            layers.add(ev["name"].split("/")[0])
        elif ev["ph"] == "E":
            stack = stacks.get(key, [])
            assert stack, f"unbalanced E '{ev['name']}' on {key}"
            assert stack.pop() == ev["name"], f"mismatched E on {key}"
    for key, stack in stacks.items():
        assert not stack, f"unclosed B {stack} on {key}"
    seen = layers & REQUIRED_LAYERS
    assert len(seen) >= 4, f"only {sorted(seen)} of {sorted(REQUIRED_LAYERS)}"
    print(f"trace OK: {len(events)} events, layers {sorted(layers)}")

if __name__ == "__main__":
    main(sys.argv[1])
