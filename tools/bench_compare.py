#!/usr/bin/env python3
"""CI perf gate: diff two google-benchmark JSON files and fail on regression.

Compares per-benchmark real_time of `current` against `baseline`, series
matched by name. When a run carries aggregate entries (repetitions), only
the `_mean` aggregates are compared; otherwise the raw entries are. Exits
nonzero when any shared series regressed by more than --threshold (default
0.20 = 20% slower). Baselines are host-bound: when the two files disagree
on host_name or per-core clock, the diff is printed but regressions only
warn (a committed baseline from another machine must not fail CI) unless
--strict forces the gate.

Usage: bench_compare.py <baseline.json> <current.json>
           [--threshold 0.20] [--strict]
"""
import argparse
import json
import sys


def load_series(path):
    with open(path) as f:
        data = json.load(f)
    entries = data.get("benchmarks", [])
    # Aggregate runs name entries "<bench>_mean"; strip the suffix so a
    # repetitions=N baseline still matches a single-shot current run.
    means = {
        e.get("run_name", e["name"]): e
        for e in entries if e.get("aggregate_name") == "mean"}
    if means:
        return data.get("context", {}), means
    raw = {
        e["name"]: e for e in entries if "aggregate_name" not in e}
    return data.get("context", {}), raw


def comparable_context(a, b):
    keys = ("host_name", "mhz_per_cpu", "num_cpus")
    return all(a.get(k) == b.get(k) for k in keys)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed relative real_time increase")
    parser.add_argument("--strict", action="store_true",
                        help="fail on regression even across hosts")
    args = parser.parse_args()

    base_ctx, base = load_series(args.baseline)
    cur_ctx, cur = load_series(args.current)
    shared = sorted(base.keys() & cur.keys())
    if not shared:
        print("bench_compare: no shared benchmark names "
              f"({len(base)} baseline, {len(cur)} current)", file=sys.stderr)
        return 2

    same_host = comparable_context(base_ctx, cur_ctx)
    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in shared:
        b, c = base[name], cur[name]
        unit = c.get("time_unit", "ns")
        bt, ct = float(b["real_time"]), float(c["real_time"])
        delta = (ct - bt) / bt if bt > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {bt:>10.1f}{unit}  {ct:>10.1f}{unit}  "
              f"{delta:+7.1%}{flag}")
    only = (base.keys() | cur.keys()) - set(shared)
    if only:
        print(f"(not compared: {sorted(only)})")

    if regressions:
        worst = max(d for _, d in regressions)
        msg = (f"{len(regressions)} series regressed beyond "
               f"{args.threshold:.0%} (worst {worst:+.1%})")
        if same_host or args.strict:
            print(f"bench_compare FAIL: {msg}", file=sys.stderr)
            return 1
        print(f"bench_compare WARN (different host, not gating): {msg}")
        return 0
    print(f"bench_compare OK: {len(shared)} series within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
