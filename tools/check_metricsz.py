#!/usr/bin/env python3
"""CI validator for the Prometheus text exposition (/metricsz, obs/metrics.h).

Checks: every series line parses as `name{labels} value`, every family has
a preceding # TYPE of a known kind, series values are finite and
non-negative, histogram bucket counts are cumulative (monotone in le) and
the +Inf bucket equals _count, _sum/_count exist for every histogram, and
counter families end in _total.

Usage: check_metricsz.py <metricsz.txt> [--require <family>]...

--require asserts that a family is present with at least one series; a
trailing `.` matches per-instance gauge families expanded from a dynamic
base (e.g. --require fractal_runtime_query_units. accepts
fractal_runtime_query_units_42) — how the scheduler stage pins the
per-query gauges the concurrency CLI run must have emitted.
"""
import math
import re
import sys

TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
SERIES_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (-?[0-9.eE+]+|\+Inf|NaN)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


def family_of(name, types):
    """Series name -> declared family (histograms emit name_bucket etc.)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def main(path, required):
    with open(path) as f:
        lines = f.read().splitlines()
    assert lines, "metricsz output is empty"
    types = {}  # family -> kind
    buckets = {}  # family -> list of (le, count)
    counts = {}  # family -> _count value
    sums = set()  # families with a _sum line
    family_series = {}  # family -> number of series seen
    series = 0
    for line in lines:
        if not line.strip():
            continue
        if line.startswith("#"):
            match = TYPE_RE.match(line)
            assert match, f"malformed comment line: {line!r}"
            name, kind = match.groups()
            assert name not in types, f"duplicate # TYPE for {name}"
            types[name] = kind
            continue
        match = SERIES_RE.match(line)
        assert match, f"malformed series line: {line!r}"
        name, labels, value = match.groups()
        series += 1
        assert name.startswith("fractal_"), f"unprefixed metric: {name}"
        family = family_of(name, types)
        assert family, f"series {name} has no preceding # TYPE"
        family_series[family] = family_series.get(family, 0) + 1
        for label in (labels or "").split(",") if labels else []:
            assert LABEL_RE.match(label), f"malformed label {label!r} in {line!r}"
        val = float("inf") if value == "+Inf" else float(value)
        assert math.isfinite(val), f"non-finite value in {line!r}"
        assert val >= 0, f"negative sample in {line!r}"
        kind = types[family]
        if kind == "counter":
            assert family.endswith("_total"), f"counter {family} lacks _total"
        if kind == "histogram":
            if name.endswith("_bucket"):
                le = dict(
                    pair.split("=", 1) for pair in labels.split(",")).get("le")
                assert le is not None, f"bucket without le label: {line!r}"
                le_val = float("inf") if le == '"+Inf"' else float(le.strip('"'))
                buckets.setdefault(family, []).append((le_val, val))
            elif name.endswith("_count"):
                counts[family] = val
            elif name.endswith("_sum"):
                sums.add(family)
    for family, kind in types.items():
        if kind != "histogram":
            continue
        assert family in counts, f"histogram {family} lacks _count"
        assert family in sums, f"histogram {family} lacks _sum"
        bs = buckets.get(family, [])
        assert bs, f"histogram {family} has no buckets"
        les = [le for le, _ in bs]
        assert les == sorted(les), f"{family} buckets out of le order"
        cs = [c for _, c in bs]
        assert cs == sorted(cs), f"{family} bucket counts not cumulative"
        assert les[-1] == float("inf"), f"{family} lacks a +Inf bucket"
        assert cs[-1] == counts[family], (
            f"{family}: +Inf bucket {cs[-1]} != _count {counts[family]}")
    for want in required:
        if want.endswith("."):
            prefix = want[:-1] + "_"
            matching = [f for f in family_series if f.startswith(prefix)]
            assert matching, (
                f"required per-instance family {want!r} has no expansions "
                f"({prefix}<id> series)")
        else:
            assert family_series.get(want, 0) > 0, (
                f"required family {want!r} missing or has no series")
    assert series > 0, "no series emitted"
    hists = sum(1 for k in types.values() if k == "histogram")
    print(f"metricsz OK: {series} series, {len(types)} families "
          f"({hists} histograms)"
          + (f", {len(required)} required present" if required else ""))


if __name__ == "__main__":
    args = sys.argv[1:]
    required = []
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--require":
            assert i + 1 < len(args), "--require needs a family name"
            required.append(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    assert len(positional) == 1, __doc__
    main(positional[0], required)
