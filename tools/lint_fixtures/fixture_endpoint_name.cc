// Seeded violation for tools/fractal_lint.py --self-test: an exposition
// endpoint path that is not registered in src/obs/metric_names.h
// (kEndpointNames). An unregistered path would serve silently while every
// runbook and dashboard link points somewhere else.
// LINT-EXPECT: metric-name
#include <utility>

#include "obs/exposition.h"

namespace fractal_fixture {

inline void RegisterTypoEndpoint(fractal::obs::ExpositionServer& server) {
  // seeded: the registered path is "/statusz".
  server.AddEndpoint(
      "/statsz", [](const fractal::obs::ExpositionServer::Request&) {
        return fractal::obs::ExpositionServer::Response{
            200, "text/plain; charset=utf-8", "typo"};
      });
}

}  // namespace fractal_fixture
