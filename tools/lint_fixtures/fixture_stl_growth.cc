// Seeded violation for tools/fractal_lint.py --self-test: container growth
// on a hot path without arena backing. The second function shows the
// compliant form (FRACTAL_ARENA_OUT) and must stay silent.
// LINT-EXPECT: stl-growth
#include <cstdint>
#include <vector>

#include "util/hot_annotations.h"

namespace fractal_fixture {

FRACTAL_HOT inline void GrowUnbackedVectors(std::vector<uint32_t>* out,
                                            uint32_t v) {
  std::vector<uint32_t> scratch;
  scratch.push_back(v);             // seeded: local non-arena container
  out->push_back(scratch.front());  // seeded: un-annotated out-param
}

FRACTAL_HOT inline void GrowArenaVector(
    FRACTAL_ARENA_OUT std::vector<uint32_t>* out, uint32_t v) {
  out->push_back(v);  // compliant: receiver is annotated arena storage
}

}  // namespace fractal_fixture
