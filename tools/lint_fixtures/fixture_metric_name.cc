// Seeded violation for tools/fractal_lint.py --self-test: metric and trace
// name literals that are not registered in src/obs/metric_names.h. A typo
// here would silently create a fresh, never-read series.
// LINT-EXPECT: metric-name
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fractal_fixture {

inline fractal::obs::Counter& TypoCounter() {
  // seeded: the registered name is "enumerate.scratch_misses".
  return fractal::obs::MetricsRegistry::Get().GetCounter(
      "enumerate.scratch_missses");
}

inline void TracedBlock() {
  FRACTAL_TRACE_SPAN("fixture/unregistered_span");  // seeded: not registered
}

}  // namespace fractal_fixture
