// Seeded violation for tools/fractal_lint.py --self-test: a hot function
// calling a free function that has no in-repo definition and no whitelist
// entry — the checker cannot prove it allocation-free.
// LINT-EXPECT: unannotated-external
#include <cstdint>

#include "util/hot_annotations.h"

namespace fractal_fixture {

// Declared but defined in some other library the lint cannot see into.
uint64_t ExternalChecksum(const uint32_t* data, uint64_t n);

FRACTAL_HOT inline uint64_t HashBlock(const uint32_t* data, uint64_t n) {
  return ExternalChecksum(data, n);  // seeded: opaque external call
}

}  // namespace fractal_fixture
