// Seeded violation for tools/fractal_lint.py --self-test: a throw on a hot
// path. The second function shows the audited form (FRACTAL_HOT_ESCAPE
// covers the remainder of the enclosing block) and must stay silent.
// LINT-EXPECT: throw
#include <cstdint>

#include "util/hot_annotations.h"

namespace fractal_fixture {

FRACTAL_HOT inline uint32_t CheckedDivide(uint32_t a, uint32_t b) {
  if (b == 0) throw b;  // seeded: hot paths report errors by value
  return a / b;
}

FRACTAL_HOT inline uint32_t AuditedDivide(uint32_t a, uint32_t b) {
  if (b == 0) {
    FRACTAL_HOT_ESCAPE("divide-by-zero is a caller bug, not a hot branch");
    throw b;  // compliant: inside an audited escape block
  }
  return a / b;
}

}  // namespace fractal_fixture
