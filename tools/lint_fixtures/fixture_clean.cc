// Compliant fixture for tools/fractal_lint.py --self-test: hot code written
// under the allocation discipline (DESIGN.md §9) must produce no findings.
// LINT-EXPECT-CLEAN
#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/hot_annotations.h"

namespace fractal_fixture {

// Growth goes to annotated arena storage; helper calls resolve in-repo.
FRACTAL_HOT inline void KeepEvens(FRACTAL_ARENA_OUT std::vector<uint32_t>* out,
                                  const uint32_t* in, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    if ((in[i] & 1u) == 0u) out->push_back(in[i]);
  }
}

// Whitelisted std calls and a one-time `static` initializer are fine.
FRACTAL_HOT inline uint32_t ClampToLimit(uint32_t v) {
  static const uint32_t limit = 1u << 20;
  return std::min(v, limit);
}

// An audited cold branch may allocate: the escape marker covers the
// remainder of its enclosing block.
FRACTAL_HOT inline uint32_t* ColdStartGrow(uint32_t n) {
  FRACTAL_HOT_ESCAPE("one-time cold-start growth, audited by hand");
  return new uint32_t[n];
}

}  // namespace fractal_fixture
