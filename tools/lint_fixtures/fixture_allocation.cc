// Seeded violation for tools/fractal_lint.py --self-test: heap allocation
// reachable from a FRACTAL_HOT root, both directly and through a callee.
// LINT-EXPECT: allocation
#include <cstdint>

#include "util/hot_annotations.h"

namespace fractal_fixture {

inline uint32_t* AllocatingHelper(uint32_t n) {
  return new uint32_t[n];  // seeded: reached via the call-graph walk
}

FRACTAL_HOT inline uint32_t* AllocateOnHotPath(uint32_t n) {
  uint32_t* direct = new uint32_t[n];  // seeded: direct allocation
  delete[] direct;
  return AllocatingHelper(n);
}

}  // namespace fractal_fixture
