// Seeded violation for tools/fractal_lint.py --self-test: raw std
// synchronization primitives outside util/mutex.h. All locking goes through
// fractal::Mutex/CondVar so TSA annotations and lockdep see every edge.
// LINT-EXPECT: raw-mutex
#include <condition_variable>
#include <mutex>

namespace fractal_fixture {

class UninstrumentedQueue {
 public:
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);  // seeded: bypasses lockdep
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;               // seeded: raw std::mutex member
  std::condition_variable cv_;  // seeded: raw condition_variable member
  bool closed_ = false;
};

}  // namespace fractal_fixture
