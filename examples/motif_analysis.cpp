// Motif analysis: extract the distribution of 3- and 4-vertex motifs from a
// co-authorship-style network (the Mico analog), as a bioinformatics or
// social-network analyst would (paper §2.2, Listing 1).
//
// Demonstrates the aggregation primitive: subgraphs are mapped to their
// canonical pattern and counted with a sum reduction.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/motifs.h"
#include "core/context.h"
#include "graph/datasets.h"

int main() {
  using namespace fractal;

  DatasetInfo mico = MakeDataset(DatasetId::kMico, LabelMode::kSingleLabel);
  std::printf("graph %s: %s\n", mico.name.c_str(),
              mico.graph.DebugString().c_str());

  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 4;
  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(mico.graph));

  for (uint32_t k = 3; k <= 4; ++k) {
    const MotifsResult result = CountMotifs(graph, k, config);
    std::vector<std::pair<Pattern, uint64_t>> sorted(result.counts.begin(),
                                                     result.counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("\n%u-vertex motifs (%llu subgraphs, %zu shapes):\n", k,
                (unsigned long long)result.total, sorted.size());
    for (const auto& [pattern, count] : sorted) {
      std::printf("  %10llu  x  %s\n", (unsigned long long)count,
                  pattern.ToString().c_str());
    }
  }
  return 0;
}
