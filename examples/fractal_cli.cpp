// fractal_cli: run a GPM kernel on a graph file from the command line.
//
//   fractal_cli --kernel triangles --graph youtube.graph
//   fractal_cli --kernel cliques --k 4 --workers 2 --threads 4 --edgelist g.txt
//   fractal_cli --kernel motifs --k 3 --graph mico.graph
//   fractal_cli --kernel fsm --support 100 --max-edges 3 --graph labeled.graph
//   fractal_cli --kernel query --query diamond --graph g.graph
//
// --graph expects the adjacency-list format (see graph/graph_io.h);
// --edgelist expects SNAP-style "u v" lines. Without either, a synthetic
// demo graph is generated.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/cliques.h"
#include "apps/fsm.h"
#include "apps/motifs.h"
#include "apps/queries.h"
#include "core/context.h"
#include "core/executor.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "pattern/catalog.h"
#include "runtime/cluster.h"
#include "runtime/fault.h"
#include "runtime/query_scheduler.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: fractal_cli --kernel "
      "<triangles|cliques|motifs|fsm|query|stats>\n"
      "       [--graph <adjacency-list file> | --edgelist <snap file>]\n"
      "       [--k <size>] [--support <min support>] [--max-edges <n>]\n"
      "       [--query <triangle|square|diamond|house|q1..q8>]\n"
      "       [--workers <n>] [--threads <n>] [--no-stealing]\n"
      "       [--trace-out <chrome-trace.json>] [--metrics]\n"
      "       [--metricsz-out <prometheus.txt>]\n"
      "       [--profile-out <collapsed.txt>] [--profile-hz <rate>]\n"
      "       [--statusz-port <port>] [--progress-ms <interval>]\n"
      "       [--fault-spec <plan>] [--fault-seed <n>]\n"
      "       [--crash-worker <w>] [--crash-after <units>]\n"
      "       [--retry-mode <scratch|salvage>]\n"
      "       [--concurrency <n>] [--deadline-ms <ms>]\n"
      "\n"
      "concurrent queries (DESIGN.md section 12):\n"
      "  --concurrency runs n copies of the kernel as concurrent queries on\n"
      "  one shared cluster (triangles, cliques and query kernels only);\n"
      "  --deadline-ms bounds each query's wall time, alone (synchronous\n"
      "  deadline-aware run) or per query under --concurrency.\n"
      "\n"
      "fault injection (see runtime/fault.h):\n"
      "  --fault-spec takes ';'-separated entries, e.g.\n"
      "    'crash:w=1,after=50' 'crash:w=1,p=0.001' 'crash-service:w=0,"
      "after=3'\n"
      "    'drop:p=0.05' 'delay:p=0.1,us=5000' 'slow:w=1,us=20'\n"
      "    'crash-in-salvage:w=1,after=10' (fires during salvage replay)\n"
      "  --crash-worker/--crash-after desugar into a crash:w=...,after=...\n"
      "  entry; --fault-seed seeds probabilistic decisions.\n"
      "  --retry-mode picks how a crashed step is re-executed: 'scratch'\n"
      "  (default; discard and re-run on the survivors, paper section 4) or\n"
      "  'salvage' (lineage-ledger partial recovery, DESIGN.md section 11:\n"
      "  keep the survivors' completed work and re-enumerate only the\n"
      "  crashed worker's unfinished fractoid tasks).\n");
}

/// Resolves a --query name to its pattern; false on unknown names.
bool ParseQueryPattern(const std::string& name, fractal::Pattern* out) {
  using fractal::Pattern;
  if (name == "triangle") {
    *out = Pattern::Clique(3);
  } else if (name == "square") {
    *out = Pattern::CyclePattern(4);
  } else if (name == "diamond") {
    *out = Pattern::CyclePattern(4);
    out->AddEdge(0, 2);
  } else if (name == "house") {
    *out = Pattern::CyclePattern(5);
    out->AddEdge(0, 2);
  } else if (name.size() == 2 && name[0] == 'q') {
    *out = fractal::SeedQuery(name[1] - '0');
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fractal;

  std::string kernel = "triangles";
  std::string graph_path, edgelist_path, query_name = "triangle";
  std::string trace_out;
  std::string profile_out, metricsz_out;
  int profile_hz = obs::Profiler::kDefaultHz;
  std::string fault_spec;
  uint64_t fault_seed = 0;
  int crash_worker = -1;
  long long crash_after = 100;
  bool dump_metrics = false;
  int concurrency = 0;
  long long deadline_ms = 0;
  uint32_t k = 3, support = 100, max_edges = 3;
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--kernel")) {
      kernel = next("--kernel");
    } else if (!std::strcmp(argv[i], "--graph")) {
      graph_path = next("--graph");
    } else if (!std::strcmp(argv[i], "--edgelist")) {
      edgelist_path = next("--edgelist");
    } else if (!std::strcmp(argv[i], "--k")) {
      k = std::atoi(next("--k"));
    } else if (!std::strcmp(argv[i], "--support")) {
      support = std::atoi(next("--support"));
    } else if (!std::strcmp(argv[i], "--max-edges")) {
      max_edges = std::atoi(next("--max-edges"));
    } else if (!std::strcmp(argv[i], "--query")) {
      query_name = next("--query");
    } else if (!std::strcmp(argv[i], "--workers")) {
      config.num_workers = std::atoi(next("--workers"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      config.threads_per_worker = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[i], "--no-stealing")) {
      config.internal_work_stealing = false;
      config.external_work_stealing = false;
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      trace_out = next("--trace-out");
    } else if (!std::strncmp(argv[i], "--trace-out=", 12)) {
      trace_out = argv[i] + 12;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      dump_metrics = true;
    } else if (!std::strcmp(argv[i], "--metricsz-out")) {
      metricsz_out = next("--metricsz-out");
    } else if (!std::strcmp(argv[i], "--profile-out")) {
      profile_out = next("--profile-out");
    } else if (!std::strcmp(argv[i], "--profile-hz")) {
      profile_hz = std::atoi(next("--profile-hz"));
    } else if (!std::strcmp(argv[i], "--statusz-port")) {
      config.statusz_port = std::atoi(next("--statusz-port"));
    } else if (!std::strcmp(argv[i], "--progress-ms")) {
      config.progress_interval_ms = std::atoi(next("--progress-ms"));
    } else if (!std::strcmp(argv[i], "--fault-spec")) {
      fault_spec = next("--fault-spec");
    } else if (!std::strcmp(argv[i], "--fault-seed")) {
      fault_seed = std::strtoull(next("--fault-seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--crash-worker")) {
      crash_worker = std::atoi(next("--crash-worker"));
    } else if (!std::strcmp(argv[i], "--crash-after")) {
      crash_after = std::atoll(next("--crash-after"));
    } else if (!std::strcmp(argv[i], "--concurrency")) {
      concurrency = std::atoi(next("--concurrency"));
    } else if (!std::strcmp(argv[i], "--deadline-ms")) {
      deadline_ms = std::atoll(next("--deadline-ms"));
    } else if (!std::strcmp(argv[i], "--retry-mode")) {
      const std::string mode = next("--retry-mode");
      if (mode == "salvage") {
        config.retry.mode = RetryPolicy::Mode::kSalvage;
      } else if (mode == "scratch") {
        config.retry.mode = RetryPolicy::Mode::kFromScratch;
      } else {
        std::fprintf(stderr, "unknown --retry-mode '%s' (want scratch or "
                             "salvage)\n", mode.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--help")) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage();
      return 2;
    }
  }

  // Desugar the fault flags into one FaultPlan: --fault-spec provides the
  // schedule, and the legacy --crash-worker/--crash-after pair appends a
  // deterministic crash entry.
  {
    FaultPlan plan(fault_seed);
    if (!fault_spec.empty()) {
      auto parsed = FaultPlan::Parse(fault_spec, fault_seed);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --fault-spec: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      plan = std::move(parsed).value();
    }
    if (crash_worker >= 0) {
      plan.CrashWorker(crash_worker,
                       static_cast<uint64_t>(crash_after > 0 ? crash_after
                                                             : 1));
    }
    config.fault_plan = std::move(plan);
  }

  Graph input;
  if (!graph_path.empty()) {
    auto loaded = LoadAdjacencyListFile(graph_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", graph_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    input = std::move(loaded).value();
  } else if (!edgelist_path.empty()) {
    auto loaded = LoadEdgeListFile(edgelist_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", edgelist_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    input = std::move(loaded).value();
  } else {
    std::fprintf(stderr, "no input graph given: using a synthetic demo "
                         "graph (2000 vertices)\n");
    PowerLawParams params;
    params.num_vertices = 2000;
    params.edges_per_vertex = 6;
    params.num_vertex_labels = 5;
    params.triangle_closure = 0.4;
    params.seed = 1;
    input = GeneratePowerLaw(params);
  }
  std::printf("graph: %s\n", input.DebugString().c_str());

  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  // Scoped here so the session covers graph indexing and the kernel, and
  // the collapsed-stack file is written before the metrics dumps below.
  obs::ProfileSession profile_session(profile_out, profile_hz);

  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(input));
  WallTimer timer;

  if (concurrency > 0 || deadline_ms > 0) {
    // Multi-tenant / deadline-aware path (DESIGN.md §12): the
    // single-fractoid kernels run as scheduled queries on a shared cluster.
    if (kernel != "triangles" && kernel != "cliques" && kernel != "query") {
      std::fprintf(stderr,
                   "--concurrency/--deadline-ms support the single-fractoid "
                   "kernels (triangles, cliques, query), not '%s'\n",
                   kernel.c_str());
      return 2;
    }
    Pattern query_pattern;
    if (kernel == "query" && !ParseQueryPattern(query_name, &query_pattern)) {
      std::fprintf(stderr, "unknown query '%s'\n", query_name.c_str());
      return 2;
    }
    // Fresh fractoid per query: concurrent executions must not share cached
    // execution state (that is rejected with kFailedPrecondition).
    const auto build = [&] {
      if (kernel == "cliques") return CliquesFractoid(graph, k);
      if (kernel == "query") return QueryFractoid(graph, query_pattern);
      return CliquesFractoid(graph, 3);  // triangles
    };
    if (concurrency <= 0) {
      // Deadline only: synchronous run with a stack-owned control block.
      QueryControl control;
      control.name = kernel;
      control.SetDeadlineAfterMillis(deadline_ms);
      ExecutionConfig bounded = config;
      bounded.query = &control;
      const ExecutionResult result = build().Execute(bounded);
      std::printf("%s: status=%s subgraphs=%llu units=%llu\n", kernel.c_str(),
                  result.status.ok() ? "OK" : result.status.ToString().c_str(),
                  (unsigned long long)result.num_subgraphs,
                  (unsigned long long)control.work_units.load());
      if (!result.status.ok()) return 1;
    } else {
      ClusterOptions cluster_options;
      cluster_options.num_workers = config.num_workers;
      cluster_options.threads_per_worker = config.threads_per_worker;
      cluster_options.internal_work_stealing = config.internal_work_stealing;
      cluster_options.external_work_stealing =
          config.external_work_stealing && config.num_workers >= 2;
      cluster_options.network = config.network;
      cluster_options.progress_interval_ms = config.progress_interval_ms;
      cluster_options.statusz_port = config.statusz_port;
      Cluster cluster(cluster_options);
      QuerySchedulerOptions scheduler_options;
      scheduler_options.max_active = static_cast<uint32_t>(concurrency);
      scheduler_options.max_queued = static_cast<uint32_t>(2 * concurrency);
      QueryScheduler scheduler(&cluster, scheduler_options);

      std::vector<Fractoid> fractoids;
      fractoids.reserve(static_cast<size_t>(concurrency));
      for (int q = 0; q < concurrency; ++q) fractoids.push_back(build());
      std::vector<QueryHandle> handles;
      for (int q = 0; q < concurrency; ++q) {
        QueryScheduler::Submission submission;
        submission.name = kernel + "-" + std::to_string(q);
        submission.deadline_ms = deadline_ms;
        auto handle =
            ExecuteFractoidAsync(fractoids[q], config, scheduler,
                                 std::move(submission));
        if (!handle.ok()) {
          std::fprintf(stderr, "submit %d: %s\n", q,
                       handle.status().ToString().c_str());
          return 1;
        }
        handles.push_back(*std::move(handle));
      }
      bool all_ok = true;
      for (QueryHandle& handle : handles) {
        const ExecutionResult& result = handle.Wait();
        const std::string status_text =
            result.status.ok() ? "OK" : result.status.ToString();
        std::printf("%-14s status=%-8s subgraphs=%llu steps=%llu "
                    "units=%llu\n",
                    handle.name().c_str(), status_text.c_str(),
                    (unsigned long long)result.num_subgraphs,
                    (unsigned long long)handle.control().steps_run.load(),
                    (unsigned long long)handle.control().work_units.load());
        all_ok = all_ok && result.status.ok();
      }
      const QueryScheduler::Stats stats = scheduler.stats();
      std::printf("scheduler: admitted=%llu completed=%llu cancelled=%llu "
                  "deadline_exceeded=%llu rejected=%llu\n",
                  (unsigned long long)stats.admitted,
                  (unsigned long long)stats.completed,
                  (unsigned long long)stats.cancelled,
                  (unsigned long long)stats.deadline_exceeded,
                  (unsigned long long)stats.rejected);
      if (!all_ok) return 1;
    }
  } else if (kernel == "triangles") {
    std::printf("triangles: %llu\n",
                (unsigned long long)CountTriangles(graph, config));
  } else if (kernel == "cliques") {
    std::printf("%u-cliques: %llu\n", k,
                (unsigned long long)CountCliques(graph, k, config));
  } else if (kernel == "motifs") {
    const MotifsResult result = CountMotifs(graph, k, config);
    std::printf("%llu subgraphs, %zu motif shapes:\n",
                (unsigned long long)result.total, result.counts.size());
    for (const auto& [pattern, count] : result.counts) {
      std::printf("  %12llu  %s\n", (unsigned long long)count,
                  PatternShapeName(pattern).c_str());
    }
  } else if (kernel == "fsm") {
    const FsmResult result = RunFsm(graph, support, max_edges, config);
    std::printf("%zu frequent patterns (support >= %u):\n",
                result.frequent.size(), support);
    for (const auto& [pattern, mni] : result.frequent) {
      std::printf("  support %8llu : %s\n", (unsigned long long)mni,
                  pattern.ToString().c_str());
    }
  } else if (kernel == "query") {
    Pattern query;
    if (!ParseQueryPattern(query_name, &query)) {
      std::fprintf(stderr, "unknown query '%s'\n", query_name.c_str());
      return 2;
    }
    std::printf("%s matches: %llu\n", query_name.c_str(),
                (unsigned long long)CountQueryMatches(graph, query, config));
  } else if (kernel == "stats") {
    const GraphStats stats = ComputeStats(graph.graph());
    const CoreResult cores = CoreDecomposition(graph.graph());
    const ComponentsResult components = ConnectedComponents(graph.graph());
    std::printf("max degree %u, mean degree %.2f, triangles %llu, "
                "clustering %.4f, degeneracy %u, components %u "
                "(largest %u)\n",
                stats.max_degree, stats.mean_degree,
                (unsigned long long)stats.triangles,
                stats.clustering_coefficient, cores.degeneracy,
                components.num_components, components.largest_size);
  } else {
    Usage();
    return 2;
  }
  std::printf("done in %.3fs (%u workers x %u threads)\n",
              timer.ElapsedSeconds(), config.num_workers,
              config.threads_per_worker);
  if (!trace_out.empty()) {
    obs::Tracer::Get().Disable();
    const Status status = obs::Tracer::Get().ExportChromeTrace(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                trace_out.c_str());
  }
  if (dump_metrics) {
    std::printf("%s", obs::MetricsRegistry::Get().DumpText().c_str());
  }
  if (!metricsz_out.empty()) {
    const std::string prom = obs::MetricsRegistry::Get().DumpPrometheus();
    std::FILE* file = std::fopen(metricsz_out.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(prom.data(), 1, prom.size(), file) != prom.size() ||
        std::fclose(file) != 0) {
      std::fprintf(stderr, "cannot write %s\n", metricsz_out.c_str());
      return 1;
    }
    std::printf("prometheus metrics written to %s\n", metricsz_out.c_str());
  }
  return 0;
}
