// Quickstart: count triangles and 4-cliques on a synthetic social network.
//
// The heart of the program mirrors the paper's 3-line cliques application
// (Listing 2):
//
//   auto cliques = graph.VFractoid().Expand(1).Filter(isClique).Explore(k-1);
//   uint64_t count = cliques.CountSubgraphs();
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/cliques.h"
#include "core/context.h"
#include "graph/generators.h"

int main() {
  using namespace fractal;

  // A scale-free graph standing in for a small social network.
  PowerLawParams params;
  params.num_vertices = 2000;
  params.edges_per_vertex = 8;
  params.seed = 2024;
  Graph input = GeneratePowerLaw(params);
  std::printf("input: %s\n", input.DebugString().c_str());

  // Configure the simulated cluster: 2 workers x 2 cores, hierarchical
  // work stealing enabled (the default).
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;

  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(input));

  for (uint32_t k = 3; k <= 5; ++k) {
    const uint64_t count = CountCliques(graph, k, config);
    std::printf("%u-cliques: %llu\n", k, (unsigned long long)count);
  }

  // The same computation through the optimized KClist enumerator
  // (paper Appendix B, Listing 7).
  std::printf("4-cliques via KClist enumerator: %llu\n",
              (unsigned long long)CountCliquesOptimized(graph, 4, config));
  return 0;
}
