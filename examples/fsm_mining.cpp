// Frequent subgraph mining on a labeled network: the iterative Listing 3
// workflow — bootstrap frequent edges, then repeatedly filter by the
// previous frequent set, expand one edge, and re-aggregate MNI supports.
// Each iteration only executes the newly appended fractal step thanks to
// aggregation-result caching (paper §4.1).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/fsm.h"
#include "core/context.h"
#include "graph/datasets.h"

int main() {
  using namespace fractal;

  DatasetInfo patents =
      MakeDataset(DatasetId::kPatents, LabelMode::kMultiLabel);
  std::printf("graph %s: %s\n", patents.name.c_str(),
              patents.graph.DebugString().c_str());

  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(patents.graph));

  const uint32_t min_support = 120;
  const uint32_t max_edges = 3;
  const FsmResult result = RunFsm(graph, min_support, max_edges, config);

  std::vector<std::pair<Pattern, uint64_t>> sorted = result.frequent;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf(
      "\n%zu frequent patterns (MNI support >= %u, <= %u edges), "
      "%u rounds in %.2fs:\n",
      sorted.size(), min_support, max_edges, result.iterations,
      result.seconds);
  for (const auto& [pattern, support] : sorted) {
    std::printf("  support %8llu : %s\n", (unsigned long long)support,
                pattern.ToString().c_str());
  }
  return 0;
}
