// Approximate motif counting with a custom sampling enumerator (the
// Appendix B use case): each extension survives with probability p, so a
// k-vertex subgraph is sampled with probability p^k and counts are scaled
// by 1/p^k. Compares exact vs estimated distributions and the work saved.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/estimation.h"
#include "apps/motifs.h"
#include "core/context.h"
#include "graph/generators.h"
#include "pattern/catalog.h"

int main() {
  using namespace fractal;

  PowerLawParams params;
  params.num_vertices = 1200;
  params.edges_per_vertex = 7;
  params.triangle_closure = 0.45;
  params.seed = 31;
  Graph input = GeneratePowerLaw(params);
  std::printf("input: %s\n", input.DebugString().c_str());

  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 4;
  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(input));

  const uint32_t k = 4;
  const MotifsResult exact = CountMotifs(graph, k, config);
  const double p = 0.5;
  const EstimationResult estimate =
      EstimateMotifCounts(graph, k, p, /*seed=*/7, config);

  std::printf("\n%u-vertex motifs, sampling p=%.2f (sampled %llu of %llu "
              "subgraphs, %.1f%% of the work):\n",
              k, p, (unsigned long long)estimate.sampled_subgraphs,
              (unsigned long long)exact.total,
              100.0 * estimate.sampled_subgraphs / exact.total);
  std::printf("%-12s %14s %14s %8s\n", "shape", "exact", "estimate", "err%");
  std::vector<std::pair<Pattern, uint64_t>> sorted(exact.counts.begin(),
                                                   exact.counts.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [pattern, count] : sorted) {
    const auto it = estimate.estimated_counts.find(pattern);
    const uint64_t estimated = it == estimate.estimated_counts.end()
                                   ? 0
                                   : it->second;
    std::printf("%-12s %14llu %14llu %7.1f%%\n",
                PatternShapeName(pattern).c_str(),
                (unsigned long long)count, (unsigned long long)estimated,
                100.0 * (static_cast<double>(estimated) - count) / count);
  }
  return 0;
}
