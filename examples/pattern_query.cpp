// Subgraph querying: list the instances of structural patterns (the SEED
// benchmark queries of paper Fig. 14) via the pattern-induced fractoid with
// symmetry breaking (Listing 5), and print a few concrete matches.
#include <cstdio>

#include "apps/queries.h"
#include "core/context.h"
#include "graph/datasets.h"

int main() {
  using namespace fractal;

  DatasetInfo youtube =
      MakeDataset(DatasetId::kYoutube, LabelMode::kSingleLabel);
  std::printf("graph %s: %s\n", youtube.name.c_str(),
              youtube.graph.DebugString().c_str());

  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(youtube.graph));

  for (uint32_t q = 1; q <= 4; ++q) {
    const Pattern query = SeedQuery(q);
    std::printf("\n%s  (%u vertices, %u edges)\n", SeedQueryName(q).c_str(),
                query.NumVertices(), query.NumEdges());
    const uint64_t count = CountQueryMatches(graph, query, config);
    std::printf("  matches: %llu\n", (unsigned long long)count);

    // Show up to three concrete instances.
    ExecutionConfig sample_config = config;
    sample_config.max_collected_subgraphs = 3;
    const auto samples =
        QueryFractoid(graph, query).CollectSubgraphs(sample_config);
    for (const Subgraph& subgraph : samples) {
      std::printf("  instance: %s\n", subgraph.ToString().c_str());
    }
  }
  return 0;
}
