// Keyword search over an attributed knowledge graph (the Wikidata analog),
// with and without the graph-reduction optimization of paper §4.3: the
// reduced graph keeps only vertices/edges carrying query keywords, cutting
// the extension cost (EC) by orders of magnitude for selective queries.
#include <cstdio>

#include "apps/keyword_search.h"
#include "core/context.h"
#include "graph/datasets.h"

int main() {
  using namespace fractal;

  Graph wikidata = MakeWikidataWithKeywords();
  std::printf("graph: %s (vocabulary %u keywords)\n",
              wikidata.DebugString().c_str(),
              wikidata.KeywordVocabularySize());

  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 4;
  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(std::move(wikidata));

  // Keyword ids play the role of words ("paris", "revolution", ...): mid-
  // frequency ids make selective but satisfiable queries.
  const std::vector<std::vector<uint32_t>> queries = {
      {2, 9}, {1, 5, 12}, {0, 3, 7}};

  for (const auto& query : queries) {
    std::printf("\nquery {");
    for (size_t i = 0; i < query.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", query[i]);
    }
    std::printf("}:\n");
    for (const bool reduce : {false, true}) {
      const KeywordSearchResult result =
          RunKeywordSearch(graph, query, reduce, config);
      std::printf(
          "  %-12s matches=%-8llu EC=%-12llu |V'|=%-6u |E'|=%-6u %.3fs\n",
          reduce ? "reduced G'" : "original G",
          (unsigned long long)result.num_matches,
          (unsigned long long)result.extension_cost, result.graph_vertices,
          result.graph_edges, result.seconds);
    }
  }
  return 0;
}
