#include <gtest/gtest.h>

#include <set>

#include "apps/cliques.h"
#include "core/aggregation.h"
#include "core/computation.h"
#include "core/context.h"
#include "core/step.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "pattern/pattern.h"
#include "runtime/cluster.h"
#include "tests/brute_force.h"
#include "util/alloc_guard.h"

namespace fractal {
namespace {

ExecutionConfig SingleThread() {
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  return config;
}

TEST(StepCompilerTest, SingleStepWithoutSyncPoints) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(4));
  const Fractoid motifs_like =
      graph.VFractoid().Expand(3).Aggregate<uint64_t, uint64_t>(
          "agg", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
          [](const Subgraph&, Computation&) -> uint64_t { return 1; },
          [](uint64_t& a, uint64_t&& b) { a += b; });
  const auto steps = CompileSteps(motifs_like.primitives());
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].new_begin, 0u);
  EXPECT_EQ(steps[0].end, 4u);
}

TEST(StepCompilerTest, CutsAtAggregationFilters) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(4));
  auto count_agg = [](const Fractoid& f) {
    return f.Aggregate<uint64_t, uint64_t>(
        "agg", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
        [](const Subgraph&, Computation&) -> uint64_t { return 1; },
        [](uint64_t& a, uint64_t&& b) { a += b; });
  };
  Fractoid f = count_agg(graph.EFractoid().Expand(1));  // [E, A]
  f = f.FilterByAggregation<uint64_t, uint64_t>(
      "agg", [](const Subgraph&, Computation&,
                const AggregationStorage<uint64_t, uint64_t>&) {
        return true;
      });
  f = count_agg(f.Expand(1));  // [E, A, F, E, A]
  const auto steps = CompileSteps(f.primitives());
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].end, 2u);
  EXPECT_EQ(steps[1].new_begin, 2u);
  EXPECT_EQ(steps[1].end, 5u);
}

TEST(ExecutorTest, CountsConnectedInducedSubgraphs) {
  const Graph g = GenerateRandomGraph(12, 26, 1, 1, 99);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  for (uint32_t k = 1; k <= 4; ++k) {
    const uint64_t expected = brute::CountConnectedVertexSets(g, k);
    EXPECT_EQ(graph.VFractoid().Expand(k).CountSubgraphs(SingleThread()),
              expected)
        << "k=" << k;
  }
}

class ExecutorConfigProperty
    : public ::testing::TestWithParam<std::tuple<int, int, bool, bool>> {};

TEST_P(ExecutorConfigProperty, SameCountsUnderAllClusterShapes) {
  const auto [workers, threads, internal_ws, external_ws] = GetParam();
  ExecutionConfig config;
  config.num_workers = workers;
  config.threads_per_worker = threads;
  config.internal_work_stealing = internal_ws;
  config.external_work_stealing = external_ws;
  config.network.latency_micros = 5;

  const Graph g = GenerateRandomGraph(14, 40, 1, 1, 1234);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(config),
            brute::CountConnectedVertexSets(g, 3));
  EXPECT_EQ(graph.EFractoid().Expand(3).CountSubgraphs(config),
            brute::CountConnectedEdgeSets(g, 3));
  EXPECT_EQ(CountCliques(graph, 3, config), brute::CountCliques(g, 3));
}

INSTANTIATE_TEST_SUITE_P(
    ClusterShapes, ExecutorConfigProperty,
    ::testing::Values(std::tuple{1, 1, false, false},
                      std::tuple{1, 4, false, false},
                      std::tuple{1, 4, true, false},
                      std::tuple{2, 2, true, false},
                      std::tuple{2, 2, false, true},
                      std::tuple{2, 2, true, true},
                      std::tuple{3, 2, true, true},
                      std::tuple{4, 1, false, true}));

TEST(ExecutorTest, LocalFilterPrunes) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(5));
  // Only subgraphs containing vertex 0 survive the filter at depth 2.
  const uint64_t count =
      graph.VFractoid()
          .Expand(2)
          .Filter([](const Subgraph& s, Computation&) {
            return s.ContainsVertex(0);
          })
          .Expand(1)
          .CountSubgraphs(SingleThread());
  // Distinct 3-vertex sets containing 0 in K5: C(4,2) = 6.
  EXPECT_EQ(count, 6u);
}

TEST(ExecutorTest, AggregationCountsPerKey) {
  const Graph g = testgraphs::Petersen();
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  // Aggregate subgraph count keyed by whether the 3-subgraph is a triangle.
  auto result =
      graph.VFractoid()
          .Expand(3)
          .Aggregate<uint64_t, uint64_t>(
              "by_shape",
              [](const Subgraph& s, Computation&) -> uint64_t {
                return s.NumEdges() == 3 ? 1 : 0;
              },
              [](const Subgraph&, Computation&) -> uint64_t { return 1; },
              [](uint64_t& a, uint64_t&& b) { a += b; })
          .Execute(SingleThread());
  const auto& storage =
      result.Aggregation<uint64_t, uint64_t>("by_shape");
  // Petersen graph is triangle-free.
  EXPECT_EQ(storage.Find(1), nullptr);
  ASSERT_NE(storage.Find(0), nullptr);
  EXPECT_EQ(*storage.Find(0), brute::CountConnectedVertexSets(g, 3));
}

TEST(ExecutorTest, AggregationPostFilterDropsEntries) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Path(6));
  auto result =
      graph.EFractoid()
          .Expand(1)
          .Aggregate<uint64_t, uint64_t>(
              "edges_by_endpoint",
              [](const Subgraph& s, Computation& comp) -> uint64_t {
                return comp.graph().Endpoints(s.EdgeAt(0)).src;
              },
              [](const Subgraph&, Computation&) -> uint64_t { return 1; },
              [](uint64_t& a, uint64_t&& b) { a += b; },
              [](const uint64_t& key, const uint64_t&) {
                return key % 2 == 0;  // keep even sources only
              })
          .Execute(SingleThread());
  const auto& storage =
      result.Aggregation<uint64_t, uint64_t>("edges_by_endpoint");
  for (const auto& [key, value] : storage.entries()) {
    EXPECT_EQ(key % 2, 0u);
  }
  EXPECT_EQ(storage.NumEntries(), 3u);  // sources 0, 2, 4
}

TEST(ExecutorTest, AggregationFilterRunsMultiStep) {
  // Two-step workflow: count 1-edge subgraphs per source vertex, then only
  // extend edges whose source count passes a threshold.
  FractalContext fctx;
  const Graph g = testgraphs::Star(5);  // center 0 with 4 leaves
  FractalGraph graph = fctx.FromGraph(Graph(g));
  auto fractoid =
      graph.EFractoid()
          .Expand(1)
          .Aggregate<uint64_t, uint64_t>(
              "deg",
              [](const Subgraph&, Computation&) -> uint64_t { return 0; },
              [](const Subgraph&, Computation&) -> uint64_t { return 1; },
              [](uint64_t& a, uint64_t&& b) { a += b; })
          .FilterByAggregation<uint64_t, uint64_t>(
              "deg",
              [](const Subgraph&, Computation&,
                 const AggregationStorage<uint64_t, uint64_t>& agg) {
                return *agg.Find(0) == 4;  // all 4 edges counted
              })
          .Expand(1);
  auto result = fractoid.Execute(SingleThread());
  EXPECT_EQ(result.num_steps, 2u);
  EXPECT_EQ(result.steps_executed, 2u);
  // 2-edge connected subgraphs of a 4-star: C(4,2) = 6.
  EXPECT_EQ(result.num_subgraphs, 6u);
}

TEST(ExecutorTest, CachedAggregationsSkipSteps) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(5));
  auto base = graph.EFractoid().Expand(1).Aggregate<uint64_t, uint64_t>(
      "count", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
      [](const Subgraph&, Computation&) -> uint64_t { return 1; },
      [](uint64_t& a, uint64_t&& b) { a += b; });
  auto first = base.Execute(SingleThread());
  EXPECT_EQ(first.steps_executed, 1u);

  // Deriving and executing again: the bootstrap step's aggregation is
  // cached on the shared fractoid state, so only the new step runs.
  auto extended = base.FilterByAggregation<uint64_t, uint64_t>(
                          "count",
                          [](const Subgraph&, Computation&,
                             const AggregationStorage<uint64_t, uint64_t>&) {
                            return true;
                          })
                      .Expand(1);
  auto second = extended.Execute(SingleThread());
  EXPECT_EQ(second.num_steps, 2u);
  EXPECT_EQ(second.steps_executed, 1u);  // step 0 skipped via cache
  EXPECT_EQ(second.num_subgraphs, brute::CountConnectedEdgeSets(
                                      graph.graph(), 2));
}

TEST(ExecutorTest, CollectSubgraphsReturnsAllMatches) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Cycle(6));
  auto subgraphs = graph.VFractoid().Expand(2).CollectSubgraphs(SingleThread());
  EXPECT_EQ(subgraphs.size(), 6u);  // the 6 edges as vertex pairs
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const Subgraph& s : subgraphs) {
    ASSERT_EQ(s.NumVertices(), 2u);
    pairs.emplace(std::min(s.VertexAt(0), s.VertexAt(1)),
                  std::max(s.VertexAt(0), s.VertexAt(1)));
  }
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(ExecutorTest, TelemetryAccountsWork) {
  const Graph g = GenerateRandomGraph(20, 60, 1, 1, 5);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.network.latency_micros = 1;
  auto result = graph.VFractoid().Expand(3).Execute(config);
  ASSERT_EQ(result.telemetry.steps.size(), 1u);
  const StepTelemetry& step = result.telemetry.steps[0];
  EXPECT_EQ(step.threads.size(), 4u);
  // Total work = total extensions consumed = number of subgraphs at every
  // depth 1..3.
  uint64_t expected_work = 0;
  for (uint32_t k = 1; k <= 3; ++k) {
    expected_work += brute::CountConnectedVertexSets(g, k);
  }
  EXPECT_EQ(step.TotalWorkUnits(), expected_work);
  EXPECT_GT(step.TotalExtensionTests(), 0u);
  EXPECT_GT(result.peak_state_bytes, 0u);
  EXPECT_LE(step.BalanceEfficiency(0), 1.0);
}

TEST(ExecutorTest, GraphReductionKeepsIdSpace) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Complete(5));
  // Drop vertex 4: counts become those of K4.
  FractalGraph reduced = graph.VFilter(
      [](const Graph&, VertexId v) { return v != 4; });
  EXPECT_EQ(reduced.graph().NumActiveVertices(), 4u);
  EXPECT_EQ(reduced.graph().NumEdges(), 6u);
  EXPECT_EQ(CountCliques(reduced, 3, SingleThread()), 4u);  // C(4,3)
  // Vertex ids refer to the original graph.
  auto subgraphs =
      reduced.VFractoid().Expand(1).CollectSubgraphs(SingleThread());
  std::set<VertexId> roots;
  for (const Subgraph& s : subgraphs) roots.insert(s.VertexAt(0));
  EXPECT_EQ(roots, (std::set<VertexId>{0, 1, 2, 3}));
}

TEST(ExecutionConfigTest, ValidateCatchesBadShapes) {
  ExecutionConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  ExecutionConfig zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_FALSE(zero_workers.Validate().ok());

  ExecutionConfig zero_threads;
  zero_threads.threads_per_worker = 0;
  EXPECT_FALSE(zero_threads.Validate().ok());

  ExecutionConfig bad_crash;
  bad_crash.num_workers = 2;
  bad_crash.fault_plan = FaultPlan().CrashWorker(2, 50);  // workers: 0, 1
  EXPECT_FALSE(bad_crash.Validate().ok());
  bad_crash.fault_plan = FaultPlan().CrashWorker(1, 50);
  EXPECT_TRUE(bad_crash.Validate().ok());

  ExecutionConfig zero_attempts;
  zero_attempts.retry.max_attempts = 0;
  EXPECT_FALSE(zero_attempts.Validate().ok());
}

TEST(ExecutionConfigTest, ValidateChecksCrashWorkerAgainstInjectedCluster) {
  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 1;
  Cluster cluster(options);
  ExecutionConfig config;
  config.cluster = &cluster;
  config.fault_plan = FaultPlan().CrashWorker(1, 10);
  EXPECT_TRUE(config.Validate().ok());
  // Crash target outside the injected cluster's topology.
  config.fault_plan = FaultPlan().CrashWorker(2, 10);
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ExecutorTest, InjectedClusterSurvivesWorkerCrashRecovery) {
  const Graph g = GenerateRandomGraph(30, 90, 1, 1, 4242);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  ExecutionConfig healthy;
  healthy.num_workers = 2;
  healthy.threads_per_worker = 2;
  healthy.network.latency_micros = 1;
  const uint64_t expected =
      graph.VFractoid().Expand(3).CountSubgraphs(healthy);

  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 2;
  options.external_work_stealing = true;
  options.network.latency_micros = 1;
  Cluster cluster(options);

  ExecutionConfig faulty = healthy;
  faulty.cluster = &cluster;
  faulty.fault_plan = FaultPlan().CrashWorker(1, 50);  // mid-step failure
  const ExecutionResult result = graph.VFractoid().Expand(3).Execute(faulty);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.num_subgraphs, expected);
  EXPECT_EQ(result.steps_retried, 1u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].worker, 1);
  EXPECT_GT(result.failures[0].work_units_lost, 0u);

  // The retry policy excluded the crashed worker: the re-execution ran
  // degraded on the survivor.
  EXPECT_EQ(cluster.num_live_workers(), 1u);

  // The abandoned step left no residue: after re-admitting the crashed
  // worker, the same cluster keeps serving healthy executions with exact
  // counts.
  cluster.RestoreAllWorkers();
  ExecutionConfig reuse;
  reuse.cluster = &cluster;
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(reuse), expected);
}

TEST(ExecutorTest, WorkerCrashIsRecoveredByStepRetry) {
  const Graph g = GenerateRandomGraph(30, 90, 1, 1, 4242);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  ExecutionConfig healthy;
  healthy.num_workers = 2;
  healthy.threads_per_worker = 2;
  healthy.network.latency_micros = 1;
  const uint64_t expected =
      graph.VFractoid().Expand(3).CountSubgraphs(healthy);

  ExecutionConfig faulty = healthy;
  faulty.fault_plan = FaultPlan().CrashWorker(1, 50);  // mid-step failure
  const ExecutionResult result =
      graph.VFractoid().Expand(3).Execute(faulty);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.num_subgraphs, expected);
  EXPECT_EQ(result.steps_retried, 1u);
}

TEST(ExecutorTest, WorkerCrashDuringAggregationStillExact) {
  const Graph g = GenerateRandomGraph(25, 60, 2, 1, 777);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  auto make = [&graph]() {
    return graph.EFractoid().Expand(2).Aggregate<uint64_t, uint64_t>(
        "count", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
        [](const Subgraph&, Computation&) -> uint64_t { return 1; },
        [](uint64_t& a, uint64_t&& b) { a += b; });
  };
  ExecutionConfig healthy;
  healthy.num_workers = 2;
  healthy.threads_per_worker = 1;
  healthy.network.latency_micros = 1;
  const auto clean = make().Execute(healthy);

  ExecutionConfig faulty = healthy;
  faulty.fault_plan = FaultPlan().CrashWorker(0, 20);
  const auto recovered = make().Execute(faulty);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status;
  EXPECT_EQ(recovered.steps_retried, 1u);
  const uint64_t clean_count =
      *TypedStorage<uint64_t, uint64_t>(*clean.aggregations.begin()->second)
           .Find(0);
  const uint64_t recovered_count = *TypedStorage<uint64_t, uint64_t>(
                                        *recovered.aggregations.begin()->second)
                                        .Find(0);
  EXPECT_EQ(recovered_count, clean_count);
}

TEST(ExecutorTest, CrashThresholdNeverReachedMeansNoRetry) {
  const Graph g = GenerateRandomGraph(12, 24, 1, 1, 31);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 1;
  config.network.latency_micros = 1;
  config.fault_plan = FaultPlan().CrashWorker(1, 100000000);  // unreachable
  const auto result = graph.VFractoid().Expand(2).Execute(config);
  EXPECT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.steps_retried, 0u);
  EXPECT_TRUE(result.failures.empty());
}

TEST(ExecutorTest, WorkStealingProducesBalancedWork) {
  // A skewed graph (star-heavy) with stealing: no thread should finish with
  // zero work units while others hold the bulk, and counts stay exact.
  PowerLawParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 3;
  params.seed = 7;
  const Graph g = GeneratePowerLaw(params);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  ExecutionConfig stealing;
  stealing.num_workers = 2;
  stealing.threads_per_worker = 2;
  stealing.network.latency_micros = 1;
  ExecutionConfig no_stealing = stealing;
  no_stealing.internal_work_stealing = false;
  no_stealing.external_work_stealing = false;

  const uint64_t count_with = CountCliques(graph, 3, stealing);
  const uint64_t count_without = CountCliques(graph, 3, no_stealing);
  EXPECT_EQ(count_with, count_without);
}

// --- AggregationStorage memory accounting & merge (regressions) ----------

/// Pattern-keyed storage whose key/value functions ignore the subgraph and
/// synthesize entries from `next_key` — lets tests drive Accumulate without
/// an execution.
using PatternCountStorage = AggregationStorage<Pattern, uint64_t, PatternHash>;

PatternCountStorage MakePatternStorage(uint32_t* next_key) {
  return PatternCountStorage(
      [next_key](const Subgraph&, Computation&) {
        // Distinct heap-owning keys: paths of 3..12 vertices.
        return Pattern::PathPattern(3 + (*next_key)++ % 10);
      },
      [](const Subgraph&, Computation&) -> uint64_t { return 1; },
      [](uint64_t& a, uint64_t&& b) { a += b; }, nullptr);
}

TEST(AggregationStorageTest, ApproxBytesCountsHeapOwnedByPatternKeys) {
  const Graph g = testgraphs::Complete(3);
  Computation comp(&g);
  const Subgraph unused;

  uint32_t next_key = 0;
  PatternCountStorage storage = MakePatternStorage(&next_key);
  for (int i = 0; i < 10; ++i) storage.Accumulate(unused, comp);
  ASSERT_EQ(storage.NumEntries(), 10u);

  // The seed counted only inline node size: bucket array + sizeof(K/V) +
  // per-node pointers. Pattern keys own three vectors each, so the real
  // footprint must sit strictly above that naive bound — by exactly the
  // heap the keys report.
  const uint64_t naive =
      storage.entries().bucket_count() * sizeof(void*) +
      storage.NumEntries() *
          (sizeof(Pattern) + sizeof(uint64_t) + 2 * sizeof(void*));
  uint64_t owned = 0;
  for (const auto& [key, value] : storage.entries()) {
    owned += key.ApproxHeapBytes();
  }
  EXPECT_GT(owned, 0u);
  EXPECT_GT(storage.ApproxBytes(), naive);
  EXPECT_EQ(storage.ApproxBytes(), naive + owned);
}

TEST(AggregationStorageTest, MergeFromMovesNodesWithoutAllocating) {
  if (!AllocGuard::Active()) {
    GTEST_SKIP() << "alloc-guard runtime not compiled in";
  }
  const Graph g = testgraphs::Complete(3);
  Computation comp(&g);
  const Subgraph unused;

  // Destination and source share 5 of 10 key shapes (paths of 3..12 vs
  // 3..7 vertices): the merge exercises both the move-node and the
  // reduce-duplicate branch.
  uint32_t dest_key = 0;
  PatternCountStorage dest = MakePatternStorage(&dest_key);
  uint32_t source_key = 0;
  PatternCountStorage source = MakePatternStorage(&source_key);
  for (int i = 0; i < 10; ++i) dest.Accumulate(unused, comp);
  for (int i = 0; i < 5; ++i) source.Accumulate(unused, comp);
  // Pre-warm the destination's bucket array past the merged size so the
  // guard below measures the merge itself, not an incidental rehash.
  for (int i = 0; i < 16; ++i) dest.Accumulate(unused, comp);
  const uint64_t merged_count = dest.NumEntries();

  // The regression: the seed's MergeFrom copied each key into the
  // destination — one allocation per Pattern vector, inside the step
  // barrier's guarded region. Moving whole map nodes must not allocate.
  {
    AllocGuard guard(AllocGuard::Mode::kCount);
    dest.MergeFrom(source);
    EXPECT_EQ(guard.allocations(), 0u)
        << "MergeFrom allocated despite node-handle moves";
  }
  EXPECT_EQ(dest.NumEntries(), merged_count);  // all source keys were known
  EXPECT_EQ(source.NumEntries(), 0u);          // and consumed
  // Reduced counts survived the merge: every path shape 3..7 was counted in
  // both storages.
  const Pattern probe = Pattern::PathPattern(3);
  ASSERT_NE(dest.Find(probe), nullptr);
  EXPECT_GE(*dest.Find(probe), 2u);
}

}  // namespace
}  // namespace fractal
