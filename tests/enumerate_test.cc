#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "enumerate/enumerator.h"
#include "enumerate/extension.h"
#include "enumerate/scratch_arena.h"
#include "enumerate/subgraph.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "pattern/canonical.h"
#include "tests/brute_force.h"

namespace fractal {
namespace {

/// Reference single-thread DFS driver over a strategy: counts (and
/// optionally collects) all depth-k subgraphs.
struct DfsDriver {
  const Graph& graph;
  const ExtensionStrategy& strategy;
  uint32_t target_depth;
  ExtensionContext ctx{};
  uint64_t count = 0;
  std::set<std::vector<VertexId>> seen_vertex_sets{};
  std::set<std::vector<EdgeId>> seen_edge_sets{};

  void Run() {
    Subgraph subgraph;
    Recurse(subgraph);
  }

  void Recurse(Subgraph& subgraph) {
    if (subgraph.Depth() == target_depth) {
      ++count;
      std::vector<VertexId> vertices(subgraph.Vertices().begin(),
                                     subgraph.Vertices().end());
      std::sort(vertices.begin(), vertices.end());
      EXPECT_TRUE(seen_vertex_sets.insert(vertices).second ||
                  !subgraph.Edges().empty())
          << "duplicate vertex set";
      std::vector<EdgeId> edges(subgraph.Edges().begin(),
                                subgraph.Edges().end());
      std::sort(edges.begin(), edges.end());
      if (!edges.empty()) {
        EXPECT_TRUE(seen_edge_sets.insert(edges).second)
            << "duplicate subgraph " << subgraph.ToString();
      }
      return;
    }
    std::vector<uint32_t> extensions;
    strategy.ComputeExtensions(graph, subgraph, ctx, &extensions);
    for (const uint32_t extension : extensions) {
      strategy.Apply(graph, extension, &subgraph);
      Recurse(subgraph);
      strategy.Undo(graph, &subgraph);
    }
  }
};

TEST(SubgraphTest, MembershipBitsTrackPushPopCopyAndClear) {
  const Graph g = testgraphs::Complete(6);
  Subgraph s;
  s.PushVertexInduced(g, 1);
  s.PushVertexInduced(g, 4);
  EXPECT_TRUE(s.ContainsVertex(1));
  EXPECT_TRUE(s.ContainsVertex(4));
  EXPECT_FALSE(s.ContainsVertex(0));
  EXPECT_TRUE(s.ContainsEdge(*g.EdgeBetween(1, 4)));
  EXPECT_FALSE(s.ContainsEdge(*g.EdgeBetween(0, 1)));

  // Copy construction rebuilds bits in the copy.
  const Subgraph copy(s);
  EXPECT_TRUE(copy.ContainsVertex(4));
  EXPECT_FALSE(copy.ContainsVertex(2));

  // Copy assignment clears the target's old bits before adopting.
  Subgraph other;
  other.PushVertexInduced(g, 0);
  other.PushVertexInduced(g, 2);
  other = s;
  EXPECT_FALSE(other.ContainsVertex(0));
  EXPECT_FALSE(other.ContainsVertex(2));
  EXPECT_TRUE(other.ContainsVertex(1));
  EXPECT_TRUE(other.ContainsVertex(4));

  s.Pop();
  EXPECT_FALSE(s.ContainsVertex(4));
  EXPECT_FALSE(s.ContainsEdge(*g.EdgeBetween(1, 4)));
  EXPECT_TRUE(s.ContainsVertex(1));

  other.Clear();
  EXPECT_FALSE(other.ContainsVertex(1));
  EXPECT_TRUE(other.Empty());
}

TEST(ScratchArenaTest, BuffersRecycleThroughThePool) {
  ScratchArena arena;
  std::vector<uint32_t>* first = arena.Acquire();
  first->assign(100, 7);
  EXPECT_EQ(arena.live_buffers(), 1u);
  arena.Release(first);
  EXPECT_EQ(arena.live_buffers(), 0u);
  // Reacquire: same node, cleared, capacity kept.
  std::vector<uint32_t>* second = arena.Acquire();
  EXPECT_EQ(second, first);
  EXPECT_TRUE(second->empty());
  EXPECT_GE(second->capacity(), 100u);
  EXPECT_EQ(arena.total_buffers(), 1u);
  {
    ScratchArena::BufferLease lease(arena);
    EXPECT_EQ(arena.live_buffers(), 2u);
    lease->push_back(1);
    EXPECT_EQ((*lease)[0], 1u);
  }
  EXPECT_EQ(arena.live_buffers(), 1u);
  arena.Release(second);
}

TEST(ScratchArenaTest, StampedMapResetIsLogicalClear) {
  ScratchArena::StampedMap map;
  map.Reset(10);
  EXPECT_EQ(map.Get(3), ScratchArena::StampedMap::kAbsent);
  map.Set(3, 42);
  map.Set(9, 0);
  EXPECT_EQ(map.Get(3), 42u);
  EXPECT_EQ(map.Get(9), 0u);
  map.Reset(10);  // O(1): epoch bump, no storage wipe
  EXPECT_EQ(map.Get(3), ScratchArena::StampedMap::kAbsent);
  EXPECT_EQ(map.Get(9), ScratchArena::StampedMap::kAbsent);
  map.Reset(20);  // grows
  map.Set(19, 5);
  EXPECT_EQ(map.Get(19), 5u);
  EXPECT_EQ(map.Get(3), ScratchArena::StampedMap::kAbsent);
}

TEST(SubgraphTest, VertexInducedPushPop) {
  const Graph g = testgraphs::Complete(4);
  Subgraph s;
  s.PushVertexInduced(g, 0);
  EXPECT_EQ(s.NumVertices(), 1u);
  EXPECT_EQ(s.NumEdges(), 0u);
  s.PushVertexInduced(g, 2);
  EXPECT_EQ(s.NumEdges(), 1u);
  s.PushVertexInduced(g, 3);
  EXPECT_EQ(s.NumEdges(), 3u);  // induced: edges to both previous vertices
  EXPECT_TRUE(s.ContainsVertex(2));
  EXPECT_FALSE(s.ContainsVertex(1));
  s.Pop();
  EXPECT_EQ(s.NumVertices(), 2u);
  EXPECT_EQ(s.NumEdges(), 1u);
  s.Pop();
  s.Pop();
  EXPECT_TRUE(s.Empty());
}

TEST(SubgraphTest, EdgeInducedPushPop) {
  const Graph g = testgraphs::Path(4);  // edges 0:(0,1) 1:(1,2) 2:(2,3)
  Subgraph s;
  s.PushEdgeInduced(g, 0);
  EXPECT_EQ(s.NumVertices(), 2u);
  s.PushEdgeInduced(g, 1);
  EXPECT_EQ(s.NumVertices(), 3u);
  EXPECT_EQ(s.NumEdges(), 2u);
  s.Pop();
  EXPECT_EQ(s.NumVertices(), 2u);
  EXPECT_EQ(s.NumEdges(), 1u);
}

TEST(SubgraphTest, QuickPatternReflectsLabelsAndEdges) {
  GraphBuilder b;
  b.AddVertex(7);
  b.AddVertex(8);
  b.AddVertex(9);
  b.AddEdge(0, 1, 3);
  b.AddEdge(1, 2, 4);
  const Graph g = std::move(b).Build();
  Subgraph s;
  s.PushVertexInduced(g, 1);
  s.PushVertexInduced(g, 2);
  s.PushVertexInduced(g, 0);
  const Pattern quick = s.QuickPattern(g);
  EXPECT_EQ(quick.NumVertices(), 3u);
  EXPECT_EQ(quick.VertexLabel(0), 8u);
  EXPECT_EQ(quick.VertexLabel(1), 9u);
  EXPECT_EQ(quick.VertexLabel(2), 7u);
  EXPECT_TRUE(quick.IsAdjacent(0, 1));
  EXPECT_EQ(quick.EdgeLabelBetween(0, 1), 4u);
  EXPECT_TRUE(quick.IsAdjacent(0, 2));
  EXPECT_EQ(quick.EdgeLabelBetween(0, 2), 3u);
  EXPECT_FALSE(quick.IsAdjacent(1, 2));
}

TEST(VertexInducedTest, PaperFigure1Extensions) {
  const Graph g = testgraphs::PaperFigure1();
  // Build the figure's current subgraph {v0..v3} (the 4-cycle).
  Subgraph s;
  for (VertexId v : {0u, 1u, 2u, 3u}) s.PushVertexInduced(g, v);
  ASSERT_EQ(s.NumEdges(), 4u);

  // Vertex-induced extensions: v4, v5, v6 (3 of them, as in Figure 1).
  VertexInducedStrategy vertex_strategy;
  ExtensionContext ctx;
  std::vector<uint32_t> extensions;
  vertex_strategy.ComputeExtensions(g, s, ctx, &extensions);
  EXPECT_EQ(std::set<uint32_t>(extensions.begin(), extensions.end()),
            (std::set<uint32_t>{4, 5, 6}));

  // Edge-induced extensions of the same subgraph built edge-by-edge: the 6
  // incident edges e5..e10 (ids 4..9), as in Figure 1.
  Subgraph es;
  for (EdgeId e : {0u, 1u, 2u, 3u}) es.PushEdgeInduced(g, e);
  EdgeInducedStrategy edge_strategy;
  edge_strategy.ComputeExtensions(g, es, ctx, &extensions);
  EXPECT_EQ(std::set<uint32_t>(extensions.begin(), extensions.end()),
            (std::set<uint32_t>{4, 5, 6, 7, 8, 9}));
}

struct RandomGraphCase {
  uint32_t vertices;
  uint32_t edges;
  uint64_t seed;
};

class VertexEnumerationProperty
    : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(VertexEnumerationProperty, MatchesBruteForceAllDepths) {
  const RandomGraphCase param = GetParam();
  const Graph g = GenerateRandomGraph(param.vertices, param.edges, 1, 1,
                                      param.seed);
  VertexInducedStrategy strategy;
  for (uint32_t k = 1; k <= 5; ++k) {
    DfsDriver driver{.graph = g, .strategy = strategy, .target_depth = k};
    driver.Run();
    EXPECT_EQ(driver.count, brute::CountConnectedVertexSets(g, k))
        << "k=" << k << " seed=" << param.seed;
    // Uniqueness of every enumerated vertex set is asserted inside Recurse.
    EXPECT_EQ(driver.seen_vertex_sets.size(), driver.count);
  }
}

class EdgeEnumerationProperty
    : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(EdgeEnumerationProperty, MatchesBruteForceAllDepths) {
  const RandomGraphCase param = GetParam();
  const Graph g = GenerateRandomGraph(param.vertices, param.edges, 1, 1,
                                      param.seed);
  EdgeInducedStrategy strategy;
  for (uint32_t k = 1; k <= 4; ++k) {
    DfsDriver driver{.graph = g, .strategy = strategy, .target_depth = k};
    driver.Run();
    EXPECT_EQ(driver.count, brute::CountConnectedEdgeSets(g, k))
        << "k=" << k << " seed=" << param.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, VertexEnumerationProperty,
    ::testing::Values(RandomGraphCase{8, 10, 1}, RandomGraphCase{8, 16, 2},
                      RandomGraphCase{10, 12, 3}, RandomGraphCase{10, 25, 4},
                      RandomGraphCase{12, 18, 5}, RandomGraphCase{12, 30, 6},
                      RandomGraphCase{6, 15, 7}, RandomGraphCase{14, 20, 8}));

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EdgeEnumerationProperty,
    ::testing::Values(RandomGraphCase{8, 10, 11}, RandomGraphCase{8, 14, 12},
                      RandomGraphCase{10, 12, 13}, RandomGraphCase{10, 18, 14},
                      RandomGraphCase{12, 16, 15}, RandomGraphCase{7, 12, 16}));

TEST(KClistTest, MatchesBruteForceCliques) {
  for (const uint64_t seed : {21u, 22u, 23u, 24u}) {
    const Graph g = GenerateRandomGraph(12, 34, 1, 1, seed);
    KClistStrategy strategy;
    for (uint32_t k = 1; k <= 5; ++k) {
      DfsDriver driver{.graph = g, .strategy = strategy, .target_depth = k};
      driver.Run();
      EXPECT_EQ(driver.count, brute::CountCliques(g, k))
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(KClistTest, CompleteGraphBinomials) {
  const Graph g = testgraphs::Complete(7);
  KClistStrategy strategy;
  const uint64_t expected[] = {1, 7, 21, 35, 35, 21, 7, 1};
  for (uint32_t k = 1; k <= 7; ++k) {
    DfsDriver driver{.graph = g, .strategy = strategy, .target_depth = k};
    driver.Run();
    EXPECT_EQ(driver.count, expected[k]) << "k=" << k;
  }
}

class PatternEnumerationProperty
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PatternEnumerationProperty, SeedLikeQueriesMatchBruteForce) {
  // Unlabeled structural queries on random graphs.
  const uint32_t which = GetParam();
  Pattern query;
  switch (which) {
    case 0:
      query = Pattern::Clique(3);
      break;
    case 1:
      query = Pattern::CyclePattern(4);
      break;
    case 2:
      query = Pattern::Clique(4);
      break;
    case 3:
      query = Pattern::PathPattern(4);
      break;
    case 4:
      query = Pattern::StarPattern(4);
      break;
    default: {
      query = Pattern::CyclePattern(4);
      query.AddEdge(0, 2);  // diamond
      break;
    }
  }
  for (const uint64_t seed : {31u, 32u, 33u}) {
    const Graph g = GenerateRandomGraph(11, 26, 1, 1, seed);
    PatternInducedStrategy strategy(query);
    DfsDriver driver{.graph = g, .strategy = strategy, .target_depth = query.NumVertices()};
    driver.Run();
    EXPECT_EQ(driver.count, brute::CountPatternMatches(g, query))
        << "query=" << query.ToString() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, PatternEnumerationProperty,
                         ::testing::Range(0u, 6u));

TEST(PatternEnumerationTest, RespectsLabels) {
  GraphBuilder b;
  // Two triangles: one with labels (0,0,1), one all-0.
  for (const Label l : {0u, 0u, 1u, 0u, 0u, 0u}) b.AddVertex(l);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  const Graph g = std::move(b).Build();

  Pattern labeled_triangle;
  labeled_triangle.AddVertex(0);
  labeled_triangle.AddVertex(0);
  labeled_triangle.AddVertex(1);
  labeled_triangle.AddEdge(0, 1);
  labeled_triangle.AddEdge(1, 2);
  labeled_triangle.AddEdge(0, 2);

  PatternInducedStrategy strategy(labeled_triangle);
  DfsDriver driver{.graph = g, .strategy = strategy, .target_depth = 3};
  driver.Run();
  EXPECT_EQ(driver.count, 1u);
  EXPECT_EQ(driver.count, brute::CountPatternMatches(g, labeled_triangle));
}

TEST(EnumeratorTest, OwnerConsumesAll) {
  SubgraphEnumerator enumerator;
  Subgraph prefix;
  enumerator.Refill(prefix, 3, {10, 20, 30});
  EXPECT_TRUE(enumerator.LooksNonEmpty());
  EXPECT_EQ(enumerator.primitive_index(), 3u);
  std::vector<uint32_t> consumed;
  while (auto e = enumerator.ConsumeNext()) consumed.push_back(*e);
  EXPECT_EQ(consumed, (std::vector<uint32_t>{10, 20, 30}));
  EXPECT_FALSE(enumerator.LooksNonEmpty());
}

TEST(EnumeratorTest, StealClaimsDisjointExtensions) {
  const Graph g = testgraphs::Complete(5);
  SubgraphEnumerator enumerator;
  Subgraph prefix;
  prefix.PushVertexInduced(g, 0);
  enumerator.Refill(prefix, 2, {1, 2, 3, 4});

  SubgraphEnumerator::StolenWork stolen;
  ASSERT_TRUE(enumerator.TrySteal(&stolen));
  EXPECT_EQ(stolen.extension, 1u);
  EXPECT_EQ(stolen.primitive_index, 2u);
  EXPECT_EQ(stolen.prefix.NumVertices(), 1u);
  EXPECT_EQ(stolen.prefix.VertexAt(0), 0u);

  std::vector<uint32_t> owner_got;
  while (auto e = enumerator.ConsumeNext()) owner_got.push_back(*e);
  EXPECT_EQ(owner_got, (std::vector<uint32_t>{2, 3, 4}));

  EXPECT_FALSE(enumerator.TrySteal(&stolen));
  enumerator.Deactivate();
  EXPECT_FALSE(enumerator.TrySteal(&stolen));
}

TEST(EnumeratorTest, ConcurrentConsumptionIsExactlyOnce) {
  SubgraphEnumerator enumerator;
  Subgraph prefix;
  constexpr uint32_t kExtensions = 10000;
  std::vector<uint32_t> extensions(kExtensions);
  for (uint32_t i = 0; i < kExtensions; ++i) extensions[i] = i;
  enumerator.Refill(prefix, 1, std::move(extensions));

  std::vector<std::vector<uint32_t>> claimed(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&enumerator, &claimed, t] {
      if (t == 0) {
        while (auto e = enumerator.ConsumeNext()) claimed[t].push_back(*e);
      } else {
        SubgraphEnumerator::StolenWork work;
        while (enumerator.TrySteal(&work)) {
          claimed[t].push_back(work.extension);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<uint32_t> all;
  for (const auto& c : claimed) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kExtensions);
  for (uint32_t i = 0; i < kExtensions; ++i) EXPECT_EQ(all[i], i);
}

TEST(ExtensionCostTest, CountsCandidateTests) {
  const Graph g = testgraphs::Complete(5);
  VertexInducedStrategy strategy;
  ExtensionContext ctx;
  Subgraph s;
  std::vector<uint32_t> extensions;
  strategy.ComputeExtensions(g, s, ctx, &extensions);
  EXPECT_EQ(ctx.extension_tests, 5u);  // one root test per vertex
  s.PushVertexInduced(g, 0);
  strategy.ComputeExtensions(g, s, ctx, &extensions);
  EXPECT_GT(ctx.extension_tests, 5u);
}

}  // namespace
}  // namespace fractal
