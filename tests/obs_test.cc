// Tests for the observability layer (src/obs/): trace ring buffers, the
// Chrome trace_event exporter, the metrics registry, and the step-progress
// reporter. The exporter test runs a real 2x2 cluster execution with
// external stealing so the trace carries spans from every runtime layer —
// that same execution doubles as a concurrency test under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/motifs.h"
#include "core/context.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/mutex.h"

namespace fractal {
namespace {

// --- Minimal Chrome-trace JSON scanning -----------------------------------
// The exporter emits one event object per line; these helpers pull typed
// fields out of a single object without a JSON library.

struct ParsedEvent {
  std::string name;
  std::string ph;
  double ts = 0;
  int pid = -1;
  int tid = -1;
};

std::string StringField(const std::string& obj, const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  const size_t start = obj.find(marker);
  if (start == std::string::npos) return "";
  const size_t begin = start + marker.size();
  const size_t end = obj.find('"', begin);
  return obj.substr(begin, end - begin);
}

double NumberField(const std::string& obj, const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  const size_t start = obj.find(marker);
  if (start == std::string::npos) return -1;
  return std::atof(obj.c_str() + start + marker.size());
}

std::vector<ParsedEvent> ParseTraceEvents(const std::string& json) {
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  std::vector<ParsedEvent> events;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] != '{') continue;
    if (line.find("\"ph\":") == std::string::npos) continue;
    ParsedEvent event;
    event.name = StringField(line, "name");
    event.ph = StringField(line, "ph");
    event.ts = NumberField(line, "ts");
    event.pid = static_cast<int>(NumberField(line, "pid"));
    event.tid = static_cast<int>(NumberField(line, "tid"));
    EXPECT_FALSE(event.ph.empty()) << line;
    events.push_back(std::move(event));
  }
  return events;
}

uint64_t TotalEvents(const obs::TraceSnapshot& snapshot) {
  uint64_t total = 0;
  for (const obs::ThreadTrace& t : snapshot.threads) total += t.events.size();
  return total;
}

// --- Tracer ----------------------------------------------------------------

TEST(TracerTest, DisabledTracingRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable(64);  // fresh session to clear earlier tests' rings
  tracer.Disable();
  const uint64_t before = TotalEvents(tracer.Snapshot());
  for (int i = 0; i < 100; ++i) {
    FRACTAL_TRACE_SPAN("test/disabled_span");
    FRACTAL_TRACE_INSTANT("test/disabled_instant", i);
  }
  EXPECT_EQ(TotalEvents(tracer.Snapshot()), before);
}

TEST(TracerTest, RingWraparoundKeepsNewestEvents) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable(/*events_per_thread=*/8);
  const uint32_t name_id = tracer.InternName("test/wrap");
  for (uint64_t i = 0; i < 20; ++i) tracer.RecordInstant(name_id, i);
  tracer.Disable();

  const obs::TraceSnapshot snapshot = tracer.Snapshot();
  const obs::ThreadTrace* mine = nullptr;
  for (const obs::ThreadTrace& t : snapshot.threads) {
    if (!t.events.empty()) {
      ASSERT_EQ(mine, nullptr) << "only this thread should have recorded";
      mine = &t;
    }
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 8u);
  EXPECT_EQ(mine->dropped, 12u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(mine->events[i].arg, 12 + i) << "newest events must survive";
    EXPECT_EQ(snapshot.names[mine->events[i].name_id], "test/wrap");
    if (i > 0) {
      EXPECT_GE(mine->events[i].ts_nanos, mine->events[i - 1].ts_nanos);
    }
  }
}

// Exited threads return their rings for reuse, so thread churn (ephemeral
// clusters spawn fresh workers per execution) must not grow the registry —
// while the dead threads' events stay exportable.
TEST(TracerTest, ThreadChurnReusesRingsAndKeepsEvents) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable(/*events_per_thread=*/256);
  const size_t threads_before = tracer.Snapshot().threads.size();
  const uint32_t name_id = tracer.InternName("test/churn");
  for (uint64_t i = 0; i < 16; ++i) {
    std::thread t([&tracer, name_id, i] { tracer.RecordInstant(name_id, i); });
    t.join();  // thread_local slot released here; the next thread reuses it
  }
  tracer.Disable();

  const obs::TraceSnapshot snapshot = tracer.Snapshot();
  EXPECT_LE(snapshot.threads.size(), threads_before + 1)
      << "sequential short-lived threads must share one ring";
  uint64_t churn_events = 0;
  for (const obs::ThreadTrace& t : snapshot.threads) {
    for (const obs::TraceEvent& event : t.events) {
      if (event.name_id == name_id) ++churn_events;
    }
  }
  EXPECT_EQ(churn_events, 16u) << "reuse must not discard dead threads' events";
}

TEST(TracerTest, SpanOpenAcrossDisableStaysBalanced) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable(64);
  {
    FRACTAL_TRACE_SPAN("test/cross_disable");
    tracer.Disable();
  }  // end must still record so the pair stays balanced
  const std::vector<ParsedEvent> events =
      ParseTraceEvents(tracer.ToChromeTraceJson());
  int begins = 0, ends = 0;
  for (const ParsedEvent& event : events) {
    if (event.name != "test/cross_disable") continue;
    if (event.ph == "B") ++begins;
    if (event.ph == "E") ++ends;
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

// End-to-end: a real cluster execution (2 workers x 2 threads, WS_ext on)
// must export valid JSON whose spans cover the runtime layers and whose
// begin/end pairs are balanced per thread despite any ring wraparound.
TEST(TracerTest, ClusterExecutionExportsLayeredBalancedTrace) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable(/*events_per_thread=*/1u << 12);

  ExecutionConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.external_work_stealing = true;
  config.network.latency_micros = 0;
  PowerLawParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 5;
  params.triangle_closure = 0.4;
  params.seed = 7;
  FractalContext fctx(config);
  FractalGraph graph = fctx.FromGraph(GeneratePowerLaw(params));
  const MotifsResult result = CountMotifs(graph, 3, config);
  EXPECT_GT(result.total, 0u);

  tracer.Disable();
  const std::string json = tracer.ToChromeTraceJson();
  const std::vector<ParsedEvent> events = ParseTraceEvents(json);
  ASSERT_FALSE(events.empty());

  std::map<std::pair<int, int>, double> last_ts;
  std::map<std::pair<int, int>, std::vector<std::string>> open;
  std::set<std::string> layers;
  for (const ParsedEvent& event : events) {
    if (event.ph == "M") continue;  // metadata carries no timestamp
    const std::pair<int, int> key{event.pid, event.tid};
    // Timestamps non-decreasing within each thread track.
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(event.ts, it->second);
    }
    last_ts[key] = event.ts;
    if (event.ph == "B") {
      open[key].push_back(event.name);
      const size_t slash = event.name.find('/');
      ASSERT_NE(slash, std::string::npos) << event.name;
      layers.insert(event.name.substr(0, slash));
    } else if (event.ph == "E") {
      // LIFO pairing with matching names: RAII spans nest properly.
      ASSERT_FALSE(open[key].empty())
          << "unbalanced E for " << event.name;
      EXPECT_EQ(open[key].back(), event.name);
      open[key].pop_back();
    } else {
      EXPECT_EQ(event.ph, "i");
    }
  }
  for (const auto& [key, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed B on pid " << key.first;
  }

  // Spans from at least four distinct runtime layers (acceptance criterion).
  const std::set<std::string> runtime_layers = {"executor", "worker",
                                                "cluster", "enumerate", "bus"};
  int seen = 0;
  for (const std::string& layer : runtime_layers) {
    if (layers.count(layer)) ++seen;
  }
  EXPECT_GE(seen, 4) << "layers seen: " << layers.size();
  EXPECT_TRUE(layers.count("executor"));
  EXPECT_TRUE(layers.count("worker"));
  EXPECT_TRUE(layers.count("cluster"));
  EXPECT_TRUE(layers.count("enumerate"));
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);

  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i);
  }
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(4), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(4), 15u);
}

TEST(HistogramTest, RecordAndStats) {
  obs::Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(5);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 11u);
  EXPECT_DOUBLE_EQ(h.Mean(), 11.0 / 4.0);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(h.ApproxPercentile(100), 4u);  // lower bound of bucket [4,7]
}

// Pins ApproxPercentile exactly at bucket boundaries: with 90 samples of 1
// and 10 of 1000, the 90th percentile is the last sample of the low bucket
// and the 91st the first of the high one — the estimate must flip between
// the two bucket lower bounds precisely there (DumpText/DumpPrometheus
// report these estimates as p50/p90/p99).
TEST(HistogramTest, ApproxPercentileAtBucketBoundaries) {
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(1);     // bucket [1,1], lb 1
  for (int i = 0; i < 10; ++i) h.Record(1000);  // bucket [512,1023], lb 512
  EXPECT_EQ(h.ApproxPercentile(50), 1u);
  EXPECT_EQ(h.ApproxPercentile(90), 1u);    // target 90 == cumulative 90
  EXPECT_EQ(h.ApproxPercentile(90.1), 512u);
  EXPECT_EQ(h.ApproxPercentile(99), 512u);
  EXPECT_EQ(h.ApproxPercentile(100), 512u);

  obs::Histogram empty;
  EXPECT_EQ(empty.ApproxPercentile(99), 0u);

  obs::Histogram one;
  one.Record(42);  // bucket [32,63]
  for (const double p : {1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(one.ApproxPercentile(p), 32u) << "p=" << p;
  }
}

TEST(MetricsTest, DumpTextReportsAllThreePercentiles) {
  obs::MetricsRegistry::Get().GetHistogram("test.dump_pcts").Record(100);
  const std::string text = obs::MetricsRegistry::Get().DumpText();
  const size_t line = text.find("test.dump_pcts");
  ASSERT_NE(line, std::string::npos);
  const std::string tail = text.substr(line, text.find('\n', line) - line);
  EXPECT_NE(tail.find("p50~"), std::string::npos) << tail;
  EXPECT_NE(tail.find("p90~"), std::string::npos) << tail;
  EXPECT_NE(tail.find("p99~"), std::string::npos) << tail;
}

// --- Metrics registry ------------------------------------------------------

TEST(MetricsTest, ConcurrentCounterIncrements) {
  obs::Counter& counter =
      obs::MetricsRegistry::Get().GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  const uint64_t before = counter.Value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (int j = 0; j < kIncrements; ++j) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value() - before,
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter& a = registry.GetCounter("test.stable");
  obs::Counter& b = registry.GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
  registry.GetGauge("test.gauge").Set(-42);
  EXPECT_EQ(registry.GetGauge("test.gauge").Value(), -42);
}

TEST(MetricsTest, DumpsContainRecordedMetrics) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("test.dump_counter").Add(3);
  registry.GetHistogram("test.dump_histogram").Record(6);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("test.dump_counter"), std::string::npos);
  EXPECT_NE(text.find("test.dump_histogram"), std::string::npos);
  const std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"test.dump_counter\":3"), std::string::npos);
  // Value 6 lands in the bucket with lower bound 4.
  EXPECT_NE(json.find("\"test.dump_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"4\":1"), std::string::npos);
}

// --- Step-progress reporter ------------------------------------------------

TEST(ProgressTest, ReporterStartsSamplesAndStops) {
  obs::WorkUnitsCounter().Add(17);  // give it something to report
  {
    obs::StepProgressReporter reporter(/*interval_ms=*/5);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    obs::WorkUnitsCounter().Add(100);
  }  // destructor must stop and join without deadlock
  SUCCEED();
}

TEST(ProgressTest, CondVarWaitForTimesOut) {
  Mutex mu("test.waitfor");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, /*timeout_ms=*/5));  // nobody notifies
}

}  // namespace
}  // namespace fractal
