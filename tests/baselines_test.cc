#include <gtest/gtest.h>

#include "apps/cliques.h"
#include "apps/fsm.h"
#include "apps/motifs.h"
#include "baselines/bfs_engine.h"
#include "baselines/join_matcher.h"
#include "baselines/scalemine_like.h"
#include "baselines/single_thread.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "tests/brute_force.h"

namespace fractal {
namespace {

using baselines::BfsEngine;
using baselines::BfsOptions;
using baselines::BfsResult;

TEST(BfsEngineTest, MotifsMatchBruteForce) {
  const Graph g = GenerateRandomGraph(12, 28, 1, 1, 101);
  BfsEngine engine(g);
  for (uint32_t k = 2; k <= 4; ++k) {
    const BfsResult result = engine.Motifs(k);
    EXPECT_FALSE(result.out_of_memory);
    EXPECT_EQ(result.count, brute::CountConnectedVertexSets(g, k));
    const auto expected = brute::MotifCounts(g, k);
    ASSERT_EQ(result.pattern_counts.size(), expected.size());
    for (const auto& [pattern, count] : expected) {
      EXPECT_EQ(result.pattern_counts.at(pattern), count);
    }
  }
}

TEST(BfsEngineTest, CliquesMatchBruteForce) {
  const Graph g = GenerateRandomGraph(14, 45, 1, 1, 103);
  BfsEngine engine(g);
  for (uint32_t k = 3; k <= 5; ++k) {
    EXPECT_EQ(engine.Cliques(k).count, brute::CountCliques(g, k));
  }
}

TEST(BfsEngineTest, QueryMatchesBruteForce) {
  const Graph g = GenerateRandomGraph(11, 24, 1, 1, 107);
  BfsEngine engine(g);
  for (uint32_t q : {1u, 2u, 3u}) {
    Pattern query = q == 1 ? Pattern::Clique(3)
                           : (q == 2 ? Pattern::CyclePattern(4)
                                     : Pattern::PathPattern(4));
    EXPECT_EQ(engine.Query(query).count,
              brute::CountPatternMatches(g, query));
  }
}

TEST(BfsEngineTest, FsmMatchesBruteForce) {
  const Graph g = testgraphs::LabeledFsmExample();
  BfsEngine engine(g);
  const BfsResult result = engine.Fsm(2, 3);
  const auto expected = brute::FsmFrequentPatterns(g, 2, 3);
  ASSERT_EQ(result.pattern_counts.size(), expected.size());
  for (const auto& [pattern, support] : expected) {
    EXPECT_EQ(result.pattern_counts.at(pattern), support);
  }
}

TEST(BfsEngineTest, ReportsOutOfMemoryWithinBudget) {
  PowerLawParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 6;
  params.seed = 3;
  const Graph g = GeneratePowerLaw(params);
  BfsOptions options;
  options.memory_budget_bytes = 1 << 16;  // 64 KB: guaranteed blowup
  BfsEngine engine(g, options);
  const BfsResult result = engine.Motifs(4);
  EXPECT_TRUE(result.out_of_memory);
  EXPECT_GT(result.peak_state_bytes, options.memory_budget_bytes);
}

TEST(BfsEngineTest, MaterializesFarMoreStateThanFractal) {
  PowerLawParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 5;
  params.seed = 9;
  const Graph g = GeneratePowerLaw(params);
  BfsEngine engine(g);
  const BfsResult bfs = engine.Motifs(3);

  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  ExecutionConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 2;
  const MotifsResult fractal = CountMotifs(graph, 3, config);

  EXPECT_EQ(bfs.count, fractal.total);
  EXPECT_GT(bfs.peak_state_bytes,
            4 * fractal.execution.peak_state_bytes);
}

TEST(JoinMatcherTest, MatchesBruteForce) {
  const Graph g = GenerateRandomGraph(12, 30, 1, 1, 109);
  for (const bool triangle_seed : {true, false}) {
    baselines::JoinOptions options;
    options.use_triangle_seed = triangle_seed;
    for (uint32_t q = 1; q <= 4; ++q) {
      Pattern query;
      switch (q) {
        case 1:
          query = Pattern::Clique(3);
          break;
        case 2:
          query = Pattern::CyclePattern(4);
          break;
        case 3:
          query = Pattern::Clique(4);
          break;
        default:
          query = Pattern::CyclePattern(4);
          query.AddEdge(0, 2);
          break;
      }
      const auto result = baselines::JoinCountMatches(g, query, options);
      EXPECT_FALSE(result.out_of_memory);
      EXPECT_EQ(result.count, brute::CountPatternMatches(g, query))
          << "q=" << q << " triangle_seed=" << triangle_seed;
    }
  }
}

TEST(JoinMatcherTest, TrianglesAgree) {
  const Graph g = GenerateRandomGraph(40, 180, 1, 1, 113);
  EXPECT_EQ(baselines::JoinCountTriangles(g).count,
            brute::CountCliques(g, 3));
}

TEST(JoinMatcherTest, RespectsMemoryBudget) {
  PowerLawParams params;
  params.num_vertices = 500;
  params.edges_per_vertex = 8;
  params.seed = 31;
  const Graph g = GeneratePowerLaw(params);
  baselines::JoinOptions options;
  options.memory_budget_bytes = 1 << 14;
  options.use_triangle_seed = false;
  const auto result =
      baselines::JoinCountMatches(g, Pattern::Clique(4), options);
  EXPECT_TRUE(result.out_of_memory);
}

TEST(SingleThreadTest, TriangleCountersAgree) {
  const Graph g = GenerateRandomGraph(40, 200, 1, 1, 127);
  const uint64_t expected = brute::CountCliques(g, 3);
  EXPECT_EQ(baselines::TunedTriangleCount(g), expected);
  EXPECT_EQ(baselines::TunedCliqueCount(g, 3), expected);
}

TEST(SingleThreadTest, CliqueCounterMatchesBruteForce) {
  for (const uint64_t seed : {131u, 137u}) {
    const Graph g = GenerateRandomGraph(15, 60, 1, 1, seed);
    for (uint32_t k = 3; k <= 6; ++k) {
      EXPECT_EQ(baselines::TunedCliqueCount(g, k), brute::CountCliques(g, k))
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(SingleThreadTest, MotifCountsMatchBruteForce) {
  const Graph g = GenerateRandomGraph(12, 26, 1, 1, 139);
  const auto counts = baselines::TunedMotifCounts(g, 4);
  const auto expected = brute::MotifCounts(g, 4);
  ASSERT_EQ(counts.size(), expected.size());
  for (const auto& [pattern, count] : expected) {
    EXPECT_EQ(counts.at(pattern), count);
  }
}

TEST(SingleThreadTest, QueryCounterMatchesBruteForce) {
  const Graph g = GenerateRandomGraph(12, 30, 1, 1, 149);
  Pattern diamond = Pattern::CyclePattern(4);
  diamond.AddEdge(0, 2);
  EXPECT_EQ(baselines::TunedQueryCount(g, diamond),
            brute::CountPatternMatches(g, diamond));
}

TEST(SingleThreadTest, FsmMatchesBruteForce) {
  const Graph g = testgraphs::LabeledFsmExample();
  const auto frequent = baselines::TunedFsm(g, 2, 3);
  const auto expected = brute::FsmFrequentPatterns(g, 2, 3);
  ASSERT_EQ(frequent.size(), expected.size());
  for (const auto& [pattern, support] : expected) {
    ASSERT_TRUE(frequent.count(pattern)) << pattern.ToString();
    EXPECT_EQ(frequent.at(pattern), support);
  }
}

TEST(SingleThreadTest, DoulionApproximatesTriangles) {
  PowerLawParams params;
  params.num_vertices = 800;
  params.edges_per_vertex = 8;
  params.seed = 41;
  const Graph g = GeneratePowerLaw(params);
  const uint64_t exact = baselines::TunedTriangleCount(g);
  const uint64_t estimate = baselines::DoulionTriangleEstimate(g, 0.5, 17);
  EXPECT_GT(estimate, exact / 2);
  EXPECT_LT(estimate, exact * 2);
}

TEST(ScaleMineTest, FindsSameFrequentPatternSetAsExactFsm) {
  const Graph g = GenerateRandomGraph(20, 45, 2, 1, 151);
  const uint32_t support = 3;
  baselines::ScaleMineOptions options;
  options.sample_walks = 100;
  const auto scalemine =
      baselines::RunScaleMineFsm(g, support, 3, options);
  const auto expected = brute::FsmFrequentPatterns(g, support, 3);
  ASSERT_EQ(scalemine.frequent.size(), expected.size());
  for (const auto& [pattern, support_value] : expected) {
    ASSERT_TRUE(scalemine.frequent.count(pattern)) << pattern.ToString();
    // Supports are clamped at the threshold (approximate counts).
    EXPECT_EQ(scalemine.frequent.at(pattern), support);
    EXPECT_LE(scalemine.frequent.at(pattern), support_value);
  }
}

}  // namespace
}  // namespace fractal
