#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/context.h"
#include "graph/generators.h"
#include "graph/test_graphs.h"
#include "runtime/cluster.h"
#include "runtime/codec.h"
#include "runtime/message_bus.h"
#include "runtime/telemetry.h"
#include "runtime/worker.h"

namespace fractal {
namespace {

TEST(CodecTest, SubgraphRoundTrip) {
  const Graph g = testgraphs::PaperFigure1();
  Subgraph s;
  s.PushVertexInduced(g, 0);
  s.PushVertexInduced(g, 1);
  s.PushVertexInduced(g, 4);

  ByteWriter writer;
  SubgraphCodec::EncodeSubgraph(s, &writer);
  ByteReader reader(writer.bytes());
  Subgraph decoded;
  ASSERT_TRUE(SubgraphCodec::DecodeSubgraph(&reader, &decoded));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(decoded, s);
  EXPECT_EQ(decoded.Depth(), s.Depth());

  // Pop works on the decoded subgraph (records survived).
  decoded.Pop();
  EXPECT_EQ(decoded.NumVertices(), 2u);
}

TEST(CodecTest, EmptySubgraphRoundTrip) {
  Subgraph s;
  ByteWriter writer;
  SubgraphCodec::EncodeSubgraph(s, &writer);
  ByteReader reader(writer.bytes());
  Subgraph decoded;
  ASSERT_TRUE(SubgraphCodec::DecodeSubgraph(&reader, &decoded));
  EXPECT_TRUE(decoded.Empty());
}

TEST(CodecTest, StolenWorkRoundTrip) {
  const Graph g = testgraphs::Complete(5);
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(g, 1);
  work.prefix.PushVertexInduced(g, 3);
  work.extension = 4;
  work.primitive_index = 2;
  // Lineage ids are 64-bit task indices; use a value past 2^32 to cover
  // both encoded halves.
  work.lineage_id = (uint64_t{7} << 32) | 12345u;

  const std::vector<uint8_t> bytes = SubgraphCodec::EncodeStolenWork(work);
  SubgraphEnumerator::StolenWork decoded;
  ASSERT_TRUE(SubgraphCodec::DecodeStolenWork(bytes, &decoded));
  EXPECT_EQ(decoded.prefix, work.prefix);
  EXPECT_EQ(decoded.extension, 4u);
  EXPECT_EQ(decoded.primitive_index, 2u);
  EXPECT_EQ(decoded.lineage_id, (uint64_t{7} << 32) | 12345u);
}

TEST(CodecTest, RejectsCorruptedPayloads) {
  const Graph g = testgraphs::Complete(4);
  SubgraphEnumerator::StolenWork work;
  work.prefix.PushVertexInduced(g, 0);
  work.extension = 1;
  work.primitive_index = 1;
  std::vector<uint8_t> bytes = SubgraphCodec::EncodeStolenWork(work);

  SubgraphEnumerator::StolenWork decoded;
  // Truncated payload.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(SubgraphCodec::DecodeStolenWork(truncated, &decoded));
  // Trailing garbage.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(SubgraphCodec::DecodeStolenWork(padded, &decoded));
  // Inconsistent structure: claim 2 vertices but records say 1.
  std::vector<uint8_t> inconsistent = bytes;
  inconsistent[0] = 2;
  EXPECT_FALSE(SubgraphCodec::DecodeStolenWork(inconsistent, &decoded));
}

TEST(MessageBusTest, RequestReplyRoundTrip) {
  NetworkConfig network;
  network.latency_micros = 0;
  MessageBus bus(2, network);

  std::thread service([&bus] {
    auto token = bus.WaitForRequest(1);
    ASSERT_TRUE(token.has_value());
    bus.Reply(*token, std::vector<uint8_t>{1, 2, 3});
    // Next request gets "no work".
    token = bus.WaitForRequest(1);
    ASSERT_TRUE(token.has_value());
    bus.Reply(*token, std::nullopt);
    // Shutdown unblocks the final wait.
    EXPECT_FALSE(bus.WaitForRequest(1).has_value());
  });

  StealReply reply = bus.RequestSteal(0, 1);
  ASSERT_EQ(reply.outcome, StealOutcome::kWork);
  EXPECT_EQ(reply.payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(bus.RequestSteal(0, 1).outcome, StealOutcome::kNoWork);
  bus.Shutdown();
  EXPECT_EQ(bus.RequestSteal(0, 1).outcome, StealOutcome::kShutdown);
  service.join();
}

TEST(MessageBusTest, ShutdownFailsFast) {
  MessageBus bus(2, NetworkConfig{.latency_micros = 0});
  bus.Shutdown();
  EXPECT_EQ(bus.RequestSteal(0, 1).outcome, StealOutcome::kShutdown);
  EXPECT_FALSE(bus.WaitForRequest(0).has_value());
}

TEST(MessageBusTest, ManyConcurrentRequesters) {
  MessageBus bus(3, NetworkConfig{.latency_micros = 0});
  std::atomic<int> served{0};
  std::thread service([&bus, &served] {
    while (auto token = bus.WaitForRequest(0)) {
      bus.Reply(*token, std::vector<uint8_t>{42});
      ++served;
    }
  });
  std::vector<std::thread> requesters;
  for (int i = 0; i < 8; ++i) {
    requesters.emplace_back([&bus, i] {
      for (int j = 0; j < 20; ++j) {
        const StealReply reply = bus.RequestSteal(1 + (i % 2), 0);
        ASSERT_EQ(reply.outcome, StealOutcome::kWork);
      }
    });
  }
  for (auto& t : requesters) t.join();
  bus.Shutdown();
  service.join();
  EXPECT_EQ(served.load(), 160);
}

TEST(ClusterTest, ValidateRejectsBadOptions) {
  ClusterOptions zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_FALSE(Cluster::Validate(zero_workers).ok());

  ClusterOptions zero_threads;
  zero_threads.threads_per_worker = 0;
  EXPECT_FALSE(Cluster::Validate(zero_threads).ok());

  ClusterOptions lone_external;
  lone_external.num_workers = 1;
  lone_external.external_work_stealing = true;
  EXPECT_FALSE(Cluster::Validate(lone_external).ok());
  EXPECT_FALSE(Cluster::Create(lone_external).ok());

  ClusterOptions good;
  good.num_workers = 2;
  good.threads_per_worker = 2;
  good.external_work_stealing = true;
  EXPECT_TRUE(Cluster::Validate(good).ok());
  auto cluster = Cluster::Create(good);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->TotalThreads(), 4u);
}

TEST(ClusterTest, ReuseAcrossExecutionsMatchesFreshClusters) {
  const Graph g = GenerateRandomGraph(14, 40, 1, 1, 1234);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));

  ExecutionConfig fresh;
  fresh.num_workers = 2;
  fresh.threads_per_worker = 2;
  fresh.network.latency_micros = 1;
  const uint64_t expected_v = graph.VFractoid().Expand(3).CountSubgraphs(fresh);
  const uint64_t expected_e = graph.EFractoid().Expand(2).CountSubgraphs(fresh);

  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 2;
  options.external_work_stealing = true;
  options.network.latency_micros = 1;
  Cluster cluster(options);

  // Two different fractoid executions share the same parked threads; the
  // counts must match the fresh-cluster-per-execution runs exactly.
  ExecutionConfig shared = fresh;
  shared.cluster = &cluster;
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(shared), expected_v);
  EXPECT_EQ(graph.EFractoid().Expand(2).CountSubgraphs(shared), expected_e);
  EXPECT_EQ(cluster.steps_run(), 2u);

  // And again, to prove the cluster survives repeated reuse.
  EXPECT_EQ(graph.VFractoid().Expand(3).CountSubgraphs(shared), expected_v);
  EXPECT_EQ(cluster.steps_run(), 3u);
}

TEST(ClusterTest, ReuseAcrossStepsOfMultiStepWorkflow) {
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(testgraphs::Star(5));
  auto multi_step = [&graph] {
    return graph.EFractoid()
        .Expand(1)
        .Aggregate<uint64_t, uint64_t>(
            "deg", [](const Subgraph&, Computation&) -> uint64_t { return 0; },
            [](const Subgraph&, Computation&) -> uint64_t { return 1; },
            [](uint64_t& a, uint64_t&& b) { a += b; })
        .FilterByAggregation<uint64_t, uint64_t>(
            "deg", [](const Subgraph&, Computation&,
                      const AggregationStorage<uint64_t, uint64_t>& agg) {
              return *agg.Find(0) == 4;
            })
        .Expand(1);
  };

  ExecutionConfig fresh;
  fresh.num_workers = 2;
  fresh.threads_per_worker = 2;
  fresh.network.latency_micros = 1;
  const ExecutionResult expected = multi_step().Execute(fresh);

  ClusterOptions options;
  options.num_workers = 2;
  options.threads_per_worker = 2;
  options.external_work_stealing = true;
  options.network.latency_micros = 1;
  Cluster cluster(options);
  ExecutionConfig shared = fresh;
  shared.cluster = &cluster;
  const ExecutionResult result = multi_step().Execute(shared);

  // Both steps ran on the same persistent threads (no respawn between
  // steps) and produced identical results.
  EXPECT_EQ(result.steps_executed, 2u);
  EXPECT_EQ(cluster.steps_run(), 2u);
  EXPECT_EQ(result.num_subgraphs, expected.num_subgraphs);
  EXPECT_EQ(result.telemetry.steps.size(), expected.telemetry.steps.size());
  for (size_t i = 0; i < result.telemetry.steps.size(); ++i) {
    EXPECT_EQ(result.telemetry.steps[i].TotalWorkUnits(),
              expected.telemetry.steps[i].TotalWorkUnits());
  }
}

TEST(ClusterTest, StealServiceThreadsTerminateCleanlyOnDestruction) {
  // Construct/run/destroy repeatedly: destruction must join the per-worker
  // steal-service threads (blocked on the bus) and the parked execution
  // threads without hanging or racing — this case runs under TSan in CI.
  const Graph g = GenerateRandomGraph(12, 30, 1, 1, 7);
  FractalContext fctx;
  FractalGraph graph = fctx.FromGraph(Graph(g));
  for (int round = 0; round < 3; ++round) {
    ClusterOptions options;
    options.num_workers = 3;
    options.threads_per_worker = 2;
    options.external_work_stealing = true;
    options.network.latency_micros = 1;
    Cluster cluster(options);
    if (round > 0) {  // round 0: destroy without ever running a step
      ExecutionConfig config;
      config.cluster = &cluster;
      EXPECT_GT(graph.VFractoid().Expand(2).CountSubgraphs(config), 0u);
    }
  }
}

/// Minimal StepTask: core 0 sleeps (busy), everyone else has nothing to do
/// and idles in the steal loop's backoff until the barrier.
class SleepyCountTask : public StepTask {
 public:
  void DrainRoots(ThreadContext& t, std::vector<uint32_t> roots) override {
    if (t.core_id == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    for (size_t i = 0; i < roots.size(); ++i) {
      if (!t.ConsumeWorkUnit()) return;
    }
  }
  void ProcessStolen(ThreadContext&,
                     const SubgraphEnumerator::StolenWork&) override {}
  void FinishThread(ThreadContext&) override {}
};

TEST(ClusterTest, BusySecondsExcludesIdleBackoff) {
  ClusterOptions options;
  options.num_workers = 1;
  options.threads_per_worker = 2;
  Cluster cluster(options);

  SleepyCountTask task;
  Cluster::StepOptions step_options;
  step_options.num_levels = 1;
  const Cluster::StepResult result =
      cluster.RunStep(task, {1, 2, 3, 4}, step_options);

  ASSERT_EQ(result.telemetry.threads.size(), 2u);
  EXPECT_EQ(result.telemetry.TotalWorkUnits(), 4u);
  const ThreadStats& busy_thread = result.telemetry.threads[0];
  const ThreadStats& idle_thread = result.telemetry.threads[1];
  // Core 0 really was busy for the sleep; core 1 drained two roots
  // instantly and then only waited — its backoff sleeps must NOT count as
  // busy time (the seed stamped whole-lifetime busy_seconds ~= wall).
  EXPECT_GE(busy_thread.busy_seconds, 0.05);
  EXPECT_LT(idle_thread.busy_seconds, result.telemetry.wall_seconds / 2);
}

TEST(TelemetryTest, AggregatesAndMakespan) {
  StepTelemetry step;
  ThreadStats a;
  a.work_units = 100;
  a.extension_tests = 500;
  a.external_steals = 2;
  ThreadStats b;
  b.work_units = 40;
  b.internal_steals = 3;
  b.bytes_shipped = 128;
  step.threads = {a, b};

  EXPECT_EQ(step.TotalWorkUnits(), 140u);
  EXPECT_EQ(step.TotalExtensionTests(), 500u);
  EXPECT_EQ(step.TotalInternalSteals(), 3u);
  EXPECT_EQ(step.TotalExternalSteals(), 2u);
  EXPECT_EQ(step.TotalBytesShipped(), 128u);
  // Makespan without steal cost: max work = 100; with cost 30: 100+60=160.
  EXPECT_EQ(step.SimulatedMakespanUnits(0), 100u);
  EXPECT_EQ(step.SimulatedMakespanUnits(30), 160u);
  EXPECT_DOUBLE_EQ(step.IdealMakespanUnits(), 70.0);
  EXPECT_DOUBLE_EQ(step.BalanceEfficiency(0), 0.7);
  EXPECT_FALSE(step.ToTable().empty());
}

TEST(TelemetryTest, DegenerateStepsHaveDefinedBalance) {
  // No threads at all: vacuously balanced, ideal makespan zero.
  StepTelemetry empty;
  EXPECT_DOUBLE_EQ(empty.IdealMakespanUnits(), 0.0);
  EXPECT_DOUBLE_EQ(empty.BalanceEfficiency(0), 1.0);
  EXPECT_DOUBLE_EQ(empty.BalanceEfficiency(50), 1.0);

  // Threads that did no work: still balanced (no 0/0), even when steal
  // costs make the simulated makespan nonzero.
  StepTelemetry idle;
  ThreadStats stole_but_empty;
  stole_but_empty.external_steals = 4;
  idle.threads = {ThreadStats{}, stole_but_empty};
  EXPECT_EQ(idle.TotalWorkUnits(), 0u);
  EXPECT_DOUBLE_EQ(idle.IdealMakespanUnits(), 0.0);
  EXPECT_DOUBLE_EQ(idle.BalanceEfficiency(0), 1.0);
  EXPECT_DOUBLE_EQ(idle.BalanceEfficiency(25), 1.0);
}

TEST(TelemetryTest, ExecutionTotals) {
  ExecutionTelemetry execution;
  StepTelemetry s1, s2;
  ThreadStats t;
  t.work_units = 10;
  t.extension_tests = 20;
  s1.threads = {t};
  s2.threads = {t, t};
  execution.steps = {s1, s2};
  EXPECT_EQ(execution.TotalWorkUnits(), 30u);
  EXPECT_EQ(execution.TotalExtensionTests(), 60u);
}

}  // namespace
}  // namespace fractal
